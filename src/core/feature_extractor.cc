#include "core/feature_extractor.h"

#include "util/timer.h"

namespace iustitia::core {

FeatureExtractor::FeatureExtractor(std::vector<int> widths)
    : widths_(std::move(widths)), rng_(0) {}

FeatureExtractor::FeatureExtractor(std::vector<int> widths,
                                   const entropy::EstimatorParams& params,
                                   std::uint64_t seed)
    : widths_(std::move(widths)),
      use_estimation_(true),
      params_(params),
      rng_(seed) {}

ExtractionResult FeatureExtractor::extract(
    std::span<const std::uint8_t> data) {
  ExtractionResult result;
  const util::Stopwatch timer;
  if (use_estimation_) {
    entropy::EntropyVectorResult vec =
        entropy::estimate_entropy_vector(data, widths_, params_, rng_);
    result.features = std::move(vec.h);
    result.space_bytes = vec.space_bytes;
  } else {
    entropy::EntropyVectorResult vec =
        entropy::compute_entropy_vector(data, widths_);
    result.features = std::move(vec.h);
    result.space_bytes = vec.space_bytes;
  }
  result.micros = timer.elapsed_micros();
  return result;
}

}  // namespace iustitia::core
