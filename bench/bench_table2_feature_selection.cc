// Reproduces Table 2 and the Section 4.1 feature-selection procedure:
//   - CART pruning-vote selection  (paper: phi_CART = {h1,h3,h4,h10})
//   - Sequential Forward Search     (paper: phi_SVM  = {h1,h2,h3,h9})
// then compares classification accuracy on the full vector vs the selected
// and width-preferred sets.  Paper shape: accuracy changes only slightly
// (within ~1%) after feature selection.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "ml/feature_selection.h"
#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

std::string set_to_string(const std::vector<std::size_t>& features) {
  std::string out = "{";
  for (std::size_t i = 0; i < features.size(); ++i) {
    if (i > 0) out += ",";
    out += "h" + std::to_string(features[i] + 1);  // index 0 -> h1
  }
  return out + "}";
}

std::vector<std::size_t> widths_to_indices(const std::vector<int>& widths) {
  std::vector<std::size_t> out;
  for (const int w : widths) out.push_back(static_cast<std::size_t>(w - 1));
  return out;
}

int run() {
  banner("Table 2 + Section 4.1: feature selection",
         "selected subsets lose at most ~1% accuracy vs h1..h10");

  const std::size_t files = env_size("IUSTITIA_FILES_PER_CLASS", 100);
  const std::size_t folds = env_size("IUSTITIA_CV_FOLDS", 5);
  const auto corpus = standard_corpus(files);
  core::TrainerOptions extract;
  extract.method = core::TrainingMethod::kWholeFile;
  extract.widths = entropy::full_feature_widths();
  const ml::Dataset data = core::build_entropy_dataset(corpus, extract);

  // --- run the two selection procedures ---
  util::Rng rng(7);
  const auto cart_sel =
      ml::cart_vote_selection(data, folds, 0.02, 4, ml::CartParams{}, rng);
  ml::SvmParams svm;
  svm.gamma = 50.0;
  svm.c = 1000.0;
  const auto svm_sel =
      ml::sequential_forward_selection(data, 2, 4, svm, 0.7, rng);

  std::cout << "selection results (this corpus):\n";
  std::cout << "  CART pruning vote: " << set_to_string(cart_sel.selected)
            << "   (paper: {h1,h3,h4,h10})\n";
  std::cout << "  SVM SFS:           " << set_to_string(svm_sel.selected)
            << "   (paper: {h1,h2,h3,h9})\n\n";

  // --- Table 2: accuracy with each feature set ---
  struct Row {
    std::string name;
    std::vector<std::size_t> features;
  };
  const std::vector<Row> cart_rows = {
      {"h1..h10", widths_to_indices(entropy::full_feature_widths())},
      {"phi_CART (paper)", widths_to_indices(entropy::cart_selected_widths())},
      {"phi'_CART (paper)",
       widths_to_indices(entropy::cart_preferred_widths())},
      {"phi_CART (this corpus)", cart_sel.selected},
  };
  const std::vector<Row> svm_rows = {
      {"h1..h10", widths_to_indices(entropy::full_feature_widths())},
      {"phi_SVM (paper)", widths_to_indices(entropy::svm_selected_widths())},
      {"phi'_SVM (paper)", widths_to_indices(entropy::svm_preferred_widths())},
      {"phi_SVM (this corpus)", svm_sel.selected},
  };

  double full_cart = 0.0, full_svm = 0.0;
  double worst_cart = 1.0, worst_svm = 1.0;

  std::cout << "-- Decision Tree (CART) --\n";
  {
    util::Table table({"feature set", "features", "total accuracy"});
    for (const Row& row : cart_rows) {
      const ml::Dataset projected = data.project(row.features);
      const ml::ConfusionMatrix matrix =
          run_cv(projected, folds, ml::make_cart_factory(), 202, false, "");
      table.add_row({row.name, set_to_string(row.features),
                     util::fmt_percent(matrix.accuracy())});
      if (row.name == "h1..h10") {
        full_cart = matrix.accuracy();
      } else {
        worst_cart = std::min(worst_cart, matrix.accuracy());
      }
    }
    table.render(std::cout);
    std::cout << '\n';
  }

  std::cout << "-- SVM - RBF kernel (gamma=50, C=1000) --\n";
  {
    util::Table table({"feature set", "features", "total accuracy"});
    for (const Row& row : svm_rows) {
      const ml::Dataset projected = data.project(row.features);
      const ml::ConfusionMatrix matrix =
          run_cv(projected, folds, ml::make_svm_factory(svm), 202, false, "");
      table.add_row({row.name, set_to_string(row.features),
                     util::fmt_percent(matrix.accuracy())});
      if (row.name == "h1..h10") {
        full_svm = matrix.accuracy();
      } else {
        worst_svm = std::min(worst_svm, matrix.accuracy());
      }
    }
    table.render(std::cout);
    std::cout << '\n';
  }

  std::cout << "paper:    feature selection costs <= ~1.1% accuracy "
               "(Table 2)\n";
  std::cout << "measured: worst drop CART "
            << util::fmt_percent(full_cart - worst_cart) << ", SVM "
            << util::fmt_percent(full_svm - worst_svm) << "\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
