# Empty dependencies file for iustitia_dpi.
# This may be replaced when dependencies are built.
