#include "core/cdb.h"

#include "util/check.h"
#include "util/rt_guard.h"

namespace iustitia::core {

ClassificationDatabase::ClassificationDatabase(const CdbOptions& options)
    : options_(options) {
  CHECK_GT(options_.inactivity_coefficient, 0.0)
      << "CDB inactivity rule needs a positive n";
  CHECK_GT(options_.default_lambda, 0.0)
      << "single-packet flows need a positive default lambda'";
  CHECK_GE(options_.reclassify_after_seconds, 0.0);
}

std::optional<datagen::FileClass> ClassificationDatabase::lookup(
    const net::FlowId& id, double now) {
  // The engine's per-packet fast path lands here: the per-shard lock is
  // uncontended by construction (one worker drives one shard) and the
  // probe itself never allocates.
  util::rt::AllowScope allow(util::rt::kBlock);  // analyze: hotpath-allow(may-block, unresolved-call)
  util::MutexLock lock(mu_);
  ++stats_.lookups;
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  ++stats_.hits;
  Record& record = it->second;
  record.lambda = now - record.last_arrival;
  record.has_lambda = true;
  record.last_arrival = now;
  return record.label;
}

std::optional<datagen::FileClass> ClassificationDatabase::peek(
    const net::FlowId& id) const {
  util::MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second.label;
}

void ClassificationDatabase::insert(const net::FlowId& id,
                                    datagen::FileClass label, double now) {
  Record record;
  record.label = label;
  record.last_arrival = now;
  record.created_at = now;
  record.lambda = options_.default_lambda;
  record.has_lambda = false;
  util::MutexLock lock(mu_);
  records_[id] = record;
  ++stats_.inserts;
  ++inserts_since_purge_;
}

void ClassificationDatabase::remove_on_close(const net::FlowId& id) {
  if (!options_.fin_rst_removal_enabled) return;
  // FIN/RST teardown on the fast path: same uncontended per-shard lock
  // as lookup(), plus the freed hash node on erase.
  util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block, unresolved-call)
  util::MutexLock lock(mu_);
  if (records_.erase(id) > 0) ++stats_.fin_rst_removals;
}

void ClassificationDatabase::maybe_purge(double now) {
  if (!options_.inactivity_purge_enabled) return;
  util::MutexLock lock(mu_);
  if (inserts_since_purge_ < options_.purge_trigger_flows) return;
  purge_locked(now);
  inserts_since_purge_ = 0;
}

std::size_t ClassificationDatabase::purge(double now) {
  util::MutexLock lock(mu_);
  return purge_locked(now);
}

std::size_t ClassificationDatabase::purge_locked(double now) {
  if (!options_.inactivity_purge_enabled) return 0;
  ++stats_.purge_runs;
  const std::size_t size_before = records_.size();
  std::size_t inactive = 0;
  std::size_t stale = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    const Record& record = it->second;
    const double lambda =
        record.has_lambda ? record.lambda : options_.default_lambda;
    if (now - record.last_arrival >
        options_.inactivity_coefficient * lambda) {
      it = records_.erase(it);
      ++inactive;
    } else if (options_.reclassify_after_seconds > 0.0 &&
               now - record.created_at > options_.reclassify_after_seconds) {
      // Section 4.6: force periodic reclassification of long-lived flows.
      it = records_.erase(it);
      ++stale;
    } else {
      ++it;
    }
  }
  stats_.inactivity_removals += inactive;
  stats_.reclassification_removals += stale;
  DCHECK_EQ(size_before, records_.size() + inactive + stale)
      << "purge must account for every removed record";
  return inactive + stale;
}

std::size_t ClassificationDatabase::size() const {
  util::MutexLock lock(mu_);
  return records_.size();
}

CdbStats ClassificationDatabase::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace iustitia::core
