// SHA-1 implementation (FIPS 180-4).
//
// Iustitia uses SHA-1 to derive 160-bit flow identifiers from packet headers,
// exactly as the paper does (Section 4.5).  The digest is used purely as a
// wide hash for the Classification Database; it carries no security claim
// here.  The implementation is self-contained and tested against the FIPS
// 180-2 example vectors.
//
// The compression function is selected once at startup: on x86-64 hosts
// whose cpuid reports the SHA extensions it runs via SHA-NI intrinsics,
// otherwise via the portable 80-round loop — both produce bit-identical
// digests.  The one-shot sha1() additionally special-cases messages of
// <= 55 bytes (everything flow_id hashes) into a single stack-built
// padded block, skipping the incremental buffer entirely.
#ifndef IUSTITIA_UTIL_SHA1_H_
#define IUSTITIA_UTIL_SHA1_H_

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace iustitia::util {

// A 160-bit SHA-1 digest.
struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  // First 8 bytes interpreted big-endian; convenient for hash-table keys.
  std::uint64_t prefix64() const noexcept;

  // Lowercase hex string, 40 characters.
  std::string hex() const;

  friend bool operator==(const Sha1Digest&, const Sha1Digest&) = default;
};

// Incremental SHA-1 hasher.
//
// Usage:
//   Sha1 h;
//   h.update(buf1);
//   h.update(buf2);
//   Sha1Digest d = h.digest();   // finalizes a copy; h can keep absorbing
class Sha1 {
 public:
  Sha1() noexcept;

  // Absorbs `data` into the hash state.
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  // Returns the digest of everything absorbed so far without disturbing the
  // ongoing state (finalization happens on an internal copy).
  Sha1Digest digest() const noexcept;

  // Resets to the initial state.
  void reset() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[5];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_;
  std::uint64_t total_len_;
};

// One-shot convenience wrappers.
Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept;
Sha1Digest sha1(std::string_view data) noexcept;

}  // namespace iustitia::util

// Allow Sha1Digest as an unordered_map key.
template <>
struct std::hash<iustitia::util::Sha1Digest> {
  std::size_t operator()(const iustitia::util::Sha1Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};

#endif  // IUSTITIA_UTIL_SHA1_H_
