// Tests for the Markov text model: structural contracts and the English-
// like statistics the text class depends on.
#include "datagen/markov_text.h"

#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "entropy/entropy_vector.h"

namespace iustitia::datagen {
namespace {

TEST(SeedCorpus, IsSubstantialEnglishText) {
  const std::string_view seed = seed_corpus();
  EXPECT_GT(seed.size(), 3000u);
  std::size_t spaces = 0;
  for (const char c : seed) spaces += (c == ' ');
  // Word lengths around 5 => roughly 1/6 of characters are spaces.
  EXPECT_GT(static_cast<double>(spaces) / static_cast<double>(seed.size()),
            0.10);
}

TEST(MarkovText, RejectsDegenerateInputs) {
  EXPECT_THROW(MarkovText("ab", 3), std::invalid_argument);
  EXPECT_THROW(MarkovText("whatever", 0), std::invalid_argument);
}

TEST(MarkovText, GeneratesRequestedLength) {
  util::Rng rng(1);
  const MarkovText& model = MarkovText::english(3);
  for (const std::size_t len : {1u, 10u, 100u, 5000u}) {
    EXPECT_EQ(model.generate(len, rng).size(), len);
  }
}

TEST(MarkovText, DeterministicGivenSeed) {
  util::Rng a(7), b(7);
  const MarkovText& model = MarkovText::english(3);
  EXPECT_EQ(model.generate(500, a), model.generate(500, b));
}

TEST(MarkovText, OutputAlphabetIsSubsetOfCorpusAlphabet) {
  const std::set<char> corpus_chars(seed_corpus().begin(),
                                    seed_corpus().end());
  util::Rng rng(2);
  const std::string text = MarkovText::english(2).generate(3000, rng);
  for (const char c : text) {
    ASSERT_TRUE(corpus_chars.count(c)) << "unexpected char "
                                       << static_cast<int>(c);
  }
}

TEST(MarkovText, OrderThreePreservesTrigramStructure) {
  // Every generated 3-gram context must exist in the corpus (generation
  // only walks observed contexts; restarts also land on observed ones).
  const std::string_view seed = seed_corpus();
  std::set<std::string> contexts;
  for (std::size_t i = 0; i + 3 <= seed.size(); ++i) {
    contexts.insert(std::string(seed.substr(i, 3)));
  }
  util::Rng rng(3);
  const std::string text = MarkovText::english(3).generate(2000, rng);
  std::size_t misses = 0;
  for (std::size_t i = 0; i + 3 <= text.size(); ++i) {
    if (!contexts.count(text.substr(i, 3))) ++misses;
  }
  EXPECT_EQ(misses, 0u);
}

TEST(MarkovText, EntropyInEnglishBand) {
  // Natural English byte entropy h_1 sits near 4.2 bits/byte = 0.52
  // normalized; the Markov output must land in a believable band, far
  // below binary (~0.75+) and encrypted (~1.0).
  util::Rng rng(4);
  const std::string text = MarkovText::english(3).generate(16384, rng);
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  const int widths[] = {1};
  const double h1 = entropy::entropy_vector(bytes, widths)[0];
  EXPECT_GT(h1, 0.40);
  EXPECT_LT(h1, 0.62);
}

TEST(MarkovText, ContextCountReflectsCorpus) {
  const MarkovText model(seed_corpus(), 2);
  EXPECT_GT(model.context_count(), 200u);
  EXPECT_EQ(model.order(), 2);
}

TEST(RandomWord, LengthBoundsAndAlphabet) {
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const std::string word = random_word(rng, 3, 10);
    ASSERT_GE(word.size(), 3u);
    ASSERT_LE(word.size(), 10u);
    for (const char c : word) {
      ASSERT_TRUE(std::islower(static_cast<unsigned char>(c)));
    }
  }
}

}  // namespace
}  // namespace iustitia::datagen
