# Empty compiler generated dependencies file for test_cdb.
# This may be replaced when dependencies are built.
