// Tests for the offline trainer: the three training methods of Section 4.3
// and dataset construction invariants.
#include "core/trainer.h"

#include <algorithm>
#include <set>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/corpus.h"

namespace iustitia::core {
namespace {

using datagen::CorpusOptions;
using datagen::FileClass;

std::vector<datagen::FileSample> tiny_corpus(std::uint64_t seed = 17) {
  CorpusOptions options;
  options.files_per_class = 15;
  options.min_size = 2048;
  options.max_size = 4096;
  options.seed = seed;
  return datagen::build_corpus(options);
}

TEST(TrainingMethodName, AllMethods) {
  EXPECT_STREQ(training_method_name(TrainingMethod::kWholeFile), "H_F");
  EXPECT_STREQ(training_method_name(TrainingMethod::kFirstBytes), "H_b");
  EXPECT_STREQ(training_method_name(TrainingMethod::kRandomOffset), "H_b'");
}

TEST(TrainingFeatures, WholeFileUsesEverything) {
  TrainerOptions options;
  options.method = TrainingMethod::kWholeFile;
  options.widths = {1};
  util::Rng rng(1);
  // First half 'a', second half random: whole-file entropy is well above
  // the first-b entropy.
  std::vector<std::uint8_t> bytes(4096, 'a');
  util::Rng fill(2);
  for (std::size_t i = 2048; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(fill.next_below(256));
  }
  const auto whole = training_features(bytes, options, rng);
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = 512;
  const auto prefix = training_features(bytes, options, rng);
  EXPECT_GT(whole[0], prefix[0] + 0.2);
  EXPECT_NEAR(prefix[0], 0.0, 1e-12);  // first 512 bytes are all 'a'
}

TEST(TrainingFeatures, FirstBytesHandlesShortInput) {
  TrainerOptions options;
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = 1024;
  options.widths = {1, 2};
  util::Rng rng(3);
  const std::vector<std::uint8_t> bytes{'a', 'b', 'c'};
  const auto features = training_features(bytes, options, rng);
  EXPECT_EQ(features.size(), 2u);  // no crash, degenerate but defined
}

TEST(TrainingFeatures, RandomOffsetStaysWithinThreshold) {
  TrainerOptions options;
  options.method = TrainingMethod::kRandomOffset;
  options.buffer_size = 64;
  options.header_threshold = 512;
  options.widths = {1};
  // Bytes: offset i has value i/64, so the feature reveals which window
  // was chosen; verify the window never starts beyond T.
  std::vector<std::uint8_t> bytes(2048);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>(i / 64);
  }
  util::Rng rng(4);
  std::set<double> distinct;
  for (int trial = 0; trial < 50; ++trial) {
    distinct.insert(training_features(bytes, options, rng)[0]);
  }
  // Multiple distinct windows must have been sampled.
  EXPECT_GT(distinct.size(), 3u);
}

TEST(TrainingFeatures, RandomOffsetZeroThresholdEqualsFirstBytes) {
  TrainerOptions random_options;
  random_options.method = TrainingMethod::kRandomOffset;
  random_options.buffer_size = 128;
  random_options.header_threshold = 0;
  random_options.widths = {1, 3};
  TrainerOptions first_options = random_options;
  first_options.method = TrainingMethod::kFirstBytes;

  util::Rng fill(5);
  std::vector<std::uint8_t> bytes(1024);
  fill.fill_bytes(bytes);
  util::Rng rng_a(6), rng_b(6);
  EXPECT_EQ(training_features(bytes, random_options, rng_a),
            training_features(bytes, first_options, rng_b));
}

TEST(BuildEntropyDataset, OneRowPerFileWithMatchingLabels) {
  const auto corpus = tiny_corpus();
  TrainerOptions options;
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = 128;
  options.widths = entropy::svm_preferred_widths();
  const ml::Dataset data = build_entropy_dataset(corpus, options);
  ASSERT_EQ(data.size(), corpus.size());
  EXPECT_EQ(data.feature_count(), options.widths.size());
  EXPECT_EQ(data.num_classes(), datagen::kNumClasses);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(data[i].label, static_cast<int>(corpus[i].label));
  }
}

TEST(BuildEntropyDataset, DeterministicForSeed) {
  const auto corpus = tiny_corpus();
  TrainerOptions options;
  options.method = TrainingMethod::kRandomOffset;
  options.header_threshold = 256;
  options.buffer_size = 64;
  options.widths = {1, 2};
  options.seed = 99;
  const ml::Dataset a = build_entropy_dataset(corpus, options);
  const ml::Dataset b = build_entropy_dataset(corpus, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].features, b[i].features);
  }
}

TEST(TrainModel, EntropyVectorsSeparateClassesWell) {
  // Core sanity: a CART trained on H_b vectors must beat chance by a wide
  // margin on a held-out corpus drawn from the same generators.
  const auto train_corpus = tiny_corpus(17);
  const auto test_corpus = tiny_corpus(18);
  TrainerOptions options;
  options.backend = Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = 512;
  FlowNatureModel model = train_model(train_corpus, options);

  std::size_t correct = 0;
  for (const auto& file : test_corpus) {
    const std::span<const std::uint8_t> prefix(
        file.bytes.data(), std::min<std::size_t>(512, file.bytes.size()));
    correct += (model.classify(prefix).label == file.label);
  }
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(test_corpus.size()),
            0.66);
}

}  // namespace
}  // namespace iustitia::core
