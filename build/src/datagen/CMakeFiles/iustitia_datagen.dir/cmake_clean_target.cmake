file(REMOVE_RECURSE
  "libiustitia_datagen.a"
)
