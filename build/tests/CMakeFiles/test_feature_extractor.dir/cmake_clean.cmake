file(REMOVE_RECURSE
  "CMakeFiles/test_feature_extractor.dir/test_feature_extractor.cc.o"
  "CMakeFiles/test_feature_extractor.dir/test_feature_extractor.cc.o.d"
  "test_feature_extractor"
  "test_feature_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feature_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
