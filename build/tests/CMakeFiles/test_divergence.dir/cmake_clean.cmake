file(REMOVE_RECURSE
  "CMakeFiles/test_divergence.dir/test_divergence.cc.o"
  "CMakeFiles/test_divergence.dir/test_divergence.cc.o.d"
  "test_divergence"
  "test_divergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_divergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
