#include "ml/cross_validation.h"

#include <memory>
#include <span>
#include <stdexcept>

#include "ml/scaler.h"

namespace iustitia::ml {

namespace {

// DagSvm wrapper that scales inputs with a scaler fitted on training data.
class ScaledSvmClassifier final : public Classifier {
 public:
  ScaledSvmClassifier(DagSvm model, MinMaxScaler scaler)
      : model_(std::move(model)), scaler_(std::move(scaler)) {}

  int predict(std::span<const double> features) const override {
    return model_.predict(scaler_.transform(features));
  }
  int num_classes() const override { return model_.num_classes(); }

 private:
  DagSvm model_;
  MinMaxScaler scaler_;
};

}  // namespace

std::vector<ConfusionMatrix> cross_validate(const Dataset& data,
                                            std::size_t folds,
                                            const ModelFactory& factory,
                                            util::Rng& rng) {
  if (folds < 2) throw std::invalid_argument("cross_validate: folds < 2");
  const auto fold_rows = stratified_folds(data, folds, rng);
  std::vector<ConfusionMatrix> out;
  out.reserve(folds);
  for (std::size_t f = 0; f < folds; ++f) {
    const Split split = stratified_fold_split(data, fold_rows, f);
    const std::unique_ptr<Classifier> model = factory(split.train);
    out.push_back(model->evaluate(split.test));
  }
  return out;
}

ConfusionMatrix pool_folds(const std::vector<ConfusionMatrix>& folds) {
  if (folds.empty()) throw std::invalid_argument("pool_folds: empty input");
  ConfusionMatrix pooled(folds.front().num_classes());
  for (const auto& fold : folds) pooled.merge(fold);
  return pooled;
}

ModelFactory make_cart_factory(const CartParams& params) {
  return [params](const Dataset& train) -> std::unique_ptr<Classifier> {
    auto tree = std::make_unique<DecisionTree>();
    tree->train(train, params);
    return tree;
  };
}

ModelFactory make_svm_factory(const SvmParams& params) {
  return [params](const Dataset& train) -> std::unique_ptr<Classifier> {
    MinMaxScaler scaler;
    scaler.fit(train);
    DagSvm model;
    model.train(scaler.transform(train), params);
    return std::make_unique<ScaledSvmClassifier>(std::move(model),
                                                 std::move(scaler));
  };
}

}  // namespace iustitia::ml
