# Empty compiler generated dependencies file for test_dpi.
# This may be replaced when dependencies are built.
