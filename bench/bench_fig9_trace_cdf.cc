// Reproduces Figure 9: cumulative distributions of (a) packet payload size
// and (b) packet inter-arrival time in the gateway trace.
//
// Paper shape: payload sizes are bimodal — more than 50% of data packets
// under 140 bytes and ~20% at the 1480-byte MTU mode; inter-arrival times
// concentrate well below half a second.
#include "appproto/trace_headers.h"
#include "bench/bench_common.h"
#include "net/flow_table.h"
#include "net/trace_gen.h"
#include "util/stats.h"

#include <iostream>
#include <unordered_map>
#include <vector>

namespace iustitia::bench {
namespace {

int run() {
  banner("Fig. 9: payload-size and inter-arrival CDFs of the trace",
         ">50% of payloads < 140B, ~20% at 1480B; inter-arrivals << 0.5s");

  const std::size_t packets = env_size("IUSTITIA_TRACE_PACKETS", 100000);
  net::TraceOptions options;
  options.header_source = appproto::standard_header_source();
  options.target_packets = packets;
  options.seed = 0xF19;
  const net::Trace trace = net::generate_trace(options);

  // Payload sizes of data packets.
  std::vector<double> payload_sizes;
  for (const net::Packet& p : trace.packets) {
    if (p.is_data()) {
      payload_sizes.push_back(static_cast<double>(p.payload.size()));
    }
  }
  const util::EmpiricalCdf payload_cdf(payload_sizes);

  std::cout << "-- Fig. 9(a): payload size CDF (" << payload_sizes.size()
            << " data packets) --\n";
  util::Table size_table({"payload size (B)", "P(X <= x)", ""});
  for (const double x : {20.0, 60.0, 140.0, 300.0, 600.0, 1000.0, 1400.0,
                         1459.0, 1480.0}) {
    const double p = payload_cdf.evaluate(x);
    size_table.add_row({util::fmt(x, 0), util::fmt(p, 3), util::bar(p, 30)});
  }
  size_table.render(std::cout);

  // Per-flow inter-arrival times (gaps between consecutive packets of the
  // same flow, all packet kinds — the quantity lambda' tracks).
  net::FlowTable table(0);
  for (const net::Packet& p : trace.packets) table.add(p);
  std::vector<double> gaps;
  std::unordered_map<net::FlowKey, double, net::FlowKeyHash> last_seen;
  for (const net::Packet& p : trace.packets) {
    const auto it = last_seen.find(p.key);
    if (it != last_seen.end()) gaps.push_back(p.timestamp - it->second);
    last_seen[p.key] = p.timestamp;
  }
  const util::EmpiricalCdf gap_cdf(gaps);

  std::cout << "\n-- Fig. 9(b): packet inter-arrival time CDF ("
            << gaps.size() << " gaps) --\n";
  util::Table gap_table({"inter-arrival (s)", "P(X <= x)", ""});
  for (const double x : {0.001, 0.005, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    const double p = gap_cdf.evaluate(x);
    gap_table.add_row({util::fmt(x, 3), util::fmt(p, 3), util::bar(p, 30)});
  }
  gap_table.render(std::cout);

  const double under_140 = payload_cdf.evaluate(140.0);
  const double at_mtu = 1.0 - payload_cdf.evaluate(1459.0);
  std::cout << "\npaper:    >50% of payloads <= 140B; ~20% at 1460-1480B; "
               "most gaps < 0.5s\n";
  std::cout << "measured: P(size<=140B) = " << util::fmt_percent(under_140)
            << "; P(size>=1460B) = " << util::fmt_percent(at_mtu)
            << "; P(gap<=0.5s) = "
            << util::fmt_percent(gap_cdf.evaluate(0.5)) << '\n';
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
