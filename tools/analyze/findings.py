"""Finding type and the rule registry shared by every analyzer pass.

A Finding's `fingerprint` intentionally excludes the line number: baselines
must survive unrelated edits above a legacy finding.  The `anchor` is a
stable symbol-ish key (include path, Class::method.field, function name)
that, with the rule id and file, identifies "the same" finding across
revisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# rule id -> (short description, SARIF level)
RULES: dict[str, tuple[str, str]] = {
    "layer-violation": (
        "module includes a header its layer is not allowed to depend on",
        "error"),
    "layer-cycle": (
        "include cycle between project headers", "error"),
    "layer-unknown-module": (
        "src/ module missing from the allowed-dependency matrix", "error"),
    "lock-unguarded-access": (
        "guarded field accessed without taking its mutex or declaring "
        "EXCLUSIVE_LOCKS_REQUIRED", "error"),
    "lock-unknown-mutex": (
        "GUARDED_BY names a mutex that is not a member of the class",
        "error"),
    "dead-symbol": (
        "exported symbol never referenced outside its own translation unit",
        "warning"),
    "unused-include": (
        "header included but none of its declarations are used", "warning"),
    "switch-not-exhaustive": (
        "switch over an enum misses enumerators and has no CHECK'd default",
        "error"),
    "check-in-hot-loop": (
        "CHECK (always-on) inside a loop in a hot module; use DCHECK",
        "warning"),
    "lock-held-io": (
        "I/O or blocking call while a MutexLock is live", "error"),
    "lock-order-inversion": (
        "two code paths acquire the same pair of locks in opposite "
        "orders (potential deadlock)", "error"),
    "lock-order-cycle": (
        "cycle in the global lock-acquisition graph (potential deadlock)",
        "error"),
    "atomic-relaxed-publication": (
        "atomic stored with memory_order_relaxed but read with an "
        "acquiring load; the store publishes nothing", "error"),
    "atomic-undocumented-relaxed": (
        "relaxed memory orders used without an `// analyze: atomic(...)` "
        "protocol annotation on the declaration", "error"),
    "atomic-mixed-order": (
        "atomic accessed with several distinct memory orders and no "
        "protocol annotation documenting the pairing", "error"),
    "atomic-default-seqcst": (
        "hot-path atomic relies on defaulted seq_cst for every access",
        "warning"),
    "atomic-annotation-mismatch": (
        "an access violates the atomic protocol declared by its "
        "`// analyze: atomic(...)` annotation", "error"),
    "escape-unguarded-shared": (
        "state reachable from multiple threads is neither atomic nor "
        "GUARDED_BY nor documented with `// analyze: escape(...)`",
        "error"),
    "hotpath-may-allocate": (
        "heap allocation reachable from an `// analyze: hotpath` entry "
        "point", "error"),
    "hotpath-may-block": (
        "lock, wait, sleep, or I/O reachable from an "
        "`// analyze: hotpath` entry point", "error"),
    "hotpath-may-throw": (
        "throw reachable from an `// analyze: hotpath` entry point",
        "error"),
    "hotpath-unresolved-call": (
        "call on a hot path the resolver cannot attribute (virtual, "
        "function pointer, unknown external)", "error"),
    "hotpath-allow-undeclared": (
        "util::rt guard RAII without the matching static hotpath "
        "annotation; runtime and static contracts would diverge",
        "error"),
    "annotation-unknown": (
        "unknown or malformed `// analyze:` annotation; a typo here "
        "silently suppresses a real report", "error"),
}


@dataclass
class Finding:
    rule: str
    path: str      # repo-relative, '/'-separated
    line: int      # 1-based
    message: str
    anchor: str = ""  # stable identity component (symbol, include, ...)
    related: list[tuple[str, int, str]] = field(default_factory=list)

    @property
    def fingerprint(self) -> str:
        return f"{self.rule}:{self.path}:{self.anchor or self.message}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def sort_key(f: Finding) -> tuple:
    return (f.path, f.line, f.rule, f.anchor)
