#include "util/failpoint.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/failpoint_inventory.h"
#include "util/hash.h"
#include "util/rt_guard.h"
#include "util/thread_annotations.h"

namespace iustitia::util {
namespace failpoint_detail {
namespace {

// Fixed default so TSan/ASan chaos runs reproduce without any env setup.
constexpr std::uint64_t kDefaultSeed = 0x1057F417ULL;

constexpr std::uint64_t kSplitMix64Gamma = 0x9E3779B97F4A7C15ULL;

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

// Counter-mode PRNG step (SplitMix64): the stream depends only on the
// seed and the number of prior evaluations, never on wall clock.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += kSplitMix64Gamma;
  return mix64(state);
}

double to_unit(std::uint64_t bits) noexcept {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

struct PointState {
  explicit PointState(std::string name_in) : name(std::move(name_in)) {}

  const std::string name;
  std::atomic<bool> armed{false};  // analyze: atomic(relaxed-flag)
  // Counters are read by snapshot while fire_armed writes them.
  std::atomic<std::uint64_t> evaluations{0};  // analyze: atomic(relaxed-counter)
  std::atomic<std::uint64_t> triggers{0};     // analyze: atomic(relaxed-counter)

  Mutex mu{"PointState::mu"};
  FailpointAction action IUSTITIA_GUARDED_BY(mu) = FailpointAction::kNone;
  double probability IUSTITIA_GUARDED_BY(mu) = 1.0;
  std::uint64_t delay_micros IUSTITIA_GUARDED_BY(mu) = 0;
  std::uint64_t rng IUSTITIA_GUARDED_BY(mu) = 0;
  std::string spec IUSTITIA_GUARDED_BY(mu);
};

namespace {

struct FailpointRegistry {
  // Structurally frozen once global_registry() returns: every inventory
  // name is interned during the thread-safe magic-static construction
  // and configure() rejects names outside the inventory, so the map is
  // never rehashed afterwards.  That makes lookups lock-free — vital
  // because a FAILPOINT site's one-time registration can run under
  // arbitrary caller locks (e.g. the engine shard mutex around
  // cdb.insert), and a registry mutex here would thread those locks
  // into one global order.  Point *contents* are guarded by each
  // point's own mu and the armed atomic.
  std::unordered_map<std::string, std::unique_ptr<PointState>> points;
  std::atomic<std::uint64_t> seed{kDefaultSeed};  // analyze: atomic(relaxed-counter)
};

void reseed_point_locked(PointState& point, std::uint64_t seed)
    IUSTITIA_REQUIRES(point.mu) {
  point.rng = mix64(seed ^ fnv1a(point.name));
}

// Parsed form of one `name=action(...)` entry, applied only after the
// whole spec validates.
struct ParsedEntry {
  PointState* point = nullptr;
  FailpointAction action = FailpointAction::kNone;
  double probability = 1.0;
  std::uint64_t delay_micros = 0;
  std::string spec;
};

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_double(std::string_view s, double* out) {
  const std::string buf(s);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size() || buf.empty()) return false;
  *out = value;
  return true;
}

// "50us" | "10ms" | "2s" -> microseconds.
bool parse_duration(std::string_view s, std::uint64_t* out) {
  std::size_t i = 0;
  std::uint64_t value = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    value = value * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  if (i == 0) return false;
  const std::string_view unit = s.substr(i);
  if (unit == "us") {
    *out = value;
  } else if (unit == "ms") {
    *out = value * 1000;
  } else if (unit == "s") {
    *out = value * 1'000'000;
  } else {
    return false;
  }
  return true;
}

// Splits "action(arg1[,arg2])" and fills the entry; returns an error
// string or "".
std::string parse_action(std::string_view text, ParsedEntry* entry) {
  std::string_view head = text;
  std::string_view args;
  const std::size_t open = text.find('(');
  if (open != std::string_view::npos) {
    if (text.back() != ')') {
      return "missing ')' in '" + std::string(text) + "'";
    }
    head = trim(text.substr(0, open));
    args = trim(text.substr(open + 1, text.size() - open - 2));
  }
  const auto split_args = [&args](std::string_view* a, std::string_view* b) {
    const std::size_t comma = args.find(',');
    if (comma == std::string_view::npos) {
      *a = trim(args);
      *b = {};
      return;
    }
    *a = trim(args.substr(0, comma));
    *b = trim(args.substr(comma + 1));
  };
  std::string_view first;
  std::string_view second;
  split_args(&first, &second);

  if (head == "error" || head == "alloc-fail") {
    entry->action =
        head == "error" ? FailpointAction::kError : FailpointAction::kAllocFail;
    if (!second.empty()) {
      return "too many arguments in '" + std::string(text) + "'";
    }
    if (!first.empty() && !parse_double(first, &entry->probability)) {
      return "bad probability '" + std::string(first) + "'";
    }
  } else if (head == "delay" || head == "stall") {
    entry->action =
        head == "delay" ? FailpointAction::kDelay : FailpointAction::kStall;
    if (first.empty() || !parse_duration(first, &entry->delay_micros)) {
      return "bad duration in '" + std::string(text) +
             "' (want e.g. delay(50us))";
    }
    if (!second.empty() && !parse_double(second, &entry->probability)) {
      return "bad probability '" + std::string(second) + "'";
    }
  } else if (head == "off") {
    entry->action = FailpointAction::kNone;
  } else {
    return "unknown action '" + std::string(head) + "'";
  }
  if (entry->probability < 0.0 || entry->probability > 1.0) {
    return "probability out of [0,1] in '" + std::string(text) + "'";
  }
  entry->spec = entry->action == FailpointAction::kNone ? "" : std::string(text);
  return "";
}

PointState* find_point(const FailpointRegistry& registry,
                       std::string_view name) {
  // Lock-free: the map is frozen after construction (see the struct
  // comment), so concurrent lookups never race a mutation.
  const auto it = registry.points.find(std::string(name));
  return it == registry.points.end() ? nullptr : it->second.get();
}

// Validates the whole spec first, then applies entry by entry, taking
// only the per-point mutexes.
std::string configure(FailpointRegistry& registry, std::string_view spec) {
  std::vector<ParsedEntry> entries;
  bool disarm_all = false;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    std::string_view item = trim(rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (item.empty()) continue;
    if (item == "off") {
      disarm_all = true;
      continue;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      return "failpoints: missing '=' in '" + std::string(item) + "'";
    }
    const std::string_view name = trim(item.substr(0, eq));
    const std::string_view action = trim(item.substr(eq + 1));
    ParsedEntry entry;
    entry.point = find_point(registry, name);
    if (entry.point == nullptr) {
      return "failpoints: unknown point '" + std::string(name) +
             "' (not in kFailpointInventory)";
    }
    std::string error = parse_action(action, &entry);
    if (!error.empty()) return "failpoints: " + error;
    entries.push_back(std::move(entry));
  }
  const std::uint64_t seed = registry.seed.load(std::memory_order_relaxed);
  if (disarm_all) {
    for (const auto& [_, owned] : registry.points) {
      PointState* point = owned.get();
      MutexLock lock(point->mu);
      point->action = FailpointAction::kNone;
      point->spec.clear();
      point->armed.store(false, std::memory_order_relaxed);
    }
  }
  for (ParsedEntry& entry : entries) {
    MutexLock lock(entry.point->mu);
    entry.point->action = entry.action;
    entry.point->probability = entry.probability;
    entry.point->delay_micros = entry.delay_micros;
    entry.point->spec = std::move(entry.spec);
    reseed_point_locked(*entry.point, seed);
    entry.point->armed.store(entry.action != FailpointAction::kNone,
                             std::memory_order_relaxed);
  }
  return "";
}

FailpointRegistry& global_registry() {
  // Interns the whole inventory up front so configure() can arm points
  // whose code path has not run yet, then applies the env spec once.
  // Leaked by design: failpoint handles are function-local statics in
  // arbitrary TUs, so a destructing registry could be torn down before
  // the last fire() on an exit path.
  static FailpointRegistry* const registry = [] {
    auto* r = new FailpointRegistry;  // NOLINT(no-owning-new): intentionally immortal
    if (const char* seed_env = std::getenv("IUSTITIA_FAILPOINT_SEED")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(seed_env, &end, 0);
      if (end != seed_env && *end == '\0') {
        r->seed.store(parsed, std::memory_order_relaxed);
      }
    }
    // Single-threaded by the magic-static guarantee; the map never
    // changes again after this loop.
    for (const char* name : kFailpointInventory) {
      r->points.emplace(name, std::make_unique<PointState>(name));
    }
    if (const char* spec = std::getenv("IUSTITIA_FAILPOINTS")) {
      const std::string error = configure(*r, spec);
      CHECK(error.empty()) << "IUSTITIA_FAILPOINTS: " << error;
    }
    return r;
  }();
  return *registry;
}

}  // namespace

PointState* register_point(std::string_view name) {
  // One-time per call site (function-local static in FAILPOINT); the
  // registry lookup allocates a lookup key and takes the registry
  // mutex, which is why first evaluation inside a guard region needs
  // the allowance below.
  rt::AllowScope allow(rt::kAlloc | rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block)
  PointState* point = find_point(global_registry(), name);
  // NOLINTNEXTLINE(failpoint-inventory): diagnostic text, not a call site.
  CHECK(point != nullptr) << "FAILPOINT(\"" << std::string(name)
                          << "\") is not in kFailpointInventory "
                             "(src/util/failpoint_inventory.h)";
  return point;
}

std::atomic<bool>& armed_flag(PointState* state) noexcept {
  return state->armed;
}

FailpointAction fire_armed(PointState* state) noexcept {
  // Armed failpoints lock and (for delay/stall) sleep — that is their
  // purpose.  Only runs that explicitly arm a point pay this cost; the
  // disarmed fast path in Failpoint::fire stays effect-free.
  rt::AllowScope allow(rt::kAlloc | rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block)
  state->evaluations.fetch_add(1, std::memory_order_relaxed);
  FailpointAction action = FailpointAction::kNone;
  std::uint64_t delay_micros = 0;
  {
    MutexLock lock(state->mu);
    if (state->action == FailpointAction::kNone) return FailpointAction::kNone;
    if (to_unit(splitmix64(state->rng)) >= state->probability) {
      return FailpointAction::kNone;
    }
    action = state->action;
    delay_micros = state->delay_micros;
  }
  state->triggers.fetch_add(1, std::memory_order_relaxed);
  if ((action == FailpointAction::kDelay ||
       action == FailpointAction::kStall) &&
      delay_micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_micros));  // analyze: hotpath-allow(may-block)
  }
  return action;
}

}  // namespace failpoint_detail

std::string failpoints_configure(std::string_view spec) {
  return failpoint_detail::configure(failpoint_detail::global_registry(), spec);
}

void failpoints_disarm_all() {
  const std::string error = failpoints_configure("off");
  DCHECK(error.empty()) << error;
}

std::vector<FailpointInfo> failpoints_snapshot() {
  auto& registry = failpoint_detail::global_registry();
  std::vector<FailpointInfo> infos;
  infos.reserve(registry.points.size());
  for (const auto& [_, owned] : registry.points) {
    failpoint_detail::PointState* point = owned.get();
    FailpointInfo info;
    info.name = point->name;
    info.armed = point->armed.load(std::memory_order_relaxed);
    info.evaluations = point->evaluations.load(std::memory_order_relaxed);
    info.triggers = point->triggers.load(std::memory_order_relaxed);
    {
      MutexLock lock(point->mu);
      info.spec = point->spec;
    }
    infos.push_back(std::move(info));
  }
  std::sort(infos.begin(), infos.end(),
            [](const FailpointInfo& a, const FailpointInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

void failpoints_set_seed(std::uint64_t seed) {
  failpoint_detail::global_registry().seed.store(seed,
                                                 std::memory_order_relaxed);
}

}  // namespace iustitia::util
