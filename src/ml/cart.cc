#include "ml/cart.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.h"

namespace iustitia::ml {

namespace {

// Evaluates a classifier's plain accuracy on a dataset without materializing
// a confusion matrix.
double tree_accuracy(const DecisionTree& tree, const Dataset& data) {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& s : data.samples()) {
    if (tree.predict(s.features) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace

ConfusionMatrix Classifier::evaluate(const Dataset& data) const {
  ConfusionMatrix matrix(std::max(num_classes(), 1));
  for (const auto& s : data.samples()) {
    matrix.add(s.label, predict(s.features));
  }
  return matrix;
}

double gini_impurity(std::span<const std::size_t> class_counts) noexcept {
  std::size_t total = 0;
  for (const std::size_t c : class_counts) total += c;
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (const std::size_t c : class_counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double entropy_impurity(std::span<const std::size_t> class_counts) noexcept {
  std::size_t total = 0;
  for (const std::size_t c : class_counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const std::size_t c : class_counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

double impurity(std::span<const std::size_t> class_counts,
                SplitCriterion criterion) noexcept {
  return criterion == SplitCriterion::kGini
             ? gini_impurity(class_counts)
             : entropy_impurity(class_counts);
}

void DecisionTree::train(const Dataset& data, const CartParams& params) {
  if (data.empty()) {
    throw std::invalid_argument("DecisionTree::train: empty dataset");
  }
  nodes_.clear();
  num_classes_ = data.num_classes();
  feature_count_ = data.feature_count();
  std::vector<std::size_t> rows(data.size());
  for (std::size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  build_node(data, rows, 0, params);
}

int DecisionTree::build_node(const Dataset& data,
                             std::vector<std::size_t>& rows, std::size_t depth,
                             const CartParams& params) {
  const auto k = static_cast<std::size_t>(num_classes_);
  std::vector<std::size_t> counts(k, 0);
  for (const std::size_t r : rows) {
    DCHECK_LT(r, data.size());
    DCHECK_LT(static_cast<std::size_t>(data[r].label), k)
        << "sample label outside the dataset's class range";
    ++counts[static_cast<std::size_t>(data[r].label)];
  }

  Node node;
  node.samples = rows.size();
  node.impurity = impurity(counts, params.criterion);
  std::size_t best_count = 0;
  for (std::size_t c = 0; c < k; ++c) {
    if (counts[c] > best_count) {
      best_count = counts[c];
      node.label = static_cast<int>(c);
    }
  }
  node.errors = rows.size() - best_count;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  const bool stop = depth >= params.max_depth ||
                    rows.size() < params.min_samples_split ||
                    node.impurity <= 0.0;
  if (stop) return node_index;

  // Exhaustive best-split search: for each feature, sort rows by value and
  // scan candidate thresholds between distinct values.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = params.min_gini_gain;
  const double parent_impurity = node.impurity;
  const double n_total = static_cast<double>(rows.size());

  std::vector<std::pair<double, int>> column(rows.size());
  std::vector<std::size_t> left_counts(k);
  for (std::size_t f = 0; f < data.feature_count(); ++f) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      column[i] = {data[rows[i]].features[f], data[rows[i]].label};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;

    std::fill(left_counts.begin(), left_counts.end(), 0);
    std::vector<std::size_t> right_counts = counts;
    for (std::size_t i = 0; i + 1 < column.size(); ++i) {
      const auto label = static_cast<std::size_t>(column[i].second);
      ++left_counts[label];
      --right_counts[label];
      if (column[i].first == column[i + 1].first) continue;
      const std::size_t n_left = i + 1;
      const std::size_t n_right = column.size() - n_left;
      if (n_left < params.min_samples_leaf ||
          n_right < params.min_samples_leaf) {
        continue;
      }
      const double gain =
          parent_impurity -
          (static_cast<double>(n_left) / n_total) *
              impurity(left_counts, params.criterion) -
          (static_cast<double>(n_right) / n_total) *
              impurity(right_counts, params.criterion);
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return node_index;

  std::vector<std::size_t> left_rows, right_rows;
  left_rows.reserve(rows.size());
  right_rows.reserve(rows.size());
  for (const std::size_t r : rows) {
    const double v = data[r].features[static_cast<std::size_t>(best_feature)];
    (v <= best_threshold ? left_rows : right_rows).push_back(r);
  }
  if (left_rows.empty() || right_rows.empty()) return node_index;

  rows.clear();
  rows.shrink_to_fit();  // free before recursing

  const int left = build_node(data, left_rows, depth + 1, params);
  const int right = build_node(data, right_rows, depth + 1, params);
  // Children are appended after their parent, so the stored split indices
  // must point strictly forward into the node vector.
  DCHECK_GT(left, node_index);
  DCHECK_GT(right, node_index);
  DCHECK_LT(static_cast<std::size_t>(left), nodes_.size());
  DCHECK_LT(static_cast<std::size_t>(right), nodes_.size());
  nodes_[static_cast<std::size_t>(node_index)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_index)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(node_index)].left = left;
  nodes_[static_cast<std::size_t>(node_index)].right = right;
  return node_index;
}

int DecisionTree::predict(std::span<const double> features) const {
  if (nodes_.empty()) {
    throw std::logic_error("DecisionTree::predict: untrained model");
  }
  CHECK_GE(features.size(), feature_count_)
      << "feature vector narrower than the trained arity";
  std::size_t index = 0;
  for (;;) {
    DCHECK_LT(index, nodes_.size()) << "split index escaped the node vector";
    const Node& node = nodes_[index];
    if (node.feature < 0) return node.label;
    DCHECK_LT(static_cast<std::size_t>(node.feature), feature_count_);
    const double v = features[static_cast<std::size_t>(node.feature)];
    index = static_cast<std::size_t>(v <= node.threshold ? node.left
                                                         : node.right);
  }
}

std::size_t DecisionTree::leaf_count() const noexcept {
  std::size_t leaves = 0;
  for (const auto& node : nodes_) leaves += (node.feature < 0);
  return leaves;
}

std::size_t DecisionTree::depth() const noexcept {
  if (nodes_.empty()) return 0;
  // Iterative depth computation over the flat representation.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t max_depth = 0;
  while (!stack.empty()) {
    const auto [index, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[index];
    if (node.feature >= 0) {
      stack.emplace_back(static_cast<std::size_t>(node.left), d + 1);
      stack.emplace_back(static_cast<std::size_t>(node.right), d + 1);
    }
  }
  return max_depth;
}

bool DecisionTree::prune_weakest_link() {
  if (nodes_.empty() || nodes_[0].feature < 0) return false;

  // For every internal node t: alpha = (R(t) - R(T_t)) / (leaves(T_t) - 1),
  // where R is training misclassification count; collapse the minimizer.
  struct SubtreeInfo {
    std::size_t leaf_errors = 0;
    std::size_t leaves = 0;
  };
  std::vector<SubtreeInfo> info(nodes_.size());

  // Nodes were appended in preorder, so children always follow parents;
  // a reverse sweep computes subtree aggregates bottom-up.
  for (std::size_t i = nodes_.size(); i-- > 0;) {
    const Node& node = nodes_[i];
    if (node.feature < 0) {
      info[i] = {node.errors, 1};
    } else {
      const auto l = static_cast<std::size_t>(node.left);
      const auto r = static_cast<std::size_t>(node.right);
      info[i] = {info[l].leaf_errors + info[r].leaf_errors,
                 info[l].leaves + info[r].leaves};
    }
  }

  double best_alpha = std::numeric_limits<double>::infinity();
  std::size_t best_node = 0;
  bool found = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].feature < 0) continue;
    const double r_collapsed = static_cast<double>(nodes_[i].errors);
    const double r_subtree = static_cast<double>(info[i].leaf_errors);
    const double leaves = static_cast<double>(info[i].leaves);
    const double alpha = (r_collapsed - r_subtree) / std::max(1.0, leaves - 1.0);
    if (!found || alpha < best_alpha) {
      best_alpha = alpha;
      best_node = i;
      found = true;
    }
  }
  if (!found) return false;

  // Collapse into a leaf, then compact away the now-unreachable subtree so
  // node/leaf counts and later alpha computations stay exact.
  nodes_[best_node].feature = -1;
  nodes_[best_node].left = -1;
  nodes_[best_node].right = -1;
  compact();
  return true;
}

void DecisionTree::compact() {
  if (nodes_.empty()) return;
  std::vector<Node> kept;
  // Reserve up front: parent_slot pointers point into `kept`, which must
  // therefore never reallocate during the rebuild (size only shrinks).
  kept.reserve(nodes_.size());
  // Preorder DFS rebuild, preserving the children-follow-parents layout
  // that prune_weakest_link's reverse sweep depends on.
  struct Frame {
    std::size_t old_index;
    int* parent_slot;  // where to write the new index, or nullptr for root
  };
  std::vector<Frame> stack{{0, nullptr}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const int new_index = static_cast<int>(kept.size());
    if (frame.parent_slot != nullptr) *frame.parent_slot = new_index;
    kept.push_back(nodes_[frame.old_index]);
    Node& node = kept.back();
    if (node.feature >= 0) {
      // Right is pushed first so left is visited (and appended) first.
      stack.push_back({static_cast<std::size_t>(node.right), &node.right});
      stack.push_back({static_cast<std::size_t>(node.left), &node.left});
    }
  }
  nodes_ = std::move(kept);
}

std::size_t DecisionTree::prune_to_accuracy(const Dataset& validation,
                                            double max_drop) {
  const double baseline = tree_accuracy(*this, validation);
  std::size_t steps = 0;
  for (;;) {
    const DecisionTree backup = *this;
    if (!prune_weakest_link()) break;
    if (tree_accuracy(*this, validation) < baseline - max_drop) {
      *this = backup;  // undo the step that crossed the threshold
      break;
    }
    ++steps;
  }
  return steps;
}

std::vector<std::size_t> DecisionTree::features_used() const {
  std::vector<bool> used(feature_count_, false);
  // Walk only reachable nodes (pruned subtrees stay in the vector).
  if (!nodes_.empty()) {
    std::vector<std::size_t> stack{0};
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      const Node& node = nodes_[i];
      if (node.feature >= 0) {
        used[static_cast<std::size_t>(node.feature)] = true;
        stack.push_back(static_cast<std::size_t>(node.left));
        stack.push_back(static_cast<std::size_t>(node.right));
      }
    }
  }
  std::vector<std::size_t> out;
  for (std::size_t f = 0; f < used.size(); ++f) {
    if (used[f]) out.push_back(f);
  }
  return out;
}

std::vector<double> DecisionTree::feature_importance() const {
  std::vector<double> importance(feature_count_, 0.0);
  if (nodes_.empty()) return importance;
  const double n_root = static_cast<double>(nodes_[0].samples);
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t i = stack.back();
    stack.pop_back();
    const Node& node = nodes_[i];
    if (node.feature < 0) continue;
    const auto l = static_cast<std::size_t>(node.left);
    const auto r = static_cast<std::size_t>(node.right);
    const double n = static_cast<double>(node.samples);
    const double nl = static_cast<double>(nodes_[l].samples);
    const double nr = static_cast<double>(nodes_[r].samples);
    const double gain = node.impurity - (nl / n) * nodes_[l].impurity -
                        (nr / n) * nodes_[r].impurity;
    importance[static_cast<std::size_t>(node.feature)] +=
        (n / n_root) * std::max(0.0, gain);
    stack.push_back(l);
    stack.push_back(r);
  }
  double total = 0.0;
  for (const double v : importance) total += v;
  if (total > 0.0) {
    for (double& v : importance) v /= total;
  }
  return importance;
}

void DecisionTree::restore(std::vector<Node> nodes, int num_classes,
                           std::size_t feature_count) {
  nodes_ = std::move(nodes);
  num_classes_ = num_classes;
  feature_count_ = feature_count;
}

}  // namespace iustitia::ml
