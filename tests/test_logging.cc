// Leveled-logger behavior: level plumbing, filtering, and the stream
// macros that the rest of the codebase logs through.
#include "util/logging.h"

#include <gtest/gtest.h>

namespace iustitia::util {
namespace {

// Restores the process-global level after each test so test order does
// not matter.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }

 private:
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, SetLevelRoundTrips) {
  for (const LogLevel level : {LogLevel::kError, LogLevel::kWarn,
                               LogLevel::kInfo, LogLevel::kDebug}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST_F(LoggingTest, FilteredLinesAreCheap) {
  set_log_level(LogLevel::kError);
  // log_line must early-return for levels above the threshold; this is
  // the hot-path contract the stream macros rely on.
  for (int i = 0; i < 1000; ++i) {
    log_line(LogLevel::kDebug, "suppressed");
  }
  SUCCEED();
}

TEST_F(LoggingTest, StreamMacrosEmitWithoutCrashing) {
  set_log_level(LogLevel::kDebug);
  IUSTITIA_LOG_ERROR << "error line " << 1;
  IUSTITIA_LOG_WARN << "warn line " << 2.5;
  IUSTITIA_LOG_INFO << "info line " << "three";
  IUSTITIA_LOG_DEBUG << "debug line " << 'x';
}

TEST_F(LoggingTest, DebugMessagesSuppressedAtWarn) {
  set_log_level(LogLevel::kWarn);
  // The LogMessage destructor routes through log_line, so this must be
  // filtered, not printed; there is no observable side effect to assert
  // beyond not crashing and the level staying put.
  IUSTITIA_LOG_DEBUG << "should not appear";
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace iustitia::util
