file(REMOVE_RECURSE
  "libiustitia_bench_common.a"
)
