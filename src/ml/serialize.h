// Text serialization of trained models.
//
// The offline training process of Fig. 1 produces a "Decision Tree Model"
// or "Support Vectors (SVs)" artifact consumed by the online classifier;
// these helpers persist both in a line-oriented text format that is stable
// across platforms and easy to diff.
#ifndef IUSTITIA_ML_SERIALIZE_H_
#define IUSTITIA_ML_SERIALIZE_H_

#include <iosfwd>

#include "ml/cart.h"
#include "ml/scaler.h"
#include "ml/svm.h"

namespace iustitia::ml {

// Decision tree <-> stream.  Throws std::runtime_error on malformed input.
void save_tree(const DecisionTree& tree, std::ostream& os);
DecisionTree load_tree(std::istream& is);

// DAGSVM <-> stream.
void save_dag_svm(const DagSvm& model, std::ostream& os);
DagSvm load_dag_svm(std::istream& is);

// Min-max scaler <-> stream.
void save_scaler(const MinMaxScaler& scaler, std::ostream& os);
MinMaxScaler load_scaler(std::istream& is);

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_SERIALIZE_H_
