# Empty dependencies file for bench_fig8_cdb.
# This may be replaced when dependencies are built.
