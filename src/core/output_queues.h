// Per-nature output queues: the LQ blocks of Fig. 1.
//
// After classification, the flow splitter forwards each packet to the
// queue of its class, where a downstream consumer (QoS scheduler, IDS
// engine, logger) drains it.  Queues are bounded; a full queue drops, and
// drop counters per class expose the back-pressure a prioritization
// policy would act on.
//
// Thread safety: fully synchronized.  Shards may enqueue concurrently while
// consumers drain — the natural deployment once ShardedIustitia fans flows
// out across cores.  All state is guarded by one mutex (uncontended in the
// single-threaded experiments, so the lock is noise there).
#ifndef IUSTITIA_CORE_OUTPUT_QUEUES_H_
#define IUSTITIA_CORE_OUTPUT_QUEUES_H_

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>

#include "datagen/corpus.h"
#include "net/packet.h"
#include "util/thread_annotations.h"

namespace iustitia::core {

// A queued unit: the packet plus the label it was routed under.
struct QueuedPacket {
  net::Packet packet;
  datagen::FileClass label = datagen::FileClass::kText;
};

// Point-in-time counters for all three class queues, indexed by
// static_cast<std::size_t>(datagen::FileClass).  Taken atomically under
// the queue lock, so the per-class values are mutually consistent.
struct OutputQueueStats {
  std::array<std::uint64_t, 3> enqueued{};
  std::array<std::uint64_t, 3> dropped{};
  std::array<std::size_t, 3> depth{};
  std::array<std::size_t, 3> high_water{};  // max depth ever reached
};

class OutputQueues {
 public:
  // `capacity` bounds each class queue (packets); 0 means unbounded.
  explicit OutputQueues(std::size_t capacity = 4096) : capacity_(capacity) {}

  // Enqueues to the class queue; returns false (and counts a drop) when
  // the queue is full.
  bool enqueue(datagen::FileClass label, net::Packet packet);

  // Batched enqueue: one lock acquisition for the whole span (the
  // output-side leg of the runtime's burst protocol, DESIGN.md §10).
  // Each element is accepted into its class queue or refused under
  // exactly enqueue()'s rules and counters.  Accepted packets are moved
  // out of `batch`; refused ones are left intact so the caller can
  // retire their payloads outside the queue lock.  Returns the number
  // accepted.
  std::size_t enqueue_burst(std::span<QueuedPacket> batch);

  // Pops the oldest packet of one class, if any.
  std::optional<QueuedPacket> dequeue(datagen::FileClass label);

  // Strict-priority dequeue across classes: highest-priority non-empty
  // queue first, in the order given (e.g. encrypted > binary > text for
  // the paper's bank scenario).  The scan is atomic: no concurrently
  // enqueued higher-priority packet can be missed mid-scan.
  std::optional<QueuedPacket> dequeue_priority(
      std::span<const datagen::FileClass> priority_order);

  // Empties every class queue (shutdown path: the consumers are gone and
  // whatever is still enqueued will never be drained).  Returns the number
  // of packets discarded.  Counters and high-water marks are preserved.
  std::size_t drain_all();

  std::size_t depth(datagen::FileClass label) const;
  std::uint64_t enqueued(datagen::FileClass label) const;
  std::uint64_t dropped(datagen::FileClass label) const;
  // Deepest the class queue has ever been (back-pressure headroom signal).
  std::size_t high_water(datagen::FileClass label) const;
  // One consistent snapshot of all per-class counters.
  OutputQueueStats stats() const;
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  // Validated label -> queue index.
  static std::size_t index_of(datagen::FileClass label);

  std::optional<QueuedPacket> dequeue_locked(datagen::FileClass label)
      IUSTITIA_REQUIRES(mu_);

  const std::size_t capacity_;  // immutable after construction
  mutable util::Mutex mu_{"OutputQueues::mu_"};
  std::array<std::deque<QueuedPacket>, 3> queues_ IUSTITIA_GUARDED_BY(mu_);
  std::array<std::uint64_t, 3> enqueued_ IUSTITIA_GUARDED_BY(mu_){};
  std::array<std::uint64_t, 3> dropped_ IUSTITIA_GUARDED_BY(mu_){};
  std::array<std::size_t, 3> high_water_ IUSTITIA_GUARDED_BY(mu_){};
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_OUTPUT_QUEUES_H_
