// Character-level Markov model for natural-language-like text.
//
// The paper's text pool is real English documents; our substitute generates
// text whose character n-gram statistics match English closely enough to
// reproduce the "text flows have the lowest entropy" observation.  A small
// embedded seed corpus (original prose written for this repository) trains
// an order-k character chain; generation walks the chain, optionally
// resetting at sentence boundaries for variety.
#ifndef IUSTITIA_DATAGEN_MARKOV_TEXT_H_
#define IUSTITIA_DATAGEN_MARKOV_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/random.h"

namespace iustitia::datagen {

// Embedded English seed corpus (~4 KB of original prose).
std::string_view seed_corpus() noexcept;

// Order-k character Markov chain.
class MarkovText {
 public:
  // Trains on `corpus` with the given context order (2 or 3 recommended).
  // Throws std::invalid_argument if the corpus is shorter than order + 1.
  MarkovText(std::string_view corpus, int order);

  // Convenience: model trained on the embedded seed corpus.
  static const MarkovText& english(int order = 3);

  // Generates `length` characters.
  std::string generate(std::size_t length, util::Rng& rng) const;

  int order() const noexcept { return order_; }
  std::size_t context_count() const noexcept { return transitions_.size(); }

 private:
  struct Transitions {
    std::string next_chars;          // one entry per observed successor
    std::vector<std::uint32_t> counts;
  };

  int order_;
  std::vector<std::string> contexts_;  // for seeding generation
  std::unordered_map<std::string, Transitions> transitions_;
};

// Draws a plausible lowercase "word" (for identifiers, hostnames, fields).
std::string random_word(util::Rng& rng, std::size_t min_len = 3,
                        std::size_t max_len = 10);

}  // namespace iustitia::datagen

#endif  // IUSTITIA_DATAGEN_MARKOV_TEXT_H_
