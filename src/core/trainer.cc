#include "core/trainer.h"

#include <algorithm>

#include "util/logging.h"

namespace iustitia::core {

const char* training_method_name(TrainingMethod m) noexcept {
  switch (m) {
    case TrainingMethod::kWholeFile:
      return "H_F";
    case TrainingMethod::kFirstBytes:
      return "H_b";
    case TrainingMethod::kRandomOffset:
      return "H_b'";
  }
  return "?";
}

std::vector<double> training_features(std::span<const std::uint8_t> bytes,
                                      const TrainerOptions& options,
                                      util::Rng& rng) {
  std::span<const std::uint8_t> window = bytes;
  switch (options.method) {
    case TrainingMethod::kWholeFile:
      break;
    case TrainingMethod::kFirstBytes:
      window = bytes.subspan(0, std::min(options.buffer_size, bytes.size()));
      break;
    case TrainingMethod::kRandomOffset: {
      const std::size_t max_offset =
          std::min(options.header_threshold,
                   bytes.size() > options.buffer_size
                       ? bytes.size() - options.buffer_size
                       : 0);
      const std::size_t offset =
          max_offset == 0
              ? 0
              : static_cast<std::size_t>(rng.next_below(max_offset + 1));
      window = bytes.subspan(
          offset, std::min(options.buffer_size, bytes.size() - offset));
      break;
    }
  }
  if (options.use_estimation) {
    return entropy::estimate_entropy_vector(window, options.widths,
                                            options.estimator, rng)
        .h;
  }
  return entropy::entropy_vector(window, options.widths);
}

ml::Dataset build_entropy_dataset(
    std::span<const datagen::FileSample> corpus,
    const TrainerOptions& options) {
  util::Rng rng(options.seed);
  ml::Dataset data(datagen::kNumClasses);
  for (const auto& file : corpus) {
    data.add(training_features(file.bytes, options, rng),
             static_cast<int>(file.label));
  }
  return data;
}

namespace {

// Trains a ready-to-use model on already-extracted feature vectors.
FlowNatureModel train_on_dataset(const ml::Dataset& train_data,
                                 const TrainerOptions& options) {
  FlowNatureModel model =
      options.use_estimation
          ? FlowNatureModel(options.backend, options.widths,
                            options.estimator, options.seed ^ 0xE57)
          : FlowNatureModel(options.backend, options.widths);
  model.set_training_buffer_size(
      options.method == TrainingMethod::kWholeFile ? 0 : options.buffer_size);
  if (options.backend == Backend::kCart) {
    ml::DecisionTree tree;
    tree.train(train_data, options.cart);
    model.set_tree(std::move(tree));
  } else {
    ml::MinMaxScaler scaler;
    scaler.fit(train_data);
    ml::DagSvm svm;
    svm.train(scaler.transform(train_data), options.svm);
    model.set_svm(std::move(svm), std::move(scaler));
  }
  return model;
}

}  // namespace

FlowNatureModel train_model(std::span<const datagen::FileSample> corpus,
                            const TrainerOptions& options) {
  IUSTITIA_LOG_INFO << "training " << backend_name(options.backend)
                    << " model (" << training_method_name(options.method)
                    << ") on " << corpus.size() << " files";
  ml::Dataset data = build_entropy_dataset(corpus, options);
  FlowNatureModel model = train_on_dataset(data, options);
  IUSTITIA_LOG_DEBUG << "training done: " << data.size() << " samples, "
                     << options.widths.size() << " gram widths";
  return model;
}

}  // namespace iustitia::core
