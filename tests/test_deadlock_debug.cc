// Tests for the IUSTITIA_DEADLOCK_DEBUG runtime lock-order validator
// (util/deadlock_debug.{h,cc} + the hooks in util::Mutex).  Compiled
// only under the deadlock-debug preset — see tests/CMakeLists.txt.
//
// The FATAL paths are exercised as death tests: the child process
// aborts before atexit runs, so crashing children never write partial
// lock-graph JSON into IUSTITIA_LOCK_GRAPH_OUT.

#include "util/deadlock_debug.h"

#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "util/thread_annotations.h"

namespace iustitia::util {
namespace {

TEST(DeadlockDebug, ConsistentOrderIsQuiet) {
  Mutex a{"DlkTestA::mu_"};
  Mutex b{"DlkTestB::mu_"};
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  EXPECT_EQ(deadlock::held_depth(), 0u);
}

TEST(DeadlockDebug, HeldDepthTracksNesting) {
  Mutex a{"DlkDepthA::mu_"};
  Mutex b{"DlkDepthB::mu_"};
  EXPECT_EQ(deadlock::held_depth(), 0u);
  {
    MutexLock la(a);
    EXPECT_EQ(deadlock::held_depth(), 1u);
    MutexLock lb(b);
    EXPECT_EQ(deadlock::held_depth(), 2u);
  }
  EXPECT_EQ(deadlock::held_depth(), 0u);
}

TEST(DeadlockDebugDeathTest, InversionFatalsBeforeBlocking) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Single-threaded on purpose: the registry remembers A-then-B, so the
  // reversed pair must FATAL even though no second thread is waiting.
  EXPECT_DEATH(
      {
        Mutex a{"DlkInvA::mu_"};
        Mutex b{"DlkInvB::mu_"};
        {
          MutexLock la(a);
          MutexLock lb(b);
        }
        {
          MutexLock lb(b);
          MutexLock la(a);  // inversion: B held, acquiring A
        }
      },
      "lock-order inversion");
}

TEST(DeadlockDebugDeathTest, RecursiveAcquisitionFatals) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex a{"DlkRecA::mu_"};
        a.lock();
        a.lock();  // std::mutex would be UB/hang; the hook FATALs
      },
      "recursive acquisition");
}

TEST(DeadlockDebug, TryLockRecordsWithoutFatal) {
  Mutex a{"DlkTryA::mu_"};
  Mutex b{"DlkTryB::mu_"};
  {
    MutexLock la(a);
    ASSERT_TRUE(b.try_lock());
    b.unlock();
  }
  // The reverse order through try_lock must not FATAL: a failed or
  // successful try_lock cannot deadlock.  (It still records the edge,
  // which is why these names are not reused by other tests.)
  {
    MutexLock lb(b);
    ASSERT_TRUE(a.try_lock());
    a.unlock();
  }
  EXPECT_EQ(deadlock::held_depth(), 0u);
}

TEST(DeadlockDebug, SameNamePairsContributeNoEdges) {
  // Hand-over-hand over instances of the same class: legal, and must
  // not poison the class-level graph with a self edge.
  Mutex s1{"DlkShard::mu"};
  Mutex s2{"DlkShard::mu"};
  {
    MutexLock l1(s1);
    MutexLock l2(s2);
  }
  {
    MutexLock l2(s2);
    MutexLock l1(s1);  // reverse instance order: still fine
  }
  EXPECT_EQ(deadlock::held_depth(), 0u);
}

TEST(DeadlockDebug, WriteGraphEmitsObservedEdges) {
  Mutex outer{"DlkGraphOuter::mu_"};
  Mutex inner{"DlkGraphInner::mu_"};
  std::thread t([&] {
    MutexLock lo(outer);
    MutexLock li(inner);
  });
  t.join();

  const std::string path =
      testing::TempDir() + "/iustitia_lock_graph_test.json";
  deadlock::write_graph(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  EXPECT_NE(doc.find("\"format\": 1"), std::string::npos) << doc;
  EXPECT_NE(
      doc.find("{\"from\": \"DlkGraphOuter::mu_\", "
               "\"to\": \"DlkGraphInner::mu_\"}"),
      std::string::npos)
      << doc;
  // No reversed pair was ever observed for these names.
  EXPECT_EQ(doc.find("{\"from\": \"DlkGraphInner::mu_\", "
                     "\"to\": \"DlkGraphOuter::mu_\"}"),
            std::string::npos)
      << doc;
}

}  // namespace
}  // namespace iustitia::util
