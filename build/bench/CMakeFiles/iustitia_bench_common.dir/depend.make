# Empty dependencies file for iustitia_bench_common.
# This may be replaced when dependencies are built.
