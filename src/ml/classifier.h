// Abstract multi-class classifier interface.
//
// Both backends of the paper — the CART decision tree and the DAGSVM — model
// a function from a feature vector (an entropy vector) to a class label, so
// the online engine and the evaluation drivers program against this
// interface.
#ifndef IUSTITIA_ML_CLASSIFIER_H_
#define IUSTITIA_ML_CLASSIFIER_H_

#include <span>

#include "ml/dataset.h"
#include "ml/metrics.h"

namespace iustitia::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  // Predicted label in [0, num_classes).
  virtual int predict(std::span<const double> features) const = 0;

  // Number of classes this model distinguishes.
  virtual int num_classes() const = 0;

  // Confusion matrix of this model over a labeled dataset.
  ConfusionMatrix evaluate(const Dataset& data) const;
};

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_CLASSIFIER_H_
