#include "ml/dataset.h"

#include <algorithm>
#include <stdexcept>

#include "util/check.h"

namespace iustitia::ml {

void Dataset::add(std::vector<double> features, int label) {
  if (label < 0 || (classes_preset_ && label >= num_classes_)) {
    throw std::invalid_argument("Dataset::add: label out of range");
  }
  if (samples_.empty()) {
    feature_count_ = features.size();
  } else if (features.size() != feature_count_) {
    throw std::invalid_argument("Dataset::add: feature dimension mismatch");
  }
  if (!classes_preset_ && label >= num_classes_) {
    num_classes_ = label + 1;  // grow for datasets built without a preset
  }
  samples_.push_back(Sample{std::move(features), label});
}

std::vector<std::size_t> Dataset::class_counts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (const auto& s : samples_) {
    if (static_cast<std::size_t>(s.label) >= counts.size()) {
      counts.resize(static_cast<std::size_t>(s.label) + 1, 0);
    }
    ++counts[static_cast<std::size_t>(s.label)];
  }
  return counts;
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(num_classes_);
  for (const std::size_t i : indices) {
    CHECK_LT(i, samples_.size()) << "subset row index out of range";
    out.add(samples_[i].features, samples_[i].label);
  }
  return out;
}

Dataset Dataset::project(std::span<const std::size_t> feature_indices) const {
  Dataset out(num_classes_);
  for (const auto& s : samples_) {
    std::vector<double> projected;
    projected.reserve(feature_indices.size());
    for (const std::size_t f : feature_indices) {
      projected.push_back(s.features.at(f));
    }
    out.add(std::move(projected), s.label);
  }
  return out;
}

Dataset Dataset::balanced_sample(std::size_t per_class, util::Rng& rng) const {
  // Bucket indices by class, shuffle each bucket, keep the first per_class.
  std::vector<std::vector<std::size_t>> buckets(
      static_cast<std::size_t>(std::max(num_classes_, 1)));
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const auto label = static_cast<std::size_t>(samples_[i].label);
    if (label >= buckets.size()) buckets.resize(label + 1);
    buckets[label].push_back(i);
  }
  std::vector<std::size_t> keep;
  for (auto& bucket : buckets) {
    rng.shuffle(bucket);
    const std::size_t take = std::min(per_class, bucket.size());
    keep.insert(keep.end(), bucket.begin(),
                bucket.begin() + static_cast<std::ptrdiff_t>(take));
  }
  rng.shuffle(keep);
  return subset(keep);
}

void Dataset::shuffle(util::Rng& rng) { rng.shuffle(samples_); }

std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       std::size_t folds,
                                                       util::Rng& rng) {
  if (folds == 0) throw std::invalid_argument("stratified_folds: folds == 0");
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(std::max(data.num_classes(), 1)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto label = static_cast<std::size_t>(data[i].label);
    if (label >= by_class.size()) by_class.resize(label + 1);
    by_class[label].push_back(i);
  }
  std::vector<std::vector<std::size_t>> out(folds);
  for (auto& rows : by_class) {
    rng.shuffle(rows);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out[i % folds].push_back(rows[i]);
    }
  }
  for (auto& fold : out) rng.shuffle(fold);
  return out;
}

Split stratified_fold_split(const Dataset& data,
                            const std::vector<std::vector<std::size_t>>& folds,
                            std::size_t fold_index) {
  if (fold_index >= folds.size()) {
    throw std::out_of_range("stratified_fold_split: fold_index");
  }
  std::vector<std::size_t> train_rows;
  for (std::size_t f = 0; f < folds.size(); ++f) {
    if (f == fold_index) continue;
    train_rows.insert(train_rows.end(), folds[f].begin(), folds[f].end());
  }
  Split split;
  split.train = data.subset(train_rows);
  split.test = data.subset(folds[fold_index]);
  return split;
}

Split stratified_holdout(const Dataset& data, double train_fraction,
                         util::Rng& rng) {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  std::vector<std::vector<std::size_t>> by_class(
      static_cast<std::size_t>(std::max(data.num_classes(), 1)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto label = static_cast<std::size_t>(data[i].label);
    if (label >= by_class.size()) by_class.resize(label + 1);
    by_class[label].push_back(i);
  }
  std::vector<std::size_t> train_rows, test_rows;
  for (auto& rows : by_class) {
    rng.shuffle(rows);
    const auto cut = static_cast<std::size_t>(
        train_fraction * static_cast<double>(rows.size()));
    train_rows.insert(train_rows.end(), rows.begin(),
                      rows.begin() + static_cast<std::ptrdiff_t>(cut));
    test_rows.insert(test_rows.end(),
                     rows.begin() + static_cast<std::ptrdiff_t>(cut),
                     rows.end());
  }
  rng.shuffle(train_rows);
  rng.shuffle(test_rows);
  Split split;
  split.train = data.subset(train_rows);
  split.test = data.subset(test_rows);
  return split;
}

}  // namespace iustitia::ml
