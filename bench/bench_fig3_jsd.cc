// Reproduces Figure 3: Jensen-Shannon divergence between the gram
// distribution of the first b bytes and of the whole file, per class, for
// single-byte (f1) and two-byte (f2) element sets, as the portion grows.
//
// Paper shape: JSD decreases monotonically with the portion; at 20% of the
// file the f1 distributions are within ~0.14 JSD (>86% similarity) and f2
// within ~0.30 (70% similarity).
#include "bench/bench_common.h"

#include <algorithm>
#include <iostream>
#include <span>

#include "entropy/divergence.h"

namespace iustitia::bench {
namespace {

int run() {
  banner("Fig. 3: JSD(prefix || whole file) vs portion, f1 and f2",
         "f1 similarity >= 86% at 20% of the file; JSD -> 0 at portion 1");

  const std::size_t files = env_size("IUSTITIA_FILES_PER_CLASS", 100);
  const auto corpus = standard_corpus(files);
  const double portions[] = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
                             0.6,  0.7, 0.8, 0.9, 1.0};

  double check_f1_at_20 = 0.0;
  for (const int width : {1, 2}) {
    std::cout << "-- Fig. 3(" << (width == 1 ? 'a' : 'b') << "): f" << width
              << " distribution distance --\n";
    util::Table table({"portion", "text JSD", "binary JSD", "encrypted JSD"});
    for (const double portion : portions) {
      double sums[3] = {};
      std::size_t counts[3] = {};
      for (const auto& file : corpus) {
        const auto len = std::max<std::size_t>(
            static_cast<std::size_t>(portion *
                                     static_cast<double>(file.bytes.size())),
            static_cast<std::size_t>(width));
        const auto prefix = entropy::gram_distribution(
            std::span<const std::uint8_t>(file.bytes.data(), len), width);
        const auto whole = entropy::gram_distribution(file.bytes, width);
        sums[static_cast<int>(file.label)] +=
            entropy::js_divergence(prefix, whole);
        ++counts[static_cast<int>(file.label)];
      }
      const double text = sums[0] / static_cast<double>(counts[0]);
      const double binary = sums[1] / static_cast<double>(counts[1]);
      const double encrypted = sums[2] / static_cast<double>(counts[2]);
      table.add_row({util::fmt(portion, 2), util::fmt(text, 3),
                     util::fmt(binary, 3), util::fmt(encrypted, 3)});
      if (width == 1 && portion == 0.2) {
        check_f1_at_20 = std::max({text, binary, encrypted});
      }
    }
    table.render(std::cout);
    std::cout << '\n';
  }

  std::cout << "paper:    f1 prefix similarity at 20% >= 86% "
               "(JSD <= 0.14)\n";
  std::cout << "measured: worst-class f1 JSD at 20% = "
            << util::fmt(check_f1_at_20, 3) << " (similarity "
            << util::fmt_percent(1.0 - check_f1_at_20) << ")\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
