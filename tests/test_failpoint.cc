// Tests for the deterministic fault-injection failpoints (util/failpoint.h):
// spec grammar validation, arm/disarm lifecycle, seeded deterministic
// triggering, the delay action's sleep, and snapshot introspection.
// Every test drives the reserved inventory point "test.probe".
#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace iustitia::util {
namespace {

// The registry is process-global: each test starts and ends disarmed
// with the default seed so ordering cannot leak state between tests.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoints_disarm_all();
    failpoints_set_seed(0x1057F417ULL);
  }
  void TearDown() override { failpoints_disarm_all(); }

  static std::optional<FailpointInfo> info_of(const std::string& name) {
    for (FailpointInfo& info : failpoints_snapshot()) {
      if (info.name == name) return std::move(info);
    }
    return std::nullopt;
  }
};

TEST_F(FailpointTest, DisarmedReturnsNoneAndStaysUnarmed) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(FAILPOINT("test.probe"), FailpointAction::kNone);
  }
  const auto info = info_of("test.probe");
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->armed);
  EXPECT_EQ(info->spec, "");
}

TEST_F(FailpointTest, ConfigureRejectsBadSpecsWithoutArmingAnything) {
  const char* bad[] = {
      "no.such.point=error",        // not in the inventory
      "test.probe",                 // missing '='
      "test.probe=explode",         // unknown action
      "test.probe=delay",           // delay needs a duration
      "test.probe=delay(50)",       // duration needs a unit
      "test.probe=delay(50us,2.0)", // probability out of [0,1]
      "test.probe=error(-0.5)",     // probability out of [0,1]
      "test.probe=error(half)",     // non-numeric probability
      "test.probe=stall(10ms",      // missing ')'
      "test.probe=error(0.5,x)",    // error takes one argument
  };
  for (const char* spec : bad) {
    EXPECT_NE(failpoints_configure(spec), "") << spec;
    const auto info = info_of("test.probe");
    ASSERT_TRUE(info.has_value()) << spec;
    EXPECT_FALSE(info->armed) << "spec '" << spec << "' armed the point";
  }
  EXPECT_EQ(FAILPOINT("test.probe"), FailpointAction::kNone);
}

TEST_F(FailpointTest, ErrorAtProbabilityOneFiresEveryEvaluation) {
  ASSERT_EQ(failpoints_configure("test.probe=error"), "");
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(FAILPOINT("test.probe"), FailpointAction::kError);
  }
}

TEST_F(FailpointTest, AllocFailAction) {
  ASSERT_EQ(failpoints_configure("test.probe=alloc-fail(1.0)"), "");
  EXPECT_EQ(FAILPOINT("test.probe"), FailpointAction::kAllocFail);
}

TEST_F(FailpointTest, OffDisarmsOnePointAndBareOffDisarmsAll) {
  ASSERT_EQ(failpoints_configure("test.probe=error;cdb.insert=error"), "");
  ASSERT_EQ(failpoints_configure("test.probe=off"), "");
  EXPECT_EQ(FAILPOINT("test.probe"), FailpointAction::kNone);
  auto info = info_of("cdb.insert");
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->armed);  // the other point is untouched
  ASSERT_EQ(failpoints_configure("off"), "");
  info = info_of("cdb.insert");
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->armed);
}

TEST_F(FailpointTest, ProbabilisticTriggeringIsSeedDeterministic) {
  const auto sample = [] {
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(FAILPOINT("test.probe") == FailpointAction::kError);
    }
    return fired;
  };
  failpoints_set_seed(42);
  ASSERT_EQ(failpoints_configure("test.probe=error(0.5)"), "");
  const std::vector<bool> first = sample();
  // Re-arming with the same seed replays the identical trigger pattern.
  failpoints_set_seed(42);
  ASSERT_EQ(failpoints_configure("test.probe=error(0.5)"), "");
  EXPECT_EQ(sample(), first);
  // A different seed gives a different (still ~50%) pattern.
  failpoints_set_seed(43);
  ASSERT_EQ(failpoints_configure("test.probe=error(0.5)"), "");
  EXPECT_NE(sample(), first);
  const int hits = static_cast<int>(std::count(first.begin(), first.end(),
                                               true));
  EXPECT_GT(hits, 50);
  EXPECT_LT(hits, 150);
}

TEST_F(FailpointTest, DelayActionSleepsForTheConfiguredDuration) {
  ASSERT_EQ(failpoints_configure("test.probe=delay(20ms)"), "");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(FAILPOINT("test.probe"), FailpointAction::kDelay);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST_F(FailpointTest, SnapshotTracksSpecEvaluationsAndTriggers) {
  const auto before = info_of("test.probe");
  ASSERT_TRUE(before.has_value());
  ASSERT_EQ(failpoints_configure("test.probe=error(1.0)"), "");
  for (int i = 0; i < 5; ++i) (void)FAILPOINT("test.probe");
  const auto after = info_of("test.probe");
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->armed);
  EXPECT_EQ(after->spec, "error(1.0)");
  EXPECT_EQ(after->evaluations, before->evaluations + 5);
  EXPECT_EQ(after->triggers, before->triggers + 5);
}

TEST_F(FailpointTest, SnapshotListsTheWholeInventorySorted) {
  const std::vector<FailpointInfo> infos = failpoints_snapshot();
  ASSERT_GE(infos.size(), 6u);
  for (std::size_t i = 1; i < infos.size(); ++i) {
    EXPECT_LT(infos[i - 1].name, infos[i].name);
  }
  EXPECT_TRUE(info_of("cdb.insert").has_value());
  EXPECT_TRUE(info_of("ring.push").has_value());
  EXPECT_TRUE(info_of("source.next").has_value());
  EXPECT_TRUE(info_of("worker.stall").has_value());
  EXPECT_TRUE(info_of("ctrl.request").has_value());
}

}  // namespace
}  // namespace iustitia::util
