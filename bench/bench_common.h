// Shared helpers for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper and is
// scaled down by default so the whole suite runs in minutes.  Environment
// overrides let a user rerun at paper scale:
//   IUSTITIA_FILES_PER_CLASS  corpus size per class (default varies)
//   IUSTITIA_TRACE_PACKETS    synthetic trace packet budget
//   IUSTITIA_CV_FOLDS         cross-validation folds (default 10)
#ifndef IUSTITIA_BENCH_BENCH_COMMON_H_
#define IUSTITIA_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "datagen/corpus.h"
#include "ml/cross_validation.h"
#include "util/table.h"

namespace iustitia::bench {

// Reads a positive integer from the environment, or returns fallback.
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

// Standard evaluation corpus for the file-classification benches.
inline std::vector<datagen::FileSample> standard_corpus(
    std::size_t files_per_class, std::uint64_t seed = 0x1CED) {
  datagen::CorpusOptions options;
  options.files_per_class = files_per_class;
  options.min_size = 2048;
  options.max_size = 16384;
  options.seed = seed;
  return datagen::build_corpus(options);
}

// Pretty banner naming the paper artifact being reproduced.
inline void banner(const std::string& artifact, const std::string& claim) {
  std::cout << "=====================================================\n"
            << "Reproduction of " << artifact << "\n"
            << "Paper reference: " << claim << "\n"
            << "=====================================================\n";
}

// Confusion-matrix row formatting used by the Table 1/2 style outputs.
void print_class_breakdown(const ml::ConfusionMatrix& matrix,
                           const std::string& model_name);

// 10-fold CV of one backend over an entropy dataset; prints per-fold
// accuracies (Fig. 2(b)/(c) series) when verbose.
ml::ConfusionMatrix run_cv(const ml::Dataset& data, std::size_t folds,
                           const ml::ModelFactory& factory,
                           std::uint64_t seed, bool print_folds,
                           const std::string& label);

}  // namespace iustitia::bench

#endif  // IUSTITIA_BENCH_BENCH_COMMON_H_
