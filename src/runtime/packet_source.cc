#include "runtime/packet_source.h"

#include <algorithm>
#include <istream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/failpoint.h"

namespace iustitia::runtime {

namespace {

// Evaluates the shared source.next failpoint: an armed error action
// simulates one transient read failure for this call.
bool injected_transient_error() noexcept {
  return FAILPOINT("source.next") == util::FailpointAction::kError;
}

}  // namespace

void Pacer::tick() {
  if (target_ <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  if (!started_) {
    started_ = true;
    start_ = now;
  }
  ++ticks_;
  const auto deadline =
      start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(ticks_) / target_));
  if (deadline > now) std::this_thread::sleep_until(deadline);
}

PcapReplaySource::PcapReplaySource(std::istream& is, double target_pps)
    : reader_(is), pacer_(target_pps) {}

std::optional<net::Packet> PcapReplaySource::read_one() {
  // Hostile-input armor: PcapReader rejects corrupt records by
  // throwing.  The record framing is length-based, so the stream stays
  // positioned on the next record; skip, count, and keep replaying
  // instead of letting the exception terminate the dispatcher thread.
  for (;;) {
    try {
      return reader_.next();
    } catch (const std::runtime_error&) {
      ++decode_errors_;
    }
  }
}

std::optional<net::Packet> PcapReplaySource::next() {
  transient_ = injected_transient_error();
  if (transient_) return std::nullopt;
  std::optional<net::Packet> packet = read_one();
  if (!packet.has_value()) return std::nullopt;
  pacer_.tick();
  ++delivered_;
  return packet;
}

std::size_t PcapReplaySource::next_burst(std::span<net::Packet> out) {
  transient_ = injected_transient_error();
  if (transient_) return 0;
  std::size_t n = 0;
  for (net::Packet& slot : out) {
    std::optional<net::Packet> packet = read_one();
    if (!packet.has_value()) break;
    pacer_.tick();
    slot = *std::move(packet);
    ++n;
  }
  delivered_ += n;
  return n;
}

TraceSource::TraceSource(net::Trace trace, double target_pps)
    : trace_(std::move(trace)), pacer_(target_pps) {}

TraceSource::TraceSource(const net::TraceOptions& options, double target_pps)
    : TraceSource(net::generate_trace(options), target_pps) {}

std::optional<net::Packet> TraceSource::next() {
  transient_ = injected_transient_error();
  if (transient_) return std::nullopt;
  if (next_index_ >= trace_.packets.size()) return std::nullopt;
  pacer_.tick();
  return std::move(trace_.packets[next_index_++]);
}

std::size_t TraceSource::next_burst(std::span<net::Packet> out) {
  transient_ = injected_transient_error();
  if (transient_) return 0;
  // Bulk move straight out of the owned trace: no per-packet optional,
  // one bounds computation for the whole burst.
  const std::size_t n =
      std::min(out.size(), trace_.packets.size() - next_index_);
  for (std::size_t i = 0; i < n; ++i) {
    pacer_.tick();
    out[i] = std::move(trace_.packets[next_index_ + i]);
  }
  next_index_ += n;
  return n;
}

}  // namespace iustitia::runtime
