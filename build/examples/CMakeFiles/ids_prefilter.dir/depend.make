# Empty dependencies file for ids_prefilter.
# This may be replaced when dependencies are built.
