// Trained flow-nature model: entropy features + a classification backend.
//
// Bundles everything the online engine needs to turn a flow prefix into a
// text/binary/encrypted label: the feature widths, exact-vs-estimated
// extraction, the (optional) feature scaler, and either a CART tree or a
// DAGSVM.  Produced offline by core/trainer.h; serializable.
#ifndef IUSTITIA_CORE_FLOW_MODEL_H_
#define IUSTITIA_CORE_FLOW_MODEL_H_

#include <iosfwd>
#include <span>
#include <vector>

#include "core/feature_extractor.h"
#include "datagen/corpus.h"
#include "ml/cart.h"
#include "ml/scaler.h"
#include "ml/svm.h"

namespace iustitia::core {

enum class Backend { kCart, kSvm };

const char* backend_name(Backend b) noexcept;

// Classification outcome plus the extraction costs (for delay accounting).
struct Classification {
  datagen::FileClass label = datagen::FileClass::kText;
  std::vector<double> features;
  double extract_micros = 0.0;
  std::size_t space_bytes = 0;
};

class FlowNatureModel {
 public:
  FlowNatureModel() = default;

  // Exact-extraction model.
  FlowNatureModel(Backend backend, std::vector<int> widths);

  // Estimated-extraction model.
  FlowNatureModel(Backend backend, std::vector<int> widths,
                  const entropy::EstimatorParams& params, std::uint64_t seed);

  // Classifies a flow prefix (extraction + backend inference).
  Classification classify(std::span<const std::uint8_t> prefix);

  // Classifies an already extracted feature vector.
  datagen::FileClass classify_features(std::span<const double> features) const;

  Backend backend() const noexcept { return backend_; }
  std::span<const int> widths() const noexcept;
  bool uses_estimation() const noexcept;

  // Buffer size b the model was trained for (0 = whole-file training);
  // inference windows should match it for best accuracy.
  std::size_t training_buffer_size() const noexcept {
    return training_buffer_size_;
  }
  void set_training_buffer_size(std::size_t b) noexcept {
    training_buffer_size_ = b;
  }

  // Model size in bytes (tree nodes or support vectors): the "model" part
  // of the paper's per-flow space discussion.
  std::size_t model_space_bytes() const noexcept;

  // The configured extractor.  The online engine copies it per shard so
  // a shared const model (core/model_registry.h) never carries mutable
  // extraction state across threads; classify_features() on the shared
  // model is const and thread-safe.
  const FeatureExtractor& extractor() const noexcept { return extractor_; }

  // Backend/scaler installation (used by the trainer).
  void set_tree(ml::DecisionTree tree);
  void set_svm(ml::DagSvm svm, ml::MinMaxScaler scaler);

  const ml::DecisionTree& tree() const noexcept { return tree_; }
  const ml::DagSvm& svm() const noexcept { return svm_; }

  // Serialization of the whole bundle.
  void save(std::ostream& os) const;
  static FlowNatureModel load(std::istream& is);

 private:
  Backend backend_ = Backend::kCart;
  FeatureExtractor extractor_{std::vector<int>{1}};
  ml::DecisionTree tree_;
  ml::DagSvm svm_;
  ml::MinMaxScaler scaler_;
  // Estimator config retained for serialization.
  bool use_estimation_ = false;
  entropy::EstimatorParams estimator_params_;
  std::size_t training_buffer_size_ = 0;
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_FLOW_MODEL_H_
