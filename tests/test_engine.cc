// Tests for the online Iustitia engine: the Fig. 1 pipeline mechanics.
#include "core/engine.h"

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "datagen/corpus.h"

namespace iustitia::core {
namespace {

using datagen::FileClass;
using net::FlowKey;
using net::Packet;
using net::Protocol;

FlowNatureModel small_model() {
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 15;
  corpus_options.min_size = 2048;
  corpus_options.max_size = 4096;
  corpus_options.seed = 41;
  const auto corpus = datagen::build_corpus(corpus_options);
  TrainerOptions options;
  options.backend = Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = 64;
  return train_model(corpus, options);
}

EngineOptions small_engine_options() {
  EngineOptions options;
  options.buffer_size = 64;
  options.header_threshold = 0;
  options.buffer_timeout_seconds = 5.0;
  return options;
}

FlowKey key_of(int n) {
  return FlowKey{.src_ip = static_cast<std::uint32_t>(n),
                 .dst_ip = 0x01020304,
                 .src_port = 40000,
                 .dst_port = 80,
                 .protocol = Protocol::kTcp};
}

Packet data_packet(const FlowKey& key, double ts,
                   std::vector<std::uint8_t> payload) {
  Packet p;
  p.key = key;
  p.timestamp = ts;
  p.flags.ack = true;
  p.payload = std::move(payload);
  return p;
}

std::vector<std::uint8_t> text_payload(std::size_t n) {
  std::vector<std::uint8_t> out;
  const std::string phrase = "the quick brown fox jumps over the lazy dog ";
  while (out.size() < n) {
    out.insert(out.end(), phrase.begin(), phrase.end());
  }
  out.resize(n);
  return out;
}

TEST(Engine, BuffersUntilFullThenClassifies) {
  Iustitia engine(small_model(), small_engine_options());
  const FlowKey key = key_of(1);
  EXPECT_EQ(engine.on_packet(data_packet(key, 0.0, text_payload(30))),
            PacketAction::kBuffered);
  EXPECT_EQ(engine.pending_flows(), 1u);
  EXPECT_EQ(engine.on_packet(data_packet(key, 0.1, text_payload(40))),
            PacketAction::kClassifiedNow);
  EXPECT_EQ(engine.pending_flows(), 0u);
  ASSERT_TRUE(engine.label_of(key).has_value());
  EXPECT_EQ(engine.stats().flows_classified, 1u);

  // Subsequent packets are forwarded from the CDB.
  EXPECT_EQ(engine.on_packet(data_packet(key, 0.2, text_payload(100))),
            PacketAction::kForwarded);
}

TEST(Engine, ClassifiesTextFlowAsText) {
  Iustitia engine(small_model(), small_engine_options());
  const FlowKey key = key_of(2);
  engine.on_packet(data_packet(key, 0.0, text_payload(200)));
  EXPECT_EQ(engine.label_of(key), FileClass::kText);
}

TEST(Engine, SinglePacketLargerThanBufferClassifiesImmediately) {
  Iustitia engine(small_model(), small_engine_options());
  EXPECT_EQ(engine.on_packet(data_packet(key_of(3), 0.0, text_payload(500))),
            PacketAction::kClassifiedNow);
  ASSERT_EQ(engine.delays().size(), 1u);
  EXPECT_EQ(engine.delays()[0].packets_to_fill, 1u);
  EXPECT_DOUBLE_EQ(engine.delays()[0].tau_b, 0.0);
  EXPECT_EQ(engine.delays()[0].buffered_bytes, 64u);
}

TEST(Engine, DelayRecordTracksBufferFillTime) {
  Iustitia engine(small_model(), small_engine_options());
  const FlowKey key = key_of(4);
  engine.on_packet(data_packet(key, 1.0, text_payload(30)));
  engine.on_packet(data_packet(key, 1.5, text_payload(20)));
  engine.on_packet(data_packet(key, 2.25, text_payload(30)));
  ASSERT_EQ(engine.delays().size(), 1u);
  const FlowDelayRecord& record = engine.delays()[0];
  EXPECT_EQ(record.packets_to_fill, 3u);
  EXPECT_DOUBLE_EQ(record.tau_b, 1.25);
  EXPECT_DOUBLE_EQ(record.classified_at, 2.25);
  EXPECT_GE(record.hash_micros, 0.0);
  EXPECT_GE(record.extract_micros, 0.0);
}

TEST(Engine, PureControlPacketsOnUnknownFlowAreIgnored) {
  Iustitia engine(small_model(), small_engine_options());
  Packet syn;
  syn.key = key_of(5);
  syn.flags.syn = true;
  EXPECT_EQ(engine.on_packet(syn), PacketAction::kIgnored);
}

TEST(Engine, FinTriggersEarlyClassificationOfPartialBuffer) {
  Iustitia engine(small_model(), small_engine_options());
  const FlowKey key = key_of(6);
  engine.on_packet(data_packet(key, 0.0, text_payload(30)));  // below b=64
  Packet fin = data_packet(key, 0.5, {});
  fin.flags.fin = true;
  EXPECT_EQ(engine.on_packet(fin), PacketAction::kClassifiedNow);
  EXPECT_EQ(engine.stats().flows_timed_out, 1u);
  ASSERT_EQ(engine.delays().size(), 1u);
  EXPECT_EQ(engine.delays()[0].buffered_bytes, 30u);
}

TEST(Engine, FinOnClassifiedFlowRemovesCdbEntry) {
  Iustitia engine(small_model(), small_engine_options());
  const FlowKey key = key_of(7);
  engine.on_packet(data_packet(key, 0.0, text_payload(100)));
  ASSERT_TRUE(engine.label_of(key).has_value());
  Packet fin = data_packet(key, 0.1, {});
  fin.flags.fin = true;
  EXPECT_EQ(engine.on_packet(fin), PacketAction::kForwarded);
  EXPECT_EQ(engine.label_of(key), std::nullopt);
  EXPECT_EQ(engine.cdb().stats().fin_rst_removals, 1u);
}

TEST(Engine, FlushIdleClassifiesQuietFlows) {
  Iustitia engine(small_model(), small_engine_options());
  const FlowKey key = key_of(8);
  engine.on_packet(data_packet(key, 0.0, text_payload(10)));
  EXPECT_EQ(engine.flush_idle(1.0), 0u);  // not idle long enough
  EXPECT_EQ(engine.flush_idle(10.0), 1u);
  EXPECT_TRUE(engine.label_of(key).has_value());
  EXPECT_EQ(engine.pending_flows(), 0u);
}

TEST(Engine, FlushAllDrainsEverything) {
  Iustitia engine(small_model(), small_engine_options());
  engine.on_packet(data_packet(key_of(9), 0.0, text_payload(10)));
  engine.on_packet(data_packet(key_of(10), 0.0, text_payload(20)));
  EXPECT_EQ(engine.flush_all(), 2u);
  EXPECT_EQ(engine.pending_flows(), 0u);
  EXPECT_EQ(engine.stats().flows_classified, 2u);
}

TEST(Engine, HeaderThresholdSkipsLeadingBytes) {
  // Flow = 128 constant bytes (fake header) + random payload.  With T=128
  // the classifier must see only the random part.
  EngineOptions options = small_engine_options();
  options.header_threshold = 128;
  options.strip_known_headers = false;
  Iustitia engine(small_model(), options);

  util::Rng rng(1);
  std::vector<std::uint8_t> padded(128, 'A');
  std::vector<std::uint8_t> random_tail(64);
  rng.fill_bytes(random_tail);
  padded.insert(padded.end(), random_tail.begin(), random_tail.end());

  const FlowKey key = key_of(11);
  EXPECT_EQ(engine.on_packet(data_packet(key, 0.0, padded)),
            PacketAction::kClassifiedNow);
  ASSERT_EQ(engine.delays().size(), 1u);
  // 64 random bytes at b=64: the window is the random tail, which a
  // text/binary/encrypted model reads as high-entropy content.
  const FileClass label = engine.delays()[0].label;
  EXPECT_NE(label, FileClass::kText);
}

TEST(Engine, KnownHttpHeaderIsStrippedBeforeClassification) {
  EngineOptions options = small_engine_options();
  options.strip_known_headers = true;
  Iustitia engine(small_model(), options);

  std::string header =
      "HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n"
      "Content-Length: 4096\r\n\r\n";
  std::vector<std::uint8_t> flow(header.begin(), header.end());
  util::Rng rng(2);
  std::vector<std::uint8_t> body(256);
  rng.fill_bytes(body);
  flow.insert(flow.end(), body.begin(), body.end());

  const FlowKey key = key_of(12);
  engine.on_packet(data_packet(key, 0.0, flow));
  ASSERT_EQ(engine.delays().size(), 1u);
  // Without stripping, the textual header would dominate the 64-byte
  // window and misclassify this encrypted-looking body as text.
  EXPECT_NE(engine.delays()[0].label, FileClass::kText);
}

TEST(Engine, QueueCountsAccumulatePerClass) {
  Iustitia engine(small_model(), small_engine_options());
  const FlowKey key = key_of(13);
  engine.on_packet(data_packet(key, 0.0, text_payload(100)));
  engine.on_packet(data_packet(key, 0.1, text_payload(50)));
  engine.on_packet(data_packet(key, 0.2, text_payload(50)));
  const auto& queues = engine.stats().queue_packets;
  EXPECT_EQ(queues[static_cast<std::size_t>(FileClass::kText)], 3u);
}

TEST(Engine, WorksWithEstimatedEntropyModel) {
  // Engine + (delta,epsilon)-estimation end to end (the paper's b=1024
  // deployment mode).
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 15;
  corpus_options.min_size = 2048;
  corpus_options.max_size = 4096;
  corpus_options.seed = 43;
  const auto corpus = datagen::build_corpus(corpus_options);
  TrainerOptions trainer;
  trainer.backend = Backend::kCart;
  trainer.widths = entropy::cart_preferred_widths();
  trainer.method = TrainingMethod::kFirstBytes;
  trainer.buffer_size = 1024;
  trainer.use_estimation = true;
  trainer.estimator = {.epsilon = 0.25, .delta = 0.5};
  FlowNatureModel model = train_model(corpus, trainer);
  ASSERT_TRUE(model.uses_estimation());

  EngineOptions options;
  options.buffer_size = 1024;
  Iustitia engine(std::move(model), options);
  // One large text flow.
  const FlowKey key = key_of(50);
  EXPECT_EQ(engine.on_packet(data_packet(key, 0.0, text_payload(1400))),
            PacketAction::kClassifiedNow);
  EXPECT_EQ(engine.label_of(key), FileClass::kText);
  ASSERT_EQ(engine.delays().size(), 1u);
  EXPECT_EQ(engine.delays()[0].buffered_bytes, 1024u);
}

TEST(Engine, RandomSkipMovesClassificationWindow) {
  // With random_skip_max set, flows need (skip + b) bytes before they
  // classify, and the window excludes a prefix an attacker could control.
  EngineOptions options = small_engine_options();
  options.random_skip_max = 1024;
  options.strip_known_headers = false;
  options.seed = 5;
  Iustitia engine(small_model(), options);

  // Flow: 256 bytes of uniform-random padding, then text.  With skips in
  // [0,1024], ~3/4 of flows classify on windows fully past the padding.
  util::Rng rng(9);
  std::size_t text_labels = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    std::vector<std::uint8_t> payload(256);
    rng.fill_bytes(payload);
    const auto text = text_payload(1600);
    payload.insert(payload.end(), text.begin(), text.end());
    const FlowKey key = key_of(100 + i);
    engine.on_packet(data_packet(key, 0.01 * i, payload));
    ASSERT_TRUE(engine.label_of(key).has_value());
    text_labels += (engine.label_of(key) == FileClass::kText);
  }
  // Without the defense every flow would see pure padding (encrypted-ish);
  // with it a solid fraction must land past the padding and read text.
  EXPECT_GT(text_labels, static_cast<std::size_t>(trials / 3));
}

TEST(Engine, ReclassificationDefenseRelabelsFlow) {
  EngineOptions options = small_engine_options();
  options.strip_known_headers = false;
  options.cdb.reclassify_after_seconds = 1.0;
  options.cdb.inactivity_coefficient = 1000.0;
  options.cdb.default_lambda = 1000.0;
  Iustitia engine(small_model(), options);

  // First window: random bytes (classified non-text); later traffic: text.
  util::Rng rng(10);
  std::vector<std::uint8_t> padding(128);
  rng.fill_bytes(padding);
  const FlowKey key = key_of(200);
  engine.on_packet(data_packet(key, 0.0, padding));
  ASSERT_TRUE(engine.label_of(key).has_value());
  const FileClass first = *engine.label_of(key);
  EXPECT_NE(first, FileClass::kText);

  // Keep the flow alive past the reclassification deadline.
  engine.on_packet(data_packet(key, 0.5, text_payload(100)));
  engine.flush_idle(2.0);  // purge opportunity: record is now stale
  EXPECT_EQ(engine.label_of(key), std::nullopt);  // deleted, to be redone

  // Next packets re-buffer genuine text and the flow is relabeled.
  engine.on_packet(data_packet(key, 2.1, text_payload(100)));
  EXPECT_EQ(engine.label_of(key), FileClass::kText);
  EXPECT_GE(engine.cdb().stats().reclassification_removals, 1u);
}

TEST(Engine, PendingBufferBytesReflectBufferedPayload) {
  Iustitia engine(small_model(), small_engine_options());
  EXPECT_EQ(engine.pending_buffer_bytes(), 0u);
  engine.on_packet(data_packet(key_of(14), 0.0, text_payload(30)));
  EXPECT_GE(engine.pending_buffer_bytes(), 30u);
}

}  // namespace
}  // namespace iustitia::core
