# Empty compiler generated dependencies file for qos_scheduler.
# This may be replaced when dependencies are built.
