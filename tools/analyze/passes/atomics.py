"""Atomic memory-order audit.

Models every std::atomic data member and namespace-scope atomic in the
layered src/ tree, classifies each access by its memory_order, and
checks the access set against the atomic's declared protocol.

Protocols are declared with a trailing expectation comment on the
declaration line:

    std::atomic<uint64_t> pushed{0};  // analyze: atomic(relaxed-counter)

  relaxed-counter  every access relaxed (monotonic statistic; readers
                   tolerate staleness and torn cross-counter views)
  relaxed-flag     every access relaxed (stop/shutdown flags that only
                   gate loop continuation, never publish data)
  publish          stores release or seq_cst; RMWs acq_rel/release/
                   seq_cst; loads acquire/seq_cst, or relaxed (an index
                   owner re-reading its own last store: SPSC rings)
  seqcst           every access seq_cst (explicit or defaulted)

Rules:
  atomic-relaxed-publication  unannotated atomic stored with relaxed
                              but loaded with acquire/seq_cst: the
                              store side fails to publish
  atomic-undocumented-relaxed relaxed orders used without a protocol
                              annotation (intent must be documented,
                              not baselined)
  atomic-mixed-order          unannotated atomic accessed with several
                              distinct non-relaxed orders
  atomic-default-seqcst       hot-path atomic using only defaulted
                              seq_cst accesses (warning: either the
                              strength is needed — annotate seqcst —
                              or it is costing a fence per access)
  atomic-annotation-mismatch  an access violates the declared protocol,
                              or the protocol name is unknown

One finding per atomic; heuristics err toward under-reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from findings import Finding
from tokenizer import IDENT, Token, nolint_lines

PROTOCOLS = ("relaxed-counter", "relaxed-flag", "publish", "seqcst")
HOT_MODULES = ("entropy", "core", "runtime")

_LOAD_NAMES = ("load",)
_STORE_NAMES = ("store",)
_RMW_NAMES = ("fetch_add", "fetch_sub", "fetch_and", "fetch_or",
              "fetch_xor", "exchange", "compare_exchange_weak",
              "compare_exchange_strong")
_ORDERS = ("relaxed", "consume", "acquire", "release", "acq_rel",
           "seq_cst")


@dataclass
class Access:
    op: str       # "load" | "store" | "rmw"
    order: str    # one of _ORDERS
    explicit: bool
    path: str
    line: int


@dataclass
class AtomicVar:
    key: str                  # "Class::member" or "path::name"
    decl_path: str
    decl_line: int
    protocol: str | None      # annotation value, if any
    module: str | None
    accesses: list


def _orders_in_group(group: list[Token]) -> list[str]:
    # Only top-level arguments count: in `a.store(b.load(acquire)+1, release)`
    # the order of the *store* is `release`; the nested load's order sits one
    # paren level deeper and is classified by its own access scan.
    out, depth = [], 0
    for t in group:
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif (depth == 0 and t.kind == IDENT
              and t.text.startswith("memory_order")):
            suffix = t.text[len("memory_order"):].lstrip("_")
            if suffix in _ORDERS:
                out.append(suffix)
    return out


def _paren_group(toks: list[Token], i: int) -> list[Token]:
    """Tokens inside the group opened at toks[i] == '('."""
    depth, out = 0, []
    while i < len(toks):
        t = toks[i]
        if t.text == "(":
            depth += 1
            if depth == 1:
                i += 1
                continue
        elif t.text == ")":
            depth -= 1
            if depth == 0:
                return out
        out.append(t)
        i += 1
    return out


_ASSIGN_RMW = ("+=", "-=", "&=", "|=", "^=", "++", "--")


def _classify(toks: list[Token], i: int, path: str) -> Access | None:
    """Access made by the atomic named at toks[i], or None (decl, &x, ...)."""
    t = toks[i]
    prev = toks[i - 1] if i > 0 else None
    nxt = toks[i + 1] if i + 1 < len(toks) else None
    if prev is not None and prev.text in (".", "->", "::", "&"):
        return None  # someone else's member, or address-of
    if nxt is None:
        return Access("load", "seq_cst", False, path, t.line)
    if nxt.text == "[":
        # Array-of-atomics element access: counts_[i].fetch_add(...).
        depth, j = 0, i + 1
        while j < len(toks):
            if toks[j].text == "[":
                depth += 1
            elif toks[j].text == "]":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        i = j
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        if nxt is None:
            return Access("load", "seq_cst", False, path, t.line)
    if nxt.text in (".", "->") and i + 2 < len(toks):
        member = toks[i + 2]
        group = _paren_group(toks, i + 3) if i + 3 < len(toks) and \
            toks[i + 3].text == "(" else None
        if group is None:
            return None
        orders = _orders_in_group(group)
        order = orders[0] if orders else "seq_cst"
        if member.text in _LOAD_NAMES:
            return Access("load", order, bool(orders), path, member.line)
        if member.text in _STORE_NAMES:
            return Access("store", order, bool(orders), path, member.line)
        if member.text in _RMW_NAMES:
            return Access("rmw", order, bool(orders), path, member.line)
        return None  # is_lock_free(), wait(), ...
    if nxt.text == "=":
        return Access("store", "seq_cst", False, path, t.line)
    if nxt.text in _ASSIGN_RMW or (prev is not None and
                                   prev.text in ("++", "--")):
        return Access("rmw", "seq_cst", False, path, t.line)
    if nxt.text in ("{", "("):
        return None  # brace/paren initialization at declaration
    return Access("load", "seq_cst", False, path, t.line)


def _is_atomic_type(type_toks: list[Token]) -> bool:
    return any(t.kind == IDENT and t.text == "atomic" for t in type_toks)


def _scan_accesses(toks: list[Token], name: str, decl_line: int,
                   path: str, out: list) -> None:
    for i, t in enumerate(toks):
        if t.kind != IDENT or t.text != name or t.line == decl_line:
            continue
        access = _classify(toks, i, path)
        if access is not None:
            out.append(access)


def _collect(ctx) -> list[AtomicVar]:
    atomics: list[AtomicVar] = []
    # Member atomics: declared in a class (usually a header), accessed in
    # the class body span (header-inline methods) and in every
    # out-of-line method of that class anywhere in the universe.
    seen_members: set[str] = set()
    for path, model in sorted(ctx.models.items()):
        for cls in model.classes:
            for fname, type_toks in cls.fields.items():
                if not _is_atomic_type(type_toks):
                    continue
                key = f"{cls.name}::{fname}"
                if key in seen_members:
                    continue
                seen_members.add(key)
                decl_line = cls.field_lines[fname]
                ann = _annotation(model, decl_line)
                accesses: list[Access] = []
                span = [t for t in model.code
                        if cls.line <= t.line <= (cls.end_line or cls.line)]
                _scan_accesses(span, fname, decl_line, path, accesses)
                for mpath, mmodel in sorted(ctx.models.items()):
                    for method in mmodel.methods:
                        if method.cls != cls.name:
                            continue
                        _scan_accesses(method.body, fname, decl_line,
                                       mpath, accesses)
                atomics.append(AtomicVar(
                    key, path, decl_line, ann,
                    ctx.universe.module_of(path), accesses))
    # Namespace-scope atomics: file-local by convention; accesses are
    # scanned over the defining file.
    for path, model in sorted(ctx.models.items()):
        for gname, type_toks in model.globals_.items():
            if not _is_atomic_type(type_toks):
                continue
            decl_line = model.global_lines[gname]
            ann = _annotation(model, decl_line)
            accesses = []
            _scan_accesses(model.code, gname, decl_line, path, accesses)
            atomics.append(AtomicVar(
                f"{path}::{gname}", path, decl_line, ann,
                ctx.universe.module_of(path), accesses))
    return atomics


def _annotation(model, decl_line: int) -> str | None:
    for kind, value in model.annotations.get(decl_line, ()):
        if kind == "atomic":
            return value
    return None


def _protocol_violation(protocol: str, a: Access) -> str | None:
    if protocol in ("relaxed-counter", "relaxed-flag"):
        if a.order != "relaxed":
            return (f"{a.op} uses {a.order} but the declared protocol "
                    f"'{protocol}' requires every access relaxed")
    elif protocol == "publish":
        if a.op == "store" and a.order not in ("release", "seq_cst"):
            return (f"store uses {a.order} but protocol 'publish' "
                    f"requires release or seq_cst stores")
        if a.op == "rmw" and a.order not in ("acq_rel", "release",
                                             "seq_cst"):
            return (f"RMW uses {a.order} but protocol 'publish' "
                    f"requires acq_rel/release/seq_cst RMWs")
        if a.op == "load" and a.order not in ("acquire", "seq_cst",
                                              "relaxed", "consume"):
            return (f"load uses {a.order}, outside protocol 'publish'")
    elif protocol == "seqcst":
        if a.order != "seq_cst":
            return (f"{a.op} uses {a.order} but the declared protocol "
                    f"'seqcst' requires seq_cst accesses")
    return None


def run(ctx) -> list[Finding]:
    findings: list[Finding] = []
    for var in _collect(ctx):
        if var.module is None:
            continue  # findings only in the layered src/ tree
        model = ctx.models.get(var.decl_path)
        suppressed: set[int] = set()
        if model is not None:
            for rule in ("atomic-relaxed-publication",
                         "atomic-undocumented-relaxed",
                         "atomic-mixed-order", "atomic-default-seqcst",
                         "atomic-annotation-mismatch"):
                suppressed |= nolint_lines(model.tokens, rule)
        if var.decl_line in suppressed:
            continue

        if var.protocol is not None:
            if var.protocol not in PROTOCOLS:
                findings.append(Finding(
                    "atomic-annotation-mismatch", var.decl_path,
                    var.decl_line,
                    f"{var.key} declares unknown atomic protocol "
                    f"'{var.protocol}' (known: {', '.join(PROTOCOLS)})",
                    anchor=var.key))
                continue
            for a in var.accesses:
                why = _protocol_violation(var.protocol, a)
                if why is not None:
                    findings.append(Finding(
                        "atomic-annotation-mismatch", a.path, a.line,
                        f"{var.key}: {why}",
                        anchor=var.key,
                        related=[(var.decl_path, var.decl_line,
                                  f"protocol '{var.protocol}' declared "
                                  f"here")]))
                    break
            continue

        # Unannotated atomic: infer trouble from the access set.
        relaxed_stores = [a for a in var.accesses
                          if a.op in ("store", "rmw") and
                          a.order == "relaxed"]
        acq_loads = [a for a in var.accesses
                     if a.op == "load" and a.order in ("acquire",
                                                       "seq_cst") and
                     a.explicit]
        if relaxed_stores and acq_loads:
            a = relaxed_stores[0]
            findings.append(Finding(
                "atomic-relaxed-publication", a.path, a.line,
                f"{var.key} is stored with memory_order_relaxed here but "
                f"loaded with {acq_loads[0].order} at "
                f"{acq_loads[0].path}:{acq_loads[0].line}; a relaxed "
                f"store publishes nothing — use release, or annotate "
                f"the protocol",
                anchor=var.key,
                related=[(acq_loads[0].path, acq_loads[0].line,
                          f"{acq_loads[0].order} load pairing with the "
                          f"relaxed store")]))
            continue
        relaxed = [a for a in var.accesses if a.order == "relaxed"]
        if relaxed:
            a = relaxed[0]
            findings.append(Finding(
                "atomic-undocumented-relaxed", var.decl_path,
                var.decl_line,
                f"{var.key} uses memory_order_relaxed "
                f"({a.path}:{a.line}) without an `// analyze: "
                f"atomic(...)` protocol annotation on its declaration",
                anchor=var.key,
                related=[(a.path, a.line, "first relaxed access")]))
            continue
        explicit_orders = {a.order for a in var.accesses if a.explicit}
        if len(explicit_orders | ({"seq_cst"} if
                                  any(not a.explicit
                                      for a in var.accesses) else
                                  set())) > 1:
            a = next(x for x in var.accesses if x.explicit)
            findings.append(Finding(
                "atomic-mixed-order", var.decl_path, var.decl_line,
                f"{var.key} is accessed with mixed memory orders "
                f"({', '.join(sorted(explicit_orders | {'seq_cst'}))}) "
                f"and no protocol annotation documents the pairing",
                anchor=var.key,
                related=[(a.path, a.line,
                          f"explicit {a.order} access")]))
            continue
        if var.accesses and not explicit_orders and \
                var.module in HOT_MODULES:
            findings.append(Finding(
                "atomic-default-seqcst", var.decl_path, var.decl_line,
                f"{var.key} relies on defaulted seq_cst for every access "
                f"on the hot path (module '{var.module}'); annotate "
                f"`// analyze: atomic(seqcst)` if the strength is "
                f"intended, or weaken the orders",
                anchor=var.key))
    return findings
