// Tests for the feature extractor (exact vs estimated paths + cost
// accounting).
#include "core/feature_extractor.h"

#include <vector>

#include <gtest/gtest.h>

#include "entropy/entropy_vector.h"
#include "util/random.h"

namespace iustitia::core {
namespace {

std::vector<std::uint8_t> random_buffer(std::size_t size,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(32));
  return data;
}

TEST(FeatureExtractor, ExactPathMatchesDirectComputation) {
  const auto widths = entropy::svm_preferred_widths();
  FeatureExtractor extractor(widths);
  const auto data = random_buffer(1024, 1);
  const ExtractionResult result = extractor.extract(data);
  EXPECT_FALSE(extractor.uses_estimation());
  EXPECT_EQ(result.features, entropy::entropy_vector(data, widths));
  EXPECT_GE(result.micros, 0.0);
  EXPECT_GT(result.space_bytes, 0u);
}

TEST(FeatureExtractor, EstimatedPathIsDeterministicPerConstruction) {
  const auto widths = entropy::svm_preferred_widths();
  const entropy::EstimatorParams params{.epsilon = 0.3, .delta = 0.5};
  const auto data = random_buffer(1024, 2);
  FeatureExtractor a(widths, params, /*seed=*/7);
  FeatureExtractor b(widths, params, /*seed=*/7);
  EXPECT_TRUE(a.uses_estimation());
  EXPECT_EQ(a.extract(data).features, b.extract(data).features);
}

TEST(FeatureExtractor, EstimatedFeaturesNearExact) {
  const auto widths = entropy::svm_preferred_widths();
  const entropy::EstimatorParams params{.epsilon = 0.2, .delta = 0.25};
  const auto data = random_buffer(2048, 3);
  FeatureExtractor estimator(widths, params, 11);
  const auto exact = entropy::entropy_vector(data, widths);
  const auto estimated = estimator.extract(data).features;
  ASSERT_EQ(estimated.size(), exact.size());
  EXPECT_DOUBLE_EQ(estimated[0], exact[0]);  // h1 always exact
  for (std::size_t i = 1; i < exact.size(); ++i) {
    EXPECT_NEAR(estimated[i], exact[i], 0.2) << "feature " << i;
  }
}

TEST(FeatureExtractor, EstimatedSpaceBelowExactForLargeBuffers) {
  const auto widths = entropy::svm_preferred_widths();
  const entropy::EstimatorParams params{.epsilon = 0.25, .delta = 0.75};
  const auto data = random_buffer(4096, 4);
  FeatureExtractor exact(widths);
  FeatureExtractor estimated(widths, params, 5);
  EXPECT_LT(estimated.extract(data).space_bytes,
            exact.extract(data).space_bytes);
}

TEST(FeatureExtractor, HandlesEmptyAndTinyInput) {
  const auto widths = entropy::svm_preferred_widths();
  FeatureExtractor extractor(widths);
  EXPECT_EQ(extractor.extract({}).features.size(), widths.size());
  const std::vector<std::uint8_t> tiny{0x42};
  const auto result = extractor.extract(tiny);
  for (const double h : result.features) {
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
  }
}

}  // namespace
}  // namespace iustitia::core
