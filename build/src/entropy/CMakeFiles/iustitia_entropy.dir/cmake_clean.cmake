file(REMOVE_RECURSE
  "CMakeFiles/iustitia_entropy.dir/divergence.cc.o"
  "CMakeFiles/iustitia_entropy.dir/divergence.cc.o.d"
  "CMakeFiles/iustitia_entropy.dir/entropy_vector.cc.o"
  "CMakeFiles/iustitia_entropy.dir/entropy_vector.cc.o.d"
  "CMakeFiles/iustitia_entropy.dir/estimator.cc.o"
  "CMakeFiles/iustitia_entropy.dir/estimator.cc.o.d"
  "CMakeFiles/iustitia_entropy.dir/gram_counter.cc.o"
  "CMakeFiles/iustitia_entropy.dir/gram_counter.cc.o.d"
  "libiustitia_entropy.a"
  "libiustitia_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
