// Classification Database (CDB), paper Fig. 1 and Section 4.5.
//
// Maps 160-bit flow IDs to nature labels.  Each record stores the label,
// the last packet arrival time, and lambda' (the inter-arrival gap of the
// flow's last two packets); the paper charges 194 bits per record (160-bit
// SHA-1 + 32-bit lambda' + 2-bit label).  Records leave the table three
// ways: explicit FIN/RST removal, the inactivity rule
// t_now - t_last > n * lambda', and never (when purging is disabled, the
// Fig. 8 baseline).  On top of the heuristics, CdbOptions::max_records
// is a hard ceiling: an insert that would exceed it force-evicts the
// least-recently-active record first (accounted separately as
// forced_evictions), so resident memory is bounded even when the purge
// heuristics lose (DESIGN.md §12).
//
// Thread safety: fully synchronized behind one annotated mutex, so a CDB
// may be shared across shards or polled (size/stats) while an owner thread
// classifies.  Per-shard CDBs in the usual deployment see zero contention.
#ifndef IUSTITIA_CORE_CDB_H_
#define IUSTITIA_CORE_CDB_H_

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "core/config.h"
#include "datagen/corpus.h"
#include "net/flow.h"
#include "util/thread_annotations.h"

namespace iustitia::core {

// Lifetime counters for the CDB experiments.
struct CdbStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t fin_rst_removals = 0;
  std::uint64_t inactivity_removals = 0;
  std::uint64_t reclassification_removals = 0;
  std::uint64_t purge_runs = 0;
  // Hard-ceiling evictions (max_records), separate from the heuristic
  // removal counters above so operators can see when the heuristics are
  // losing to the ceiling.
  std::uint64_t forced_evictions = 0;
  // Inserts refused by fault injection (FAILPOINT("cdb.insert")).
  std::uint64_t insert_failures = 0;
};

class ClassificationDatabase {
 public:
  // CHECK-validates the options: inactivity_coefficient and default_lambda
  // must be positive, reclassify_after_seconds non-negative.
  explicit ClassificationDatabase(const CdbOptions& options = {});

  // Looks up a flow; on a hit refreshes t_last and lambda'.
  std::optional<datagen::FileClass> lookup(const net::FlowId& id, double now);

  // Read-only lookup that does not touch timing state (for inspection).
  std::optional<datagen::FileClass> peek(const net::FlowId& id) const;

  // Inserts (or overwrites) a freshly classified flow, force-evicting
  // the least-recently-active record first when the max_records ceiling
  // is reached.  Returns false when the insert was refused (injected
  // allocation failure) — the flow is simply not cached and will be
  // reclassified on its next packets.
  bool insert(const net::FlowId& id, datagen::FileClass label, double now);

  // FIN/RST handler: removes the flow if present (no-op when disabled).
  void remove_on_close(const net::FlowId& id);

  // Called once per new flow insertion by the engine; runs the inactivity
  // purge when the insert counter crosses the configured trigger.
  void maybe_purge(double now);

  // Unconditional inactivity purge; returns records removed.
  std::size_t purge(double now);

  std::size_t size() const;

  // Memory footprint using the paper's 194-bit record accounting.
  std::uint64_t memory_bits() const { return size() * 194; }

  // Snapshot of the lifetime counters (copied under the lock).
  CdbStats stats() const;
  const CdbOptions& options() const noexcept { return options_; }

 private:
  struct Record {
    datagen::FileClass label = datagen::FileClass::kText;
    double last_arrival = 0.0;
    double created_at = 0.0;  // classification time (reclassification rule)
    double lambda = 0.0;      // inter-arrival of the last two packets
    bool has_lambda = false;
    // Position in order_ (recency list); maintained by every mutation.
    std::list<net::FlowId>::iterator order_it;
  };

  std::size_t purge_locked(double now) IUSTITIA_REQUIRES(mu_);
  // Removes the least-recently-active record (front of order_),
  // counting it as a forced eviction.
  void evict_oldest_locked() IUSTITIA_REQUIRES(mu_);

  const CdbOptions options_;  // immutable after construction
  mutable util::Mutex mu_{"ClassificationDatabase::mu_"};
  std::unordered_map<net::FlowId, Record> records_ IUSTITIA_GUARDED_BY(mu_);
  // Recency order, least-recently-active first: lookup hits splice
  // their node to the back (pointer swaps, no allocation — hot-path
  // legal), inserts append, removals erase.  Invariant:
  // order_.size() == records_.size().
  std::list<net::FlowId> order_ IUSTITIA_GUARDED_BY(mu_);
  std::size_t inserts_since_purge_ IUSTITIA_GUARDED_BY(mu_) = 0;
  CdbStats stats_ IUSTITIA_GUARDED_BY(mu_);
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_CDB_H_
