// Feature selection (paper Section 4.1).
//
// Two schemes, matching the paper:
//  - CART voting: grow one tree per cross-validation fold, prune each until
//    its validation accuracy drops by a threshold (the paper uses 2%), then
//    vote on the features still used by the pruned trees.
//  - Sequential Forward Search (SFS) for the SVM: start from the empty
//    feature set, greedily add the feature that maximizes cross-validated
//    accuracy, stop after n' features; run per fold and vote.
#ifndef IUSTITIA_ML_FEATURE_SELECTION_H_
#define IUSTITIA_ML_FEATURE_SELECTION_H_

#include <cstddef>
#include <vector>

#include "ml/cart.h"
#include "ml/dataset.h"
#include "ml/svm.h"
#include "util/random.h"

namespace iustitia::ml {

// Result of a feature-selection run.
struct FeatureSelectionResult {
  std::vector<std::size_t> selected;   // chosen feature indices, ascending
  std::vector<double> votes;           // per-feature vote weight
};

// CART pruning-vote selection over `folds` stratified folds.  `max_accuracy_drop`
// is the pruning budget (paper: 0.02); `target_features` caps the selection.
FeatureSelectionResult cart_vote_selection(const Dataset& data,
                                           std::size_t folds,
                                           double max_accuracy_drop,
                                           std::size_t target_features,
                                           const CartParams& params,
                                           util::Rng& rng);

// SFS selection for the SVM: greedily grows the feature set to
// `target_features`, evaluating each candidate with a stratified holdout of
// `eval_train_fraction` per step; run over `folds` resamplings and voted.
FeatureSelectionResult sequential_forward_selection(
    const Dataset& data, std::size_t folds, std::size_t target_features,
    const SvmParams& params, double eval_train_fraction, util::Rng& rng);

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_FEATURE_SELECTION_H_
