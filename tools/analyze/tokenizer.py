"""A real C++ tokenizer (lexer) for the iustitia static analyzer.

Unlike the line-regex checks in tools/lint.py, every pass in tools/analyze
works on a token stream: identifiers, numbers, string/char literals
(including raw strings), punctuation, preprocessor directives, and
comments, each carrying a line number.  Comments and preprocessor lines
are kept as tokens so passes can honor inline suppressions and read
#include / #define directives, but `code_tokens()` gives the stream most
passes want: everything the compiler proper would see.

This is a lexer, not a parser: the pass layer reconstructs just enough
structure (namespaces, class bodies, method definitions, switch arms) by
tracking brace/paren depth over the token stream.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"
PP = "pp"            # a full preprocessor directive (continuations joined)
COMMENT = "comment"

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

# Longest-first so maximal munch works with simple prefix matching.
_PUNCTUATORS = sorted(
    ["<<=", ">>=", "...", "->*", "<=>", "::", "->", "++", "--", "<<", ">>",
     "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
     "|=", "^=", "##", "{", "}", "[", "]", "(", ")", ";", ":", ",", ".",
     "?", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
     "#"],
    key=len, reverse=True)

_RAW_STRING_RE = re.compile(r'(?:u8|[uUL])?R"([^ ()\\\t\v\f\n]*)\(')

# Encoding prefix directly attached to an ordinary string or char literal:
# u8"x", L"x", u'x', U'x', u8'c'.  Matches only when the quote immediately
# follows, so identifiers that merely start with u/U/L are untouched.
_LIT_PREFIX_RE = re.compile(r"(?:u8|[uUL])?(['\"])")


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int  # 1-based

    def __repr__(self) -> str:  # compact for debugging
        return f"{self.kind}:{self.line}:{self.text!r}"


class TokenizeError(ValueError):
    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        self.line = line


def tokenize(text: str) -> list[Token]:
    """Lexes C++ source into a token list (comments and pp lines included)."""
    tokens: list[Token] = []
    i, n, line = 0, len(text), 1
    at_line_start = True  # only whitespace seen since the last newline

    def take_string(quote: str, start: int) -> int:
        j = start + 1
        while j < n:
            c = text[j]
            if c == "\\":
                j += 2
                continue
            if c == quote:
                return j + 1
            if c == "\n":
                # Unterminated literal: tolerate (broken fixture sources
                # must not crash the analyzer) and resync at the newline.
                return j
            j += 1
        return n

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\v\f":
            i += 1
            continue

        # Preprocessor directive: '#' first on the line; join continuations.
        if c == "#" and at_line_start:
            start, start_line = i, line
            while i < n and text[i] != "\n":
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                # A // comment ends the directive text.
                if text[i] == "/" and i + 1 < n and text[i + 1] == "/":
                    break
                i += 1
            directive = re.sub(r"\\\n", " ", text[start:i]).strip()
            tokens.append(Token(PP, directive, start_line))
            # Leave the trailing comment/newline for the main loop.
            at_line_start = False
            continue

        at_line_start = False

        if c == "/" and i + 1 < n and text[i + 1] == "/":
            start, start_line = i, line
            while i < n and text[i] != "\n":
                i += 1
            tokens.append(Token(COMMENT, text[start:i], start_line))
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            start, start_line = i, line
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i = min(n, i + 2)
            tokens.append(Token(COMMENT, text[start:i], start_line))
            continue

        # Raw string literal: R"delim( ... )delim".
        m = _RAW_STRING_RE.match(text, i)
        if m:
            delim = m.group(1)
            close = text.find(f"){delim}\"", m.end())
            if close < 0:
                close = n
            literal = text[i:min(n, close + len(delim) + 2)]
            tokens.append(Token(STRING, literal, line))
            line += literal.count("\n")
            i += len(literal)
            continue

        m = _LIT_PREFIX_RE.match(text, i)
        if m:
            quote = m.group(1)
            start, start_line = i, line
            end = take_string(quote, m.end() - 1)
            kind = STRING if quote == '"' else CHAR
            tokens.append(Token(kind, text[start:end], start_line))
            i = end
            continue

        if c in _IDENT_START:
            start = i
            while i < n and text[i] in _IDENT_CONT:
                i += 1
            tokens.append(Token(IDENT, text[start:i], line))
            continue

        if c in _DIGITS or (c == "." and i + 1 < n and text[i + 1] in _DIGITS):
            start = i
            i += 1
            while i < n:
                ch = text[i]
                if ch in _IDENT_CONT or ch in "'.":
                    i += 1
                elif ch in "+-" and text[i - 1] in "eEpP":
                    i += 1  # exponent sign
                else:
                    break
            tokens.append(Token(NUMBER, text[start:i], line))
            continue

        for p in _PUNCTUATORS:
            if text.startswith(p, i):
                tokens.append(Token(PUNCT, p, line))
                i += len(p)
                break
        else:
            # Unknown byte (stray unicode, etc.): skip, never crash.
            i += 1

    return tokens


def code_tokens(tokens: list[Token]) -> list[Token]:
    """The stream the compiler proper sees: no comments, no pp directives."""
    return [t for t in tokens if t.kind not in (COMMENT, PP)]


def nolint_lines(tokens: list[Token], rule: str) -> set[int]:
    """1-based lines suppressed for `rule` via // NOLINT(rule) comments.

    NOLINTNEXTLINE(rule) suppresses the following line; NOLINTALL the
    whole comment's line.  Shares the marker syntax with tools/lint.py so
    one suppression idiom covers both tools.
    """
    marked: set[int] = set()
    for t in tokens:
        if t.kind != COMMENT:
            continue
        if f"NOLINT({rule})" in t.text or "NOLINTALL" in t.text:
            marked.add(t.line)
        if f"NOLINTNEXTLINE({rule})" in t.text:
            marked.add(t.line + t.text.count("\n") + 1)
    return marked
