// Tests for the k-fold cross-validation driver.
#include "ml/cross_validation.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace iustitia::ml {
namespace {

Dataset blobs(std::size_t per_class, util::Rng& rng) {
  Dataset data(3);
  const double centers[3] = {0.0, 4.0, 8.0};
  for (int c = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < per_class; ++i) {
      data.add({rng.normal(centers[c], 0.5), rng.uniform()}, c);
    }
  }
  return data;
}

TEST(CrossValidate, ProducesOneMatrixPerFold) {
  util::Rng rng(1);
  const Dataset data = blobs(30, rng);
  const auto folds = cross_validate(data, 5, make_cart_factory(), rng);
  ASSERT_EQ(folds.size(), 5u);
  std::size_t total = 0;
  for (const auto& fold : folds) total += fold.total();
  EXPECT_EQ(total, data.size());  // every sample tested exactly once
}

TEST(CrossValidate, RejectsTooFewFolds) {
  util::Rng rng(2);
  const Dataset data = blobs(10, rng);
  EXPECT_THROW(cross_validate(data, 1, make_cart_factory(), rng),
               std::invalid_argument);
}

TEST(CrossValidate, CartAccurateOnSeparableBlobs) {
  util::Rng rng(3);
  const Dataset data = blobs(40, rng);
  const auto folds = cross_validate(data, 5, make_cart_factory(), rng);
  EXPECT_GE(mean_accuracy(folds), 0.95);
}

TEST(CrossValidate, SvmAccurateOnSeparableBlobs) {
  util::Rng rng(4);
  const Dataset data = blobs(30, rng);
  const auto folds = cross_validate(
      data, 3, make_svm_factory(SvmParams{.gamma = 2.0, .c = 100.0}), rng);
  EXPECT_GE(mean_accuracy(folds), 0.95);
}

TEST(PoolFolds, MergesCounts) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(1, 0);
  const ConfusionMatrix pooled = pool_folds({a, b});
  EXPECT_EQ(pooled.total(), 2u);
  EXPECT_EQ(pooled.count(1, 0), 1u);
  EXPECT_THROW(pool_folds({}), std::invalid_argument);
}

TEST(CrossValidate, DeterministicGivenSeed) {
  const Dataset data = [] {
    util::Rng rng(5);
    return blobs(20, rng);
  }();
  util::Rng rng_a(6), rng_b(6);
  const auto a = cross_validate(data, 4, make_cart_factory(), rng_a);
  const auto b = cross_validate(data, 4, make_cart_factory(), rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) {
    EXPECT_DOUBLE_EQ(a[f].accuracy(), b[f].accuracy());
  }
}

}  // namespace
}  // namespace iustitia::ml
