# Empty compiler generated dependencies file for bench_table3_estimation_cost.
# This may be replaced when dependencies are built.
