file(REMOVE_RECURSE
  "libiustitia_entropy.a"
)
