// Replacement operator new/delete for IUSTITIA_RT_DEBUG builds of the
// CLI: every heap call reports to util::rt::note_alloc so the replay
// path FATALs on an allocation inside a guarded hot loop.  Linked into
// iustitia_cli only when the option is on (tools/CMakeLists.txt); the
// test binaries get the same behaviour from tests/alloc_hook.h.
#include <cstdlib>
#include <new>

#include "util/rt_guard.h"

namespace {

void* checked_alloc(std::size_t size) {
  iustitia::util::rt::note_alloc("operator new");
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void checked_free(void* p) noexcept {
  iustitia::util::rt::note_alloc("operator delete");
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return checked_alloc(size); }
void* operator new[](std::size_t size) { return checked_alloc(size); }
void operator delete(void* p) noexcept { checked_free(p); }
void operator delete[](void* p) noexcept { checked_free(p); }
void operator delete(void* p, std::size_t) noexcept { checked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { checked_free(p); }
