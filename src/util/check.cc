#include "util/check.h"

#include "util/logging.h"

namespace iustitia::util::internal {

CheckFailure::CheckFailure(const char* file, int line, const char* message) {
  // The trailing space separates the check text from any streamed context.
  stream_ << file << ":" << line << ": " << message << " ";
}

CheckFailure::~CheckFailure() { log_fatal(stream_.str()); }

}  // namespace iustitia::util::internal
