// Tests for SVM (gamma, C) grid search.
#include "ml/model_selection.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace iustitia::ml {
namespace {

Dataset blobs(util::Rng& rng) {
  Dataset data(2);
  for (int i = 0; i < 60; ++i) {
    data.add({rng.normal(0.0, 0.4), rng.normal(0.0, 0.4)}, 0);
    data.add({rng.normal(3.0, 0.4), rng.normal(3.0, 0.4)}, 1);
  }
  return data;
}

TEST(SvmGridSearch, EvaluatesFullGridAndPicksMaximum) {
  util::Rng rng(1);
  const Dataset data = blobs(rng);
  const double gammas[] = {0.5, 5.0};
  const double cs[] = {1.0, 100.0};
  const GridSearchResult result =
      svm_grid_search(data, gammas, cs, 3, SvmParams{}, rng);
  EXPECT_EQ(result.evaluated.size(), 4u);
  for (const GridPoint& p : result.evaluated) {
    EXPECT_LE(p.accuracy, result.best.accuracy + 1e-12);
  }
  EXPECT_GE(result.best.accuracy, 0.9);
}

TEST(SvmGridSearch, RejectsEmptyGrid) {
  util::Rng rng(2);
  const Dataset data = blobs(rng);
  const double gammas[] = {1.0};
  EXPECT_THROW(svm_grid_search(data, gammas, {}, 3, SvmParams{}, rng),
               std::invalid_argument);
  EXPECT_THROW(svm_grid_search(data, {}, gammas, 3, SvmParams{}, rng),
               std::invalid_argument);
}

TEST(SvmGridSearch, BestPointCarriesItsParameters) {
  util::Rng rng(3);
  const Dataset data = blobs(rng);
  const double gammas[] = {1.0};
  const double cs[] = {10.0};
  const GridSearchResult result =
      svm_grid_search(data, gammas, cs, 3, SvmParams{}, rng);
  EXPECT_DOUBLE_EQ(result.best.gamma, 1.0);
  EXPECT_DOUBLE_EQ(result.best.c, 10.0);
}

}  // namespace
}  // namespace iustitia::ml
