// k-fold cross-validation driver (the paper's "10 times cross-validation",
// Section 3.2, Figures 2(b) and 2(c)).
#ifndef IUSTITIA_ML_CROSS_VALIDATION_H_
#define IUSTITIA_ML_CROSS_VALIDATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "ml/cart.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "ml/svm.h"
#include "util/random.h"

namespace iustitia::ml {

// Trains a model on each fold's train split and evaluates on its test
// split.  The factory receives the train split and must return a trained
// model usable through the Classifier interface.
using ModelFactory =
    std::function<std::unique_ptr<Classifier>(const Dataset& train)>;

// Per-fold confusion matrices of a stratified k-fold run.
std::vector<ConfusionMatrix> cross_validate(const Dataset& data,
                                            std::size_t folds,
                                            const ModelFactory& factory,
                                            util::Rng& rng);

// Aggregates per-fold matrices into one pooled matrix.
ConfusionMatrix pool_folds(const std::vector<ConfusionMatrix>& folds);

// Convenience factories for the two paper backends.  Both fit a min-max
// scaler on the train split (identity for CART would be harmless; only the
// SVM factory scales).
ModelFactory make_cart_factory(const CartParams& params = {});
ModelFactory make_svm_factory(const SvmParams& params);

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_CROSS_VALIDATION_H_
