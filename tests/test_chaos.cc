// Fault-injection soak tests (DESIGN.md §12): a live replay with armed
// failpoints — transient source errors, ring-push delays, CDB insert
// alloc failures — plus a mid-replay model hot-swap, asserting packet
// conservation, the CDB record ceiling, and recovery of the health
// signal.  A second soak pins workers with worker.stall until the
// watchdog fails readiness, then disarms and requires full recovery.
// tools/ci.sh runs this binary under ASan/UBSan and TSan as well.
#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "appproto/trace_headers.h"
#include "core/model_registry.h"
#include "core/trainer.h"
#include "net/trace_gen.h"
#include "runtime/metrics.h"
#include "util/failpoint.h"

namespace iustitia::runtime {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::size_t kSoakPackets = 10'000;
#else
constexpr std::size_t kSoakPackets = 40'000;
#endif

core::FlowNatureModel small_model() {
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 8;
  corpus_options.min_size = 1024;
  corpus_options.max_size = 2048;
  corpus_options.seed = 412;
  const auto corpus = datagen::build_corpus(corpus_options);
  core::TrainerOptions options;
  options.backend = core::Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = core::TrainingMethod::kFirstBytes;
  options.buffer_size = 32;
  return core::train_model(corpus, options);
}

net::TraceOptions trace_options(std::size_t packets, std::uint64_t seed) {
  net::TraceOptions options;
  options.header_source = appproto::standard_header_source();
  options.target_packets = packets;
  options.seed = seed;
  return options;
}

bool poll_until(const std::function<bool()>& done,
                std::chrono::milliseconds budget =
                    std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    util::failpoints_disarm_all();
    util::failpoints_set_seed(7);
  }
  void TearDown() override { util::failpoints_disarm_all(); }
};

// The headline soak: sustained injected faults on every layer of the
// ingest path must not lose a packet (blocking backpressure), must not
// grow the CDB past its ceiling, and must leave the runtime healthy.
TEST_F(ChaosTest, SoakConservesPacketsAndBoundsCdbUnderInjectedFaults) {
  ASSERT_EQ(util::failpoints_configure(
                "source.next=error(0.02);"
                "ring.push=delay(20us,0.01);"
                "cdb.insert=alloc-fail(0.2)"),
            "");

  RuntimeOptions options;
  options.shards = 4;
  options.backpressure = BackpressurePolicy::kBlock;
  options.engine.buffer_size = 32;
  options.engine.cdb.max_records = 64;  // per-shard hard ceiling
  options.watchdog_deadline_ms = 5000;  // present but not provoked here
  auto registry = std::make_shared<core::ModelRegistry>(
      options.shards,
      std::make_shared<const core::FlowNatureModel>(small_model()), "v1");
  Runtime rt(registry, options);

  TraceSource source(trace_options(kSoakPackets, 901));
  rt.start(source);
  // Mid-replay model hot-swap while the faults are live.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  registry->publish(
      std::make_shared<const core::FlowNatureModel>(small_model()), "v2");
  rt.wait();

  const MetricsSnapshot snap = rt.snapshot();
  // Conservation: every generated packet was eventually read (transient
  // errors were retried, not treated as end-of-stream), pushed, and
  // popped; blocking mode loses nothing.
  EXPECT_EQ(snap.packets_in, kSoakPackets);
  EXPECT_EQ(snap.total_pushed(), kSoakPackets);
  EXPECT_EQ(snap.total_popped(), kSoakPackets);
  EXPECT_EQ(snap.total_dropped(), 0u);
  // The injected source errors actually happened and were absorbed.
  EXPECT_GT(snap.source_transient_errors, 0u);
  EXPECT_EQ(snap.source_retries_exhausted, 0u);
  // Bounded memory: no shard's CDB may exceed the ceiling, and refused
  // inserts were accounted, not silently dropped.
  EXPECT_EQ(snap.cdb_ceiling, 64u);
  EXPECT_LE(snap.cdb_records, options.shards * 64u);
  EXPECT_GT(snap.cdb_insert_failures, 0u);
  // The swap landed while packets flowed.
  EXPECT_EQ(snap.model_version, "v2");
  EXPECT_EQ(snap.model_swaps, 1u);
  // Quiescent and fault-free again: health is back to ok.
  EXPECT_EQ(rt.health().state, HealthState::kOk);
  EXPECT_EQ(snap.health, "ok");
  EXPECT_EQ(snap.watchdog_stalls, 0u);
}

// Readiness round-trip under a wedged worker: worker.stall pins every
// shard past the watchdog deadline (unhealthy), disarming lets the
// beats resume (ok), and the drained run still conserves every packet.
TEST_F(ChaosTest, WorkerStallTripsWatchdogThenRecoversAfterDisarm) {
  RuntimeOptions options;
  options.shards = 2;
  options.backpressure = BackpressurePolicy::kBlock;
  options.engine.buffer_size = 32;
  options.watchdog_deadline_ms = 100;
  auto registry = std::make_shared<core::ModelRegistry>(
      options.shards,
      std::make_shared<const core::FlowNatureModel>(small_model()), "v1");
  Runtime rt(registry, options);

  ASSERT_EQ(util::failpoints_configure("worker.stall=stall(400ms)"), "");
  TraceSource source(trace_options(kSoakPackets, 902));
  rt.start(source);

  // Workers beat once per 400ms stall against a 100ms deadline: the
  // watchdog must observe a stall and fail readiness.
  EXPECT_TRUE(poll_until([&] {
    return rt.health().state == HealthState::kUnhealthy;
  }));
  EXPECT_EQ(rt.health_string(), "unhealthy(watchdog)");

  // Disarm -> the beats resume -> readiness recovers while running.
  ASSERT_EQ(util::failpoints_configure("worker.stall=off"), "");
  EXPECT_TRUE(poll_until([&] {
    return rt.health().state == HealthState::kOk;
  }));

  rt.wait();
  const MetricsSnapshot snap = rt.snapshot();
  EXPECT_EQ(snap.packets_in, kSoakPackets);
  EXPECT_EQ(snap.total_popped(), kSoakPackets);
  EXPECT_EQ(snap.total_dropped(), 0u);
  EXPECT_GE(snap.watchdog_stalls, 1u);
  EXPECT_EQ(rt.health().state, HealthState::kOk);
}

}  // namespace
}  // namespace iustitia::runtime
