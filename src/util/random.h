// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in this repository flows through Rng so that every test,
// example, and benchmark is reproducible from a single 64-bit seed.  The
// generator is xoshiro256** seeded via SplitMix64, which is fast, has a
// 256-bit state, and passes BigCrush; <random> engines are avoided because
// their distributions are not guaranteed identical across standard-library
// implementations.
#ifndef IUSTITIA_UTIL_RANDOM_H_
#define IUSTITIA_UTIL_RANDOM_H_

#include <cstdint>
#include <span>
#include <vector>

namespace iustitia::util {

// Stateless 64-bit mixer used for seeding and hashing experiments.
// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
// generators" (OOPSLA 2014).
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

// Deterministic pseudo-random generator (xoshiro256**).
//
// Not thread-safe; create one Rng per thread or per experiment.  Never use
// for security purposes.
class Rng {
 public:
  // Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  // Next raw 64 bits.
  std::uint64_t next_u64() noexcept;

  // Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Standard normal variate (Box-Muller, one value per call).
  double normal() noexcept;

  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  // Exponential variate with the given rate (mean 1/rate). `rate` must be > 0.
  double exponential(double rate) noexcept;

  // Pareto variate with the given shape and minimum value (scale).
  double pareto(double shape, double scale) noexcept;

  // True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  // Index drawn from the (unnormalized, non-negative) weight vector.
  // Requires at least one strictly positive weight.
  std::size_t weighted_index(std::span<const double> weights) noexcept;

  // Fills `out` with uniform random bytes.
  void fill_bytes(std::span<std::uint8_t> out) noexcept;

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  // A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) noexcept;

  // Derives an independent child generator; useful for giving each parallel
  // experiment its own stream.
  Rng fork() noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_RANDOM_H_
