file(REMOVE_RECURSE
  "CMakeFiles/iustitia_core.dir/cdb.cc.o"
  "CMakeFiles/iustitia_core.dir/cdb.cc.o.d"
  "CMakeFiles/iustitia_core.dir/engine.cc.o"
  "CMakeFiles/iustitia_core.dir/engine.cc.o.d"
  "CMakeFiles/iustitia_core.dir/feature_extractor.cc.o"
  "CMakeFiles/iustitia_core.dir/feature_extractor.cc.o.d"
  "CMakeFiles/iustitia_core.dir/flow_model.cc.o"
  "CMakeFiles/iustitia_core.dir/flow_model.cc.o.d"
  "CMakeFiles/iustitia_core.dir/output_queues.cc.o"
  "CMakeFiles/iustitia_core.dir/output_queues.cc.o.d"
  "CMakeFiles/iustitia_core.dir/sharded_engine.cc.o"
  "CMakeFiles/iustitia_core.dir/sharded_engine.cc.o.d"
  "CMakeFiles/iustitia_core.dir/trainer.cc.o"
  "CMakeFiles/iustitia_core.dir/trainer.cc.o.d"
  "libiustitia_core.a"
  "libiustitia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
