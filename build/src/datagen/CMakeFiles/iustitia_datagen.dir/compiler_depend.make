# Empty compiler generated dependencies file for iustitia_datagen.
# This may be replaced when dependencies are built.
