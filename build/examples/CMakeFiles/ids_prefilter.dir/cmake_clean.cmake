file(REMOVE_RECURSE
  "CMakeFiles/ids_prefilter.dir/ids_prefilter.cc.o"
  "CMakeFiles/ids_prefilter.dir/ids_prefilter.cc.o.d"
  "ids_prefilter"
  "ids_prefilter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_prefilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
