"""Analyzer passes.  Each exposes run(ctx) -> list[Finding]."""

from passes import contracts, deadcode, layering, locks

PASSES = {
    "layering": layering.run,
    "locks": locks.run,
    "deadcode": deadcode.run,
    "contracts": contracts.run,
}
