#!/usr/bin/env bash
# Pre-merge gate: the full ctest matrix under every sanitizer preset, the
# repo lint + analyze passes, the deadlock-debug cross-check, and the perf
# smoke.  Maps onto tier-1 verify as follows: the `default` preset IS the
# tier-1 build/test command (same binary dir, same cache), so a green
# ci.sh implies a green tier-1 run.
#
# Usage: tools/ci.sh [preset ...]
#   With no arguments runs: default, asan-ubsan, tsan, then the tool stages.
#   With arguments runs only the named configure/build/test presets.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
presets=("$@")
if [[ ${#presets[@]} -eq 0 ]]; then
  presets=(default asan-ubsan tsan)
fi

for preset in "${presets[@]}"; do
  echo "==== [$preset] configure"
  cmake --preset "$preset"
  echo "==== [$preset] build"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] test"
  ctest --preset "$preset" -j "$jobs"
done

echo "==== lint"
# The tool stages run directly instead of through `cmake --build --target`:
# each cmake invocation re-checks the generate step, which can regenerate
# compile_commands.json mid-gate.  The database exported by the `default`
# configure above serves both stages unchanged.
compdb="build/compile_commands.json"
[[ -f "$compdb" ]] || {
  echo "ci.sh: $compdb missing — run the default preset first" >&2
  exit 1
}
python3 tools/lint.py

echo "==== analyze"
# Baseline-gated: exits nonzero only on findings not in
# tools/analyze-baseline.json (see tools/README.md for the workflow).
# Also exports the static lock-order graph the deadlock-debug stage
# checks runtime executions against.
python3 tools/analyze --compdb "$compdb" \
  --baseline tools/analyze-baseline.json \
  --sarif-out build/analyze.sarif \
  --lock-graph-out build/lock_graph_static.json

echo "==== deadlock-debug"
# Instrumented util::Mutex: FATALs on a runtime lock-order inversion and
# records every observed edge.  The concurrency suites run with graph
# capture on, then the observed graph must be a subgraph of the static
# one — an edge the analyzer failed to model fails the gate.
cmake --preset deadlock-debug
cmake --build --preset deadlock-debug -j "$jobs"
# Absolute: ctest runs each test from its own binary dir, and the graph
# writer resolves the path from the test's cwd.
graph_dir="$PWD/build-deadlock/lock-graphs"
rm -rf "$graph_dir"
mkdir -p "$graph_dir"
IUSTITIA_LOCK_GRAPH_OUT="$graph_dir" ctest --preset deadlock-debug \
  -j "$jobs" -R 'test_runtime|test_concurrency_stress'
# The detector's own unit tests use synthetic mutexes that must NOT land
# in the comparison, so they run without graph capture.
ctest --preset deadlock-debug -R test_deadlock_debug
python3 tools/check_lock_graph.py build/lock_graph_static.json "$graph_dir"

echo "==== perf-smoke"
# Reduced-size run of the entropy-kernel microbench, gated on >30%
# regression against the checked-in baseline (speedup is the gated,
# machine-portable metric; see tools/perf_check.py).
IUSTITIA_KERNEL_MIN_MS=60 ./build/bench/bench_entropy_kernel \
  build/BENCH_entropy_kernel.json
python3 tools/perf_check.py build/BENCH_entropy_kernel.json \
  bench/baselines/entropy_kernel.json

# Serving-runtime bench at reduced trace size, same gating scheme (rows
# keyed by shard count via the baseline's key_fields).
IUSTITIA_TRACE_PACKETS=25000 ./build/bench/bench_runtime \
  build/BENCH_runtime.json
python3 tools/perf_check.py build/BENCH_runtime.json \
  bench/baselines/runtime.json

echo "ci.sh: all presets green"
