// Reproduces Figure 6: classification accuracy of the three training
// methods — H_F (whole file), H_b (first b bytes), H_b' (b bytes at a
// random offset within the header threshold T) — across buffer sizes, for
// SVM-RBF and CART, on flows carrying a random-length application header
// Y <= T (Section 4.3's evaluation protocol).
//
// Paper shape: the three training methods do not differ much (prefix
// statistics represent the flow), larger buffers help, and SVM-RBF is up
// to ~10% better than CART at most buffer sizes; with unknown headers
// removed the classifier reaches ~80% at b=1024.
#include "bench/bench_common.h"
#include "datagen/text_gen.h"

#include <algorithm>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

struct HeaderedFlow {
  std::vector<std::uint8_t> bytes;  // padding (Y bytes) + content
  std::size_t header_length = 0;
  datagen::FileClass label = datagen::FileClass::kText;
};

// Builds evaluation flows: content of a known class preceded by a random
// unknown application header of length Y <= T, reproducing the paper's
// "(T - Y + 1)-th byte is the beginning" protocol.
std::vector<HeaderedFlow> build_flows(
    const std::vector<datagen::FileSample>& corpus, std::size_t threshold,
    util::Rng& rng) {
  std::vector<HeaderedFlow> flows;
  flows.reserve(corpus.size());
  for (const auto& file : corpus) {
    HeaderedFlow flow;
    flow.label = file.label;
    flow.header_length =
        static_cast<std::size_t>(rng.next_below(threshold + 1));
    // Unknown textual header: generated log-like content.
    const auto header = datagen::generate_log(flow.header_length, rng);
    flow.bytes = header;
    flow.bytes.insert(flow.bytes.end(), file.bytes.begin(), file.bytes.end());
    flows.push_back(std::move(flow));
  }
  return flows;
}

double evaluate(const std::vector<datagen::FileSample>& train_corpus,
                const std::vector<HeaderedFlow>& test_flows,
                core::Backend backend, core::TrainingMethod method,
                std::size_t b, std::size_t threshold) {
  core::TrainerOptions options;
  options.backend = backend;
  options.widths = backend == core::Backend::kCart
                       ? entropy::cart_preferred_widths()
                       : entropy::svm_preferred_widths();
  options.method = method;
  options.buffer_size = b;
  options.header_threshold = threshold;
  options.svm.gamma = 50.0;
  options.svm.c = 1000.0;
  core::FlowNatureModel model = core::train_model(train_corpus, options);

  std::size_t correct = 0;
  for (const auto& flow : test_flows) {
    // Classification skips the threshold T, so the window starts at the
    // (T+1)-th byte of the padded flow = (T - Y + 1)-th byte of content.
    const std::size_t start = std::min(threshold, flow.bytes.size());
    const std::span<const std::uint8_t> window(
        flow.bytes.data() + start,
        std::min(b, flow.bytes.size() - start));
    correct += (model.classify(window).label == flow.label);
  }
  return static_cast<double>(correct) /
         static_cast<double>(test_flows.size());
}

int run() {
  banner("Fig. 6: H_F vs H_b vs H_b' training, accuracy vs b",
         "training methods within a few %; SVM up to ~10% above CART; "
         "~80% at b=1024 with unknown headers skipped");

  const std::size_t files = env_size("IUSTITIA_FILES_PER_CLASS", 80);
  const std::size_t threshold = 512;  // T
  const auto corpus = standard_corpus(files);
  std::vector<datagen::FileSample> train_corpus, test_corpus;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    (i % 2 == 0 ? train_corpus : test_corpus).push_back(corpus[i]);
  }
  util::Rng rng(0xF6);
  const auto test_flows = build_flows(test_corpus, threshold, rng);

  const std::size_t buffer_sizes[] = {32, 128, 512, 1024, 2048};
  const core::TrainingMethod methods[] = {
      core::TrainingMethod::kWholeFile, core::TrainingMethod::kFirstBytes,
      core::TrainingMethod::kRandomOffset};

  double svm_1024_hbp = 0.0, cart_1024_hbp = 0.0;
  for (const core::Backend backend :
       {core::Backend::kSvm, core::Backend::kCart}) {
    std::cout << "-- Fig. 6(" << (backend == core::Backend::kSvm ? 'a' : 'b')
              << "): " << core::backend_name(backend) << " --\n";
    util::Table table({"b (bytes)", "H_F-based", "H_b-based", "H_b'-based"});
    for (const std::size_t b : buffer_sizes) {
      std::vector<std::string> row{std::to_string(b)};
      for (const core::TrainingMethod method : methods) {
        const double accuracy =
            evaluate(train_corpus, test_flows, backend, method, b, threshold);
        row.push_back(util::fmt_percent(accuracy));
        if (b == 1024 && method == core::TrainingMethod::kRandomOffset) {
          (backend == core::Backend::kSvm ? svm_1024_hbp : cart_1024_hbp) =
              accuracy;
        }
      }
      table.add_row(std::move(row));
    }
    table.render(std::cout);
    std::cout << '\n';
  }

  std::cout << "paper:    ~80% accuracy at b=1024 with unknown headers "
               "removed; SVM above CART\n";
  std::cout << "measured: at b=1024 (H_b'), SVM "
            << util::fmt_percent(svm_1024_hbp) << ", CART "
            << util::fmt_percent(cart_1024_hbp) << '\n';
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
