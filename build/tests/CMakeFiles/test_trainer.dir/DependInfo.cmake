
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trainer.cc" "tests/CMakeFiles/test_trainer.dir/test_trainer.cc.o" "gcc" "tests/CMakeFiles/test_trainer.dir/test_trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iustitia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/iustitia_net.dir/DependInfo.cmake"
  "/root/repo/build/src/appproto/CMakeFiles/iustitia_appproto.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/iustitia_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/iustitia_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/entropy/CMakeFiles/iustitia_entropy.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/iustitia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dpi/CMakeFiles/iustitia_dpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
