#include "entropy/log_lut.h"

namespace iustitia::entropy::detail {

namespace {
std::array<double, kNLogNTableSize> build_table() {
  std::array<double, kNLogNTableSize> table{};
  table[0] = 0.0;  // lim_{x->0} x*ln(x) = 0; matches the sum convention
  for (std::uint64_t n = 1; n < kNLogNTableSize; ++n) {
    const double v = static_cast<double>(n);
    // NOLINTNEXTLINE(log2-domain): n >= 1 by loop construction.
    table[n] = v * std::log(v);
  }
  return table;
}
}  // namespace

const std::array<double, kNLogNTableSize> kNLogNTable = build_table();

}  // namespace iustitia::entropy::detail
