#include "core/flow_model.h"

#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "ml/serialize.h"

namespace iustitia::core {

const char* backend_name(Backend b) noexcept {
  return b == Backend::kCart ? "CART" : "SVM-RBF";
}

FlowNatureModel::FlowNatureModel(Backend backend, std::vector<int> widths)
    : backend_(backend), extractor_(std::move(widths)) {}

FlowNatureModel::FlowNatureModel(Backend backend, std::vector<int> widths,
                                 const entropy::EstimatorParams& params,
                                 std::uint64_t seed)
    : backend_(backend),
      extractor_(std::move(widths), params, seed),
      use_estimation_(true),
      estimator_params_(params) {}

Classification FlowNatureModel::classify(
    std::span<const std::uint8_t> prefix) {
  ExtractionResult extraction = extractor_.extract(prefix);
  Classification out;
  out.label = classify_features(extraction.features);
  out.features = std::move(extraction.features);
  out.extract_micros = extraction.micros;
  out.space_bytes = extraction.space_bytes;
  return out;
}

datagen::FileClass FlowNatureModel::classify_features(
    std::span<const double> features) const {
  int label = 0;
  if (backend_ == Backend::kCart) {
    label = tree_.predict(features);
  } else {
    label = svm_.predict(scaler_.transform(features));
  }
  return static_cast<datagen::FileClass>(label);
}

std::span<const int> FlowNatureModel::widths() const noexcept {
  return extractor_.widths();
}

bool FlowNatureModel::uses_estimation() const noexcept {
  return extractor_.uses_estimation();
}

std::size_t FlowNatureModel::model_space_bytes() const noexcept {
  if (backend_ == Backend::kCart) {
    return tree_.node_count() * sizeof(ml::DecisionTree::Node);
  }
  return svm_.space_bytes();
}

void FlowNatureModel::set_tree(ml::DecisionTree tree) {
  tree_ = std::move(tree);
}

void FlowNatureModel::set_svm(ml::DagSvm svm, ml::MinMaxScaler scaler) {
  svm_ = std::move(svm);
  scaler_ = std::move(scaler);
}

void FlowNatureModel::save(std::ostream& os) const {
  os << "flowmodel-v1 " << (backend_ == Backend::kCart ? "cart" : "svm")
     << ' ' << widths().size();
  for (const int w : widths()) os << ' ' << w;
  os << ' ' << (use_estimation_ ? 1 : 0) << ' ' << estimator_params_.epsilon
     << ' ' << estimator_params_.delta << ' ' << training_buffer_size_
     << '\n';
  if (backend_ == Backend::kCart) {
    ml::save_tree(tree_, os);
  } else {
    ml::save_scaler(scaler_, os);
    ml::save_dag_svm(svm_, os);
  }
}

FlowNatureModel FlowNatureModel::load(std::istream& is) {
  std::string magic, backend_token;
  std::size_t width_count = 0;
  if (!(is >> magic >> backend_token >> width_count) ||
      magic != "flowmodel-v1") {
    throw std::runtime_error("flow model parse error: header");
  }
  std::vector<int> widths(width_count);
  for (int& w : widths) {
    if (!(is >> w)) throw std::runtime_error("flow model parse error: widths");
  }
  int use_estimation = 0;
  entropy::EstimatorParams params;
  std::size_t buffer_size = 0;
  if (!(is >> use_estimation >> params.epsilon >> params.delta >>
        buffer_size)) {
    throw std::runtime_error("flow model parse error: estimator");
  }
  const Backend backend =
      backend_token == "cart" ? Backend::kCart : Backend::kSvm;
  FlowNatureModel model =
      use_estimation != 0
          ? FlowNatureModel(backend, std::move(widths), params, /*seed=*/1)
          : FlowNatureModel(backend, std::move(widths));
  model.set_training_buffer_size(buffer_size);
  if (backend == Backend::kCart) {
    model.set_tree(ml::load_tree(is));
  } else {
    ml::MinMaxScaler scaler = ml::load_scaler(is);
    model.set_svm(ml::load_dag_svm(is), std::move(scaler));
  }
  return model;
}

}  // namespace iustitia::core
