#include "datagen/corpus.h"

#include <cmath>

#include "datagen/binary_gen.h"
#include "datagen/chacha20.h"
#include "datagen/text_gen.h"
#include "util/check.h"

namespace iustitia::datagen {

const char* class_name(FileClass c) noexcept {
  switch (c) {
    case FileClass::kText:
      return "text";
    case FileClass::kBinary:
      return "binary";
    case FileClass::kEncrypted:
      return "encrypted";
  }
  return "?";
}

namespace {

FileSample generate_text_file(std::size_t size, util::Rng& rng) {
  FileSample sample;
  sample.label = FileClass::kText;
  switch (rng.next_below(6)) {
    case 0:
      sample.kind = "prose";
      sample.bytes = generate_prose(size, rng);
      break;
    case 1:
      sample.kind = "html";
      sample.bytes = generate_html(size, rng);
      break;
    case 2:
      sample.kind = "log";
      sample.bytes = generate_log(size, rng);
      break;
    case 3:
      sample.kind = "csv";
      sample.bytes = generate_csv(size, rng);
      break;
    case 4:
      sample.kind = "source";
      sample.bytes = generate_source_code(size, rng);
      break;
    default:
      sample.kind = "email";
      sample.bytes = generate_email(size, rng);
      break;
  }
  return sample;
}

FileSample generate_binary_file(std::size_t size, util::Rng& rng) {
  FileSample sample;
  sample.label = FileClass::kBinary;
  switch (rng.next_below(5)) {
    case 0:
      sample.kind = "exe";
      sample.bytes = generate_executable(size, rng);
      break;
    case 1:
      sample.kind = "jpeg";
      sample.bytes = generate_image(size, rng);
      break;
    case 2:
      sample.kind = "avi";
      sample.bytes = generate_media(size, rng);
      break;
    case 3:
      sample.kind = "zip";
      sample.bytes = generate_archive(size, rng);
      break;
    default:
      sample.kind = "pdf";
      sample.bytes = generate_pdf(size, rng);
      break;
  }
  return sample;
}

FileSample generate_encrypted_file(std::size_t size, util::Rng& rng) {
  FileSample sample;
  sample.label = FileClass::kEncrypted;
  sample.kind = "chacha20";
  // Encrypt a real generated plaintext (prose or binary) with a random key
  // and nonce; the class signature comes from the cipher, not the source.
  std::vector<std::uint8_t> plaintext = rng.chance(0.5)
                                            ? generate_prose(size, rng)
                                            : generate_executable(size, rng);
  ChaCha20::Key key;
  ChaCha20::Nonce nonce;
  rng.fill_bytes(key);
  rng.fill_bytes(nonce);
  ChaCha20 cipher(key, nonce);
  sample.bytes = cipher.encrypt(plaintext);
  // A minority of real encrypted files (e.g. PGP) carry a short unencrypted
  // header; model that too.
  if (rng.chance(0.2)) {
    static constexpr std::uint8_t kPgpLikeHeader[] = {0x85, 0x02, 0x0C, 0x03};
    sample.bytes.insert(sample.bytes.begin(), std::begin(kPgpLikeHeader),
                        std::end(kPgpLikeHeader));
    sample.bytes.resize(size);
    sample.kind = "pgp";
  }
  return sample;
}

}  // namespace

FileSample generate_file(FileClass label, std::size_t size, util::Rng& rng) {
  switch (label) {
    case FileClass::kText:
      return generate_text_file(size, rng);
    case FileClass::kBinary:
      return generate_binary_file(size, rng);
    case FileClass::kEncrypted:
      return generate_encrypted_file(size, rng);
  }
  return {};
}

std::vector<FileSample> build_corpus(const CorpusOptions& options) {
  util::Rng rng(options.seed);
  std::vector<FileSample> corpus;
  corpus.reserve(options.files_per_class * kNumClasses);
  // min_size == 0 would put log(0) = -inf into the log-uniform size draw
  // and make every file zero-length; reject it up front.
  CHECK_GT(options.min_size, std::size_t{0})
      << "corpus files need a positive minimum size";
  const double log_min = std::log(static_cast<double>(options.min_size));
  const double log_max = std::log(static_cast<double>(
      options.max_size > options.min_size ? options.max_size
                                          : options.min_size + 1));
  for (const FileClass label :
       {FileClass::kText, FileClass::kBinary, FileClass::kEncrypted}) {
    for (std::size_t i = 0; i < options.files_per_class; ++i) {
      const auto size = static_cast<std::size_t>(
          std::exp(rng.uniform(log_min, log_max)));
      corpus.push_back(generate_file(label, size, rng));
    }
  }
  rng.shuffle(corpus);
  return corpus;
}

}  // namespace iustitia::datagen
