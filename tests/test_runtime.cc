// End-to-end tests for the online serving runtime: shard-count
// equivalence against the single-threaded engine, lifecycle idempotence,
// backpressure accounting, and metrics consistency.  tools/ci.sh runs
// this binary under TSan as well.
#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "appproto/trace_headers.h"
#include "core/model_registry.h"
#include "core/trainer.h"
#include "net/flow.h"
#include "net/trace_gen.h"
#include "runtime/metrics.h"
#include "tests/alloc_hook.h"
#include "util/rt_guard.h"

namespace iustitia::runtime {
namespace {

// Sanitized builds (TSan especially) run ~20x slower per packet; the
// interleavings under test do not need trace volume to show up.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::size_t kEquivalencePackets = 20'000;
#else
constexpr std::size_t kEquivalencePackets = 100'000;
#endif

std::function<core::FlowNatureModel()> model_factory() {
  return [] {
    datagen::CorpusOptions corpus_options;
    corpus_options.files_per_class = 12;
    corpus_options.min_size = 2048;
    corpus_options.max_size = 4096;
    corpus_options.seed = 170;
    const auto corpus = datagen::build_corpus(corpus_options);
    core::TrainerOptions options;
    options.backend = core::Backend::kCart;
    options.widths = entropy::cart_preferred_widths();
    options.method = core::TrainingMethod::kFirstBytes;
    options.buffer_size = 32;
    return core::train_model(corpus, options);
  };
}

net::TraceOptions trace_options(std::size_t packets, std::uint64_t seed) {
  net::TraceOptions options;
  options.header_source = appproto::standard_header_source();
  options.target_packets = packets;
  options.seed = seed;
  return options;
}

using LabelMap =
    std::unordered_map<net::FlowKey, datagen::FileClass, net::FlowKeyHash>;

// Flow -> final label across all shards (last record wins, matching the
// single-threaded engine where a re-classified flow overwrites too).
LabelMap labels_of(const core::ShardedIustitia& engine) {
  LabelMap labels;
  for (std::size_t s = 0; s < engine.shard_count(); ++s) {
    for (const core::FlowDelayRecord& record : engine.shard(s).delays()) {
      labels[record.key] = record.label;
    }
  }
  return labels;
}

// The headline property of flow sharding: because every packet of a flow
// lands on the same shard in arrival order, the classification of every
// flow is identical whatever the shard count — the runtime is a pure
// scale-out of the single-threaded engine.
TEST(Runtime, ShardCountDoesNotChangeAnyClassification) {
  const auto factory = model_factory();
  core::EngineOptions engine_options;
  engine_options.buffer_size = 32;

  // Single-threaded reference: one engine, packets in trace order.
  net::Trace reference_trace =
      net::generate_trace(trace_options(kEquivalencePackets, 900));
  const std::size_t total_packets = reference_trace.packets.size();
  core::Iustitia reference(factory(), engine_options);
  for (const net::Packet& packet : reference_trace.packets) {
    reference.on_packet(packet);
  }
  reference.flush_all();
  LabelMap expected;
  for (const core::FlowDelayRecord& record : reference.delays()) {
    expected[record.key] = record.label;
  }
  ASSERT_FALSE(expected.empty());

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    RuntimeOptions options;
    options.shards = shards;
    options.backpressure = BackpressurePolicy::kBlock;  // lossless
    options.engine = engine_options;
    Runtime rt(factory, options);

    TraceSource source(trace_options(kEquivalencePackets, 900));
    rt.start(source);
    rt.wait();

    const MetricsSnapshot snap = rt.snapshot();
    EXPECT_EQ(snap.packets_in, total_packets) << shards << " shards";
    EXPECT_EQ(snap.total_pushed(), total_packets) << shards << " shards";
    EXPECT_EQ(snap.total_popped(), total_packets) << shards << " shards";
    EXPECT_EQ(snap.total_dropped(), 0u)
        << "blocking backpressure must be lossless";
    EXPECT_EQ(rt.engine().total_stats().packets, total_packets);

    const LabelMap actual = labels_of(rt.engine());
    ASSERT_EQ(actual.size(), expected.size()) << shards << " shards";
    for (const auto& [key, label] : expected) {
      const auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << shards << " shards";
      EXPECT_EQ(it->second, label) << shards << " shards";
    }

    // Per-nature metric counts must agree with the engine's own records.
    std::uint64_t classified = 0;
    for (const std::uint64_t n : snap.flows_by_nature) classified += n;
    std::uint64_t delay_records = 0;
    for (std::size_t s = 0; s < rt.engine().shard_count(); ++s) {
      delay_records += rt.engine().shard(s).delays().size();
    }
    EXPECT_EQ(classified, delay_records);
  }
}

// Burst flavor of the headline property: the batched transport (staged
// dispatch, ring bursts, batched output crossing) must not change any
// classification or lose any packet relative to the single-item path.
TEST(Runtime, BurstSizeDoesNotChangeClassificationsOrLosePackets) {
  const auto factory = model_factory();
  core::EngineOptions engine_options;
  engine_options.buffer_size = 32;

  LabelMap expected;
  std::uint64_t expected_flushes = 0;
  for (const std::size_t burst :
       {std::size_t{1}, std::size_t{7}, std::size_t{32}}) {
    RuntimeOptions options;
    options.shards = 2;
    options.burst = burst;
    options.backpressure = BackpressurePolicy::kBlock;  // lossless
    options.engine = engine_options;
    Runtime rt(factory, options);

    TraceSource source(trace_options(kEquivalencePackets / 2, 910));
    rt.start(source);
    rt.wait();

    const MetricsSnapshot snap = rt.snapshot();
    const std::uint64_t total = snap.packets_in;
    ASSERT_GT(total, 0u);
    EXPECT_EQ(snap.total_pushed(), total) << "burst " << burst;
    EXPECT_EQ(snap.total_popped(), total) << "burst " << burst;
    EXPECT_EQ(snap.total_dropped(), 0u) << "burst " << burst;
    EXPECT_EQ(rt.engine().total_stats().packets, total);

    if (burst == 1) {
      expected = labels_of(rt.engine());
      ASSERT_FALSE(expected.empty());
      EXPECT_EQ(snap.total_flushes(), 0u)
          << "the single-item path must not report dispatch flushes";
      continue;
    }
    EXPECT_GT(snap.total_flushes(), 0u) << "burst " << burst;
    const LabelMap actual = labels_of(rt.engine());
    ASSERT_EQ(actual.size(), expected.size()) << "burst " << burst;
    for (const auto& [key, label] : expected) {
      const auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << "burst " << burst;
      EXPECT_EQ(it->second, label) << "burst " << burst;
    }
    expected_flushes = snap.total_flushes();
  }
  EXPECT_GT(expected_flushes, 0u);
}

// The per-shard burst-size histogram must account for every pushed
// packet: sum(bucket midpoint counts) can't be checked exactly (buckets
// are power-of-two ranges), but the histogram total must equal the
// number of successful burst pushes and the mean must sit in [1, burst].
TEST(Runtime, BurstHistogramAccountsForEveryPush) {
  RuntimeOptions options;
  options.shards = 2;
  options.burst = 16;
  options.backpressure = BackpressurePolicy::kBlock;
  Runtime rt(model_factory(), options);

  TraceSource source(trace_options(20'000, 911));
  rt.start(source);
  rt.wait();

  const MetricsSnapshot snap = rt.snapshot();
  static_assert(kBurstBucketCount > 0);
  for (const MetricsSnapshot::Ring& ring : snap.rings) {
    ASSERT_EQ(ring.burst_counts.size(), kBurstBucketCount);
    EXPECT_EQ(ring.pushed, ring.popped);
    if (ring.pushed == 0) continue;
    std::uint64_t burst_pushes = 0;
    for (const std::uint64_t n : ring.burst_counts) burst_pushes += n;
    EXPECT_GT(burst_pushes, 0u);
    EXPECT_GT(ring.flushes, 0u);
    // A flush may split into several pushes against a nearly-full ring,
    // so pushes >= flushes; the mean burst is within [1, burst].
    EXPECT_GE(burst_pushes, ring.flushes);
    EXPECT_GE(ring.mean_burst(), 1.0);
    EXPECT_LE(ring.mean_burst(), 16.0);
  }

  // The burst telemetry surfaces in both rendered forms.
  EXPECT_NE(snap.text_report().find("mean burst"), std::string::npos);
  EXPECT_NE(snap.json().find("\"flushes\""), std::string::npos);
  EXPECT_NE(snap.json().find("\"mean_burst\""), std::string::npos);
}

// After close(), a worker's final drain runs burst pops until a zero
// return: a ring loaded to capacity before the workers get scheduled
// must still drain completely, with every packet accounted for.
TEST(Runtime, FullRingsDrainCompletelyAfterCloseUnderBurst) {
  RuntimeOptions options;
  options.shards = 1;
  options.ring_capacity = 64;  // small: the dispatcher fills it to the brim
  options.burst = 16;
  options.backpressure = BackpressurePolicy::kBlock;
  Runtime rt(model_factory(), options);

  TraceSource source(trace_options(30'000, 912));
  rt.start(source);
  rt.wait();

  const MetricsSnapshot snap = rt.snapshot();
  EXPECT_EQ(snap.total_pushed(), snap.packets_in);
  EXPECT_EQ(snap.total_popped(), snap.packets_in)
      << "packets still in a ring after shutdown: the post-close burst "
         "drain lost them";
  EXPECT_EQ(snap.total_dropped(), 0u);
  EXPECT_EQ(rt.engine().total_stats().packets, snap.packets_in);
}

// Drop-policy conservation under burst: every source packet is pushed or
// dropped, everything pushed is popped — same invariant as the
// single-item path, now accounted burst-at-a-time.
TEST(Runtime, DropPolicyCountsEveryLostPacketUnderBurst) {
  RuntimeOptions options;
  options.shards = 1;
  options.ring_capacity = 8;
  options.burst = 8;
  options.backpressure = BackpressurePolicy::kDrop;
  Runtime rt(model_factory(), options);

  TraceSource source(trace_options(20'000, 913));
  rt.start(source);
  rt.wait();

  const MetricsSnapshot snap = rt.snapshot();
  EXPECT_EQ(snap.packets_in, snap.total_pushed() + snap.total_dropped());
  EXPECT_EQ(snap.total_popped(), snap.total_pushed());
  EXPECT_GT(snap.total_dropped(), 0u)
      << "an 8-slot ring against per-packet engine work must drop";
  EXPECT_EQ(rt.engine().total_stats().packets, snap.total_popped());
}

TEST(Runtime, WaitAndStopAreIdempotentInAnyOrder) {
  RuntimeOptions options;
  options.shards = 2;
  Runtime rt(model_factory(), options);
  EXPECT_FALSE(rt.running());
  rt.wait();  // before start: a no-op

  TraceSource source(trace_options(2000, 901));
  rt.start(source);
  rt.wait();
  EXPECT_FALSE(rt.running());
  rt.wait();  // idempotent
  rt.stop();  // after wait: no-op
  rt.stop();

  const MetricsSnapshot snap = rt.snapshot();
  EXPECT_EQ(snap.packets_in, snap.total_popped() + snap.total_dropped());
  EXPECT_GT(rt.engine().total_flows_classified(), 0u);
}

TEST(Runtime, StopBeforeStartShutsTheRunDownImmediately) {
  RuntimeOptions options;
  options.shards = 2;
  Runtime rt(model_factory(), options);
  rt.stop();

  TraceSource source(trace_options(50'000, 902));
  rt.start(source);
  rt.wait();
  // The dispatcher observed the stop request on its first iteration, so
  // (almost) nothing was read; what was read is fully accounted for.
  const MetricsSnapshot snap = rt.snapshot();
  EXPECT_EQ(snap.packets_in, snap.total_popped() + snap.total_dropped());
  EXPECT_LT(snap.packets_in, std::uint64_t{50'000});
}

TEST(Runtime, DropPolicyCountsEveryLostPacket) {
  RuntimeOptions options;
  options.shards = 1;
  options.ring_capacity = 2;  // tiny: the dispatcher laps the worker
  options.backpressure = BackpressurePolicy::kDrop;
  Runtime rt(model_factory(), options);

  TraceSource source(trace_options(20'000, 903));
  rt.start(source);
  rt.wait();

  const MetricsSnapshot snap = rt.snapshot();
  // Conservation: every source packet was either pushed or dropped, and
  // everything pushed was popped by the worker before shutdown.
  EXPECT_EQ(snap.packets_in, snap.total_pushed() + snap.total_dropped());
  EXPECT_EQ(snap.total_popped(), snap.total_pushed());
  EXPECT_GT(snap.total_dropped(), 0u)
      << "a 2-slot ring against per-packet engine work must drop";
  EXPECT_EQ(rt.engine().total_stats().packets, snap.total_popped());
}

TEST(Runtime, SnapshotReportsAndSerializes) {
  RuntimeOptions options;
  options.shards = 2;
  options.latency_sample_every = 4;
  Runtime rt(model_factory(), options);

  TraceSource source(trace_options(5000, 904));
  rt.start(source);
  rt.wait();

  const MetricsSnapshot snap = rt.snapshot();
  EXPECT_EQ(snap.shards, 2u);
  EXPECT_EQ(snap.rings.size(), 2u);
  EXPECT_TRUE(snap.has_queue_stats);
  EXPECT_GT(snap.engine_latency.total, 0u);
  // Sampled 1-in-4: strictly fewer samples than packets processed.
  EXPECT_LT(snap.engine_latency.total, snap.total_popped());
  EXPECT_GE(snap.engine_latency.quantile_upper_micros(0.99),
            snap.engine_latency.quantile_upper_micros(0.50));

  // Forwarded packets land in the per-nature queues; depths and counters
  // come back through the snapshot.
  std::uint64_t enqueued = 0;
  for (const std::uint64_t n : snap.queue_stats.enqueued) enqueued += n;
  EXPECT_GT(enqueued, 0u);

  const std::string text = snap.text_report();
  EXPECT_NE(text.find("runtime metrics"), std::string::npos);
  EXPECT_NE(text.find("encrypted"), std::string::npos);
  const std::string json = snap.json();
  EXPECT_NE(json.find("\"flows_by_nature\""), std::string::npos);
  EXPECT_NE(json.find("\"engine_latency\""), std::string::npos);

  // Control-plane fields ride along in both renderings.  A factory-built
  // runtime has no registry: version stays at the bare-model default.
  EXPECT_GT(snap.uptime_seconds, 0.0);
  EXPECT_EQ(snap.model_version, "unversioned");
  EXPECT_EQ(snap.model_swaps, 0u);
  EXPECT_NE(text.find("model: unversioned"), std::string::npos);
  EXPECT_NE(text.find("swaps: 0"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"model_version\": \"unversioned\""),
            std::string::npos);
  EXPECT_NE(json.find("\"model_swaps\": 0"), std::string::npos);

  EXPECT_GT(rt.output_queues().drain_all(), 0u);
}

TEST(Runtime, HighWaterMarksAreWithinRingCapacity) {
  RuntimeOptions options;
  options.shards = 2;
  options.ring_capacity = 64;
  Runtime rt(model_factory(), options);

  TraceSource source(trace_options(10'000, 905));
  rt.start(source);
  rt.wait();

  const MetricsSnapshot snap = rt.snapshot();
  for (const MetricsSnapshot::Ring& ring : snap.rings) {
    EXPECT_LE(ring.high_water, 64u);
    EXPECT_EQ(ring.pushed, ring.popped);
  }
}

// The ISSUE acceptance scenario, in-process: publish a retrained model
// through the registry while a paced multi-shard replay is live.  With
// blocking backpressure the swap must lose nothing, every shard must
// cross to the new epoch (workers re-read at burst boundaries), the
// retired model must be reclaimed exactly once the grace period closes,
// and the swap must surface through the runtime snapshot.
// Delegates to a TraceSource but stops delivering after `gate_after`
// packets until `gate` opens (blocking inside next(), like pacing does).
// This pins "the publish lands mid-replay" as a structural fact instead
// of a pacing-derived probability: whatever the scheduler does, the
// packets after the gate are only delivered once the swap has been
// published, so every shard still has work left on the new epoch.
class GatedTraceSource final : public PacketSource {
 public:
  GatedTraceSource(const net::TraceOptions& options, std::size_t gate_after,
                   const std::atomic<bool>* gate)
      : inner_(options), gate_after_(gate_after), gate_(gate) {}

  std::optional<net::Packet> next() override {
    wait_at_gate();
    std::optional<net::Packet> packet = inner_.next();
    if (packet.has_value()) ++delivered_;
    return packet;
  }

  std::size_t next_burst(std::span<net::Packet> out) override {
    wait_at_gate();
    const std::size_t n = inner_.next_burst(out);
    delivered_ += n;
    return n;
  }

 private:
  void wait_at_gate() {
    while (delivered_ >= gate_after_ &&
           !gate_->load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }

  TraceSource inner_;
  const std::size_t gate_after_;
  const std::atomic<bool>* gate_;
  std::size_t delivered_ = 0;
};

TEST(Runtime, ModelHotSwapUnderLiveReplayLosesNothing) {
  const auto factory = model_factory();
  RuntimeOptions options;
  options.shards = 2;
  options.burst = 8;
  options.backpressure = BackpressurePolicy::kBlock;  // lossless
  options.engine.buffer_size = 32;

  auto registry = std::make_shared<core::ModelRegistry>(
      options.shards,
      std::make_shared<const core::FlowNatureModel>(factory()), "v1");
  Runtime rt(registry, options);
  ASSERT_EQ(rt.model_registry(), registry.get());

  // Gate the source after 10% so the publish provably lands mid-replay.
  constexpr std::size_t kPackets = 20'000;
  std::atomic<bool> gate{false};
  GatedTraceSource source(trace_options(kPackets, 908), kPackets / 10,
                          &gate);
  rt.start(source);

  // Wait until the replay is demonstrably in flight, then swap; only
  // after the publish returns may the remaining 90% flow.
  for (int spin = 0; rt.snapshot().packets_in < kPackets / 20; ++spin) {
    ASSERT_LT(spin, 20000) << "replay never got off the ground";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::weak_ptr<const core::FlowNatureModel> old_model =
      registry->current().model;
  registry->publish(
      std::make_shared<const core::FlowNatureModel>(factory()), "v2");
  gate.store(true, std::memory_order_release);
  rt.wait();

  const MetricsSnapshot snap = rt.snapshot();
  EXPECT_EQ(snap.packets_in, kPackets);
  EXPECT_EQ(snap.total_popped(), kPackets);
  EXPECT_EQ(snap.total_dropped(), 0u) << "hot swap must not drop packets";
  EXPECT_EQ(snap.model_swaps, 1u);
  EXPECT_EQ(snap.model_version, "v2");

  // Every shard crossed to the published epoch before draining out...
  EXPECT_EQ(registry->epoch_hint(), 2u);
  EXPECT_EQ(registry->min_crossed(), 2u);
  // ...so the old model was reclaimed: the registry dropped its retired
  // reference and both shard engines installed the replacement.
  EXPECT_EQ(registry->retired_count(), 0u);
  EXPECT_TRUE(old_model.expired())
      << "retired model still referenced after every shard crossed";
  for (std::size_t s = 0; s < rt.engine().shard_count(); ++s) {
    EXPECT_EQ(&rt.engine().shard(s).model(), registry->current().model.get());
  }
}

// Dynamic twin of the tools/analyze hotpath pass: with this TU's counting
// operator new reporting into util::rt, a full replay under the live
// GuardRegions must see zero violations — every allocation and block the
// hot loops reach is covered by a declared AllowScope.  (Under
// IUSTITIA_RT_DEBUG the same violations would abort instead of counting.)
TEST(Runtime, ReplayRunsWithoutRtGuardViolations) {
  util::rt::reset_violation_count();
  for (const BackpressurePolicy policy :
       {BackpressurePolicy::kBlock, BackpressurePolicy::kDrop}) {
    RuntimeOptions options;
    options.shards = 2;
    options.backpressure = policy;
    if (policy == BackpressurePolicy::kDrop) {
      options.ring_capacity = 8;  // force the refused-push retirement path
    }
    Runtime rt(model_factory(), options);
    TraceSource source(trace_options(20'000, 906));
    rt.start(source);
    rt.wait();
    EXPECT_GT(rt.snapshot().packets_in, 0u);
  }
  EXPECT_EQ(util::rt::violation_count(), 0u)
      << "hot loops allocated or blocked outside a declared AllowScope";
}

// The engine's steady state — data packet of an already-classified flow,
// CDB hit, forward — must not touch the heap at all.  Warm an engine until
// the CDB is populated, then replay only guaranteed-hit packets and demand
// a zero delta on the process-wide operator-new counter.
TEST(Runtime, SteadyStateFastPathIsAllocationFree) {
  const auto factory = model_factory();
  core::EngineOptions engine_options;
  engine_options.buffer_size = 32;
  core::Iustitia engine(factory(), engine_options);

  net::Trace trace = net::generate_trace(trace_options(20'000, 907));
  for (const net::Packet& packet : trace.packets) {
    engine.on_packet(packet);
  }
  engine.flush_all();  // classifies stragglers straight into the CDB

  // Hits only: flows still resident in the CDB, no FIN/RST (close would
  // take the removal branch and make the flow unknown again mid-replay).
  std::vector<const net::Packet*> hits;
  for (const net::Packet& packet : trace.packets) {
    if (packet.flags.fin || packet.flags.rst) continue;
    if (engine.label_of(packet.key).has_value()) hits.push_back(&packet);
  }
  ASSERT_GT(hits.size(), 100u) << "warmup left the CDB nearly empty";

  const std::size_t before = testhooks::alloc_calls();
  std::size_t not_forwarded = 0;
  for (const net::Packet* packet : hits) {
    if (engine.on_packet(*packet) != core::PacketAction::kForwarded) {
      ++not_forwarded;
    }
  }
  const std::size_t after = testhooks::alloc_calls();
  EXPECT_EQ(not_forwarded, 0u) << "a CDB hit left the fast path";
  EXPECT_EQ(after - before, 0u)
      << "the CDB-hit fast path performed a heap allocation";
}

// In default builds a violation is counted, never fatal: the replacement
// operator new above reports into util::rt, so an unallowed allocation
// inside a GuardRegion bumps the counter (once for new, once for delete)
// while an AllowScope'd one stays silent.  The fatal flavor of the same
// seeded violation is tests/test_rt_debug.cc's death test.
TEST(RtGuard, CountsUnallowedAllocationsWithoutAborting) {
  util::rt::reset_violation_count();
  bool guarded_inside = false;
  {
    util::rt::GuardRegion guard;
    guarded_inside = util::rt::in_guard();
    {
      util::rt::AllowScope allow(util::rt::kAlloc);
      int* allowed = new int(7);  // NOLINT(no-owning-new) drives the hook
      delete allowed;
    }
#if !defined(IUSTITIA_RT_DEBUG)
    int* unallowed = new int(9);  // NOLINT(no-owning-new) drives the hook
    delete unallowed;
#endif
  }
  EXPECT_TRUE(guarded_inside);
  EXPECT_FALSE(util::rt::in_guard());
#if defined(IUSTITIA_RT_DEBUG)
  EXPECT_EQ(util::rt::violation_count(), 0u);
#else
  EXPECT_EQ(util::rt::violation_count(), 2u);
#endif
  util::rt::reset_violation_count();
}

// snapshot() runs concurrently with every writer.  The relaxed-counter
// protocol allows momentary inconsistency ACROSS counters, but each
// counter must be a real value (never torn) and every total must be
// monotone from one snapshot to the next; once the writers are joined the
// totals are exact.  TSan (ci.sh runs this binary under it) checks the
// data-race half of that claim.
TEST(Metrics, SnapshotIsCoherentUnderConcurrentWriters) {
  constexpr std::size_t kShards = 4;
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  constexpr std::uint64_t kPerWriter = 10'000;
#else
  constexpr std::uint64_t kPerWriter = 50'000;
#endif
  MetricsRegistry metrics(kShards);

  std::atomic<bool> start{false};
  std::vector<std::thread> writers;
  for (std::size_t s = 0; s < kShards; ++s) {
    // Thread s owns shard s, preserving the registry's single-writer
    // contract for high_water while exercising every mutator.
    writers.emplace_back([&metrics, &start, s] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        metrics.on_source_packet();
        metrics.on_push(s, static_cast<std::size_t>(i % 7));
        metrics.on_pop(s);
        metrics.on_classified(
            static_cast<datagen::FileClass>(i % 3));
        metrics.record_engine_latency(1.5);
      }
    });
  }
  start.store(true, std::memory_order_release);

  std::uint64_t last_packets = 0;
  std::uint64_t last_pushed = 0;
  std::uint64_t last_latency = 0;
  constexpr std::uint64_t kTotal = kShards * kPerWriter;
  for (int round = 0; round < 100; ++round) {
    const MetricsSnapshot snap = metrics.snapshot();
    ASSERT_EQ(snap.rings.size(), kShards);
    EXPECT_GE(snap.packets_in, last_packets);
    EXPECT_GE(snap.total_pushed(), last_pushed);
    EXPECT_GE(snap.engine_latency.total, last_latency);
    EXPECT_LE(snap.packets_in, kTotal);
    EXPECT_LE(snap.total_pushed(), kTotal);
    EXPECT_LE(snap.total_popped(), kTotal);
    EXPECT_LE(snap.engine_latency.total, kTotal);
    std::uint64_t flows = 0;
    for (const std::uint64_t n : snap.flows_by_nature) flows += n;
    EXPECT_LE(flows, kTotal);
    last_packets = snap.packets_in;
    last_pushed = snap.total_pushed();
    last_latency = snap.engine_latency.total;
  }
  for (std::thread& writer : writers) writer.join();

  const MetricsSnapshot final_snap = metrics.snapshot();
  EXPECT_EQ(final_snap.packets_in, kTotal);
  EXPECT_EQ(final_snap.total_pushed(), kTotal);
  EXPECT_EQ(final_snap.total_popped(), kTotal);
  EXPECT_EQ(final_snap.total_dropped(), 0u);
  EXPECT_EQ(final_snap.engine_latency.total, kTotal);
  std::uint64_t flows = 0;
  for (const std::uint64_t n : final_snap.flows_by_nature) flows += n;
  EXPECT_EQ(flows, kTotal);
  for (const MetricsSnapshot::Ring& ring : final_snap.rings) {
    EXPECT_EQ(ring.pushed, kPerWriter);
    EXPECT_EQ(ring.popped, kPerWriter);
    EXPECT_LE(ring.high_water, 6u);
  }
}

}  // namespace
}  // namespace iustitia::runtime
