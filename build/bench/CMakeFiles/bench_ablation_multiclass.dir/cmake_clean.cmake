file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multiclass.dir/bench_ablation_multiclass.cc.o"
  "CMakeFiles/bench_ablation_multiclass.dir/bench_ablation_multiclass.cc.o.d"
  "bench_ablation_multiclass"
  "bench_ablation_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
