#include "net/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace iustitia::net {

std::size_t sample_payload_size(util::Rng& rng) noexcept {
  // Calibrated to Fig. 9(a): >50% of data packets under 140 bytes, ~20% at
  // the 1480-byte MTU mode, the rest spread between.
  const double roll = rng.uniform();
  if (roll < 0.52) {
    return static_cast<std::size_t>(rng.uniform_int(16, 140));
  }
  if (roll < 0.78) {
    return static_cast<std::size_t>(rng.uniform_int(141, 1459));
  }
  return static_cast<std::size_t>(rng.uniform_int(1460, 1480));
}

namespace {

datagen::FileClass sample_class(const std::array<double, 3>& mix,
                                util::Rng& rng) {
  const std::size_t idx = rng.weighted_index(mix);
  return static_cast<datagen::FileClass>(static_cast<int>(idx));
}

FlowKey random_flow_key(util::Rng& rng, bool tcp) {
  FlowKey key;
  key.src_ip = static_cast<std::uint32_t>(rng.next_u64());
  key.dst_ip = static_cast<std::uint32_t>(rng.next_u64());
  key.src_port = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
  key.dst_port = static_cast<std::uint16_t>(
      rng.chance(0.6) ? rng.uniform_int(1, 1023) : rng.uniform_int(1024, 65535));
  key.protocol = tcp ? Protocol::kTcp : Protocol::kUdp;
  return key;
}

}  // namespace

Trace generate_trace(const TraceOptions& options) {
  CHECK(options.app_header_fraction <= 0.0 || options.header_source)
      << "TraceOptions.app_header_fraction > 0 needs a header_source "
         "(appproto::standard_header_source() is the calibrated one)";
  util::Rng rng(options.seed);
  Trace trace;
  trace.duration_seconds = options.duration_seconds;

  const double packet_rate =
      static_cast<double>(options.target_packets) / options.duration_seconds;
  const double flow_rate = packet_rate * options.flows_per_packet;
  // Mean data packets per flow that hits the global data-packet fraction.
  const double mean_data_per_flow =
      options.data_packet_fraction / options.flows_per_packet;
  // Mean total packets per flow (data + acks/control).
  const double mean_total_per_flow = 1.0 / options.flows_per_packet;

  trace.packets.reserve(options.target_packets + options.target_packets / 8);

  double flow_arrival = 0.0;
  while (trace.packets.size() < options.target_packets) {
    flow_arrival += rng.exponential(flow_rate);
    if (flow_arrival > trace.duration_seconds) {
      // Keep spawning flows past the nominal duration until the packet
      // budget is met; the trace is trimmed and re-sorted below.
      if (trace.packets.size() >= options.target_packets) break;
    }

    const bool tcp = rng.chance(options.tcp_fraction);
    const FlowKey key = random_flow_key(rng, tcp);
    FlowTruth truth;
    truth.nature = sample_class(options.class_mix, rng);

    // Heavy-tailed flow length (Pareto), mean ~= mean_data_per_flow.
    const double shape = 1.5;
    const double scale = mean_data_per_flow * (shape - 1.0) / shape;
    std::size_t data_packets = static_cast<std::size_t>(
        std::ceil(rng.pareto(shape, std::max(1.0, scale))));
    data_packets = std::min<std::size_t>(data_packets, 2000);
    truth.data_packets = data_packets;

    // Flow content: a real generated file of the flow's class, with an
    // optional application-layer header in front.
    std::size_t content_len = options.content_limit;
    std::vector<std::uint8_t> content;
    if (rng.chance(options.app_header_fraction)) {
      AppHeader header = options.header_source(rng, content_len);
      truth.app_protocol_id = header.protocol_id;
      truth.app_header_length = header.bytes.size();
      content = std::move(header.bytes);
    }
    {
      const datagen::FileSample file =
          datagen::generate_file(truth.nature, content_len, rng);
      content.insert(content.end(), file.bytes.begin(), file.bytes.end());
    }

    // Per-flow packet timing: the flow lives for a lognormal duration
    // (median 0.5 s, capped at the trace window) and spreads its packets
    // across it with exponential gaps; the resulting inter-arrival CDF has
    // the sub-half-second mass of Fig. 9(b).
    const double flow_duration = std::min(
        std::exp(rng.normal(std::log(0.5), 1.0)), options.duration_seconds);
    const double expected_flow_packets =
        static_cast<double>(data_packets) *
        (1.0 + std::max(0.0, mean_total_per_flow / mean_data_per_flow - 1.0));
    const double flow_mean_gap =
        flow_duration / std::max(1.0, expected_flow_packets);
    double t = flow_arrival;
    std::size_t content_offset = 0;

    auto push_packet = [&](TcpFlags flags, std::size_t payload_size) {
      Packet packet;
      packet.timestamp = t;
      packet.key = key;
      packet.flags = flags;
      if (payload_size > 0) {
        packet.payload.resize(payload_size);
        for (std::size_t i = 0; i < payload_size; ++i) {
          // Cycle through the flow content once exhausted; cycling repeats
          // real same-class bytes, preserving the class statistics.
          packet.payload[i] = content[content_offset % content.size()];
          ++content_offset;
        }
      }
      trace.packets.push_back(std::move(packet));
    };

    if (tcp) {
      push_packet({.syn = true}, 0);  // no handshake payload
      t += rng.exponential(1.0 / std::max(1e-4, flow_mean_gap));
    }
    // Interleave data packets with pure-ACK packets so the global
    // data-packet fraction lands near the target.
    const double acks_per_data =
        std::max(0.0, mean_total_per_flow / mean_data_per_flow - 1.0);
    for (std::size_t p = 0; p < data_packets; ++p) {
      push_packet({.ack = tcp}, sample_payload_size(rng));
      t += rng.exponential(1.0 / std::max(1e-4, flow_mean_gap));
      if (tcp) {
        // Expected acks_per_data pure-ack packets per data packet.
        double budget = acks_per_data;
        while (budget > 0.0 && rng.chance(std::min(1.0, budget))) {
          push_packet({.ack = true}, 0);
          t += rng.exponential(1.0 / std::max(1e-4, flow_mean_gap));
          budget -= 1.0;
        }
      }
    }
    if (tcp) {
      const double close_roll = rng.uniform();
      if (close_roll < options.fin_close_fraction) {
        truth.closed_by_fin = true;
        push_packet({.ack = true, .fin = true}, 0);
      } else if (close_roll <
                 options.fin_close_fraction + options.rst_close_fraction) {
        truth.closed_by_rst = true;
        push_packet({.rst = true}, 0);
      }
      // Otherwise: socket never closed properly (paper Section 4.5).
    }

    trace.truth.emplace(key, std::move(truth));
  }

  std::sort(trace.packets.begin(), trace.packets.end(),
            [](const Packet& a, const Packet& b) {
              return a.timestamp < b.timestamp;
            });
  if (trace.packets.size() > options.target_packets) {
    trace.packets.resize(options.target_packets);
  }
  if (!trace.packets.empty()) {
    trace.duration_seconds = trace.packets.back().timestamp;
  }
  return trace;
}

}  // namespace iustitia::net
