// Lookup table for n * ln(n), the quantity every incremental entropy
// update needs twice (once for the old count, once for the new one).
//
// A count transition c -> c+1 changes S_k = sum_i m_ik * ln(m_ik) by
// (c+1)ln(c+1) - c*ln(c); evaluating that with std::log costs two libm
// calls per gram per width, which dominates the exact extraction profile.
// The table stores n*ln(n) for every n < kNLogNTableSize, computed with
// the same double expression the direct path uses, so replacing the libm
// calls with loads is *exact to the double*: for buffers of b bytes every
// count is at most b, and the paper's operating points (b <= 16 KB, Fig. 5
// / Table 3) stay entirely inside the table.  Larger counts — possible
// only on the unbounded streaming path — fall back to std::log and remain
// bit-identical to the direct computation.
#ifndef IUSTITIA_ENTROPY_LOG_LUT_H_
#define IUSTITIA_ENTROPY_LOG_LUT_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace iustitia::entropy {

// Counts covered exactly by the table: 0 .. kNLogNTableSize-1.  16384
// entries (128 KB, shared process-wide) cover every count a 16 KB buffer
// can produce with headroom.
inline constexpr std::uint64_t kNLogNTableSize = 16384;

namespace detail {
// Defined in log_lut.cc; entry n holds n * std::log(n), entry 0 holds 0.
// NOLINTNEXTLINE(dead-symbol): referenced through the inline n_ln_n below.
extern const std::array<double, kNLogNTableSize> kNLogNTable;
}  // namespace detail

// n * ln(n) with n_ln_n(0) == 0.  Table load for n < kNLogNTableSize,
// exact fallback above.
inline double n_ln_n(std::uint64_t n) noexcept {
  if (n < kNLogNTableSize) return detail::kNLogNTable[n];
  const double v = static_cast<double>(n);
  return v * std::log(v);  // NOLINT(log2-domain): n >= table size >= 1 here
}

}  // namespace iustitia::entropy

#endif  // IUSTITIA_ENTROPY_LOG_LUT_H_
