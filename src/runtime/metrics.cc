#include "runtime/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <iomanip>
#include <sstream>

#include "util/check.h"
#include "util/table.h"

namespace iustitia::runtime {

namespace {

constexpr const char* kNatureNames[3] = {"text", "binary", "encrypted"};

// Burst-size histogram bucket for a burst of n >= 1 packets: bucket i
// holds [2^i, 2^(i+1)), the last bucket is open-ended.
std::size_t burst_bucket(std::size_t n) noexcept {
  const auto width = static_cast<std::size_t>(
      std::bit_width(static_cast<std::uint64_t>(n)));
  return std::min<std::size_t>(width == 0 ? 0 : width - 1,
                               kBurstBucketCount - 1);
}

std::string fmt_micros(double micros) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << micros << "us";
  return out.str();
}

// Minimal JSON string escaping: the model version is operator-supplied
// (bundle metadata), so quotes/backslashes/control bytes must not break
// the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

// Sampled on the worker's packet path: bucket index + two relaxed adds.
// analyze: hotpath
void LatencyHistogram::record(double micros) noexcept {
  const std::uint64_t whole =
      micros <= 0.0 ? 0 : static_cast<std::uint64_t>(micros);
  const std::size_t bucket = std::min<std::size_t>(
      static_cast<std::size_t>(std::bit_width(whole)), kBucketCount - 1);
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  const auto nanos =
      micros <= 0.0 ? std::uint64_t{0}
                    : static_cast<std::uint64_t>(micros * 1e3);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
    snap.total += snap.counts[i];
  }
  snap.sum_micros =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-3;
  return snap;
}

double LatencyHistogram::bucket_floor_micros(std::size_t i) noexcept {
  return i == 0 ? 0.0
               : static_cast<double>(std::uint64_t{1} << (i - 1));
}

double LatencyHistogram::Snapshot::mean_micros() const noexcept {
  return total == 0 ? 0.0 : sum_micros / static_cast<double>(total);
}

double LatencyHistogram::Snapshot::quantile_upper_micros(
    double q) const noexcept {
  if (total == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      clamped * static_cast<double>(total - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += counts[i];
    if (seen > rank) {
      // Upper edge of bucket i (== floor of bucket i + 1).
      return bucket_floor_micros(i + 1);
    }
  }
  return bucket_floor_micros(kBucketCount);
}

MetricsRegistry::MetricsRegistry(std::size_t shards)
    : shards_(shards),
      created_(std::chrono::steady_clock::now()),
      rings_(std::make_unique<RingCounters[]>(shards)) {
  CHECK_GT(shards, std::size_t{0}) << "metrics need at least one ring";
}

// The on_* counters below run once per packet inside the guarded loops:
// relaxed atomics only, no heap, no locks.
// analyze: hotpath
void MetricsRegistry::on_source_packet() noexcept {
  packets_in_.fetch_add(1, std::memory_order_relaxed);
}

// analyze: hotpath
void MetricsRegistry::on_push(std::size_t shard,
                              std::size_t depth_after) noexcept {
  DCHECK_LT(shard, shards_);
  RingCounters& ring = rings_[shard];
  ring.pushed.fetch_add(1, std::memory_order_relaxed);
  // Only the dispatcher writes high_water, so a read-then-store is safe.
  if (depth_after > ring.high_water.load(std::memory_order_relaxed)) {
    ring.high_water.store(depth_after, std::memory_order_relaxed);
  }
}

// analyze: hotpath
void MetricsRegistry::on_drop(std::size_t shard) noexcept {
  DCHECK_LT(shard, shards_);
  rings_[shard].dropped.fetch_add(1, std::memory_order_relaxed);
}

// The burst-path mutators fold a whole burst into one relaxed add per
// counter — called once per ring operation instead of once per packet,
// they are what keeps metrics cost amortized on the batched fast path.
// analyze: hotpath
void MetricsRegistry::on_source_packets(std::uint64_t n) noexcept {
  packets_in_.fetch_add(n, std::memory_order_relaxed);
}

// analyze: hotpath
void MetricsRegistry::on_push_burst(std::size_t shard, std::size_t n,
                                    std::size_t depth_after) noexcept {
  DCHECK_LT(shard, shards_);
  if (n == 0) return;
  RingCounters& ring = rings_[shard];
  ring.pushed.fetch_add(n, std::memory_order_relaxed);
  ring.bursts[burst_bucket(n)].fetch_add(1, std::memory_order_relaxed);
  // Only the dispatcher writes high_water, so a read-then-store is safe.
  if (depth_after > ring.high_water.load(std::memory_order_relaxed)) {
    ring.high_water.store(depth_after, std::memory_order_relaxed);
  }
}

// analyze: hotpath
void MetricsRegistry::on_drop_burst(std::size_t shard,
                                    std::size_t n) noexcept {
  DCHECK_LT(shard, shards_);
  rings_[shard].dropped.fetch_add(n, std::memory_order_relaxed);
}

// analyze: hotpath
void MetricsRegistry::on_dispatch_flush(std::size_t shard) noexcept {
  DCHECK_LT(shard, shards_);
  rings_[shard].flushes.fetch_add(1, std::memory_order_relaxed);
}

// analyze: hotpath
void MetricsRegistry::on_pop(std::size_t shard) noexcept {
  DCHECK_LT(shard, shards_);
  rings_[shard].popped.fetch_add(1, std::memory_order_relaxed);
}

// analyze: hotpath
void MetricsRegistry::on_pop_burst(std::size_t shard,
                                   std::size_t n) noexcept {
  DCHECK_LT(shard, shards_);
  rings_[shard].popped.fetch_add(n, std::memory_order_relaxed);
}

// analyze: hotpath
void MetricsRegistry::on_classified(datagen::FileClass nature) noexcept {
  const auto index = static_cast<std::size_t>(nature);
  DCHECK_LT(index, flows_by_nature_.size());
  flows_by_nature_[index].fetch_add(1, std::memory_order_relaxed);
}

// analyze: hotpath
void MetricsRegistry::record_engine_latency(double micros) noexcept {
  engine_latency_.record(micros);
}

// analyze: hotpath
void MetricsRegistry::on_packets_shed(std::uint64_t n) noexcept {
  packets_shed_.fetch_add(n, std::memory_order_relaxed);
}

// The resilience counters run off the packet path (stage transitions,
// retry outcomes, watchdog detections) but keep the same relaxed-add
// contract so they are safe from any thread.
void MetricsRegistry::on_stage_entered(std::size_t stage) noexcept {
  DCHECK_LT(stage, kShedStageCount);
  stage_entries_[stage].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::on_stage_exited(std::size_t stage) noexcept {
  DCHECK_LT(stage, kShedStageCount);
  stage_exits_[stage].fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::on_source_transient_error() noexcept {
  source_transient_errors_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::on_source_retries_exhausted() noexcept {
  source_retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
}

void MetricsRegistry::on_watchdog_stall() noexcept {
  watchdog_stalls_.fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot(
    const core::OutputQueues* queues) const {
  MetricsSnapshot snap;
  snap.shards = shards_;
  snap.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    created_)
          .count();
  snap.packets_in = packets_in_.load(std::memory_order_relaxed);
  snap.rings.resize(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    snap.rings[s].pushed = rings_[s].pushed.load(std::memory_order_relaxed);
    snap.rings[s].popped = rings_[s].popped.load(std::memory_order_relaxed);
    snap.rings[s].dropped = rings_[s].dropped.load(std::memory_order_relaxed);
    snap.rings[s].high_water =
        rings_[s].high_water.load(std::memory_order_relaxed);
    snap.rings[s].flushes = rings_[s].flushes.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kBurstBucketCount; ++b) {
      snap.rings[s].burst_counts[b] =
          rings_[s].bursts[b].load(std::memory_order_relaxed);
    }
  }
  for (std::size_t c = 0; c < flows_by_nature_.size(); ++c) {
    snap.flows_by_nature[c] =
        flows_by_nature_[c].load(std::memory_order_relaxed);
  }
  snap.engine_latency = engine_latency_.snapshot();
  for (std::size_t i = 0; i < kShedStageCount; ++i) {
    snap.stage_entries[i] = stage_entries_[i].load(std::memory_order_relaxed);
    snap.stage_exits[i] = stage_exits_[i].load(std::memory_order_relaxed);
  }
  snap.packets_shed = packets_shed_.load(std::memory_order_relaxed);
  snap.source_transient_errors =
      source_transient_errors_.load(std::memory_order_relaxed);
  snap.source_retries_exhausted =
      source_retries_exhausted_.load(std::memory_order_relaxed);
  snap.watchdog_stalls = watchdog_stalls_.load(std::memory_order_relaxed);
  if (queues != nullptr) {
    snap.has_queue_stats = true;
    snap.queue_stats = queues->stats();
  }
  return snap;
}

std::uint64_t MetricsSnapshot::total_pushed() const noexcept {
  std::uint64_t total = 0;
  for (const Ring& ring : rings) total += ring.pushed;
  return total;
}

std::uint64_t MetricsSnapshot::total_popped() const noexcept {
  std::uint64_t total = 0;
  for (const Ring& ring : rings) total += ring.popped;
  return total;
}

std::uint64_t MetricsSnapshot::total_dropped() const noexcept {
  std::uint64_t total = 0;
  for (const Ring& ring : rings) total += ring.dropped;
  return total;
}

std::uint64_t MetricsSnapshot::total_flushes() const noexcept {
  std::uint64_t total = 0;
  for (const Ring& ring : rings) total += ring.flushes;
  return total;
}

double MetricsSnapshot::Ring::mean_burst() const noexcept {
  std::uint64_t bursts = 0;
  for (const std::uint64_t n : burst_counts) bursts += n;
  return bursts == 0 ? 0.0
                     : static_cast<double>(pushed) /
                           static_cast<double>(bursts);
}

std::string MetricsSnapshot::text_report() const {
  std::ostringstream out;
  out << "runtime metrics\n"
      << "  uptime: " << util::fmt(uptime_seconds, 1)
      << "s  model: " << model_version << "  swaps: " << model_swaps << "\n"
      << "  packets in: " << packets_in << "  pushed: " << total_pushed()
      << "  popped: " << total_popped() << "  dropped: " << total_dropped()
      << "\n";

  util::Table rings_table({"ring", "pushed", "popped", "dropped",
                           "high water", "flushes", "mean burst"});
  for (std::size_t s = 0; s < rings.size(); ++s) {
    rings_table.add_row({std::to_string(s), std::to_string(rings[s].pushed),
                         std::to_string(rings[s].popped),
                         std::to_string(rings[s].dropped),
                         std::to_string(rings[s].high_water),
                         std::to_string(rings[s].flushes),
                         rings[s].flushes == 0
                             ? std::string("-")
                             : util::fmt(rings[s].mean_burst(), 1)});
  }
  rings_table.render(out);

  util::Table natures({"nature", "flows classified", "queue enq",
                       "queue drop", "queue depth", "queue high water"});
  for (std::size_t c = 0; c < flows_by_nature.size(); ++c) {
    natures.add_row(
        {kNatureNames[c], std::to_string(flows_by_nature[c]),
         has_queue_stats ? std::to_string(queue_stats.enqueued[c]) : "-",
         has_queue_stats ? std::to_string(queue_stats.dropped[c]) : "-",
         has_queue_stats ? std::to_string(queue_stats.depth[c]) : "-",
         has_queue_stats ? std::to_string(queue_stats.high_water[c]) : "-"});
  }
  natures.render(out);

  out << "  health: " << health << "  shed stage: " << overload_stage
      << "  shed: " << packets_shed
      << "  source errors: " << source_transient_errors
      << "  watchdog stalls: " << watchdog_stalls << "\n";
  if (cdb_ceiling > 0 || cdb_forced_evictions > 0) {
    out << "  cdb: records=" << cdb_records << " ceiling=" << cdb_ceiling
        << " forced evictions=" << cdb_forced_evictions
        << " insert failures=" << cdb_insert_failures << "\n";
  }
  out << "  engine latency: n=" << engine_latency.total
      << " mean=" << fmt_micros(engine_latency.mean_micros())
      << " p50<=" << fmt_micros(engine_latency.quantile_upper_micros(0.50))
      << " p99<=" << fmt_micros(engine_latency.quantile_upper_micros(0.99))
      << "\n";
  return out.str();
}

std::string MetricsSnapshot::json() const {
  std::ostringstream out;
  out << std::setprecision(12);
  out << "{\n  \"shards\": " << shards
      << ",\n  \"uptime_seconds\": " << uptime_seconds
      << ",\n  \"model_version\": \"" << json_escape(model_version) << "\""
      << ",\n  \"model_swaps\": " << model_swaps
      << ",\n  \"packets_in\": " << packets_in
      << ",\n  \"pushed\": " << total_pushed()
      << ",\n  \"popped\": " << total_popped()
      << ",\n  \"dropped\": " << total_dropped()
      << ",\n  \"dispatch_flushes\": " << total_flushes()
      << ",\n  \"rings\": [";
  for (std::size_t s = 0; s < rings.size(); ++s) {
    out << (s == 0 ? "\n" : ",\n")
        << "    {\"pushed\": " << rings[s].pushed
        << ", \"popped\": " << rings[s].popped
        << ", \"dropped\": " << rings[s].dropped
        << ", \"high_water\": " << rings[s].high_water
        << ", \"flushes\": " << rings[s].flushes
        << ", \"mean_burst\": " << rings[s].mean_burst()
        << ", \"burst_hist\": [";
    for (std::size_t b = 0; b < rings[s].burst_counts.size(); ++b) {
      out << (b == 0 ? "" : ", ") << rings[s].burst_counts[b];
    }
    out << "]}";
  }
  out << "\n  ],\n  \"flows_by_nature\": {";
  for (std::size_t c = 0; c < flows_by_nature.size(); ++c) {
    out << (c == 0 ? "" : ", ") << "\"" << kNatureNames[c]
        << "\": " << flows_by_nature[c];
  }
  out << "},\n  \"health\": \"" << json_escape(health) << "\""
      << ",\n  \"overload_stage\": " << overload_stage
      << ",\n  \"stage_entries\": [";
  for (std::size_t i = 0; i < stage_entries.size(); ++i) {
    out << (i == 0 ? "" : ", ") << stage_entries[i];
  }
  out << "],\n  \"stage_exits\": [";
  for (std::size_t i = 0; i < stage_exits.size(); ++i) {
    out << (i == 0 ? "" : ", ") << stage_exits[i];
  }
  out << "],\n  \"packets_shed\": " << packets_shed
      << ",\n  \"source_transient_errors\": " << source_transient_errors
      << ",\n  \"source_retries_exhausted\": " << source_retries_exhausted
      << ",\n  \"watchdog_stalls\": " << watchdog_stalls
      << ",\n  \"cdb\": {\"records\": " << cdb_records
      << ", \"ceiling\": " << cdb_ceiling
      << ", \"forced_evictions\": " << cdb_forced_evictions
      << ", \"insert_failures\": " << cdb_insert_failures << "}"
      << ",\n  \"engine_latency\": {\"count\": " << engine_latency.total
      << ", \"mean_micros\": " << engine_latency.mean_micros()
      << ", \"p50_upper_micros\": "
      << engine_latency.quantile_upper_micros(0.50)
      << ", \"p99_upper_micros\": "
      << engine_latency.quantile_upper_micros(0.99) << "}";
  if (has_queue_stats) {
    out << ",\n  \"output_queues\": {";
    for (std::size_t c = 0; c < queue_stats.enqueued.size(); ++c) {
      out << (c == 0 ? "" : ", ") << "\"" << kNatureNames[c]
          << "\": {\"enqueued\": " << queue_stats.enqueued[c]
          << ", \"dropped\": " << queue_stats.dropped[c]
          << ", \"depth\": " << queue_stats.depth[c]
          << ", \"high_water\": " << queue_stats.high_water[c] << "}";
    }
    out << "}";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace iustitia::runtime
