#include "core/engine.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <span>
#include <utility>

#include "appproto/header_stripper.h"
#include "util/check.h"
#include "util/rt_guard.h"
#include "util/timer.h"

namespace iustitia::core {

namespace {

// Bound on how long we wait for an incomplete-but-recognized application
// header before giving up and classifying from the threshold.
constexpr std::size_t kMaxHeaderWait = 8192;

std::shared_ptr<const FlowNatureModel> require_model(
    std::shared_ptr<const FlowNatureModel> model) {
  CHECK(model != nullptr) << "engine needs a non-null model";
  return model;
}

}  // namespace

Iustitia::Iustitia(FlowNatureModel model, const EngineOptions& options)
    : Iustitia(std::make_shared<const FlowNatureModel>(std::move(model)),
               options) {}

Iustitia::Iustitia(std::shared_ptr<const FlowNatureModel> model,
                   const EngineOptions& options)
    : model_(require_model(std::move(model))),
      extractor_(model_->extractor()),
      options_(options),
      cdb_(options.cdb),
      rng_(options.seed) {
  CHECK_GT(options_.buffer_size, std::size_t{0})
      << "engine needs at least one buffered byte to classify on";
  CHECK_GT(options_.buffer_timeout_seconds, 0.0);
}

void Iustitia::install_model(std::shared_ptr<const FlowNatureModel> model) {
  model_ = require_model(std::move(model));
  extractor_ = model_->extractor();
}

bool Iustitia::resolve_skip(PendingFlow& flow) {
  if (flow.skip_resolved) return true;
  // No payload yet (e.g. only a SYN seen): detection must wait, otherwise
  // an empty prefix would resolve to "no known header" prematurely.
  if (flow.raw.empty()) return false;
  if (options_.strip_known_headers) {
    const appproto::HeaderDetection det = appproto::detect_header(flow.raw);
    if (det.protocol != appproto::AppProtocol::kNone) {
      if (det.header_complete) {
        flow.skip = det.header_length + flow.random_skip;
        flow.skip_resolved = true;
        return true;
      }
      // Recognized protocol but delimiter not seen yet: wait for more
      // payload (bounded).
      if (flow.raw.size() < kMaxHeaderWait) return false;
      flow.skip = det.header_length + flow.random_skip;
      flow.skip_resolved = true;
      return true;
    }
  }
  // Unknown header: skip the configured threshold T.
  flow.skip = options_.header_threshold + flow.random_skip;
  flow.skip_resolved = true;
  return true;
}

bool Iustitia::buffer_full(const PendingFlow& flow) const noexcept {
  return flow.skip_resolved &&
         flow.raw.size() >= flow.skip + effective_buffer_size();
}

PacketAction Iustitia::on_packet(const net::Packet& packet) {
  return on_packet(packet, nullptr);
}

// Real-time contract: the steady state is the CDB-hit return below —
// hash, one guarded table probe, counter bumps, no heap.  Everything
// after the "Unknown flow" comment is the per-flow setup/classification
// cold branch, documented by one AllowScope.
// analyze: hotpath
PacketAction Iustitia::on_packet(const net::Packet& packet,
                                 datagen::FileClass* label_out) {
  ++stats_.packets;
  if (packet.is_data()) ++stats_.data_packets;
  const double now = packet.timestamp;

  const net::FlowId id = net::flow_id(packet.key);
  const std::optional<datagen::FileClass> known = cdb_.lookup(id, now);

  if (known.has_value()) {
    DCHECK_LT(static_cast<std::size_t>(*known), stats_.queue_packets.size());
    ++stats_.queue_packets[static_cast<std::size_t>(*known)];
    if (packet.flags.fin || packet.flags.rst) {
      cdb_.remove_on_close(id);
    }
    if (label_out != nullptr) *label_out = *known;
    return PacketAction::kForwarded;
  }

  // Unknown flow: buffer payload.  First sight of a flow pays for its
  // bookkeeping — map insertion, payload buffering, and (once the buffer
  // fills) feature extraction + model classification.  That is the
  // engine's documented cold branch; it covers the rest of the function.
  util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block, may-throw, unresolved-call)

  // Overload stage 2 (sample-admission): a brand-new flow is admitted
  // with probability admission_permille/1000, decided by a stable hash
  // of its id so the same flow is consistently admitted or shed.  Flows
  // that already have a pending buffer keep classifying.
  if (admission_permille_ < 1000 &&
      pending_.find(packet.key) == pending_.end()) {
    const std::uint32_t bucket =
        static_cast<std::uint32_t>(id.prefix64() % 1000);
    if (bucket >= admission_permille_) {
      ++stats_.packets_shed;
      return PacketAction::kShed;
    }
  }

  // tau_hash / tau_CDBsearch (Fig. 1, Table 3): measured here on the
  // miss path — the only consumer — by re-running the two stages under a
  // split stopwatch.  flow_id is pure and peek() is the read-only twin
  // of the probe lookup() just did, so the replays cost exactly what the
  // live calls cost; keeping the timers off the CDB-hit lane saves three
  // steady-clock reads (tens of ns each) on the per-packet fast path.
  util::SplitStopwatch tau;
  const net::FlowId rehash = net::flow_id(packet.key);
  tau.mark();
  const bool still_absent = !cdb_.peek(rehash).has_value();
  const double cdb_micros = tau.second_micros();
  const double hash_micros = tau.first_micros();
  DCHECK(still_absent) << "flow appeared in the CDB between lookup and peek";
  auto [it, inserted] = pending_.try_emplace(packet.key);
  PendingFlow& flow = it->second;
  if (inserted) {
    flow.last_packet_at = now;
    if (options_.random_skip_max > 0) {
      flow.random_skip = static_cast<std::size_t>(
          rng_.next_below(options_.random_skip_max + 1));
    }
  }
  flow.hash_micros += hash_micros;
  flow.cdb_micros += cdb_micros;
  ++flow.measures;
  flow.last_packet_at = now;

  PacketAction action = PacketAction::kIgnored;
  if (packet.is_data()) {
    if (flow.data_packets == 0) flow.first_data_at = now;
    ++flow.data_packets;
    const std::size_t want = options_.header_threshold + flow.random_skip +
                             effective_buffer_size() + kMaxHeaderWait;
    const std::size_t room =
        flow.raw.size() < want ? want - flow.raw.size() : 0;
    const std::size_t take = std::min(room, packet.payload.size());
    flow.raw.insert(flow.raw.end(), packet.payload.begin(),
                    packet.payload.begin() + static_cast<std::ptrdiff_t>(take));
    action = PacketAction::kBuffered;
  }

  if (resolve_skip(flow) && buffer_full(flow)) {
    const datagen::FileClass label =
        classify_flow(packet.key, flow, now, /*timed_out=*/false);
    if (label_out != nullptr) *label_out = label;
    pending_.erase(it);
    action = PacketAction::kClassifiedNow;
  } else if ((packet.flags.fin || packet.flags.rst) &&
             flow.raw.size() > flow.skip) {
    // Flow ended before the buffer filled: classify on what we have.
    flow.skip_resolved = true;
    const datagen::FileClass label =
        classify_flow(packet.key, flow, now, /*timed_out=*/true);
    if (label_out != nullptr) *label_out = label;
    pending_.erase(it);
    action = PacketAction::kClassifiedNow;
  }

  if (++packets_since_flush_ >= 1024) {
    packets_since_flush_ = 0;
    flush_idle(now);
  }
  return action;
}

datagen::FileClass Iustitia::classify_flow(const net::FlowKey& key,
                                           PendingFlow& flow, double now,
                                           bool timed_out) {
  const std::size_t available =
      flow.raw.size() > flow.skip ? flow.raw.size() - flow.skip : 0;
  const std::size_t take = std::min(available, effective_buffer_size());
  DCHECK_LE(flow.skip + take, flow.raw.size())
      << "classification window must stay inside the buffered bytes";
  const std::span<const std::uint8_t> window(flow.raw.data() + flow.skip,
                                             take);
  // Extraction runs on the engine's own extractor copy (mutable Rng);
  // inference runs on the shared immutable model — the split that makes
  // one model safely shareable across shards and hot-swappable.
  ExtractionResult extraction = extractor_.extract(window);
  const datagen::FileClass label = model_->classify_features(extraction.features);

  cdb_.insert(net::flow_id(key), label, now);
  cdb_.maybe_purge(now);

  FlowDelayRecord record;
  record.key = key;
  record.label = label;
  record.classified_at = now;
  record.tau_b = flow.data_packets > 0 ? now - flow.first_data_at : 0.0;
  record.packets_to_fill = flow.data_packets;
  record.hash_micros = flow.hash_micros;
  record.cdb_micros = flow.cdb_micros;
  record.extract_micros = extraction.micros;
  record.buffered_bytes = take;
  delays_.push_back(record);

  ++stats_.flows_classified;
  if (timed_out) ++stats_.flows_timed_out;
  DCHECK_LT(static_cast<std::size_t>(label), stats_.queue_packets.size());
  ++stats_.queue_packets[static_cast<std::size_t>(label)];
  return label;
}

std::size_t Iustitia::flush_idle(double now) {
  // The reclassification defense (Section 4.6) is time-driven, so it needs
  // purge opportunities even when no new flows are being inserted.
  if (options_.cdb.reclassify_after_seconds > 0.0) {
    cdb_.purge(now);
  }
  std::size_t flushed = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingFlow& flow = it->second;
    if (now - flow.last_packet_at >= options_.buffer_timeout_seconds &&
        flow.raw.size() > 0) {
      flow.skip_resolved = true;
      if (flow.skip > flow.raw.size()) flow.skip = 0;  // header never came
      if (flow.raw.size() > flow.skip) {
        classify_flow(it->first, flow, now, /*timed_out=*/true);
        ++flushed;
        it = pending_.erase(it);
        continue;
      }
    }
    ++it;
  }
  return flushed;
}

std::size_t Iustitia::flush_all() {
  std::size_t flushed = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingFlow& flow = it->second;
    flow.skip_resolved = true;
    if (flow.skip >= flow.raw.size()) flow.skip = 0;
    if (flow.raw.size() > flow.skip) {
      classify_flow(it->first, flow, flow.last_packet_at, /*timed_out=*/true);
      ++flushed;
      it = pending_.erase(it);
    } else {
      it = pending_.erase(it);  // never carried payload; drop silently
    }
  }
  return flushed;
}

std::optional<datagen::FileClass> Iustitia::label_of(const net::FlowKey& key) {
  return cdb_.peek(net::flow_id(key));
}

std::size_t Iustitia::pending_buffer_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, flow] : pending_) total += flow.raw.capacity();
  return total;
}

}  // namespace iustitia::core
