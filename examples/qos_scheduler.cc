// QoS scheduling: the paper's first motivation (Section 1.1).  "Among the
// traffic to/from the bank network, the ISP may give higher priority to
// the encrypted flows because they most likely carry banking
// transactions."
//
// This example routes classified packets into per-nature output queues
// (Fig. 1's LQ blocks) and drains them with a strict-priority scheduler at
// a fixed line rate, comparing per-class queueing delay against a FIFO
// baseline.
//
// Run:  ./qos_scheduler
#include <deque>
#include <iostream>
#include <string>

#include "appproto/trace_headers.h"
#include "core/engine.h"
#include "core/output_queues.h"
#include "core/trainer.h"
#include "net/trace_gen.h"
#include "util/stats.h"
#include "util/table.h"

using namespace iustitia;

int main() {
  // Train the classifier.
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 60;
  corpus_options.seed = 81;
  const auto corpus = datagen::build_corpus(corpus_options);
  core::TrainerOptions trainer;
  trainer.backend = core::Backend::kCart;
  trainer.widths = entropy::cart_preferred_widths();
  trainer.method = core::TrainingMethod::kFirstBytes;
  trainer.buffer_size = 32;
  core::FlowNatureModel model = core::train_model(corpus, trainer);

  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = 50000;
  trace_options.seed = 82;
  const net::Trace trace = net::generate_trace(trace_options);

  core::EngineOptions engine_options;
  engine_options.buffer_size = 32;
  core::Iustitia engine(std::move(model), engine_options);

  // The "bank" policy: encrypted > binary > text.
  const datagen::FileClass priority[] = {datagen::FileClass::kEncrypted,
                                         datagen::FileClass::kBinary,
                                         datagen::FileClass::kText};
  core::OutputQueues queues(/*capacity=*/512);

  // Serve packets at a line rate below the offered rate so queues build up
  // and the scheduling policy matters.
  const double offered_rate = static_cast<double>(trace.packets.size()) /
                              trace.duration_seconds;
  const double service_rate = offered_rate * 0.9;
  const double service_interval = 1.0 / service_rate;

  util::RunningStats delay_priority[3], delay_fifo[3];
  std::deque<core::QueuedPacket> fifo;
  double next_service = 0.0;

  for (const net::Packet& packet : trace.packets) {
    engine.on_packet(packet);
    // Drain both disciplines up to the current trace time BEFORE enqueuing
    // this packet (a packet cannot be served before it arrives).
    while (next_service <= packet.timestamp) {
      const auto served = queues.dequeue_priority(priority);
      const bool fifo_has = !fifo.empty();
      if (!served.has_value() && !fifo_has) {
        // Idle server: fast-forward, otherwise later packets would appear
        // to be served before they arrived.
        next_service = packet.timestamp;
        break;
      }
      if (served.has_value()) {
        delay_priority[static_cast<int>(served->label)].add(
            next_service - served->packet.timestamp);
      }
      if (fifo_has) {
        const core::QueuedPacket& head = fifo.front();
        delay_fifo[static_cast<int>(head.label)].add(next_service -
                                                     head.packet.timestamp);
        fifo.pop_front();
      }
      next_service += service_interval;
    }

    const auto label = engine.label_of(packet.key);
    if (packet.is_data() && label.has_value()) {
      queues.enqueue(*label, packet);
      if (fifo.size() < 3 * 512) {
        fifo.push_back(core::QueuedPacket{packet, *label});
      }
    }
  }
  engine.flush_all();

  util::Table table({"class", "FIFO mean delay", "priority mean delay",
                     "served (priority)", "dropped (priority)"});
  static constexpr const char* kNames[3] = {"text", "binary", "encrypted"};
  for (int c = 2; c >= 0; --c) {
    const auto label = static_cast<datagen::FileClass>(c);
    table.add_row({kNames[c],
                   util::fmt_seconds(delay_fifo[c].mean()),
                   util::fmt_seconds(delay_priority[c].mean()),
                   std::to_string(delay_priority[c].count()),
                   std::to_string(queues.dropped(label))});
  }
  table.render(std::cout);

  std::cout << "\nstrict priority (encrypted > binary > text) at 90% line "
               "rate: encrypted traffic sees the lowest queueing delay, "
               "paid for by the text queue — the paper's bank scenario.\n";
  return 0;
}
