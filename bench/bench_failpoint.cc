// Microbenchmark: cost of a FAILPOINT() evaluation on the hot path.
//
// The robustness design (DESIGN.md §12) claims a *disarmed* failpoint
// costs one relaxed atomic load — cheap enough to compile fault
// injection into the production binary.  This bench measures that claim
// directly: ns per evaluation for a disarmed point against an empty
// baseline loop, plus the armed non-triggering case (error(0.0): full
// PRNG sample, no action) as the upper bound an armed-but-quiet point
// pays.  Results land in JSON (argv[1], default BENCH_failpoint.json)
// for the bench trajectory; there is no perf_check gate — the numbers
// are documentation, the hot-path guarantee itself is enforced by the
// analyzer's hotpath pass and the rt-debug runtime guards.
//
// Knobs: IUSTITIA_FAILPOINT_ITERS  evaluations per timing loop
//                                  (default 50'000'000).
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "util/failpoint.h"
#include "util/table.h"
#include "util/timer.h"

namespace iustitia::bench {
namespace {

// Measures `fn` over `iters` iterations and returns ns per iteration.
// `sink` defeats dead-code elimination.
template <typename Fn>
double measure_ns(std::size_t iters, Fn&& fn, std::uint64_t& sink) {
  fn(sink);  // warm-up: interns the point, faults the pages
  const util::Stopwatch timer;
  for (std::size_t i = 0; i < iters; ++i) fn(sink);
  return timer.elapsed_millis() * 1e6 / static_cast<double>(iters);
}

}  // namespace
}  // namespace iustitia::bench

int main(int argc, char** argv) {
  using namespace iustitia;
  using bench::env_size;

  const std::size_t iters = env_size("IUSTITIA_FAILPOINT_ITERS", 50'000'000);
  util::failpoints_disarm_all();
  util::failpoints_set_seed(0x1057F417ULL);

  std::uint64_t sink = 0;
  const double empty_ns = bench::measure_ns(
      iters, [](std::uint64_t& s) { s += 1; }, sink);
  const double disarmed_ns = bench::measure_ns(
      iters,
      [](std::uint64_t& s) {
        s += FAILPOINT("test.probe") == util::FailpointAction::kNone ? 0 : 1;
      },
      sink);
  // error(0.0): the point is armed so every evaluation samples the
  // per-point PRNG, but probability zero means no action ever fires.
  const std::string error = util::failpoints_configure("test.probe=error(0.0)");
  if (!error.empty()) {
    std::cerr << "failpoints_configure: " << error << '\n';
    return 1;
  }
  const double armed_quiet_ns = bench::measure_ns(
      iters,
      [](std::uint64_t& s) {
        s += FAILPOINT("test.probe") == util::FailpointAction::kNone ? 0 : 1;
      },
      sink);
  util::failpoints_disarm_all();

  util::Table table({"case", "ns/eval", "delta vs empty"});
  table.add_row({"empty loop", util::fmt(empty_ns, 3), "-"});
  table.add_row({"disarmed FAILPOINT", util::fmt(disarmed_ns, 3),
                 util::fmt(disarmed_ns - empty_ns, 3)});
  table.add_row({"armed error(0.0)", util::fmt(armed_quiet_ns, 3),
                 util::fmt(armed_quiet_ns - empty_ns, 3)});
  std::cout << "FAILPOINT evaluation cost (" << iters << " iters/case)\n";
  table.render(std::cout);
  std::cout << "(sink " << sink << ")\n";

  const char* out = argc > 1 ? argv[1] : "BENCH_failpoint.json";
  std::ofstream json(out);
  json << std::setprecision(6) << "{\n"
       << "  \"bench\": \"failpoint\",\n"
       << "  \"iters\": " << iters << ",\n"
       << "  \"rows\": [\n"
       << "    {\"case\": \"empty\", \"ns_per_eval\": " << empty_ns << "},\n"
       << "    {\"case\": \"disarmed\", \"ns_per_eval\": " << disarmed_ns
       << "},\n"
       << "    {\"case\": \"armed_error_p0\", \"ns_per_eval\": "
       << armed_quiet_ns << "}\n"
       << "  ]\n}\n";
  std::cout << "wrote " << out << '\n';
  return 0;
}
