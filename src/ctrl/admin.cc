#include "ctrl/admin.h"

#include <exception>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

#include "core/model_bundle.h"
#include "ctrl/prometheus.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace iustitia::ctrl {

namespace {

// Minimal JSON string escaping for operator-supplied failpoint specs.
std::string json_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out += "?";  // control bytes have no business in a spec
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

AdminServer::AdminServer(runtime::Runtime* runtime,
                         std::shared_ptr<core::ModelRegistry> registry,
                         HttpServer::Options options)
    : runtime_(runtime),
      registry_(std::move(registry)),
      server_(std::move(options),
              [this](const HttpRequest& request) { return handle(request); }) {
  CHECK(runtime_ != nullptr) << "AdminServer needs a runtime";
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::start() { server_.start(); }

void AdminServer::stop() {
  // Release any wait_for_quit() caller first so shutdown never hangs on
  // the latch, then tear the HTTP threads down.
  notify_quit();
  server_.stop();
}

bool AdminServer::quit_requested() const {
  util::MutexLock lock(quit_mu_);
  return quit_;
}

void AdminServer::wait_for_quit() {
  util::MutexLock lock(quit_mu_);
  while (!quit_) quit_cv_.wait(quit_mu_);
}

void AdminServer::notify_quit() {
  {
    util::MutexLock lock(quit_mu_);
    quit_ = true;
  }
  quit_cv_.notify_all();
}

HttpResponse AdminServer::handle(const HttpRequest& request) {
  // Fault injection: an armed error on ctrl.request fails the request
  // up front — exercises operator tooling against a flaky admin plane.
  if (FAILPOINT("ctrl.request") == util::FailpointAction::kError) {
    return text_response(500, "injected ctrl.request failure\n");
  }
  if (request.target == "/healthz") {
    if (request.method != "GET") return text_response(405, "GET only\n");
    return text_response(200, "ok\n");
  }
  if (request.target == "/readyz") {
    if (request.method != "GET") return text_response(405, "GET only\n");
    return handle_readyz();
  }
  if (request.target == "/failpoints") {
    return handle_failpoints(request);
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") return text_response(405, "GET only\n");
    HttpResponse resp =
        text_response(200, render_prometheus(runtime_->snapshot()));
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return resp;
  }
  if (request.target == "/stats.json") {
    if (request.method != "GET") return text_response(405, "GET only\n");
    return json_response(200, runtime_->snapshot().json());
  }
  if (request.target == "/model") {
    if (request.method != "POST") return text_response(405, "POST only\n");
    return handle_model_post(request);
  }
  if (request.target == "/quitquitquit") {
    if (request.method != "POST") return text_response(405, "POST only\n");
    // Latch only; the serve loop drains after this response is written.
    notify_quit();
    return text_response(200, "draining\n");
  }
  return text_response(404,
                       "unknown endpoint; have /healthz /readyz /metrics "
                       "/stats.json /failpoints /model /quitquitquit\n");
}

HttpResponse AdminServer::handle_readyz() const {
  // Liveness vs readiness: /healthz says "the process is up", this says
  // "send me traffic".  Draining and watchdog-stalled both answer 503 so
  // a load balancer steers away; the shed ladder answers 200 with the
  // stage in the body — degraded service is still service.
  if (quit_requested()) return text_response(503, "draining\n");
  const runtime::RuntimeHealth health = runtime_->health();
  const int status =
      health.state == runtime::HealthState::kUnhealthy ? 503 : 200;
  return text_response(status, runtime_->health_string() + "\n");
}

HttpResponse AdminServer::handle_failpoints(const HttpRequest& request) {
  if (request.method == "GET") {
    std::ostringstream body;
    body << "{\"failpoints\": [";
    bool first = true;
    for (const util::FailpointInfo& info : util::failpoints_snapshot()) {
      if (!first) body << ", ";
      first = false;
      body << "{\"name\": \"" << json_escape(info.name) << "\", \"spec\": \""
           << json_escape(info.spec) << "\", \"armed\": "
           << (info.armed ? "true" : "false")
           << ", \"evaluations\": " << info.evaluations
           << ", \"triggers\": " << info.triggers << "}";
    }
    body << "]}\n";
    return json_response(200, body.str());
  }
  if (request.method == "POST") {
    // Body is one spec string (see util/failpoint.h).  A rejected spec
    // changes nothing: configure() validates every entry before arming.
    const std::string error = util::failpoints_configure(request.body);
    if (!error.empty()) {
      return text_response(400, "failpoint spec rejected: " + error + "\n");
    }
    IUSTITIA_LOG_INFO << "ctrl: failpoints configured: '" << request.body
                      << "'";
    return json_response(200, "{\"status\": \"ok\"}\n");
  }
  return text_response(405, "GET or POST only\n");
}

HttpResponse AdminServer::handle_model_post(const HttpRequest& request) {
  if (registry_ == nullptr) {
    return text_response(
        503, "runtime was started without a model registry; hot-swap "
             "is unavailable\n");
  }
  if (request.body.empty()) {
    return text_response(400, "empty body; POST a model bundle (see "
                              "`iustitia train`)\n");
  }
  core::LoadedModelBundle bundle;
  try {
    // Full validation happens HERE, on the handler thread: frame magic,
    // format version, CRC, then the model parse.  Only a fully parsed
    // model is ever published to the workers.
    std::istringstream body(request.body);
    bundle = core::load_model_bundle(body);
  } catch (const std::exception& e) {
    return text_response(400, std::string("model bundle rejected: ") +
                                  e.what() + "\n");
  }
  const std::string version = core::model_version_of(bundle.metadata);
  const std::uint64_t epoch = registry_->publish(
      std::make_shared<const core::FlowNatureModel>(std::move(bundle.model)),
      version);
  IUSTITIA_LOG_INFO << "ctrl: published model version '" << version
                    << "' at epoch " << epoch;
  std::ostringstream body;
  body << "{\"status\": \"swapped\", \"version\": \"" << version
       << "\", \"epoch\": " << epoch << "}\n";
  return json_response(200, body.str());
}

}  // namespace iustitia::ctrl
