// Corpus <-> filesystem: write a synthetic corpus out as real files and
// load a labeled directory tree back in.
//
// Layout: <root>/text/*, <root>/binary/*, <root>/encrypted/* — one file
// per sample, so users can drop in their own labeled pools (the paper's
// setup: directories of documents, executables, and ciphertexts) and train
// on them with the CLI.
#ifndef IUSTITIA_DATAGEN_CORPUS_IO_H_
#define IUSTITIA_DATAGEN_CORPUS_IO_H_

#include <filesystem>
#include <span>
#include <vector>

#include "datagen/corpus.h"

namespace iustitia::datagen {

// Writes each sample under <root>/<class>/<index>.<kind>.bin, creating
// directories as needed.  Throws std::runtime_error on I/O failure.
void save_corpus(const std::vector<FileSample>& corpus,
                 const std::filesystem::path& root);

// Loads every regular file under <root>/{text,binary,encrypted}/.
// Files above `max_bytes` are truncated on read (0 = unlimited).  Throws
// std::runtime_error if no class directory yields any file.
std::vector<FileSample> load_corpus(const std::filesystem::path& root,
                                    std::size_t max_bytes = 0);

// Reads one whole file (optionally truncated).  Throws on failure.
std::vector<std::uint8_t> read_file(const std::filesystem::path& path,
                                    std::size_t max_bytes = 0);

// Writes bytes to a file, creating parent directories.  Throws on failure.
void write_file(const std::filesystem::path& path,
                std::span<const std::uint8_t> bytes);

}  // namespace iustitia::datagen

#endif  // IUSTITIA_DATAGEN_CORPUS_IO_H_
