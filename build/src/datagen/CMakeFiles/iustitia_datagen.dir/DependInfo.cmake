
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/binary_gen.cc" "src/datagen/CMakeFiles/iustitia_datagen.dir/binary_gen.cc.o" "gcc" "src/datagen/CMakeFiles/iustitia_datagen.dir/binary_gen.cc.o.d"
  "/root/repo/src/datagen/chacha20.cc" "src/datagen/CMakeFiles/iustitia_datagen.dir/chacha20.cc.o" "gcc" "src/datagen/CMakeFiles/iustitia_datagen.dir/chacha20.cc.o.d"
  "/root/repo/src/datagen/corpus.cc" "src/datagen/CMakeFiles/iustitia_datagen.dir/corpus.cc.o" "gcc" "src/datagen/CMakeFiles/iustitia_datagen.dir/corpus.cc.o.d"
  "/root/repo/src/datagen/corpus_io.cc" "src/datagen/CMakeFiles/iustitia_datagen.dir/corpus_io.cc.o" "gcc" "src/datagen/CMakeFiles/iustitia_datagen.dir/corpus_io.cc.o.d"
  "/root/repo/src/datagen/lz77.cc" "src/datagen/CMakeFiles/iustitia_datagen.dir/lz77.cc.o" "gcc" "src/datagen/CMakeFiles/iustitia_datagen.dir/lz77.cc.o.d"
  "/root/repo/src/datagen/markov_text.cc" "src/datagen/CMakeFiles/iustitia_datagen.dir/markov_text.cc.o" "gcc" "src/datagen/CMakeFiles/iustitia_datagen.dir/markov_text.cc.o.d"
  "/root/repo/src/datagen/text_gen.cc" "src/datagen/CMakeFiles/iustitia_datagen.dir/text_gen.cc.o" "gcc" "src/datagen/CMakeFiles/iustitia_datagen.dir/text_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iustitia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
