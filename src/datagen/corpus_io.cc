#include "datagen/corpus_io.h"

#include <fstream>
#include <span>
#include <stdexcept>
#include <string>

namespace iustitia::datagen {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& path,
                                    std::size_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open for reading: " + path.string());
  }
  std::vector<std::uint8_t> bytes;
  in.seekg(0, std::ios::end);
  auto size = static_cast<std::size_t>(in.tellg());
  if (max_bytes != 0 && size > max_bytes) size = max_bytes;
  in.seekg(0, std::ios::beg);
  bytes.resize(size);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()),
               static_cast<std::streamsize>(size))) {
    throw std::runtime_error("read failed: " + path.string());
  }
  return bytes;
}

void write_file(const fs::path& path, std::span<const std::uint8_t> bytes) {
  if (path.has_parent_path()) {
    fs::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open for writing: " + path.string());
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("write failed: " + path.string());
  }
}

void save_corpus(const std::vector<FileSample>& corpus, const fs::path& root) {
  std::size_t index = 0;
  for (const FileSample& sample : corpus) {
    const fs::path path = root / class_name(sample.label) /
                          (std::to_string(index++) + "." +
                           (sample.kind.empty() ? "bin" : sample.kind) +
                           ".bin");
    write_file(path, sample.bytes);
  }
}

std::vector<FileSample> load_corpus(const fs::path& root,
                                    std::size_t max_bytes) {
  std::vector<FileSample> corpus;
  const std::pair<const char*, FileClass> classes[] = {
      {"text", FileClass::kText},
      {"binary", FileClass::kBinary},
      {"encrypted", FileClass::kEncrypted},
  };
  for (const auto& [name, label] : classes) {
    const fs::path dir = root / name;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      FileSample sample;
      sample.label = label;
      sample.kind = entry.path().extension().string();
      sample.bytes = read_file(entry.path(), max_bytes);
      if (!sample.bytes.empty()) corpus.push_back(std::move(sample));
    }
  }
  if (corpus.empty()) {
    throw std::runtime_error(
        "no labeled files under " + root.string() +
        " (expected text/, binary/, encrypted/ subdirectories)");
  }
  return corpus;
}

}  // namespace iustitia::datagen
