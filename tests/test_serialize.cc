// Round-trip tests for model serialization: a reloaded model must make
// byte-identical predictions.
#include "ml/serialize.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/crc32.h"
#include "util/random.h"

namespace iustitia::ml {
namespace {

Dataset blobs(util::Rng& rng, int classes = 3) {
  Dataset data(classes);
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < 40; ++i) {
      data.add({rng.normal(3.0 * c, 0.4), rng.normal(-2.0 * c, 0.4)}, c);
    }
  }
  return data;
}

TEST(SerializeTree, RoundTripPredictionsIdentical) {
  util::Rng rng(1);
  const Dataset data = blobs(rng);
  DecisionTree tree;
  tree.train(data);

  std::stringstream ss;
  save_tree(tree, ss);
  const DecisionTree loaded = load_tree(ss);

  EXPECT_EQ(loaded.num_classes(), tree.num_classes());
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  util::Rng probe(2);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x{probe.uniform(-2.0, 8.0),
                                probe.uniform(-6.0, 2.0)};
    ASSERT_EQ(loaded.predict(x), tree.predict(x));
  }
}

TEST(SerializeTree, MalformedHeaderThrows) {
  std::stringstream ss("not-a-model 3 2 1");
  EXPECT_THROW(load_tree(ss), std::runtime_error);
}

TEST(SerializeTree, TruncatedBodyThrows) {
  util::Rng rng(3);
  DecisionTree tree;
  tree.train(blobs(rng));
  std::stringstream ss;
  save_tree(tree, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_tree(truncated), std::runtime_error);
}

TEST(SerializeDagSvm, RoundTripDecisionsIdentical) {
  util::Rng rng(4);
  const Dataset data = blobs(rng);
  DagSvm model;
  model.train(data, SvmParams{.gamma = 1.0, .c = 50.0});

  std::stringstream ss;
  save_dag_svm(model, ss);
  const DagSvm loaded = load_dag_svm(ss);

  EXPECT_EQ(loaded.num_classes(), model.num_classes());
  EXPECT_EQ(loaded.support_vector_count(), model.support_vector_count());
  util::Rng probe(5);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x{probe.uniform(-2.0, 8.0),
                                probe.uniform(-6.0, 2.0)};
    ASSERT_EQ(loaded.predict(x), model.predict(x));
    ASSERT_NEAR(loaded.machine(0, 2).decision(x),
                model.machine(0, 2).decision(x), 1e-12);
  }
}

TEST(SerializeDagSvm, MalformedInputThrows) {
  std::stringstream ss("dagsvm-v1 oops");
  EXPECT_THROW(load_dag_svm(ss), std::runtime_error);
}

TEST(SerializeScaler, RoundTrip) {
  Dataset data(1);
  data.add({1.0, -5.0}, 0);
  data.add({3.0, 5.0}, 0);
  MinMaxScaler scaler;
  scaler.fit(data);

  std::stringstream ss;
  save_scaler(scaler, ss);
  const MinMaxScaler loaded = load_scaler(ss);
  EXPECT_EQ(loaded.transform(std::vector<double>{2.0, 0.0}),
            scaler.transform(std::vector<double>{2.0, 0.0}));
}

TEST(SerializeScaler, MalformedInputThrows) {
  std::stringstream ss("scaler-v1 junk");
  EXPECT_THROW(load_scaler(ss), std::runtime_error);
}

// --- versioned bundle frame ---------------------------------------------

// Known-answer check for the CRC sealing the frame: 0xCBF43926 is the
// standard CRC-32/IEEE check value for "123456789", so bundles verify
// with stock zlib tooling.
TEST(BundleFrame, CrcMatchesIeeeCheckValue) {
  EXPECT_EQ(util::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(util::crc32(std::string_view("123456789")), 0xCBF43926u);
  std::uint32_t state = util::kCrc32Init;
  state = util::crc32_update(state, "12345", 5);
  state = util::crc32_update(state, "6789", 4);
  EXPECT_EQ(util::crc32_final(state), 0xCBF43926u);
}

namespace {

std::string framed(const std::string& metadata, const std::string& payload) {
  Bundle bundle;
  bundle.metadata = metadata;
  bundle.payload = payload;
  std::ostringstream out;
  save_bundle(bundle, out);
  return out.str();
}

// Loads and returns the what() of the expected runtime_error.
std::string load_error(const std::string& bytes) {
  std::istringstream in(bytes);
  try {
    load_bundle(in);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "load_bundle accepted: " << bytes.substr(0, 60);
  return "";
}

}  // namespace

TEST(BundleFrame, RoundTripPreservesEverything) {
  const std::string payload("binary\0bytes\nwith newlines", 26);
  std::istringstream in(framed("model-v7 trained=2026-08-09", payload));
  const Bundle loaded = load_bundle(in);
  EXPECT_EQ(loaded.format_version, kBundleFormatVersion);
  EXPECT_EQ(loaded.metadata, "model-v7 trained=2026-08-09");
  EXPECT_EQ(loaded.payload, payload);
}

TEST(BundleFrame, EmptyMetadataAndPayloadRoundTrip) {
  std::istringstream in(framed("", ""));
  const Bundle loaded = load_bundle(in);
  EXPECT_EQ(loaded.metadata, "");
  EXPECT_EQ(loaded.payload, "");
}

TEST(BundleFrame, MetadataNewlineRejectedAtSave) {
  Bundle bundle;
  bundle.metadata = "two\nlines";
  std::ostringstream out;
  EXPECT_THROW(save_bundle(bundle, out), std::invalid_argument);
}

TEST(BundleFrame, EmptyStreamAndBadMagic) {
  EXPECT_NE(load_error("").find("empty stream"), std::string::npos);
  const std::string err = load_error("flowmodel-v1 3 2 1\n");
  EXPECT_NE(err.find("bad magic"), std::string::npos);
  EXPECT_NE(err.find("flowmodel-v1"), std::string::npos);
}

TEST(BundleFrame, FutureFormatVersionRejected) {
  std::string bytes = framed("meta", "payload");
  // Rewrite the header's version field: "iustitia-bundle 1 7" -> "... 999 7".
  const std::string needle = std::string(kBundleMagic) + " 1 ";
  ASSERT_EQ(bytes.find(needle), 0u);
  bytes.replace(needle.size() - 2, 1, "999");
  const std::string err = load_error(bytes);
  EXPECT_NE(err.find("format version 999"), std::string::npos);
  EXPECT_NE(err.find("retrain"), std::string::npos);
}

TEST(BundleFrame, TruncatedPayloadNamesByteCounts) {
  const std::string bytes = framed("meta", "0123456789");
  // Cut mid-payload: keep the header + metadata + 4 payload bytes.
  const std::size_t payload_at = bytes.find("meta\n") + 5;
  const std::string err = load_error(bytes.substr(0, payload_at + 4));
  EXPECT_NE(err.find("truncated"), std::string::npos);
  EXPECT_NE(err.find("promises 10"), std::string::npos);
  EXPECT_NE(err.find("ended after 4"), std::string::npos);
}

TEST(BundleFrame, MissingOrMalformedTrailer) {
  const std::string bytes = framed("meta", "0123456789");
  const std::size_t trailer_at = bytes.rfind("crc32");
  // Payload intact but no trailer at all.
  EXPECT_NE(load_error(bytes.substr(0, trailer_at))
                .find("missing crc32 trailer"),
            std::string::npos);
  // Trailer present but not 8 hex digits.
  EXPECT_NE(load_error(bytes.substr(0, trailer_at) + "crc32 zz\n")
                .find("missing crc32 trailer"),
            std::string::npos);
  // Right width, wrong alphabet.
  EXPECT_NE(load_error(bytes.substr(0, trailer_at) + "crc32 zzzzzzzz\n")
                .find("malformed crc32"),
            std::string::npos);
}

TEST(BundleFrame, CrcMismatchOnAnyFlippedByte) {
  std::string bytes = framed("meta", "0123456789");
  const std::size_t payload_at = bytes.find("meta\n") + 5;
  bytes[payload_at + 3] ^= 0x01;  // corrupt one payload byte
  const std::string err = load_error(bytes);
  EXPECT_NE(err.find("CRC mismatch"), std::string::npos);
  EXPECT_NE(err.find("refusing to load"), std::string::npos);

  // Metadata tampering is also sealed by the CRC.
  std::string meta_tampered = framed("meta", "0123456789");
  const std::size_t meta_at = meta_tampered.find("meta\n");
  meta_tampered.replace(meta_at, 4, "mEta");
  EXPECT_NE(load_error(meta_tampered).find("CRC mismatch"),
            std::string::npos);
}

}  // namespace
}  // namespace iustitia::ml
