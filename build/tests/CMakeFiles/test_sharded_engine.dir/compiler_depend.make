# Empty compiler generated dependencies file for test_sharded_engine.
# This may be replaced when dependencies are built.
