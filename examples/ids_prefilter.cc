// IDS/IPS pre-filter: the paper's performance-improvement use case
// (Section 1.1).  Instead of matching every signature on every flow, the
// nature classifier routes binary flows to binary attack signatures and
// text flows to text signatures, and encrypted flows past deep inspection
// entirely — cutting signature-matching work substantially.
//
// The signature engine is a real Aho-Corasick matcher (src/dpi/), so the
// "work saved" is measured wall-clock scan time, not a cost model.
//
// Run:  ./ids_prefilter
#include <iostream>
#include <string>

#include "appproto/trace_headers.h"
#include "core/engine.h"
#include "core/trainer.h"
#include "dpi/signature_set.h"
#include "net/trace_gen.h"
#include "util/table.h"
#include "util/timer.h"

using namespace iustitia;

int main() {
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 60;
  corpus_options.seed = 21;
  const auto corpus = datagen::build_corpus(corpus_options);
  core::TrainerOptions trainer;
  trainer.backend = core::Backend::kSvm;
  trainer.widths = entropy::svm_preferred_widths();
  trainer.method = core::TrainingMethod::kFirstBytes;
  trainer.buffer_size = 32;
  trainer.svm.gamma = 50.0;
  trainer.svm.c = 1000.0;
  core::FlowNatureModel model = core::train_model(corpus, trainer);

  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = 40000;
  trace_options.seed = 22;
  const net::Trace trace = net::generate_trace(trace_options);

  core::EngineOptions engine_options;
  engine_options.buffer_size = 32;
  core::Iustitia engine(std::move(model), engine_options);

  util::Rng rng(23);
  const dpi::SignatureEngine ids = dpi::SignatureEngine::generate(
      /*text_rules=*/1200, /*binary_rules=*/1800, rng);
  std::cout << "signature engine: " << ids.text_rule_count()
            << " text rules + " << ids.binary_rule_count()
            << " binary rules ("
            << ids.combined_matcher().state_count() << " combined states)\n";

  // Pass 1 (baseline): every data packet through the combined rule set.
  // Pass 2 (prefiltered): classify first, then route to the per-nature
  // rule set; encrypted payloads skip DPI entirely.
  std::uint64_t baseline_alerts = 0, routed_alerts = 0;
  std::uint64_t bytes_per_class[3] = {};
  double baseline_micros = 0.0, routed_micros = 0.0;
  for (const net::Packet& packet : trace.packets) {
    engine.on_packet(packet);
    if (!packet.is_data()) continue;

    util::Stopwatch baseline_timer;
    baseline_alerts += ids.combined_matcher().contains_any(packet.payload);
    baseline_micros += baseline_timer.elapsed_micros();

    const auto label = engine.label_of(packet.key);
    if (!label.has_value()) continue;  // still buffering: handled post hoc
    bytes_per_class[static_cast<int>(*label)] += packet.payload.size();
    util::Stopwatch routed_timer;
    switch (*label) {
      case datagen::FileClass::kText:
        routed_alerts += ids.text_matcher().contains_any(packet.payload);
        break;
      case datagen::FileClass::kBinary:
        routed_alerts += ids.binary_matcher().contains_any(packet.payload);
        break;
      case datagen::FileClass::kEncrypted:
        break;  // ciphertext cannot match content signatures
    }
    routed_micros += routed_timer.elapsed_micros();
  }
  engine.flush_all();

  util::Table table({"pipeline", "scan time", "alerts"});
  table.add_row({"all rules on all packets",
                 util::fmt_seconds(baseline_micros * 1e-6),
                 std::to_string(baseline_alerts)});
  table.add_row({"nature-routed rules",
                 util::fmt_seconds(routed_micros * 1e-6),
                 std::to_string(routed_alerts)});
  table.render(std::cout);

  std::cout << "\nclassified " << engine.stats().flows_classified
            << " flows; inspected bytes: text "
            << util::fmt_bytes(static_cast<double>(bytes_per_class[0]))
            << ", binary "
            << util::fmt_bytes(static_cast<double>(bytes_per_class[1]))
            << ", encrypted (skipped DPI) "
            << util::fmt_bytes(static_cast<double>(bytes_per_class[2]))
            << '\n';
  std::cout << "signature-matching time saved: "
            << util::fmt_percent(1.0 - routed_micros / baseline_micros)
            << '\n';
  return 0;
}
