#include "entropy/divergence.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace iustitia::entropy {

namespace {

// Probability mass of a distribution; a well-formed non-empty
// GramDistribution sums to 1 (DCHECKed by the divergence entry points).
double total_mass(const GramDistribution& p) {
  double sum = 0.0;
  for (const auto& [key, prob] : p) sum += prob;
  return sum;
}

}  // namespace

GramDistribution to_distribution(const GramCounter& counter) {
  GramDistribution dist;
  const double total = static_cast<double>(counter.total_grams());
  if (total <= 0.0) return dist;
  counter.for_each([&](GramKey key, std::uint64_t count) {
    dist[key] = static_cast<double>(count) / total;
  });
  DCHECK_NEAR(total_mass(dist), 1.0, 1e-9)
      << "gram distribution must be normalized";
  return dist;
}

GramDistribution gram_distribution(std::span<const std::uint8_t> data,
                                   int width) {
  GramCounter counter(width);
  counter.add(data);
  return to_distribution(counter);
}

double distribution_entropy_bits(const GramDistribution& p) {
  double h = 0.0;
  for (const auto& [key, prob] : p) {
    if (prob > 0.0) h -= prob * std::log2(prob);
  }
  return h;
}

double kl_divergence(const GramDistribution& p, const GramDistribution& q) {
  if (!p.empty()) DCHECK_NEAR(total_mass(p), 1.0, 1e-6);
  if (!q.empty()) DCHECK_NEAR(total_mass(q), 1.0, 1e-6);
  double d = 0.0;
  for (const auto& [key, pi] : p) {
    if (pi <= 0.0) continue;
    const auto it = q.find(key);
    const double qi = it == q.end() ? 0.0 : it->second;
    if (qi <= 0.0) return std::numeric_limits<double>::infinity();
    d += pi * std::log2(pi / qi);
  }
  return d;
}

double js_divergence(const GramDistribution& p, const GramDistribution& q) {
  if (!p.empty()) DCHECK_NEAR(total_mass(p), 1.0, 1e-6);
  if (!q.empty()) DCHECK_NEAR(total_mass(q), 1.0, 1e-6);
  // Build M = (P + Q) / 2 over the union support.
  GramDistribution m = p;
  for (auto& [key, prob] : m) prob *= 0.5;
  for (const auto& [key, prob] : q) m[key] += 0.5 * prob;

  const double jsd = distribution_entropy_bits(m) -
                     0.5 * distribution_entropy_bits(p) -
                     0.5 * distribution_entropy_bits(q);
  // Numeric guard: theory gives [0, 1].
  if (jsd < 0.0) return 0.0;
  if (jsd > 1.0) return 1.0;
  return jsd;
}

}  // namespace iustitia::entropy
