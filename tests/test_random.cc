// Tests for util/random.h: determinism, range contracts, and the
// distributional properties experiments rely on.
#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace iustitia::util {
namespace {

TEST(SplitMix64, IsDeterministicAndAdvancesState) {
  std::uint64_t s1 = 123, s2 = 123;
  const std::uint64_t a = splitmix64(s1);
  const std::uint64_t b = splitmix64(s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(splitmix64(s1), a);  // state advanced
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(12);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 2.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceProbabilityApproximate) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(37);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, FillBytesCoversValues) {
  Rng rng(41);
  std::vector<std::uint8_t> buf(8192);
  rng.fill_bytes(buf);
  std::set<std::uint8_t> seen(buf.begin(), buf.end());
  EXPECT_GT(seen.size(), 250u);  // all byte values essentially present
}

TEST(Rng, FillBytesHandlesOddLengths) {
  Rng rng(43);
  for (std::size_t len : {0u, 1u, 3u, 7u, 9u, 15u}) {
    std::vector<std::uint8_t> buf(len, 0xAA);
    rng.fill_bytes(buf);
    SUCCEED();
  }
}

TEST(Rng, PermutationIsValid) {
  Rng rng(47);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 100u);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(53);
  std::vector<int> v{1, 2, 2, 3, 3, 3};
  std::vector<int> copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(59);
  Rng child = a.fork();
  // Child stream differs from the parent continuation.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

}  // namespace
}  // namespace iustitia::util
