// Normalized k-gram entropy and entropy vectors (paper Section 3.1).
//
// h_k of an m-byte sequence is the Shannon entropy of its m-k+1 overlapping
// k-grams, normalized by taking the logarithm base |f_k| = 2^(8k), so that
// h_k is always in [0, 1] "element per symbol".  Formula (1) of the paper:
//
//   h_k = log(m-k+1) - (1/(m-k+1)) * sum_i m_ik * log(m_ik)   [base |f_k|]
//
// The entropy vector H of a byte sequence is (h_{w1}, ..., h_{wn}) for a
// chosen set of feature widths; the paper uses widths 1..10 and then selects
// subsets (Section 4.1).
#ifndef IUSTITIA_ENTROPY_ENTROPY_VECTOR_H_
#define IUSTITIA_ENTROPY_ENTROPY_VECTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "entropy/fused_kernel.h"
#include "entropy/gram_counter.h"

namespace iustitia::entropy {

// Normalized entropy from a populated counter; 0 when fewer than one gram.
double normalized_entropy(const GramCounter& counter) noexcept;

// Normalized entropy computed directly from S_k = sum m_ik * ln(m_ik),
// the gram total, and the width.  Shared by the exact and estimated paths.
double normalized_entropy_from_sum(double sum_count_log_count,
                                   std::uint64_t total_grams,
                                   int width) noexcept;

// Feature widths h_1..h_10 used for the full entropy vector of the paper.
std::vector<int> full_feature_widths();

// Feature sets chosen in Section 4.1 after feature selection.
std::vector<int> cart_selected_widths();        // phi_CART  = {1, 3, 4, 10}
std::vector<int> cart_preferred_widths();       // phi'_CART = {1, 3, 4, 5}
std::vector<int> svm_selected_widths();         // phi_SVM   = {1, 2, 3, 9}
std::vector<int> svm_preferred_widths();        // phi'_SVM  = {1, 2, 3, 5}

// Result of one entropy-vector computation, with the space accounting used
// by Fig. 5(b) and Table 3.
struct EntropyVectorResult {
  std::vector<double> h;          // one value per requested width, in order
  std::size_t space_bytes = 0;    // sum of counter space across widths
};

// Computes h_w for each width in `widths` over `data` by exact counting.
// Runs on the fused single-pass kernel with a thread-local reusable
// scratch state, so repeated calls allocate only the returned vector.
EntropyVectorResult compute_entropy_vector(std::span<const std::uint8_t> data,
                                           std::span<const int> widths);

// Reference implementation on the legacy one-pass-per-width GramCounter
// path; kept for golden-equivalence tests and the kernel microbenchmark.
EntropyVectorResult compute_entropy_vector_legacy(
    std::span<const std::uint8_t> data, std::span<const int> widths);

// Convenience overload returning only the feature values.
std::vector<double> entropy_vector(std::span<const std::uint8_t> data,
                                   std::span<const int> widths);

// Incremental multi-width entropy computation for streaming flows.
//
// A thin facade over the fused single-pass kernel: payload chunks are fed
// via add() as packets arrive (one buffer sweep for all widths), and
// vector() snapshots the current features.  reset() keeps the kernel's
// table capacity, so a pooled instance extracts flow after flow without
// heap allocation.
class StreamingEntropyVector {
 public:
  explicit StreamingEntropyVector(std::span<const int> widths);

  void add(std::span<const std::uint8_t> data);
  void reset() noexcept;

  // Current normalized-entropy features (one per width, in input order).
  std::vector<double> vector() const;

  // Allocation-free variant; out.size() must equal widths().size().
  void features(std::span<double> out) const { kernel_.features(out); }

  std::uint64_t total_bytes() const noexcept;
  std::size_t space_bytes() const noexcept;
  std::span<const int> widths() const noexcept { return kernel_.widths(); }

 private:
  FusedEntropyKernel kernel_;
};

}  // namespace iustitia::entropy

#endif  // IUSTITIA_ENTROPY_ENTROPY_VECTOR_H_
