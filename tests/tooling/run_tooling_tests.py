#!/usr/bin/env python3
"""Fixture tests for tools/analyze and tools/lint.py.

Each fixture under tests/tooling/fixtures/ is a tiny source tree with one
seeded violation per analyzer pass (plus a clean control tree).  Fixture
files are stored with a `.in` suffix so the repo-wide lint and analyze
gates never see them as real sources; each test materializes its fixture
into a temp directory with the suffixes stripped, then runs the tool as a
subprocess exactly the way the CMake targets do.

Registered with CTest one class per pass (see tests/CMakeLists.txt); can
also be run directly:

    python3 tests/tooling/run_tooling_tests.py            # everything
    python3 tests/tooling/run_tooling_tests.py LocksPass  # one class
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures"
ANALYZE = REPO_ROOT / "tools" / "analyze"
LINT = REPO_ROOT / "tools" / "lint.py"
SARIF_SCHEMA = Path(__file__).resolve().parent / \
    "sarif-2.1.0-subset.schema.json"

try:
    import jsonschema
except ImportError:  # structural asserts still run without it
    jsonschema = None


def expected_guard(path: Path) -> str:
    """Replicates lint.py's include-guard derivation for `path`."""
    if path.is_relative_to(REPO_ROOT):
        parts = list(path.relative_to(REPO_ROOT).parts)
        if parts[0] == "src":
            parts = parts[1:]
    else:
        parts = list(path.parts)
    return "IUSTITIA_" + "_".join(
        re.sub(r"[^A-Za-z0-9]", "_", p).upper() for p in parts) + "_"


class FixtureCase(unittest.TestCase):
    """Shared materialize/run helpers; subclasses cover one pass each."""

    def materialize(self, name: str) -> Path:
        """Copies fixtures/<name>/ to a temp dir, stripping `.in` suffixes
        and substituting @GUARD@ with the lint-expected guard for the
        materialized location."""
        src = FIXTURES / name
        self.assertTrue(src.is_dir(), f"missing fixture {src}")
        dest = Path(tempfile.mkdtemp(prefix=f"iustitia-{name}-"))
        self.addCleanup(shutil.rmtree, dest, ignore_errors=True)
        for template in sorted(src.rglob("*.in")):
            rel = template.relative_to(src)
            out = dest / rel.with_suffix("")  # foo.h.in -> foo.h
            out.parent.mkdir(parents=True, exist_ok=True)
            text = template.read_text()
            if "@GUARD@" in text:
                text = text.replace("@GUARD@", expected_guard(out))
            out.write_text(text)
        return dest

    def run_analyze(self, root: Path, *extra: str,
                    passes: str | None = None) -> subprocess.CompletedProcess:
        cmd = [sys.executable, str(ANALYZE), "--root", str(root)]
        if passes:
            cmd += ["--passes", passes]
        cmd += list(extra)
        return subprocess.run(cmd, capture_output=True, text=True)

    def run_lint(self, *paths: Path) -> subprocess.CompletedProcess:
        cmd = [sys.executable, str(LINT)] + [str(p) for p in paths]
        return subprocess.run(cmd, capture_output=True, text=True)


class LayeringPass(FixtureCase):
    def test_detects_upward_include_and_cycle(self):
        root = self.materialize("layering")
        proc = self.run_analyze(root, passes="layering")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[layer-violation]", proc.stdout)
        self.assertIn("src/entropy/uses_core.h", proc.stdout)
        self.assertIn("'entropy' may not depend on 'core'", proc.stdout)
        self.assertIn("[layer-cycle]", proc.stdout)
        self.assertIn("cycle_a.h", proc.stdout)
        # config_stub.h itself is legal; only the upward edge is flagged.
        self.assertNotIn("src/core/config_stub.h:", proc.stdout)
        # The control plane tops the stack: runtime -> ctrl is an upward
        # edge, while ctrl's own runtime/core includes are matrix-legal.
        self.assertIn("src/runtime/uses_ctrl.h", proc.stdout)
        self.assertIn("'runtime' may not depend on 'ctrl'", proc.stdout)
        self.assertNotIn("src/ctrl/admin_stub.h:", proc.stdout)


class LocksPass(FixtureCase):
    def test_flags_unguarded_access_only(self):
        root = self.materialize("locks")
        proc = self.run_analyze(root, passes="locks")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[lock-unguarded-access]", proc.stdout)
        self.assertIn("Counter::increment", proc.stdout)
        # The MutexLock'd and REQUIRES-annotated methods are clean.
        self.assertNotIn("Counter::reset", proc.stdout)
        self.assertNotIn("Counter::read", proc.stdout)


class LockOrderPass(FixtureCase):
    def test_flags_inversion_with_both_edges(self):
        root = self.materialize("lockorder")
        proc = self.run_analyze(root, passes="lockorder")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[lock-order-inversion]", proc.stdout)
        self.assertIn("Bank::ledger_mu_", proc.stdout)
        self.assertIn("Bank::audit_mu_", proc.stdout)
        # Both directions are named in the one finding.
        self.assertIn("transfer_ab", proc.stdout)
        self.assertIn("transfer_ba", proc.stdout)
        # Consistent-order methods are not implicated on their own.
        self.assertNotIn("audit_only", proc.stdout)

    def test_exports_graph_json(self):
        root = self.materialize("lockorder")
        out = root / "graph.json"
        self.run_analyze(root, "--lock-graph-out", str(out),
                         passes="lockorder")
        doc = json.loads(out.read_text())
        self.assertEqual(doc["format"], 1)
        self.assertIn("Bank::ledger_mu_", doc["nodes"])
        edges = {(e["from"], e["to"]) for e in doc["edges"]}
        self.assertIn(("Bank::ledger_mu_", "Bank::audit_mu_"), edges)
        self.assertIn(("Bank::audit_mu_", "Bank::ledger_mu_"), edges)
        for e in doc["edges"]:
            self.assertTrue(e["path"].startswith("src/core/"))
            self.assertGreaterEqual(e["line"], 1)

    def test_inversion_sarif_carries_related_location(self):
        root = self.materialize("lockorder")
        out = root / "findings.sarif"
        self.run_analyze(root, "--sarif-out", str(out), passes="lockorder")
        doc = json.loads(out.read_text())
        results = [r for r in doc["runs"][0]["results"]
                   if r["ruleId"] == "lock-order-inversion"]
        self.assertEqual(len(results), 1, doc)
        self.assertIn("relatedLocations", results[0])
        rel = results[0]["relatedLocations"][0]
        self.assertIn("reverse edge",
                      rel["message"]["text"])


class AtomicsPass(FixtureCase):
    def test_flags_each_order_bug_once(self):
        root = self.materialize("atomics")
        proc = self.run_analyze(root, passes="atomics")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[atomic-relaxed-publication]", proc.stdout)
        self.assertIn("Stats::ready_", proc.stdout)
        self.assertIn("[atomic-undocumented-relaxed]", proc.stdout)
        self.assertIn("Stats::packets_", proc.stdout)
        self.assertIn("[atomic-mixed-order]", proc.stdout)
        self.assertIn("Stats::epoch_", proc.stdout)
        self.assertIn("[atomic-default-seqcst]", proc.stdout)
        self.assertIn("Stats::hot_hits_", proc.stdout)
        # The annotated relaxed counter is documented, not a finding.
        self.assertNotIn("Stats::drops_", proc.stdout)

    def test_annotation_mismatch_is_flagged(self):
        root = self.materialize("atomics")
        src = root / "src" / "runtime" / "stats.h"
        text = src.read_text().replace(
            "atomic(relaxed-counter)", "atomic(seqcst)")
        src.write_text(text)
        proc = self.run_analyze(root, passes="atomics")
        self.assertIn("[atomic-annotation-mismatch]", proc.stdout)
        self.assertIn("Stats::drops_", proc.stdout)


class EscapePass(FixtureCase):
    def test_flags_member_and_global_not_controls(self):
        root = self.materialize("escape")
        proc = self.run_analyze(root, passes="escape")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[escape-unguarded-shared]", proc.stdout)
        self.assertIn("Pool::scratch_", proc.stdout)
        self.assertIn("g_scratch_total", proc.stdout)
        # Controls: atomic, guarded, annotated, constexpr stay quiet.
        self.assertNotIn("done_", proc.stdout)
        self.assertNotIn("results_", proc.stdout)
        self.assertNotIn("folded_", proc.stdout)
        self.assertNotIn("kBatch", proc.stdout)


class DeadcodePass(FixtureCase):
    def test_flags_orphan_export_and_pointless_include(self):
        root = self.materialize("deadcode")
        proc = self.run_analyze(root, passes="deadcode")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[dead-symbol]", proc.stdout)
        self.assertIn("'never_called'", proc.stdout)
        self.assertIn("[unused-include]", proc.stdout)
        self.assertIn("src/util/pointless.cc", proc.stdout)
        # helper_used_by_cc is referenced from another component: alive.
        self.assertNotIn("helper_used_by_cc", proc.stdout)
        # includer.cc really uses orphan.h, so its include is kept.
        self.assertNotIn("src/util/includer.cc", proc.stdout)


class ContractsPass(FixtureCase):
    def test_flags_switch_hot_check_and_held_io(self):
        root = self.materialize("contracts")
        proc = self.run_analyze(root, passes="contracts")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[switch-not-exhaustive]", proc.stdout)
        self.assertIn("FlowNature", proc.stdout)
        self.assertIn("kEncrypted", proc.stdout)
        self.assertIn("[check-in-hot-loop]", proc.stdout)
        self.assertIn("CHECK_GE", proc.stdout)
        self.assertIn("[lock-held-io]", proc.stdout)
        self.assertIn("'printf'", proc.stdout)


class HotpathPass(FixtureCase):
    def test_transitive_effects_and_allow_suppression(self):
        root = self.materialize("hotpath")
        proc = self.run_analyze(root, passes="hotpath")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        # step -> buffer -> grow: the allocation propagates two calls up.
        self.assertIn("[hotpath-may-allocate]", proc.stdout)
        self.assertIn("'Pipeline::step'", proc.stdout)
        self.assertIn("'push_back'", proc.stdout)
        self.assertIn("via 'Pipeline::grow'", proc.stdout)
        # Direct blocking I/O in a hot function.
        self.assertIn("[hotpath-may-block]", proc.stdout)
        self.assertIn("'Pipeline::drain'", proc.stdout)
        self.assertIn("'printf'", proc.stdout)
        # AllowScope without annotation + GuardRegion in a cold function.
        undeclared = [ln for ln in proc.stdout.splitlines()
                      if "[hotpath-allow-undeclared]" in ln]
        self.assertEqual(len(undeclared), 2, proc.stdout)
        self.assertTrue(any("AllowScope" in ln for ln in undeclared))
        self.assertTrue(any("GuardRegion" in ln for ln in undeclared))
        # Clean noexcept entry and the documented cold branch stay quiet.
        self.assertNotIn("peek", proc.stdout)
        self.assertNotIn("flush_cold", proc.stdout)

    def test_sarif_related_locations_carry_call_chain(self):
        root = self.materialize("hotpath")
        out = root / "findings.sarif"
        self.run_analyze(root, "--sarif-out", str(out), passes="hotpath")
        doc = json.loads(out.read_text())
        results = [r for r in doc["runs"][0]["results"]
                   if r["ruleId"] == "hotpath-may-allocate"]
        self.assertEqual(len(results), 1, doc)
        related = results[0]["relatedLocations"]
        # hot entry -> step calls buffer -> buffer calls grow.
        self.assertEqual(len(related), 3, related)
        msgs = [r["message"]["text"] for r in related]
        self.assertIn("hot entry 'Pipeline::step'", msgs[0])
        self.assertIn("calls 'Pipeline::buffer'", msgs[1])
        self.assertIn("calls 'Pipeline::grow'", msgs[2])
        for r in related:
            loc = r["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uri"],
                             "src/core/pipeline.cc")
            self.assertGreaterEqual(loc["region"]["startLine"], 1)


class AnnotationsPass(FixtureCase):
    def test_rejects_each_malformed_item_once(self):
        root = self.materialize("annotations")
        proc = self.run_analyze(root, passes="annotations")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        lines = [ln for ln in proc.stdout.splitlines()
                 if "[annotation-unknown]" in ln]
        # Typo'd kind, bogus effect, value on the bare kind — and nothing
        # for the well-formed hotpath on ok().
        self.assertEqual(len(lines), 3, proc.stdout)
        self.assertIn("unknown annotation kind 'hotpth'", proc.stdout)
        self.assertIn("may-allocte", proc.stdout)
        self.assertIn("hotpath takes no value", proc.stdout)


class CleanTree(FixtureCase):
    def test_all_passes_clean_and_exit_zero(self):
        root = self.materialize("clean")
        proc = self.run_analyze(root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("analyze: clean", proc.stdout)


class SarifOutput(FixtureCase):
    def make_sarif(self) -> dict:
        root = self.materialize("contracts")
        out = root / "findings.sarif"
        proc = self.run_analyze(root, "--sarif-out", str(out),
                                passes="contracts")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        return json.loads(out.read_text())

    def test_document_shape(self):
        doc = self.make_sarif()
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "iustitia-analyze")
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        results = run["results"]
        self.assertTrue(results, "contracts fixture must yield results")
        for result in results:
            self.assertIn(result["ruleId"], rule_ids)
            self.assertIn("iustitia/v1", result["fingerprints"])
            loc = result["locations"][0]["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uriBaseId"], "SRCROOT")
            self.assertGreaterEqual(loc["region"]["startLine"], 1)
        self.assertIn("SRCROOT", run["originalUriBaseIds"])

    @unittest.skipIf(jsonschema is None, "jsonschema not installed")
    def test_validates_against_2_1_0_schema(self):
        doc = self.make_sarif()
        schema = json.loads(SARIF_SCHEMA.read_text())
        jsonschema.validate(instance=doc, schema=schema)


class BaselineGate(FixtureCase):
    def test_write_then_suppress_round_trip(self):
        root = self.materialize("deadcode")
        baseline = root / "baseline.json"
        # Fresh findings fail the gate...
        self.assertEqual(
            self.run_analyze(root, passes="deadcode").returncode, 1)
        # ...writing a baseline records them (src/util is baselinable)...
        write = self.run_analyze(root, "--baseline", str(baseline),
                                 "--write-baseline", passes="deadcode")
        self.assertEqual(write.returncode, 0, write.stdout + write.stderr)
        data = json.loads(baseline.read_text())
        self.assertEqual(data["format"], 1)
        self.assertTrue(data["suppressed"])
        # ...and a gated re-run is green with everything baselined.
        gated = self.run_analyze(root, "--baseline", str(baseline),
                                 passes="deadcode")
        self.assertEqual(gated.returncode, 0, gated.stdout + gated.stderr)
        self.assertIn("baselined", gated.stdout)

    def test_refuses_to_baseline_clean_prefixes(self):
        # The locks fixture's finding is in src/core/, which must stay
        # clean: --write-baseline refuses it and fails.
        root = self.materialize("locks")
        baseline = root / "baseline.json"
        write = self.run_analyze(root, "--baseline", str(baseline),
                                 "--write-baseline", passes="locks")
        self.assertEqual(write.returncode, 1, write.stdout + write.stderr)
        self.assertIn("NOT baselined", write.stderr)
        self.assertEqual(json.loads(baseline.read_text())["suppressed"], [])


class LintGuards(FixtureCase):
    def test_flags_each_bad_guard_shape(self):
        root = self.materialize("lint_guard")
        proc = self.run_lint(root)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        lines = [ln for ln in proc.stdout.splitlines()
                 if "[include-guard]" in ln]
        by_file = {name: [ln for ln in lines if name in ln]
                   for name in ("bad_buried.h", "bad_endif.h",
                                "bad_name.h", "good.h")}
        self.assertTrue(by_file["bad_buried.h"], proc.stdout)
        self.assertIn("first directive must be the include guard",
                      by_file["bad_buried.h"][0])
        self.assertTrue(by_file["bad_endif.h"], proc.stdout)
        self.assertIn("closing #endif must carry the comment",
                      by_file["bad_endif.h"][0])
        self.assertTrue(by_file["bad_name.h"], proc.stdout)
        self.assertIn("guard is SOME_OTHER_GUARD_H_",
                      by_file["bad_name.h"][0])
        self.assertEqual(by_file["good.h"], [], proc.stdout)

    def test_good_guard_is_clean(self):
        root = self.materialize("lint_guard")
        proc = self.run_lint(root / "good.h")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


class LintThreads(FixtureCase):
    def test_flags_detach_not_join_or_nolint(self):
        root = self.materialize("lint_threads")
        proc = self.run_lint(root)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        lines = [ln for ln in proc.stdout.splitlines()
                 if "[no-thread-detach]" in ln]
        self.assertEqual(len(lines), 2, proc.stdout)
        self.assertTrue(any(":8:" in ln for ln in lines), proc.stdout)
        self.assertTrue(any(":12:" in ln for ln in lines), proc.stdout)
        # join(), the NOLINT'd detach, and comment/string mentions are quiet.
        self.assertNotIn(":17:", proc.stdout)
        self.assertNotIn(":23:", proc.stdout)
        self.assertNotIn(":28:", proc.stdout)


class LintHotModules(FixtureCase):
    def test_flags_stream_io_only_in_hot_modules(self):
        root = self.materialize("lint_hotmodules")
        proc = self.run_lint(root)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        lines = [ln for ln in proc.stdout.splitlines()
                 if "[hot-module-io]" in ln]
        # The include, the endl line, the bare cerr, and the log macro —
        # not the hotpath-allow'd line, the NOLINT'd line, or the non-hot
        # control file.
        self.assertEqual(len(lines), 4, proc.stdout)
        self.assertTrue(all("src/runtime/worker.cc" in ln for ln in lines),
                        proc.stdout)
        self.assertTrue(any("#include <iostream>" in ln for ln in lines))
        self.assertTrue(any("std::endl" in ln for ln in lines))
        self.assertTrue(any("std::cout/cerr/clog" in ln for ln in lines))
        self.assertTrue(any("IUSTITIA_LOG_" in ln for ln in lines))
        self.assertNotIn("reporter.cc", proc.stdout)

    def test_non_hot_control_is_clean(self):
        root = self.materialize("lint_hotmodules")
        proc = self.run_lint(root / "src" / "core" / "reporter.cc")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


class LintFailpoints(FixtureCase):
    def test_cross_checks_call_sites_against_inventory(self):
        root = self.materialize("lint_failpoints")
        proc = self.run_lint(root)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        lines = [ln for ln in proc.stdout.splitlines()
                 if "[failpoint-inventory]" in ln]
        # The typo and the non-literal name — not the registered call,
        # the NOLINT'd call, or the comment/inventory mentions.
        self.assertEqual(len(lines), 2, proc.stdout)
        self.assertTrue(any('FAILPOINT("cdb.isnert") is not in '
                            "kFailpointInventory" in ln for ln in lines),
                        proc.stdout)
        self.assertTrue(any("must be a string literal" in ln
                            for ln in lines), proc.stdout)
        self.assertTrue(all("src/core/user.cc" in ln for ln in lines),
                        proc.stdout)
        self.assertNotIn("ghost", proc.stdout)
        self.assertNotIn("not.registered", proc.stdout)

    def test_without_inventory_file_rule_is_silent(self):
        root = self.materialize("lint_failpoints")
        proc = self.run_lint(root / "src" / "core" / "user.cc")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("[failpoint-inventory]", proc.stdout)


class TokenizerLexing(unittest.TestCase):
    """Direct unit tests for tools/analyze/tokenizer.py edge cases."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(ANALYZE))
        import tokenizer  # noqa: E402 (repo tool, not a package)
        cls.tk = tokenizer

    def lex(self, text):
        return self.tk.code_tokens(self.tk.tokenize(text))

    def test_raw_string_is_one_token(self):
        toks = self.lex('auto s = R"(no // comment "quotes" here)";')
        strings = [t for t in toks if t.kind == self.tk.STRING]
        self.assertEqual(len(strings), 1)
        self.assertIn('"quotes"', strings[0].text)
        # Multi-line raw strings keep the line counter honest.
        toks = self.lex('auto s = R"x(a\nb\nc)x";\nint after = 0;')
        after = [t for t in toks if t.text == "after"]
        self.assertEqual(after[0].line, 4)

    def test_prefixed_raw_string(self):
        toks = self.lex('auto s = u8R"(payload)";')
        strings = [t for t in toks if t.kind == self.tk.STRING]
        self.assertEqual(len(strings), 1)
        self.assertTrue(strings[0].text.startswith('u8R"('))

    def test_digit_separators_stay_one_number(self):
        toks = self.lex("constexpr int kBig = 1'000'000;")
        numbers = [t for t in toks if t.kind == self.tk.NUMBER]
        self.assertEqual([t.text for t in numbers], ["1'000'000"])
        # The separators must not open a char literal.
        self.assertEqual([t for t in toks if t.kind == self.tk.CHAR], [])

    def test_u8_string_prefix_is_part_of_literal(self):
        toks = self.lex('auto s = u8"text";')
        strings = [t for t in toks if t.kind == self.tk.STRING]
        self.assertEqual([t.text for t in strings], ['u8"text"'])
        # Regression: u8 must not leak out as a stray identifier.
        self.assertNotIn("u8", [t.text for t in toks
                                if t.kind == self.tk.IDENT])

    def test_wide_and_unicode_char_prefixes(self):
        for lit in ("L'x'", "u'x'", "U'x'", "u8'x'"):
            toks = self.lex(f"auto c = {lit};")
            chars = [t for t in toks if t.kind == self.tk.CHAR]
            self.assertEqual([t.text for t in chars], [lit], lit)
            self.assertNotIn(lit[:-3] or lit[0],
                             [t.text for t in toks
                              if t.kind == self.tk.IDENT])

    def test_wide_string_prefix(self):
        toks = self.lex('auto s = L"wide";')
        strings = [t for t in toks if t.kind == self.tk.STRING]
        self.assertEqual([t.text for t in strings], ['L"wide"'])

    def test_identifiers_starting_with_prefix_letters_survive(self):
        toks = self.lex('update(L, u, usage, Ubuf);')
        idents = [t.text for t in toks if t.kind == self.tk.IDENT]
        self.assertEqual(idents, ["update", "L", "u", "usage", "Ubuf"])

    def test_escaped_quote_inside_literal(self):
        toks = self.lex(r'auto s = u8"a\"b"; auto c = L'
                        r"'\''" ";")
        strings = [t for t in toks if t.kind == self.tk.STRING]
        chars = [t for t in toks if t.kind == self.tk.CHAR]
        self.assertEqual([t.text for t in strings], [r'u8"a\"b"'])
        self.assertEqual([t.text for t in chars], [r"L'\''"])


class CppModelCapture(unittest.TestCase):
    """Direct unit tests for cppmodel.py body/noexcept/annotation capture."""

    @classmethod
    def setUpClass(cls):
        sys.path.insert(0, str(ANALYZE))
        import cppmodel  # noqa: E402 (repo tool, not a package)
        cls.cm = cppmodel

    def model(self, text):
        return self.cm.build_model("src/x/t.h", text)

    def method(self, model, cls, name):
        for m in model.methods:
            if m.cls == cls and m.name == name:
                return m
        self.fail(f"{cls or '<free>'}::{name} not captured: "
                  f"{[(m.cls, m.name) for m in model.methods]}")

    def test_inline_member_bodies_are_captured(self):
        m = self.model("""
            namespace n {
            template <typename T>
            class Ring {
             public:
              bool push(T&& v) {
                slots_[tail_ & mask_] = std::move(v);
                return true;
              }
              std::size_t capacity() const noexcept { return mask_ + 1; }
              bool empty() const;           // declaration: no body here
              Ring(const Ring&) = delete;   // not a definition either
             private:
              std::size_t mask_ = 0;
              std::size_t tail_ = compute_mask(8);  // NSDMI call, no method
            };
            }  // namespace n
        """)
        push = self.method(m, "Ring", "push")
        self.assertFalse(push.is_noexcept)
        self.assertIn("slots_", [t.text for t in push.body])
        cap = self.method(m, "Ring", "capacity")
        self.assertTrue(cap.is_noexcept)
        names = {(mm.cls, mm.name) for mm in m.methods}
        self.assertNotIn(("Ring", "empty"), names)
        self.assertNotIn(("Ring", "Ring"), names)
        self.assertNotIn(("Ring", "compute_mask"), names)

    def test_free_function_bodies_are_captured(self):
        m = self.model("""
            namespace n {
            namespace {
            int helper(int v) noexcept { return v * 2; }
            }  // namespace
            int shown(int v) { return helper(v); }
            int declared_only(int v);
            }  // namespace n
        """)
        helper = self.method(m, "", "helper")
        self.assertTrue(helper.is_noexcept)
        shown = self.method(m, "", "shown")
        self.assertFalse(shown.is_noexcept)
        self.assertIn("helper", [t.text for t in shown.body])
        self.assertNotIn(("", "declared_only"),
                         {(mm.cls, mm.name) for mm in m.methods})

    def test_out_of_line_noexcept_specifier(self):
        m = self.model("""
            namespace n {
            void Table::reset() noexcept { size_ = 0; }
            void Table::grow() { rehash(); }
            bool Table::shrink() noexcept(false) { return drop(); }
            }  // namespace n
        """)
        self.assertTrue(self.method(m, "Table", "reset").is_noexcept)
        self.assertFalse(self.method(m, "Table", "grow").is_noexcept)
        # Conditional noexcept is recorded as declared; passes that need
        # the distinction can inspect the tokens.
        self.assertTrue(self.method(m, "Table", "shrink").is_noexcept)

    def test_ctor_with_init_list_and_dtor(self):
        m = self.model("""
            namespace n {
            class Pool {
             public:
              explicit Pool(std::size_t n) : slots_(n), used_(0) { fill(); }
              ~Pool() { release(); }
             private:
              std::size_t slots_;
              std::size_t used_;
            };
            }  // namespace n
        """)
        specials = [mm for mm in m.methods
                    if mm.cls == "Pool" and mm.is_special]
        self.assertEqual(len(specials), 2)  # ctor + dtor
        bodies = ["".join(t.text for t in mm.body) for mm in specials]
        self.assertTrue(any("fill" in b for b in bodies))
        self.assertTrue(any("release" in b for b in bodies))

    def test_requires_macro_on_inline_definition_is_recorded(self):
        m = self.model("""
            namespace n {
            class Box {
             public:
              void bump() IUSTITIA_REQUIRES(mu_) { ++n_; }
             private:
              util::Mutex mu_;
              int n_ IUSTITIA_GUARDED_BY(mu_) = 0;
            };
            }  // namespace n
        """)
        cls = m.classes[0]
        self.assertEqual(cls.requires_methods.get("bump"), "mu_")

    def test_annotation_items_bare_and_parenthesized(self):
        ann = self.cm.analyze_annotations(self.cm.tokenize(
            "int x;  // analyze: hotpath\n"
            "int y;  // analyze: atomic(publish) escape(spsc-owner)\n"))
        self.assertEqual(ann[1], [("hotpath", "")])
        self.assertEqual(ann[2], [("atomic", "publish"),
                                  ("escape", "spsc-owner")])

    def test_annotation_prose_after_separator_is_ignored(self):
        ann = self.cm.analyze_annotations(self.cm.tokenize(
            "f();  // analyze: hotpath-allow(may-block) -- cold "
            "drop-path lock, uncontended\n"))
        self.assertEqual(ann[1], [("hotpath-allow", "may-block")])

    def test_annotation_junk_is_kept_for_rejection(self):
        ann = self.cm.analyze_annotations(self.cm.tokenize(
            "f();  // analyze: hotpath-alow(may-block) first-touch growth\n"))
        kinds = [k for k, _ in ann[1]]
        self.assertIn("hotpath-alow", kinds)
        # Unseparated prose surfaces as items so the annotations pass can
        # reject it instead of silently dropping it.
        self.assertIn("first-touch", kinds)


if __name__ == "__main__":
    unittest.main(verbosity=2)
