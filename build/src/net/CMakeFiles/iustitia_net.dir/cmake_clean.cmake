file(REMOVE_RECURSE
  "CMakeFiles/iustitia_net.dir/flow.cc.o"
  "CMakeFiles/iustitia_net.dir/flow.cc.o.d"
  "CMakeFiles/iustitia_net.dir/flow_table.cc.o"
  "CMakeFiles/iustitia_net.dir/flow_table.cc.o.d"
  "CMakeFiles/iustitia_net.dir/pcap.cc.o"
  "CMakeFiles/iustitia_net.dir/pcap.cc.o.d"
  "CMakeFiles/iustitia_net.dir/trace_gen.cc.o"
  "CMakeFiles/iustitia_net.dir/trace_gen.cc.o.d"
  "CMakeFiles/iustitia_net.dir/tunnel.cc.o"
  "CMakeFiles/iustitia_net.dir/tunnel.cc.o.d"
  "libiustitia_net.a"
  "libiustitia_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
