// LZ77/LZSS compressor and decompressor.
//
// The paper's binary pool includes ZIP archives; real DEFLATE output sits in
// the high-but-not-maximal entropy band with visible token structure.  This
// module reproduces that band honestly: we compress generated content with
// a real dictionary coder (greedy LZSS, 64 KiB window, byte-aligned token
// stream) instead of sampling bytes to a target entropy.
//
// Token stream format (little-endian):
//   flag byte F: each bit, LSB first, selects literal (0) or match (1)
//   literal: 1 raw byte
//   match:   2-byte offset (1..65535 back), 1-byte length (min 4 .. 258)
// The format round-trips exactly (decompress(compress(x)) == x).
#ifndef IUSTITIA_DATAGEN_LZ77_H_
#define IUSTITIA_DATAGEN_LZ77_H_

#include <cstdint>
#include <span>
#include <vector>

namespace iustitia::datagen {

// Compresses `input`; never fails (worst case expands by 1/8 + O(1)).
std::vector<std::uint8_t> lz77_compress(std::span<const std::uint8_t> input);

// Inverse of lz77_compress.  Throws std::runtime_error on corrupt input.
std::vector<std::uint8_t> lz77_decompress(std::span<const std::uint8_t> input);

}  // namespace iustitia::datagen

#endif  // IUSTITIA_DATAGEN_LZ77_H_
