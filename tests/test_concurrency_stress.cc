// Concurrency stress tests: many threads hammer ShardedIustitia::on_packet
// and OutputQueues while pollers read aggregate state.  These are the
// tests the tsan preset exists for (tools/ci.sh runs them under
// -fsanitize=thread); under the default build they still verify that
// concurrent operation loses no packets and keeps counters consistent.
#include "core/sharded_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "appproto/trace_headers.h"
#include "core/output_queues.h"
#include "core/trainer.h"
#include "net/flow.h"
#include "net/trace_gen.h"

namespace iustitia::core {
namespace {

std::function<FlowNatureModel()> model_factory() {
  return [] {
    datagen::CorpusOptions corpus_options;
    corpus_options.files_per_class = 12;
    corpus_options.min_size = 2048;
    corpus_options.max_size = 4096;
    corpus_options.seed = 170;
    const auto corpus = datagen::build_corpus(corpus_options);
    TrainerOptions options;
    options.backend = Backend::kCart;
    options.widths = entropy::cart_preferred_widths();
    options.method = TrainingMethod::kFirstBytes;
    options.buffer_size = 32;
    return train_model(corpus, options);
  };
}

// More worker threads than shards, so shard locks are actually contended
// (unlike the RSS-steered one-thread-per-shard deployment).
TEST(ConcurrencyStress, ContendedOnPacketLosesNothing) {
  const std::size_t shard_count = 3;
  const std::size_t worker_count = 8;
  EngineOptions options;
  options.buffer_size = 32;
  ShardedIustitia sharded(model_factory(), options, shard_count);

  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = 12000;
  trace_options.seed = 171;
  const net::Trace trace = net::generate_trace(trace_options);

  // Partition by flow (not by shard): a flow's packets stay in order on
  // one thread, but each shard receives interleaved calls from several
  // threads at once.
  const net::FlowKeyHash hasher;
  std::vector<std::vector<const net::Packet*>> partitions(worker_count);
  for (const net::Packet& p : trace.packets) {
    partitions[hasher(p.key) % worker_count].push_back(&p);
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> polls{0};
  std::thread poller([&sharded, &done, &polls] {
    // Aggregate readers must be safe while writers run.
    while (!done.load(std::memory_order_relaxed)) {
      const EngineStats stats = sharded.total_stats();
      ASSERT_LE(stats.data_packets, stats.packets);
      (void)sharded.total_cdb_size();
      (void)sharded.total_flows_classified();
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < worker_count; ++w) {
    workers.emplace_back([&sharded, &partitions, w] {
      for (const net::Packet* p : partitions[w]) sharded.on_packet(*p);
    });
  }
  for (auto& t : workers) t.join();
  done.store(true, std::memory_order_relaxed);
  poller.join();

  sharded.flush_all();
  const EngineStats total = sharded.total_stats();
  EXPECT_EQ(total.packets, trace.packets.size());
  EXPECT_GT(total.flows_classified, 0u);
  EXPECT_GT(polls.load(), 0u);
}

TEST(ConcurrencyStress, QueuesBalanceUnderProducersAndConsumers) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 2000;
  static constexpr datagen::FileClass kLabels[] = {
      datagen::FileClass::kText, datagen::FileClass::kBinary,
      datagen::FileClass::kEncrypted};
  OutputQueues queues(/*capacity=*/64);  // small: forces real drops

  std::atomic<bool> producing{true};
  std::atomic<std::uint64_t> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&queues, &producing, &consumed] {
      // Bank scenario priority: encrypted > binary > text.
      const datagen::FileClass order[] = {datagen::FileClass::kEncrypted,
                                          datagen::FileClass::kBinary,
                                          datagen::FileClass::kText};
      while (true) {
        const auto packet = queues.dequeue_priority(order);
        if (packet.has_value()) {
          consumed.fetch_add(1, std::memory_order_relaxed);
        } else if (!producing.load(std::memory_order_acquire)) {
          return;  // producers done and all three queues were empty
        }
      }
    });
  }

  std::vector<std::thread> producers;
  for (std::size_t prod = 0; prod < kProducers; ++prod) {
    producers.emplace_back([&queues, prod] {
      for (std::size_t i = 0; i < kPerProducer; ++i) {
        net::Packet packet;
        packet.payload.assign(16, static_cast<std::uint8_t>(i));
        queues.enqueue(kLabels[(prod + i) % 3], std::move(packet));
      }
    });
  }
  for (auto& t : producers) t.join();
  producing.store(false, std::memory_order_release);
  for (auto& t : consumers) t.join();

  // Drain whatever the consumers had not reached before they observed the
  // producers-done flag.
  std::uint64_t drained = consumed.load();
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  for (const datagen::FileClass label : kLabels) {
    while (queues.dequeue(label).has_value()) ++drained;
    accepted += queues.enqueued(label);
    dropped += queues.dropped(label);
    EXPECT_EQ(queues.depth(label), 0u);
  }
  // Every produced packet was either accepted (and later dequeued exactly
  // once) or counted as a drop — nothing lost, nothing duplicated.
  EXPECT_EQ(accepted + dropped, kProducers * kPerProducer);
  EXPECT_EQ(drained, accepted);
  EXPECT_GT(dropped, 0u) << "capacity 64 should have forced drops";
}

// Per-shard single-owner drive through the unlocked shard() escape hatch,
// with concurrent aggregate polling through the locked accessors: the
// pattern DESIGN.md documents for RSS deployment.  TSan-visible if the
// escape hatch is misused internally.
TEST(ConcurrencyStress, SteeredShardDriveWithConcurrentAggregation) {
  const std::size_t shard_count = 4;
  EngineOptions options;
  options.buffer_size = 32;
  ShardedIustitia sharded(model_factory(), options, shard_count);

  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = 8000;
  trace_options.seed = 172;
  const net::Trace trace = net::generate_trace(trace_options);
  std::vector<std::vector<const net::Packet*>> by_shard(shard_count);
  for (const net::Packet& p : trace.packets) {
    by_shard[sharded.shard_of(p.key)].push_back(&p);
  }

  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < shard_count; ++s) {
    threads.emplace_back([&sharded, &by_shard, s] {
      // on_packet() routes to this thread's shard under its lock; the
      // steering guarantees no other worker touches that shard.
      for (const net::Packet* p : by_shard[s]) sharded.on_packet(*p);
    });
  }
  for (auto& t : threads) t.join();
  sharded.flush_all();
  EXPECT_EQ(sharded.total_stats().packets, trace.packets.size());
}

}  // namespace
}  // namespace iustitia::core
