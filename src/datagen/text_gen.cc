#include "datagen/text_gen.h"

#include <cstdio>
#include <string_view>

#include "datagen/markov_text.h"

namespace iustitia::datagen {

namespace {

std::vector<std::uint8_t> to_bytes(const std::string& s, std::size_t size) {
  std::vector<std::uint8_t> out(s.begin(), s.end());
  out.resize(size, ' ');
  return out;
}

std::string prose(std::size_t size, util::Rng& rng) {
  return MarkovText::english(3).generate(size, rng);
}

std::string timestamp(util::Rng& rng) {
  char buf[40];
  std::snprintf(buf, sizeof(buf),
                "2009-%02d-%02dT%02d:%02d:%02d.%03dZ",
                static_cast<int>(rng.uniform_int(1, 12)),
                static_cast<int>(rng.uniform_int(1, 28)),
                static_cast<int>(rng.uniform_int(0, 23)),
                static_cast<int>(rng.uniform_int(0, 59)),
                static_cast<int>(rng.uniform_int(0, 59)),
                static_cast<int>(rng.uniform_int(0, 999)));
  return buf;
}

std::string ip_address(util::Rng& rng) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%d.%d.%d.%d",
                static_cast<int>(rng.uniform_int(1, 254)),
                static_cast<int>(rng.uniform_int(0, 255)),
                static_cast<int>(rng.uniform_int(0, 255)),
                static_cast<int>(rng.uniform_int(1, 254)));
  return buf;
}

}  // namespace

std::vector<std::uint8_t> generate_prose(std::size_t size, util::Rng& rng) {
  return to_bytes(prose(size, rng), size);
}

std::vector<std::uint8_t> generate_html(std::size_t size, util::Rng& rng) {
  static constexpr std::string_view kTags[] = {"p", "div", "span", "h2", "li",
                                               "em", "td", "a"};
  std::string out =
      "<!DOCTYPE html>\n<html>\n<head>\n<title>";
  out += random_word(rng, 4, 9);
  out +=
      "</title>\n<meta charset=\"utf-8\">\n</head>\n<body>\n";
  while (out.size() < size) {
    const std::string_view tag = kTags[rng.next_below(std::size(kTags))];
    out += "<";
    out += tag;
    if (rng.chance(0.3)) {
      out += " class=\"" + random_word(rng, 3, 8) + "\"";
    }
    if (tag == "a") {
      out += " href=\"/" + random_word(rng, 3, 8) + "/" +
             random_word(rng, 3, 8) + ".html\"";
    }
    out += ">";
    out += prose(static_cast<std::size_t>(rng.uniform_int(40, 220)), rng);
    out += "</";
    out += tag;
    out += ">\n";
  }
  out += "</body>\n</html>\n";
  return to_bytes(out, size);
}

std::vector<std::uint8_t> generate_log(std::size_t size, util::Rng& rng) {
  static constexpr std::string_view kLevels[] = {"INFO", "WARN", "ERROR",
                                                 "DEBUG"};
  static constexpr std::string_view kVerbs[] = {"GET", "POST", "PUT",
                                                "DELETE"};
  static constexpr int kStatus[] = {200, 200, 200, 201, 204, 301, 304, 400,
                                    403, 404, 500, 502};
  std::string out;
  while (out.size() < size) {
    out += timestamp(rng);
    out += ' ';
    out += kLevels[rng.next_below(std::size(kLevels))];
    out += ' ';
    out += ip_address(rng);
    out += " \"";
    out += kVerbs[rng.next_below(std::size(kVerbs))];
    out += " /" + random_word(rng, 3, 8) + "/" + random_word(rng, 3, 10);
    if (rng.chance(0.4)) {
      out += "?" + random_word(rng, 2, 5) + "=" +
             std::to_string(rng.uniform_int(0, 9999));
    }
    out += " HTTP/1.1\" ";
    out += std::to_string(kStatus[rng.next_below(std::size(kStatus))]);
    out += ' ';
    out += std::to_string(rng.uniform_int(64, 250000));
    out += " \"";
    out += random_word(rng, 4, 8) + "/" +
           std::to_string(rng.uniform_int(1, 9)) + "." +
           std::to_string(rng.uniform_int(0, 9));
    out += "\"\n";
  }
  return to_bytes(out, size);
}

std::vector<std::uint8_t> generate_csv(std::size_t size, util::Rng& rng) {
  std::string out = "id,name,host,bytes,duration,status,comment\n";
  std::int64_t id = rng.uniform_int(1000, 5000);
  while (out.size() < size) {
    out += std::to_string(id++);
    out += ',' + random_word(rng, 4, 10);
    out += ',' + random_word(rng, 3, 7) + "." + random_word(rng, 2, 5) +
           ".example.com";
    out += ',' + std::to_string(rng.uniform_int(100, 10000000));
    out += ',' + std::to_string(rng.uniform(0.0, 90.0)).substr(0, 6);
    out += ',' + std::to_string(rng.uniform_int(0, 5));
    out += ",\"" + prose(static_cast<std::size_t>(rng.uniform_int(10, 50)), rng) +
           "\"\n";
  }
  return to_bytes(out, size);
}

std::vector<std::uint8_t> generate_source_code(std::size_t size,
                                               util::Rng& rng) {
  static constexpr std::string_view kTypes[] = {"int", "double", "size_t",
                                                "bool", "char", "long"};
  std::string out = "// generated module\n#include <stdlib.h>\n\n";
  while (out.size() < size) {
    const std::string fn = random_word(rng, 4, 10);
    out += std::string(kTypes[rng.next_below(std::size(kTypes))]) + " " + fn +
           "(";
    const int args = static_cast<int>(rng.uniform_int(0, 3));
    for (int a = 0; a < args; ++a) {
      if (a > 0) out += ", ";
      out += std::string(kTypes[rng.next_below(std::size(kTypes))]) + " " +
             random_word(rng, 1, 5);
    }
    out += ") {\n";
    const int lines = static_cast<int>(rng.uniform_int(2, 8));
    for (int l = 0; l < lines; ++l) {
      out += "    " + random_word(rng, 2, 8) + " = " +
             random_word(rng, 2, 8) + " + " +
             std::to_string(rng.uniform_int(0, 255)) + ";\n";
    }
    out += "    return " + std::to_string(rng.uniform_int(0, 99)) + ";\n}\n\n";
  }
  return to_bytes(out, size);
}

std::vector<std::uint8_t> generate_email(std::size_t size, util::Rng& rng) {
  std::string out;
  out += "From: " + random_word(rng, 3, 8) + "@" + random_word(rng, 4, 8) +
         ".example.com\n";
  out += "To: " + random_word(rng, 3, 8) + "@" + random_word(rng, 4, 8) +
         ".example.org\n";
  out += "Date: " + timestamp(rng) + "\n";
  out += "Subject: " +
         prose(static_cast<std::size_t>(rng.uniform_int(15, 60)), rng) + "\n";
  out += "MIME-Version: 1.0\nContent-Type: text/plain; charset=us-ascii\n\n";
  if (out.size() < size) {
    out += prose(size - out.size(), rng);
  }
  return to_bytes(out, size);
}

}  // namespace iustitia::datagen
