#include "runtime/packet_source.h"

#include <istream>
#include <thread>
#include <utility>

namespace iustitia::runtime {

void Pacer::tick() {
  if (target_ <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  if (!started_) {
    started_ = true;
    start_ = now;
  }
  ++ticks_;
  const auto deadline =
      start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(
                       static_cast<double>(ticks_) / target_));
  if (deadline > now) std::this_thread::sleep_until(deadline);
}

PcapReplaySource::PcapReplaySource(std::istream& is, double target_pps)
    : reader_(is), pacer_(target_pps) {}

std::optional<net::Packet> PcapReplaySource::next() {
  std::optional<net::Packet> packet = reader_.next();
  if (!packet.has_value()) return std::nullopt;
  pacer_.tick();
  ++delivered_;
  return packet;
}

TraceSource::TraceSource(net::Trace trace, double target_pps)
    : trace_(std::move(trace)), pacer_(target_pps) {}

TraceSource::TraceSource(const net::TraceOptions& options, double target_pps)
    : TraceSource(net::generate_trace(options), target_pps) {}

std::optional<net::Packet> TraceSource::next() {
  if (next_index_ >= trace_.packets.size()) return std::nullopt;
  pacer_.tick();
  return std::move(trace_.packets[next_index_++]);
}

}  // namespace iustitia::runtime
