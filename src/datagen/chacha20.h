// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// The paper's encrypted-file pool was generated with PGP/AES/DES.  We have
// no proprietary corpus, so the synthetic corpus encrypts generated
// plaintexts with a real stream cipher: the ciphertext byte distribution is
// computationally indistinguishable from uniform, which is precisely the
// property ("encrypted flows have the highest entropy") the classifier
// keys on.  Verified against the RFC 8439 test vectors.
//
// This implementation exists to synthesize experimental data; do not use it
// for protecting real secrets (no constant-time guarantees, no AEAD).
#ifndef IUSTITIA_DATAGEN_CHACHA20_H_
#define IUSTITIA_DATAGEN_CHACHA20_H_

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace iustitia::datagen {

// 256-bit key, 96-bit nonce, 32-bit block counter (RFC 8439 layout).
class ChaCha20 {
 public:
  using Key = std::array<std::uint8_t, 32>;
  using Nonce = std::array<std::uint8_t, 12>;

  ChaCha20(const Key& key, const Nonce& nonce,
           std::uint32_t initial_counter = 0) noexcept;

  // XORs the keystream into `data` in place (encrypt == decrypt).
  void apply(std::span<std::uint8_t> data) noexcept;

  // Convenience: returns ciphertext of `plaintext`.
  std::vector<std::uint8_t> encrypt(std::span<const std::uint8_t> plaintext);

  // Produces one 64-byte keystream block for the given counter (exposed for
  // the RFC test vectors).
  static std::array<std::uint8_t, 64> block(const Key& key, const Nonce& nonce,
                                            std::uint32_t counter) noexcept;

 private:
  std::uint32_t state_[16];
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_used_ = 64;  // 64 = empty, refill on next byte
};

}  // namespace iustitia::datagen

#endif  // IUSTITIA_DATAGEN_CHACHA20_H_
