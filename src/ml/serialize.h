// Text serialization of trained models, and the versioned bundle frame
// the control plane ships them in.
//
// The offline training process of Fig. 1 produces a "Decision Tree Model"
// or "Support Vectors (SVs)" artifact consumed by the online classifier;
// these helpers persist both in a line-oriented text format that is stable
// across platforms and easy to diff.
//
// A *bundle* wraps any serialized payload (for flow models: the embedded
// scaler plus tree/SVM emitted by core::FlowNatureModel::save) in a
// self-describing frame so an artifact pushed over the admin server can
// be validated before any parsed value reaches a worker:
//
//   iustitia-bundle <format-version> <payload-bytes>\n   header (magic)
//   <free-form metadata line>\n                          operator version
//   <payload-bytes raw bytes>                            the model text
//   crc32 <8 hex digits>\n                               trailer
//
// The CRC-32 (util/crc32.h) covers the metadata line (with its newline)
// and the payload, so both a corrupted model and a mislabeled artifact
// fail closed.  Loaders reject bad magic, format versions newer than
// this binary, truncated payloads, and checksum mismatches with
// actionable std::runtime_error messages.
#ifndef IUSTITIA_ML_SERIALIZE_H_
#define IUSTITIA_ML_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "ml/cart.h"
#include "ml/scaler.h"
#include "ml/svm.h"

namespace iustitia::ml {

// Decision tree <-> stream.  Throws std::runtime_error on malformed input.
void save_tree(const DecisionTree& tree, std::ostream& os);
DecisionTree load_tree(std::istream& is);

// DAGSVM <-> stream.
void save_dag_svm(const DagSvm& model, std::ostream& os);
DagSvm load_dag_svm(std::istream& is);

// Min-max scaler <-> stream.
void save_scaler(const MinMaxScaler& scaler, std::ostream& os);
MinMaxScaler load_scaler(std::istream& is);

// --- versioned bundle frame ---------------------------------------------

// First token of every bundle; also how auto-detecting loaders tell a
// bundle from a bare serialized model.
inline constexpr const char kBundleMagic[] = "iustitia-bundle";

// Highest frame version this binary can parse.  Bump when the frame
// layout (not the payload) changes; loaders reject anything newer.
inline constexpr std::uint32_t kBundleFormatVersion = 1;

struct Bundle {
  std::uint32_t format_version = kBundleFormatVersion;
  // One free-form line (no newlines); by convention the first token is
  // the operator-facing model version, e.g. "model-v7 trained=2026-08-09".
  std::string metadata;
  std::string payload;
};

// Writes the frame around bundle.payload.  Throws std::invalid_argument
// when metadata contains a newline.
void save_bundle(const Bundle& bundle, std::ostream& os);

// Parses and validates a frame.  Throws std::runtime_error on bad magic,
// unsupported future format version, truncated payload, or CRC mismatch.
Bundle load_bundle(std::istream& is);

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_SERIALIZE_H_
