// Ablation for Section 4.6: padding-prefix evasion and the two defenses
// the paper proposes.
//
// Attack: a flow prepends "deceiving padding" whose nature differs from
// its real content — here ciphertext-like padding in front of a *text*
// flow, so a forensics deployment (Section 1.1) would skip the flow's
// keyword scan.  (Text-vs-encrypted is the class pair that stays separable
// at arbitrary offsets; binary-vs-encrypted is inherently ambiguous
// mid-file, which is the paper's own 12-20% confusion band.)
//
// Defenses (paper Section 4.6):
//   (1) skip a random number of the first bytes before buffering
//       (EngineOptions::random_skip_max), and
//   (2) periodically delete the flow's CDB record so it is reclassified on
//       fresh mid-flow content (CdbOptions::reclassify_after_seconds).
//
// Expected shape: the attack collapses accuracy on padded flows; random
// skip recovers much of it when the skip window exceeds typical padding;
// periodic reclassification recovers the *final* label even when the first
// classification was fooled.
#include "bench/bench_common.h"
#include "core/engine.h"
#include "util/random.h"

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

using datagen::FileClass;

struct AdversarialFlow {
  net::FlowKey key;
  FileClass real_nature = FileClass::kText;
  std::vector<net::Packet> packets;
};

// Builds flows whose first `padding` bytes are ciphertext-like while the
// real content is text: the attack from Section 4.6.
std::vector<AdversarialFlow> build_attack_flows(std::size_t count,
                                                std::size_t padding,
                                                util::Rng& rng) {
  std::vector<AdversarialFlow> flows;
  for (std::size_t i = 0; i < count; ++i) {
    AdversarialFlow flow;
    flow.key = {.src_ip = static_cast<std::uint32_t>(i + 1),
                .dst_ip = 0x0A0A0A0A,
                .src_port = static_cast<std::uint16_t>(20000 + i),
                .dst_port = 8080,
                .protocol = net::Protocol::kTcp};
    flow.real_nature = FileClass::kText;

    std::vector<std::uint8_t> content(padding);
    rng.fill_bytes(content);  // encrypted-like padding
    const datagen::FileSample real =
        datagen::generate_file(flow.real_nature, 8192, rng);
    content.insert(content.end(), real.bytes.begin(), real.bytes.end());

    // Slice into packets, 512 B each, 20 ms apart.
    double t = static_cast<double>(i) * 0.003;
    for (std::size_t at = 0; at < content.size(); at += 512) {
      net::Packet packet;
      packet.key = flow.key;
      packet.timestamp = t;
      packet.flags.ack = true;
      const std::size_t take = std::min<std::size_t>(512, content.size() - at);
      packet.payload.assign(content.begin() + static_cast<std::ptrdiff_t>(at),
                            content.begin() +
                                static_cast<std::ptrdiff_t>(at + take));
      flow.packets.push_back(std::move(packet));
      t += 0.02;
    }
    flows.push_back(std::move(flow));
  }
  return flows;
}

// Runs the flows through an engine and returns the fraction whose FINAL
// CDB label matches the real nature.
double final_label_accuracy(core::Iustitia& engine,
                            const std::vector<AdversarialFlow>& flows) {
  // Interleave flows by time.
  std::vector<const net::Packet*> all;
  for (const auto& flow : flows) {
    for (const auto& packet : flow.packets) all.push_back(&packet);
  }
  std::sort(all.begin(), all.end(),
            [](const net::Packet* a, const net::Packet* b) {
              return a->timestamp < b->timestamp;
            });
  std::size_t since_flush = 0;
  for (const net::Packet* packet : all) {
    engine.on_packet(*packet);
    // Give the time-driven reclassification defense frequent purge
    // opportunities (the default engine cadence is every 1024 packets,
    // too coarse for sub-second reclassification windows).
    if (++since_flush >= 64) {
      engine.flush_idle(packet->timestamp);
      since_flush = 0;
    }
  }
  engine.flush_all();

  std::size_t correct = 0;
  for (const auto& flow : flows) {
    const auto label = engine.label_of(flow.key);
    // A record deleted for reclassification with no further packets keeps
    // the last recorded classification in the delay log.
    FileClass final_label = FileClass::kEncrypted;
    if (label.has_value()) {
      final_label = *label;
    } else {
      for (auto it = engine.delays().rbegin(); it != engine.delays().rend();
           ++it) {
        if (it->key == flow.key) {
          final_label = it->label;
          break;
        }
      }
    }
    correct += (final_label == flow.real_nature);
  }
  return static_cast<double>(correct) / static_cast<double>(flows.size());
}

core::FlowNatureModel model() {
  // Both defenses classify windows at unpredictable offsets into the flow,
  // so the model must be trained the same way: the H_b' random-offset
  // method of Section 4.3 (a first-bytes-trained model would be out of
  // distribution on mid-flow windows).
  const auto corpus = standard_corpus(60);
  core::TrainerOptions options;
  options.backend = core::Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = core::TrainingMethod::kRandomOffset;
  options.header_threshold = 2048;
  options.buffer_size = 64;
  return core::train_model(corpus, options);
}

int run() {
  banner("Ablation (Section 4.6): padding evasion and defenses",
         "random initial skip / periodic reclassification counter the "
         "deceiving-padding attack");

  const std::size_t flows_n = env_size("IUSTITIA_FILES_PER_CLASS", 60);
  util::Rng rng(0xADA);

  util::Table table({"padding (B)", "no defense", "random skip (<=2KB)",
                     "reclassify (0.15s)"});
  for (const std::size_t padding : {std::size_t{0}, std::size_t{256},
                                    std::size_t{1024}}) {
    const auto flows = build_attack_flows(flows_n, padding, rng);

    core::EngineOptions plain;
    plain.buffer_size = 64;
    core::Iustitia engine_plain(model(), plain);

    core::EngineOptions skip = plain;
    skip.random_skip_max = 2048;
    core::Iustitia engine_skip(model(), skip);

    core::EngineOptions reclassify = plain;
    reclassify.cdb.reclassify_after_seconds = 0.15;
    reclassify.cdb.purge_trigger_flows = 10;
    core::Iustitia engine_reclassify(model(), reclassify);

    table.add_row({std::to_string(padding),
                   util::fmt_percent(final_label_accuracy(engine_plain, flows)),
                   util::fmt_percent(final_label_accuracy(engine_skip, flows)),
                   util::fmt_percent(
                       final_label_accuracy(engine_reclassify, flows))});
  }
  table.render(std::cout);
  std::cout << "\nexpected shape: padding >= buffer size collapses the "
               "no-defense column; both defenses recover most accuracy.\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
