// Tunnel gateway: the Section 4.6 discussion, end to end.
//
// A gateway sees tunneled traffic.  For cleartext tunnels it demultiplexes
// the inner flows and classifies each separately; for encrypted tunnels
// demultiplexing fails (the framing is ciphertext) and the whole tunnel is
// classified as one encrypted flow — exactly the rule the paper states.
//
// Run:  ./tunnel_gateway
#include <algorithm>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "net/tunnel.h"
#include "util/table.h"

using namespace iustitia;

int main() {
  // Train a classifier on 256-byte prefixes.
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 60;
  corpus_options.seed = 71;
  const auto corpus = datagen::build_corpus(corpus_options);
  core::TrainerOptions trainer;
  trainer.backend = core::Backend::kCart;
  trainer.widths = entropy::cart_preferred_widths();
  trainer.method = core::TrainingMethod::kFirstBytes;
  trainer.buffer_size = 256;
  core::FlowNatureModel model = core::train_model(corpus, trainer);

  util::Rng rng(72);

  // Build two tunnels carrying the same three inner flows (one per class).
  struct Inner {
    std::uint32_t id;
    datagen::FileClass nature;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Inner> inners;
  std::uint32_t next_id = 1;
  for (const datagen::FileClass nature :
       {datagen::FileClass::kText, datagen::FileClass::kBinary,
        datagen::FileClass::kEncrypted}) {
    inners.push_back(
        {next_id++, nature,
         datagen::generate_file(nature, 4096, rng).bytes});
  }

  auto classify_prefix = [&](std::span<const std::uint8_t> bytes) {
    const std::size_t take = std::min<std::size_t>(256, bytes.size());
    return model.classify(bytes.subspan(0, take)).label;
  };

  std::cout << "--- cleartext tunnel ---\n";
  {
    net::TunnelMux mux;  // cleartext
    net::TunnelDemux demux;
    // Interleave inner flows in 512-byte segments, like real multiplexing.
    for (std::size_t at = 0; at < 4096; at += 512) {
      for (const Inner& inner : inners) {
        demux.feed(mux.encapsulate(
            inner.id, std::span<const std::uint8_t>(inner.bytes.data() + at,
                                                    512)));
      }
    }
    util::Table table({"inner flow", "true nature", "classified as"});
    for (const Inner& inner : inners) {
      const auto& stream = demux.inner_streams().at(inner.id);
      table.add_row({std::to_string(inner.id),
                     datagen::class_name(inner.nature),
                     datagen::class_name(classify_prefix(stream))});
    }
    table.render(std::cout);
    std::cout << "frames decoded: " << demux.frames_decoded()
              << ", corrupted: " << (demux.corrupted() ? "yes" : "no")
              << "\n\n";
  }

  std::cout << "--- encrypted tunnel (same inner flows) ---\n";
  {
    datagen::ChaCha20::Key key{};
    datagen::ChaCha20::Nonce nonce{};
    rng.fill_bytes(key);
    rng.fill_bytes(nonce);
    net::TunnelMux mux(key, nonce);
    net::TunnelDemux demux;
    std::vector<std::uint8_t> outer_stream;
    for (std::size_t at = 0; at < 4096; at += 512) {
      for (const Inner& inner : inners) {
        const auto chunk = mux.encapsulate(
            inner.id,
            std::span<const std::uint8_t>(inner.bytes.data() + at, 512));
        outer_stream.insert(outer_stream.end(), chunk.begin(), chunk.end());
      }
    }
    demux.feed(outer_stream);
    std::cout << "demux result: corrupted = "
              << (demux.corrupted() ? "yes" : "no")
              << " -> fall back to classifying the tunnel as one flow\n";
    std::cout << "tunnel classified as: "
              << datagen::class_name(classify_prefix(outer_stream)) << '\n';
    std::cout << "(the paper's rule: an encrypted tunnel is classified as "
                 "an encrypted flow, whatever it carries)\n";
  }
  return 0;
}
