// Reproduces Figure 5: entropy-vector calculation time (a) and space (b)
// as a function of buffer size, for the preferred feature sets.
//
// Paper shape: both curves grow linearly in b; computing the vector at
// b=32 is roughly an order of magnitude cheaper in time than b=1024, and
// ~30x cheaper in per-flow space.
//
// The timing half uses google-benchmark for stable measurements; the space
// table is printed afterwards from the counter accounting.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/random.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

std::vector<std::uint8_t> sample_buffer(std::size_t size) {
  // A representative mid-entropy payload (binary-class file prefix).
  util::Rng rng(0xF16);
  const datagen::FileSample file =
      datagen::generate_file(datagen::FileClass::kBinary,
                             std::max<std::size_t>(size, 64), rng);
  return {file.bytes.begin(), file.bytes.begin() +
                                  static_cast<std::ptrdiff_t>(size)};
}

void bm_entropy_vector_svm(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto data = sample_buffer(size);
  const auto widths = iustitia::entropy::svm_preferred_widths();
  std::size_t space = 0;
  for (auto _ : state) {
    auto result = iustitia::entropy::compute_entropy_vector(data, widths);
    benchmark::DoNotOptimize(result.h.data());
    space = result.space_bytes;
  }
  state.counters["space_bytes"] = static_cast<double>(space);
}

void bm_entropy_vector_cart(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto data = sample_buffer(size);
  const auto widths = iustitia::entropy::cart_preferred_widths();
  std::size_t space = 0;
  for (auto _ : state) {
    auto result = iustitia::entropy::compute_entropy_vector(data, widths);
    benchmark::DoNotOptimize(result.h.data());
    space = result.space_bytes;
  }
  state.counters["space_bytes"] = static_cast<double>(space);
}

BENCHMARK(bm_entropy_vector_svm)->RangeMultiplier(2)->Range(32, 8192);
BENCHMARK(bm_entropy_vector_cart)->RangeMultiplier(2)->Range(32, 8192);

void print_space_table() {
  std::cout << "\n-- Fig. 5(b): entropy vector calculation space --\n";
  util::Table table({"buffer size (B)", "phi'_SVM space", "phi'_CART space"});
  for (std::size_t b = 32; b <= 8192; b *= 2) {
    const auto data = sample_buffer(b);
    const auto svm = iustitia::entropy::compute_entropy_vector(
        data, iustitia::entropy::svm_preferred_widths());
    const auto cart = iustitia::entropy::compute_entropy_vector(
        data, iustitia::entropy::cart_preferred_widths());
    table.add_row({std::to_string(b),
                   iustitia::util::fmt_bytes(
                       static_cast<double>(svm.space_bytes)),
                   iustitia::util::fmt_bytes(
                       static_cast<double>(cart.space_bytes))});
  }
  table.render(std::cout);
  std::cout << "\npaper shape: time and space grow linearly in b; b=32 is "
               "~10x cheaper in time and ~30x in space than b=1024.\n";
}

}  // namespace
}  // namespace iustitia::bench

int main(int argc, char** argv) {
  iustitia::bench::banner(
      "Fig. 5: entropy vector calculation time and space vs b",
      "linear growth; b=32 ~10x faster and ~30x smaller than b=1024");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  iustitia::bench::print_space_table();
  return 0;
}
