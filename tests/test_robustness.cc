// Robustness sweeps: parsers and decoders must reject hostile input with
// exceptions, never crash or hang, across many random inputs.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "appproto/header_stripper.h"
#include "datagen/lz77.h"
#include "ml/serialize.h"
#include "net/pcap.h"
#include "net/tunnel.h"
#include "util/random.h"

namespace iustitia {
namespace {

TEST(Robustness, PcapReaderOnRandomBytes) {
  util::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 4096)));
    rng.fill_bytes(junk);
    std::stringstream ss(std::string(junk.begin(), junk.end()));
    try {
      net::PcapReader reader(ss);
      while (reader.next().has_value()) {
      }
    } catch (const std::runtime_error&) {
      // Expected for malformed input.
    }
  }
  SUCCEED();
}

TEST(Robustness, PcapReaderOnTruncationsOfValidFile) {
  // Every truncation point of a valid pcap must either parse a prefix or
  // throw — never crash.
  std::stringstream valid;
  net::PcapWriter writer(valid);
  for (int i = 0; i < 5; ++i) {
    net::Packet p;
    p.key.src_port = static_cast<std::uint16_t>(i);
    p.key.protocol = net::Protocol::kUdp;
    p.payload.assign(40, static_cast<std::uint8_t>(i));
    writer.write(p);
  }
  const std::string full = valid.str();
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    std::stringstream ss(full.substr(0, cut));
    try {
      net::PcapReader reader(ss);
      while (reader.next().has_value()) {
      }
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

TEST(Robustness, FrameDecoderOnMutatedFrames) {
  util::Rng rng(2);
  net::Packet p;
  p.key = {.src_ip = 1, .dst_ip = 2, .src_port = 3, .dst_port = 4,
           .protocol = net::Protocol::kTcp};
  p.payload.assign(100, 0x55);
  const auto frame = net::encode_frame(p);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = frame;
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    try {
      (void)net::decode_frame(mutated, 0.0);
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

TEST(Robustness, Lz77DecompressOnRandomBytes) {
  util::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 2048)));
    rng.fill_bytes(junk);
    try {
      const auto out = datagen::lz77_decompress(junk);
      // Sanity bound: byte-aligned tokens can expand 258x at most per
      // 3-byte match token.
      EXPECT_LT(out.size(), junk.size() * 300 + 16);
    } catch (const std::runtime_error&) {
    }
  }
  SUCCEED();
}

TEST(Robustness, HeaderDetectorOnRandomAndPathologicalInput) {
  util::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 4096)));
    rng.fill_bytes(junk);
    (void)appproto::detect_header(junk);
  }
  // Pathological: enormous header-looking input with no terminator.
  std::string endless = "GET /";
  endless.append(100000, 'a');
  const std::vector<std::uint8_t> bytes(endless.begin(), endless.end());
  const auto det = appproto::detect_header(bytes);
  EXPECT_EQ(det.protocol, appproto::AppProtocol::kHttp);
  EXPECT_FALSE(det.header_complete);
}

TEST(Robustness, TunnelDemuxOnRandomBytes) {
  util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 2048)));
    rng.fill_bytes(junk);
    net::TunnelDemux demux;
    demux.feed(junk);
    // Either parsed some frames (unlikely) or flagged corruption; both are
    // valid outcomes, crash is not.
  }
  SUCCEED();
}

TEST(Robustness, ModelLoadersOnRandomText) {
  util::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::string junk;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 500));
    for (std::size_t i = 0; i < len; ++i) {
      junk.push_back(static_cast<char>(' ' + rng.next_below(95)));
    }
    std::stringstream a(junk), b(junk), c(junk);
    EXPECT_THROW(ml::load_tree(a), std::runtime_error);
    EXPECT_THROW(ml::load_dag_svm(b), std::runtime_error);
    EXPECT_THROW(ml::load_scaler(c), std::runtime_error);
  }
}

}  // namespace
}  // namespace iustitia
