#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace iustitia::util {

namespace {

LogLevel initial_level() noexcept {
  const char* env = std::getenv("IUSTITIA_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() noexcept {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  std::fprintf(stderr, "[iustitia %s] %s\n", level_name(level),
               message.c_str());
}

void log_fatal(const std::string& message) {
  // Never filtered: a failed CHECK must always reach stderr before abort.
  std::fprintf(stderr, "[iustitia FATAL] %s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace iustitia::util
