// Aho-Corasick multi-pattern matcher.
//
// Substrate for the paper's IDS/IPS motivation (Section 1.1): an
// intrusion-detection system matches thousands of byte signatures against
// payloads, and flow-nature classification lets it apply only the relevant
// signature set per flow.  This is a standard goto/fail/output automaton
// over the byte alphabet with O(text + matches) scan time, so the
// "signature work saved" numbers in the examples come from a real matcher
// rather than a cost model.
#ifndef IUSTITIA_DPI_AHO_CORASICK_H_
#define IUSTITIA_DPI_AHO_CORASICK_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace iustitia::dpi {

// One match occurrence.
struct Match {
  std::size_t pattern_index = 0;  // index into the builder's pattern list
  std::size_t end_offset = 0;     // offset one past the last matched byte
};

// Immutable multi-pattern matcher.  Build once, scan many.
class AhoCorasick {
 public:
  // Builds the automaton over `patterns`.  Empty patterns are rejected
  // with std::invalid_argument.  Case-sensitive byte matching.
  explicit AhoCorasick(std::vector<std::string> patterns);

  std::size_t pattern_count() const noexcept { return patterns_.size(); }
  const std::string& pattern(std::size_t index) const {
    return patterns_[index];
  }

  // Number of automaton states (for memory/diagnostics).
  std::size_t state_count() const noexcept { return nodes_.size(); }

  // Scans `text`, invoking `on_match` for every occurrence of every
  // pattern (including overlapping ones).  Returning false from the
  // callback stops the scan early.
  void scan(std::span<const std::uint8_t> text,
            const std::function<bool(const Match&)>& on_match) const;
  void scan(std::string_view text,
            const std::function<bool(const Match&)>& on_match) const;

  // Convenience: all matches in `text`.
  std::vector<Match> find_all(std::span<const std::uint8_t> text) const;

  // Convenience: true if any pattern occurs.
  bool contains_any(std::span<const std::uint8_t> text) const;

 private:
  struct Node {
    // Dense goto table over the byte alphabet (-1 = no edge before the
    // failure rewrite; after build, every entry is a valid next state).
    std::int32_t next[256];
    std::int32_t fail = 0;
    // Indices of patterns ending at this state (via output links, the
    // list is already flattened during construction).
    std::vector<std::uint32_t> outputs;
  };

  std::vector<std::string> patterns_;
  std::vector<Node> nodes_;
};

}  // namespace iustitia::dpi

#endif  // IUSTITIA_DPI_AHO_CORASICK_H_
