# Empty compiler generated dependencies file for iustitia_cli.
# This may be replaced when dependencies are built.
