// Exact k-gram frequency counting over byte streams.
//
// The paper (Section 3.1) treats a file or flow prefix as a sequence of
// overlapping k-byte elements drawn from the alphabet f_k of all 2^(8k)
// possible k-byte strings.  GramCounter maintains the exact frequency table
// m_ik for one width k; it accepts data incrementally so the online engine
// can feed packet payloads as they arrive.
//
// Keys are the k bytes packed big-endian into a 128-bit integer, which is
// exact for every width the paper uses (k <= 10 <= 16).
#ifndef IUSTITIA_ENTROPY_GRAM_COUNTER_H_
#define IUSTITIA_ENTROPY_GRAM_COUNTER_H_

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace iustitia::entropy {

// 128-bit gram key; exact for k-gram widths up to 16.
using GramKey = unsigned __int128;

// Hash functor for GramKey (mixes both halves).
struct GramKeyHash {
  std::size_t operator()(GramKey key) const noexcept {
    const auto lo = static_cast<std::uint64_t>(key);
    const auto hi = static_cast<std::uint64_t>(key >> 64);
    return static_cast<std::size_t>(util::hash_combine(util::mix64(lo), hi));
  }
};

// Exact frequency counter for overlapping k-grams of a byte stream.
//
// Width-1 counting uses a flat 256-entry array; wider grams use a hash map,
// which is compact in practice because a b-byte buffer contains at most
// b-k+1 distinct grams (|f_k| >> b for k >= 2, as the paper notes).
class GramCounter {
 public:
  // `width` must be in [1, kMaxGramWidth]; throws std::invalid_argument
  // otherwise.
  explicit GramCounter(int width);

  // Appends `data` to the logical stream; grams spanning call boundaries are
  // counted correctly via the retained (k-1)-byte tail.
  void add(std::span<const std::uint8_t> data);

  // Clears all counts and the carry-over tail.
  void reset() noexcept;

  int width() const noexcept { return width_; }

  // Number of grams counted so far: max(0, bytes_seen - width + 1).
  std::uint64_t total_grams() const noexcept { return total_grams_; }

  // Total bytes fed in.
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }

  // Number of distinct grams observed.
  std::size_t distinct() const;

  // Frequency of one gram key.
  std::uint64_t count(GramKey key) const;

  // Sum over grams of m_ik * ln(m_ik)  (natural log; 0 when no grams).
  // Maintained incrementally on add(), so this is O(1).
  double sum_count_log_count() const noexcept { return sum_count_log_count_; }

  // Recomputes the sum from the raw counts (O(distinct)); used by tests to
  // validate the incremental bookkeeping.
  double sum_count_log_count_recomputed() const;

  // Visits every (key, count) pair.
  void for_each(const std::function<void(GramKey, std::uint64_t)>& fn) const;

  // Approximate resident size of the counter structures in bytes; this is
  // the "space" series of Fig. 5(b) and Table 3.
  std::size_t space_bytes() const noexcept;

 private:
  // Updates the incremental S on a count transition c -> c+1.
  void bump_sum(std::uint64_t old_count) noexcept;

  int width_;
  std::uint64_t total_grams_ = 0;
  std::uint64_t total_bytes_ = 0;
  double sum_count_log_count_ = 0.0;
  // Last (width-1) bytes seen, to stitch grams across add() calls.
  std::vector<std::uint8_t> tail_;
  // width == 1 fast path.
  std::vector<std::uint64_t> byte_counts_;
  // width >= 2 path.
  std::unordered_map<GramKey, std::uint64_t, GramKeyHash> counts_;
};

// Packs `width` bytes starting at `data` into a big-endian GramKey.
GramKey pack_gram(const std::uint8_t* data, int width) noexcept;

}  // namespace iustitia::entropy

#endif  // IUSTITIA_ENTROPY_GRAM_COUNTER_H_
