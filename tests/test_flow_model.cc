// Tests for the trained flow-nature model bundle (extraction + backend +
// serialization).
#include "core/flow_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/model_bundle.h"
#include "core/trainer.h"
#include "datagen/corpus.h"
#include "ml/serialize.h"

namespace iustitia::core {
namespace {

using datagen::CorpusOptions;
using datagen::FileClass;

std::vector<datagen::FileSample> tiny_corpus() {
  CorpusOptions options;
  options.files_per_class = 20;
  options.min_size = 2048;
  options.max_size = 4096;
  options.seed = 31;
  return datagen::build_corpus(options);
}

TrainerOptions cart_options() {
  TrainerOptions options;
  options.backend = Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = 256;
  return options;
}

TEST(BackendName, BothBackends) {
  EXPECT_STREQ(backend_name(Backend::kCart), "CART");
  EXPECT_STREQ(backend_name(Backend::kSvm), "SVM-RBF");
}

TEST(FlowNatureModel, CartClassifiesTrainingDistribution) {
  const auto corpus = tiny_corpus();
  FlowNatureModel model = train_model(corpus, cart_options());

  std::size_t correct = 0;
  for (const auto& file : corpus) {
    const std::span<const std::uint8_t> prefix(
        file.bytes.data(), std::min<std::size_t>(256, file.bytes.size()));
    const Classification result = model.classify(prefix);
    correct += (result.label == file.label);
    EXPECT_EQ(result.features.size(), model.widths().size());
    EXPECT_GE(result.extract_micros, 0.0);
    EXPECT_GT(result.space_bytes, 0u);
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(corpus.size()),
            0.8);
}

TEST(FlowNatureModel, SvmClassifiesTrainingDistribution) {
  const auto corpus = tiny_corpus();
  TrainerOptions options;
  options.backend = Backend::kSvm;
  options.widths = entropy::svm_preferred_widths();
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = 256;
  options.svm.gamma = 10.0;
  options.svm.c = 100.0;
  FlowNatureModel model = train_model(corpus, options);

  std::size_t correct = 0;
  for (const auto& file : corpus) {
    const std::span<const std::uint8_t> prefix(
        file.bytes.data(), std::min<std::size_t>(256, file.bytes.size()));
    correct += (model.classify(prefix).label == file.label);
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(corpus.size()),
            0.8);
}

TEST(FlowNatureModel, ClassifyFeaturesAgreesWithClassify) {
  const auto corpus = tiny_corpus();
  FlowNatureModel model = train_model(corpus, cart_options());
  const std::span<const std::uint8_t> prefix(corpus[0].bytes.data(), 256);
  const Classification full = model.classify(prefix);
  EXPECT_EQ(model.classify_features(full.features), full.label);
}

TEST(FlowNatureModel, ModelSpaceBytesPositive) {
  const auto corpus = tiny_corpus();
  EXPECT_GT(train_model(corpus, cart_options()).model_space_bytes(), 0u);
}

TEST(FlowNatureModel, SaveLoadRoundTripCart) {
  const auto corpus = tiny_corpus();
  FlowNatureModel model = train_model(corpus, cart_options());
  std::stringstream ss;
  model.save(ss);
  FlowNatureModel loaded = FlowNatureModel::load(ss);
  EXPECT_EQ(loaded.backend(), Backend::kCart);
  ASSERT_EQ(std::vector<int>(loaded.widths().begin(), loaded.widths().end()),
            std::vector<int>(model.widths().begin(), model.widths().end()));
  for (const auto& file : corpus) {
    const std::span<const std::uint8_t> prefix(file.bytes.data(), 256);
    ASSERT_EQ(loaded.classify(prefix).label, model.classify(prefix).label);
  }
}

TEST(FlowNatureModel, SaveLoadRoundTripSvm) {
  const auto corpus = tiny_corpus();
  TrainerOptions options;
  options.backend = Backend::kSvm;
  options.widths = entropy::svm_preferred_widths();
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = 128;
  options.svm.gamma = 10.0;
  options.svm.c = 100.0;
  FlowNatureModel model = train_model(corpus, options);
  std::stringstream ss;
  model.save(ss);
  FlowNatureModel loaded = FlowNatureModel::load(ss);
  EXPECT_EQ(loaded.backend(), Backend::kSvm);
  for (const auto& file : corpus) {
    const std::span<const std::uint8_t> prefix(file.bytes.data(), 128);
    ASSERT_EQ(loaded.classify(prefix).label, model.classify(prefix).label);
  }
}

TEST(FlowNatureModel, LoadRejectsGarbage) {
  std::stringstream ss("not-a-flow-model");
  EXPECT_THROW(FlowNatureModel::load(ss), std::runtime_error);
}

TEST(FlowNatureModel, TrainingBufferSizePersisted) {
  const auto corpus = tiny_corpus();
  TrainerOptions options = cart_options();
  options.buffer_size = 96;
  FlowNatureModel model = train_model(corpus, options);
  EXPECT_EQ(model.training_buffer_size(), 96u);
  std::stringstream ss;
  model.save(ss);
  EXPECT_EQ(FlowNatureModel::load(ss).training_buffer_size(), 96u);

  // Whole-file training records 0 ("no fixed buffer").
  options.method = TrainingMethod::kWholeFile;
  EXPECT_EQ(train_model(corpus, options).training_buffer_size(), 0u);
}

TEST(ModelBundle, SaveLoadRoundTripKeepsPredictions) {
  const auto corpus = tiny_corpus();
  FlowNatureModel model = train_model(corpus, cart_options());
  std::stringstream ss;
  save_model_bundle(model, "v3 backend=CART b=256", ss);
  LoadedModelBundle loaded = load_model_bundle(ss);
  EXPECT_EQ(loaded.metadata, "v3 backend=CART b=256");
  EXPECT_EQ(loaded.format_version, ml::kBundleFormatVersion);
  for (const auto& file : corpus) {
    const std::span<const std::uint8_t> prefix(file.bytes.data(), 256);
    ASSERT_EQ(loaded.model.classify(prefix).label,
              model.classify(prefix).label);
  }
}

TEST(ModelBundle, LoadModelAnyAcceptsBothArtifactFormats) {
  const auto corpus = tiny_corpus();
  FlowNatureModel model = train_model(corpus, cart_options());
  const std::span<const std::uint8_t> prefix(corpus[0].bytes.data(), 256);
  const datagen::FileClass expected = model.classify(prefix).label;

  std::stringstream bare;
  model.save(bare);
  std::string metadata = "sentinel";
  FlowNatureModel from_bare = load_model_any(bare, &metadata);
  EXPECT_EQ(metadata, "");  // bare artifact: no metadata to report
  EXPECT_EQ(from_bare.classify(prefix).label, expected);

  std::stringstream bundled;
  save_model_bundle(model, "v9 retrained", bundled);
  FlowNatureModel from_bundle = load_model_any(bundled, &metadata);
  EXPECT_EQ(metadata, "v9 retrained");
  EXPECT_EQ(from_bundle.classify(prefix).label, expected);
}

TEST(ModelBundle, CorruptBundleNeverYieldsAModel) {
  const auto corpus = tiny_corpus();
  FlowNatureModel model = train_model(corpus, cart_options());
  std::stringstream ss;
  save_model_bundle(model, "v1", ss);
  std::string bytes = ss.str();
  bytes[bytes.size() / 2] ^= 0x01;
  std::stringstream corrupt(bytes);
  EXPECT_THROW(load_model_bundle(corrupt), std::runtime_error);
  std::stringstream corrupt_any(bytes);
  EXPECT_THROW(load_model_any(corrupt_any), std::runtime_error);
}

TEST(ModelBundle, VersionOfTakesFirstToken) {
  EXPECT_EQ(model_version_of("v7 trained=today"), "v7");
  EXPECT_EQ(model_version_of("  padded-v2  "), "padded-v2");
  EXPECT_EQ(model_version_of(""), "unversioned");
  EXPECT_EQ(model_version_of("   "), "unversioned");
}

TEST(FlowNatureModel, EstimationFlagPreservedThroughSaveLoad) {
  const auto corpus = tiny_corpus();
  TrainerOptions options = cart_options();
  options.buffer_size = 1024;
  options.use_estimation = true;
  options.estimator = {.epsilon = 0.5, .delta = 0.5};
  FlowNatureModel model = train_model(corpus, options);
  EXPECT_TRUE(model.uses_estimation());
  std::stringstream ss;
  model.save(ss);
  EXPECT_TRUE(FlowNatureModel::load(ss).uses_estimation());
}

}  // namespace
}  // namespace iustitia::core
