// Synthetic IDS signature sets, grouped by the flow nature they apply to.
//
// The paper's IDS/IPS use case routes binary-related signatures to binary
// flows and text-related signatures to text flows (Section 1.1).  These
// generators produce realistic signature pools — text signatures are
// keyword/URI-style strings, binary signatures are short opcode/shellcode
// byte motifs — so the prefilter examples and benches measure real
// Aho-Corasick work.
#ifndef IUSTITIA_DPI_SIGNATURE_SET_H_
#define IUSTITIA_DPI_SIGNATURE_SET_H_

#include <memory>
#include <string>
#include <vector>

#include "dpi/aho_corasick.h"
#include "util/random.h"

namespace iustitia::dpi {

// Generates `count` text-flow signatures (script/SQL/URI-ish strings).
std::vector<std::string> generate_text_signatures(std::size_t count,
                                                  util::Rng& rng);

// Generates `count` binary-flow signatures (4-12 byte binary motifs).
std::vector<std::string> generate_binary_signatures(std::size_t count,
                                                    util::Rng& rng);

// Signature engine with per-nature rule sets compiled to Aho-Corasick
// automata.
class SignatureEngine {
 public:
  SignatureEngine(std::vector<std::string> text_rules,
                  std::vector<std::string> binary_rules);

  // Convenience: generated rule sets of the given sizes.
  static SignatureEngine generate(std::size_t text_rules,
                                  std::size_t binary_rules, util::Rng& rng);

  const AhoCorasick& text_matcher() const noexcept { return text_; }
  const AhoCorasick& binary_matcher() const noexcept { return binary_; }
  const AhoCorasick& combined_matcher() const noexcept { return combined_; }

  std::size_t text_rule_count() const noexcept {
    return text_.pattern_count();
  }
  std::size_t binary_rule_count() const noexcept {
    return binary_.pattern_count();
  }

 private:
  AhoCorasick text_;
  AhoCorasick binary_;
  AhoCorasick combined_;  // baseline: every rule on every flow
};

}  // namespace iustitia::dpi

#endif  // IUSTITIA_DPI_SIGNATURE_SET_H_
