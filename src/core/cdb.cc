#include "core/cdb.h"

namespace iustitia::core {

ClassificationDatabase::ClassificationDatabase(const CdbOptions& options)
    : options_(options) {}

std::optional<datagen::FileClass> ClassificationDatabase::lookup(
    const net::FlowId& id, double now) {
  ++stats_.lookups;
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  ++stats_.hits;
  Record& record = it->second;
  record.lambda = now - record.last_arrival;
  record.has_lambda = true;
  record.last_arrival = now;
  return record.label;
}

std::optional<datagen::FileClass> ClassificationDatabase::peek(
    const net::FlowId& id) const {
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second.label;
}

void ClassificationDatabase::insert(const net::FlowId& id,
                                    datagen::FileClass label, double now) {
  Record record;
  record.label = label;
  record.last_arrival = now;
  record.created_at = now;
  record.lambda = options_.default_lambda;
  record.has_lambda = false;
  records_[id] = record;
  ++stats_.inserts;
  ++inserts_since_purge_;
}

void ClassificationDatabase::remove_on_close(const net::FlowId& id) {
  if (!options_.fin_rst_removal_enabled) return;
  if (records_.erase(id) > 0) ++stats_.fin_rst_removals;
}

void ClassificationDatabase::maybe_purge(double now) {
  if (!options_.inactivity_purge_enabled) return;
  if (inserts_since_purge_ < options_.purge_trigger_flows) return;
  purge(now);
  inserts_since_purge_ = 0;
}

std::size_t ClassificationDatabase::purge(double now) {
  if (!options_.inactivity_purge_enabled) return 0;
  ++stats_.purge_runs;
  std::size_t inactive = 0;
  std::size_t stale = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    const Record& record = it->second;
    const double lambda =
        record.has_lambda ? record.lambda : options_.default_lambda;
    if (now - record.last_arrival >
        options_.inactivity_coefficient * lambda) {
      it = records_.erase(it);
      ++inactive;
    } else if (options_.reclassify_after_seconds > 0.0 &&
               now - record.created_at > options_.reclassify_after_seconds) {
      // Section 4.6: force periodic reclassification of long-lived flows.
      it = records_.erase(it);
      ++stale;
    } else {
      ++it;
    }
  }
  stats_.inactivity_removals += inactive;
  stats_.reclassification_removals += stale;
  return inactive + stale;
}

}  // namespace iustitia::core
