file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_feature_selection.dir/bench_table2_feature_selection.cc.o"
  "CMakeFiles/bench_table2_feature_selection.dir/bench_table2_feature_selection.cc.o.d"
  "bench_table2_feature_selection"
  "bench_table2_feature_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_feature_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
