// Tests for ml/scaler.h.
#include "ml/scaler.h"

#include <vector>

#include <gtest/gtest.h>

namespace iustitia::ml {
namespace {

Dataset two_feature_data() {
  Dataset data(2);
  data.add({0.0, 10.0}, 0);
  data.add({5.0, 20.0}, 1);
  data.add({10.0, 30.0}, 0);
  return data;
}

TEST(MinMaxScaler, MapsTrainingRangeToUnitInterval) {
  MinMaxScaler scaler;
  scaler.fit(two_feature_data());
  EXPECT_EQ(scaler.transform(std::vector<double>{0.0, 10.0}),
            (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(scaler.transform(std::vector<double>{10.0, 30.0}),
            (std::vector<double>{1.0, 1.0}));
  EXPECT_EQ(scaler.transform(std::vector<double>{5.0, 20.0}),
            (std::vector<double>{0.5, 0.5}));
}

TEST(MinMaxScaler, ExtrapolatesOutsideTrainingRange) {
  MinMaxScaler scaler;
  scaler.fit(two_feature_data());
  const auto out = scaler.transform(std::vector<double>{20.0, 0.0});
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], -0.5);
}

TEST(MinMaxScaler, ConstantFeatureMapsToZero) {
  Dataset data(1);
  data.add({7.0, 1.0}, 0);
  data.add({7.0, 2.0}, 0);
  MinMaxScaler scaler;
  scaler.fit(data);
  const auto out = scaler.transform(std::vector<double>{7.0, 1.5});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
}

TEST(MinMaxScaler, UnfittedIsIdentity) {
  const MinMaxScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  EXPECT_EQ(scaler.transform(std::vector<double>{3.0, 4.0}),
            (std::vector<double>{3.0, 4.0}));
}

TEST(MinMaxScaler, DimensionMismatchThrows) {
  MinMaxScaler scaler;
  scaler.fit(two_feature_data());
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(MinMaxScaler, TransformDatasetKeepsLabels) {
  MinMaxScaler scaler;
  const Dataset data = two_feature_data();
  scaler.fit(data);
  const Dataset scaled = scaler.transform(data);
  ASSERT_EQ(scaled.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(scaled[i].label, data[i].label);
  }
}

TEST(MinMaxScaler, RestoreRoundTrip) {
  MinMaxScaler scaler;
  scaler.fit(two_feature_data());
  MinMaxScaler restored;
  restored.restore(
      std::vector<double>(scaler.mins().begin(), scaler.mins().end()),
      std::vector<double>(scaler.maxs().begin(), scaler.maxs().end()));
  EXPECT_EQ(restored.transform(std::vector<double>{5.0, 20.0}),
            scaler.transform(std::vector<double>{5.0, 20.0}));
  EXPECT_THROW(restored.restore({1.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace iustitia::ml
