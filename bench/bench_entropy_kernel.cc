// Microbenchmark: legacy per-width extraction (one GramCounter pass per
// width, std::unordered_map, libm logs) vs the fused single-pass kernel
// (rolling key, FlatCounts, n*ln n LUT) behind compute_entropy_vector.
//
// For each feature set and buffer size it reports bytes/sec for both
// paths, the speedup, and the counter-space accounting, and verifies the
// two paths agree to <= 1e-9 on every feature.  Results are also written
// as machine-readable JSON (argv[1], default BENCH_entropy_kernel.json)
// so the bench trajectory accumulates across commits; tools/ci.sh runs
// this binary in reduced form and gates it against
// bench/baselines/entropy_kernel.json via tools/perf_check.py.
//
// Knobs: IUSTITIA_KERNEL_MIN_MS  minimum measured ms per timing loop
//                                (default 300; CI smoke uses 60).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "entropy/entropy_vector.h"
#include "util/random.h"
#include "util/timer.h"

namespace iustitia::bench {
namespace {

struct KernelRow {
  std::string width_set;
  std::size_t buffer_bytes = 0;
  double legacy_bps = 0.0;
  double fused_bps = 0.0;
  double speedup = 0.0;
  std::size_t legacy_space = 0;
  std::size_t fused_space = 0;
  std::size_t fused_resident = 0;
  double max_delta = 0.0;
};

std::vector<std::uint8_t> sample_buffer(std::size_t size) {
  // Mid-entropy payload, same class the Fig. 5 bench times.
  util::Rng rng(0xF16);
  const datagen::FileSample file = datagen::generate_file(
      datagen::FileClass::kBinary, std::max<std::size_t>(size, 64), rng);
  return {file.bytes.begin(),
          file.bytes.begin() + static_cast<std::ptrdiff_t>(size)};
}

// Runs `fn` until at least `min_ms` of wall time is measured and returns
// the byte throughput.  `sink` accumulates a feature checksum so the
// compiler cannot elide the extraction.
template <typename Fn>
double measure_bps(std::size_t bytes_per_iter, double min_ms, Fn&& fn,
                   double& sink) {
  sink += fn();  // warm-up (also grows the fused tables to steady state)
  std::size_t iters = 1;
  for (;;) {
    const util::Stopwatch timer;
    for (std::size_t i = 0; i < iters; ++i) sink += fn();
    const double ms = timer.elapsed_millis();
    if (ms >= min_ms) {
      return static_cast<double>(bytes_per_iter) *
             static_cast<double>(iters) / (ms / 1e3);
    }
    iters = ms < 0.01
                ? iters * 8
                : static_cast<std::size_t>(
                      static_cast<double>(iters) * min_ms * 1.25 / ms) +
                      1;
  }
}

KernelRow run_config(const std::string& name, const std::vector<int>& widths,
                     std::size_t buffer_bytes, double min_ms, double& sink) {
  const auto data = sample_buffer(buffer_bytes);

  const auto legacy = entropy::compute_entropy_vector_legacy(data, widths);
  const auto fused = entropy::compute_entropy_vector(data, widths);
  KernelRow row;
  row.width_set = name;
  row.buffer_bytes = buffer_bytes;
  row.legacy_space = legacy.space_bytes;
  row.fused_space = fused.space_bytes;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    row.max_delta =
        std::max(row.max_delta, std::abs(legacy.h[i] - fused.h[i]));
  }
  {
    // Resident size of a dedicated steady-state kernel for this config.
    entropy::FusedEntropyKernel kernel(widths);
    kernel.add(data);
    row.fused_resident = kernel.resident_bytes();
  }

  row.legacy_bps = measure_bps(
      data.size(), min_ms,
      [&] {
        return entropy::compute_entropy_vector_legacy(data, widths).h[0];
      },
      sink);
  row.fused_bps = measure_bps(
      data.size(), min_ms,
      [&] { return entropy::compute_entropy_vector(data, widths).h[0]; },
      sink);
  row.speedup = row.fused_bps / row.legacy_bps;
  return row;
}

void write_json(const std::string& path, const std::vector<KernelRow>& rows,
                double min_ms) {
  std::ofstream out(path);
  out << std::setprecision(12);
  out << "{\n  \"bench\": \"entropy_kernel\",\n  \"min_ms\": " << min_ms
      << ",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const KernelRow& r = rows[i];
    out << "    {\"width_set\": \"" << r.width_set
        << "\", \"buffer_bytes\": " << r.buffer_bytes
        << ", \"legacy_bytes_per_sec\": " << r.legacy_bps
        << ", \"fused_bytes_per_sec\": " << r.fused_bps
        << ", \"speedup\": " << r.speedup
        << ", \"legacy_space_bytes\": " << r.legacy_space
        << ", \"fused_space_bytes\": " << r.fused_space
        << ", \"fused_resident_bytes\": " << r.fused_resident
        << ", \"max_feature_delta\": " << r.max_delta << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run(int argc, char** argv) {
  banner("Entropy-kernel microbenchmark: legacy per-width vs fused",
         "context: the paper computes h_1..h_10 at line rate; this "
         "measures the extraction inner loop both ways");

  const double min_ms =
      static_cast<double>(env_size("IUSTITIA_KERNEL_MIN_MS", 300));
  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_entropy_kernel.json";

  const std::vector<std::pair<std::string, std::vector<int>>> sets = {
      {"full", entropy::full_feature_widths()},
      {"svm_preferred", entropy::svm_preferred_widths()},
      {"cart_preferred", entropy::cart_preferred_widths()},
  };
  const std::vector<std::size_t> buffers = {1024, 16384};

  double sink = 0.0;
  std::vector<KernelRow> rows;
  for (const auto& [name, widths] : sets) {
    for (const std::size_t buffer : buffers) {
      rows.push_back(run_config(name, widths, buffer, min_ms, sink));
    }
  }

  util::Table table({"width set", "buffer", "legacy MB/s", "fused MB/s",
                     "speedup", "fused space", "max |dh|"});
  bool equal = true;
  for (const KernelRow& r : rows) {
    equal = equal && r.max_delta <= 1e-9;
    table.add_row({r.width_set, std::to_string(r.buffer_bytes),
                   util::fmt(r.legacy_bps / 1e6, 1),
                   util::fmt(r.fused_bps / 1e6, 1),
                   util::fmt(r.speedup, 2) + "x",
                   util::fmt_bytes(static_cast<double>(r.fused_space)),
                   util::fmt(r.max_delta, 2)});
  }
  table.render(std::cout);
  std::cout << "(sink " << sink << ")\n";

  write_json(json_path, rows, min_ms);
  std::cout << "\nwrote " << json_path << "\n";
  if (!equal) {
    std::cerr << "FAIL: fused features differ from legacy by > 1e-9\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main(int argc, char** argv) { return iustitia::bench::run(argc, argv); }
