// Tests for the per-nature output queues (Fig. 1's LQ blocks).
#include "core/output_queues.h"

#include <optional>
#include <span>
#include <vector>

#include <gtest/gtest.h>

namespace iustitia::core {
namespace {

using datagen::FileClass;

net::Packet packet_of(std::uint16_t port) {
  net::Packet p;
  p.key.src_port = port;
  p.payload = {1, 2, 3};
  return p;
}

TEST(OutputQueues, FifoPerClass) {
  OutputQueues queues;
  queues.enqueue(FileClass::kText, packet_of(1));
  queues.enqueue(FileClass::kText, packet_of(2));
  queues.enqueue(FileClass::kBinary, packet_of(3));

  EXPECT_EQ(queues.depth(FileClass::kText), 2u);
  EXPECT_EQ(queues.depth(FileClass::kBinary), 1u);
  EXPECT_EQ(queues.depth(FileClass::kEncrypted), 0u);

  const auto first = queues.dequeue(FileClass::kText);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->packet.key.src_port, 1);
  EXPECT_EQ(first->label, FileClass::kText);
  const auto second = queues.dequeue(FileClass::kText);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->packet.key.src_port, 2);
  EXPECT_EQ(queues.dequeue(FileClass::kText), std::nullopt);
}

TEST(OutputQueues, CapacityDrops) {
  OutputQueues queues(2);
  EXPECT_TRUE(queues.enqueue(FileClass::kBinary, packet_of(1)));
  EXPECT_TRUE(queues.enqueue(FileClass::kBinary, packet_of(2)));
  EXPECT_FALSE(queues.enqueue(FileClass::kBinary, packet_of(3)));
  EXPECT_EQ(queues.depth(FileClass::kBinary), 2u);
  EXPECT_EQ(queues.dropped(FileClass::kBinary), 1u);
  EXPECT_EQ(queues.enqueued(FileClass::kBinary), 2u);
  // Other classes unaffected by one class's pressure.
  EXPECT_TRUE(queues.enqueue(FileClass::kText, packet_of(4)));
}

// The batched handoff out of a shard worker: one lock for the span,
// accepted packets moved out, refused packets left intact for the caller
// to retire outside the lock.
TEST(OutputQueues, EnqueueBurstAcceptsUpToCapacityAndLeavesTheRestIntact) {
  OutputQueues queues(2);
  std::vector<QueuedPacket> batch;
  for (std::uint16_t i = 1; i <= 4; ++i) {
    batch.push_back(QueuedPacket{packet_of(i), FileClass::kBinary});
  }
  ASSERT_EQ(queues.enqueue_burst(std::span<QueuedPacket>(batch)), 2u);

  // Accepted packets were moved out of the batch; refused ones keep
  // their payloads so the caller can account for and retire them.
  EXPECT_TRUE(batch[0].packet.payload.empty());
  EXPECT_TRUE(batch[1].packet.payload.empty());
  EXPECT_EQ(batch[2].packet.payload.size(), 3u);
  EXPECT_EQ(batch[3].packet.payload.size(), 3u);

  EXPECT_EQ(queues.depth(FileClass::kBinary), 2u);
  EXPECT_EQ(queues.enqueued(FileClass::kBinary), 2u);
  EXPECT_EQ(queues.dropped(FileClass::kBinary), 2u);

  // FIFO within the accepted prefix.
  const auto first = queues.dequeue(FileClass::kBinary);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->packet.key.src_port, 1);
}

TEST(OutputQueues, EnqueueBurstSpansClassesAndEmptyBatchIsANoOp) {
  OutputQueues queues;
  EXPECT_EQ(queues.enqueue_burst(std::span<QueuedPacket>()), 0u);

  std::vector<QueuedPacket> batch;
  batch.push_back(QueuedPacket{packet_of(1), FileClass::kText});
  batch.push_back(QueuedPacket{packet_of(2), FileClass::kEncrypted});
  batch.push_back(QueuedPacket{packet_of(3), FileClass::kText});
  ASSERT_EQ(queues.enqueue_burst(std::span<QueuedPacket>(batch)), 3u);
  EXPECT_EQ(queues.depth(FileClass::kText), 2u);
  EXPECT_EQ(queues.depth(FileClass::kEncrypted), 1u);
  EXPECT_EQ(queues.high_water(FileClass::kText), 2u);
}

TEST(OutputQueues, UnboundedWhenCapacityZero) {
  OutputQueues queues(0);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(queues.enqueue(FileClass::kEncrypted, packet_of(
        static_cast<std::uint16_t>(i))));
  }
  EXPECT_EQ(queues.depth(FileClass::kEncrypted), 10000u);
  EXPECT_EQ(queues.dropped(FileClass::kEncrypted), 0u);
}

TEST(OutputQueues, PriorityDequeueOrder) {
  OutputQueues queues;
  queues.enqueue(FileClass::kText, packet_of(1));
  queues.enqueue(FileClass::kEncrypted, packet_of(2));

  // Bank scenario: encrypted first.
  const FileClass order[] = {FileClass::kEncrypted, FileClass::kBinary,
                             FileClass::kText};
  auto first = queues.dequeue_priority(order);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->label, FileClass::kEncrypted);
  auto second = queues.dequeue_priority(order);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->label, FileClass::kText);
  EXPECT_EQ(queues.dequeue_priority(order), std::nullopt);
}

TEST(OutputQueues, HighWaterTracksDeepestPointEver) {
  OutputQueues queues;
  EXPECT_EQ(queues.high_water(FileClass::kText), 0u);
  queues.enqueue(FileClass::kText, packet_of(1));
  queues.enqueue(FileClass::kText, packet_of(2));
  queues.enqueue(FileClass::kText, packet_of(3));
  EXPECT_EQ(queues.high_water(FileClass::kText), 3u);
  // Draining does not lower the mark — it records peak backpressure.
  (void)queues.dequeue(FileClass::kText);
  (void)queues.dequeue(FileClass::kText);
  EXPECT_EQ(queues.depth(FileClass::kText), 1u);
  EXPECT_EQ(queues.high_water(FileClass::kText), 3u);
  queues.enqueue(FileClass::kText, packet_of(4));
  EXPECT_EQ(queues.high_water(FileClass::kText), 3u) << "2 < peak of 3";
  // Other classes track independently.
  EXPECT_EQ(queues.high_water(FileClass::kEncrypted), 0u);
}

TEST(OutputQueues, DrainAllEmptiesEveryClassAndKeepsCounters) {
  OutputQueues queues;
  queues.enqueue(FileClass::kText, packet_of(1));
  queues.enqueue(FileClass::kBinary, packet_of(2));
  queues.enqueue(FileClass::kBinary, packet_of(3));
  queues.enqueue(FileClass::kEncrypted, packet_of(4));

  EXPECT_EQ(queues.drain_all(), 4u);
  for (const FileClass c :
       {FileClass::kText, FileClass::kBinary, FileClass::kEncrypted}) {
    EXPECT_EQ(queues.depth(c), 0u);
    EXPECT_EQ(queues.dequeue(c), std::nullopt);
  }
  // Lifetime counters and peaks survive the drain.
  EXPECT_EQ(queues.enqueued(FileClass::kBinary), 2u);
  EXPECT_EQ(queues.high_water(FileClass::kBinary), 2u);
  EXPECT_EQ(queues.drain_all(), 0u) << "second drain finds nothing";
}

TEST(OutputQueues, StatsSnapshotIsConsistentAcrossClasses) {
  OutputQueues queues(2);
  queues.enqueue(FileClass::kText, packet_of(1));
  queues.enqueue(FileClass::kBinary, packet_of(2));
  queues.enqueue(FileClass::kBinary, packet_of(3));
  queues.enqueue(FileClass::kBinary, packet_of(4));  // dropped (cap 2)
  (void)queues.dequeue(FileClass::kBinary);

  const OutputQueueStats stats = queues.stats();
  const auto text = static_cast<std::size_t>(FileClass::kText);
  const auto binary = static_cast<std::size_t>(FileClass::kBinary);
  const auto encrypted = static_cast<std::size_t>(FileClass::kEncrypted);
  EXPECT_EQ(stats.enqueued[text], 1u);
  EXPECT_EQ(stats.enqueued[binary], 2u);
  EXPECT_EQ(stats.enqueued[encrypted], 0u);
  EXPECT_EQ(stats.dropped[binary], 1u);
  EXPECT_EQ(stats.depth[binary], 1u);
  EXPECT_EQ(stats.high_water[binary], 2u);
  EXPECT_EQ(stats.depth[text], 1u);
  EXPECT_EQ(stats.high_water[encrypted], 0u);
}

}  // namespace
}  // namespace iustitia::core
