# Empty compiler generated dependencies file for tunnel_gateway.
# This may be replaced when dependencies are built.
