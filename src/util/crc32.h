// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
//
// Used to seal model bundle artifacts (ml/serialize.h): the trainer
// writes the checksum into the bundle trailer and every loader verifies
// it before any parsed value reaches a worker, so a corrupt or truncated
// upload is rejected at the control plane instead of misclassifying
// traffic.  This is the ubiquitous zlib/PNG/Ethernet CRC, so artifacts
// can be checked with standard tools (`python3 -c "import zlib, ..."`).
#ifndef IUSTITIA_UTIL_CRC32_H_
#define IUSTITIA_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace iustitia::util {

// One-shot CRC-32 of a byte span.
std::uint32_t crc32(const void* data, std::size_t size) noexcept;

inline std::uint32_t crc32(std::string_view bytes) noexcept {
  return crc32(bytes.data(), bytes.size());
}

// Incremental form: start from kCrc32Init, fold chunks with
// crc32_update, finish with crc32_final.
inline constexpr std::uint32_t kCrc32Init = 0xFFFFFFFFu;
std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size) noexcept;
inline std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_CRC32_H_
