// Tests for the IUSTITIA_RT_DEBUG runtime real-time verifier
// (util/rt_guard.{h,cc} + the hooks in util::Mutex and the counting
// operator new below).  Compiled only under the rt-debug preset — see
// tests/CMakeLists.txt.
//
// The FATAL paths are exercised as death tests: an unallowed heap or
// blocking call inside a GuardRegion must abort the child with the
// rt_guard banner, and the same call under a matching AllowScope must
// not.  This is the dynamic half of the seeded-violation fixture; the
// static half lives in tests/tooling (hotpath pass).

#include "util/rt_guard.h"

#include <cstddef>

#include <gtest/gtest.h>

#include "tests/alloc_hook.h"
#include "util/thread_annotations.h"

namespace iustitia::util {
namespace {

TEST(RtDebugDeathTest, AllocationInGuardFatals) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        rt::GuardRegion guard;
        // NOLINTNEXTLINE(no-owning-new): raw new drives the guard hook
        int* p = new int(1);  // no AllowScope: FATAL before the delete
        delete p;
      },
      "rt_guard: FATAL: heap allocation");
}

TEST(RtDebugDeathTest, MutexLockInGuardFatals) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex mu{"RtDbg::mu_"};
        rt::GuardRegion guard;
        MutexLock lock(mu);  // uncontended, but the acquire itself FATALs
      },
      "rt_guard: FATAL: blocking call \\(RtDbg::mu_\\)");
}

TEST(RtDebug, AllowScopeSuppressesTheFatal) {
  rt::reset_violation_count();
  {
    rt::GuardRegion guard;
    rt::AllowScope allow(rt::kAlloc | rt::kBlock);
    int* p = new int(2);  // NOLINT(no-owning-new) drives the hook
    delete p;
    Mutex mu{"RtDbgAllowed::mu_"};
    MutexLock lock(mu);
  }
  EXPECT_EQ(rt::violation_count(), 0u);
}

TEST(RtDebug, NestedAllowScopeRestoresOuterMask) {
  rt::reset_violation_count();
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  rt::GuardRegion guard;
  rt::AllowScope outer(rt::kAlloc);
  {
    rt::AllowScope inner(rt::kBlock);
    // NOLINTNEXTLINE(no-owning-new): raw new drives the guard hook
    int* p = new int(3);  // kAlloc still allowed: masks accumulate
    delete p;
  }
  // Inner scope gone: blocking is forbidden again, allocation still fine.
  int* q = new int(4);  // NOLINT(no-owning-new) drives the hook
  delete q;
  EXPECT_DEATH(
      {
        Mutex mu{"RtDbgNested::mu_"};
        MutexLock lock(mu);
      },
      "rt_guard: FATAL: blocking call");
}

TEST(RtDebug, OutsideGuardNothingIsChecked) {
  rt::reset_violation_count();
  EXPECT_FALSE(rt::in_guard());
  const std::size_t allocs_before = testhooks::alloc_calls();
  int* p = new int(5);  // NOLINT(no-owning-new) drives the hook
  delete p;
  // The counting hook saw the allocation, yet no guard was active, so it
  // never became a violation.
  EXPECT_GT(testhooks::alloc_calls(), allocs_before);
  Mutex mu{"RtDbgFree::mu_"};
  { MutexLock lock(mu); }
  EXPECT_EQ(rt::violation_count(), 0u);
}

}  // namespace
}  // namespace iustitia::util
