file(REMOVE_RECURSE
  "CMakeFiles/iustitia_ml.dir/cart.cc.o"
  "CMakeFiles/iustitia_ml.dir/cart.cc.o.d"
  "CMakeFiles/iustitia_ml.dir/cross_validation.cc.o"
  "CMakeFiles/iustitia_ml.dir/cross_validation.cc.o.d"
  "CMakeFiles/iustitia_ml.dir/dataset.cc.o"
  "CMakeFiles/iustitia_ml.dir/dataset.cc.o.d"
  "CMakeFiles/iustitia_ml.dir/feature_selection.cc.o"
  "CMakeFiles/iustitia_ml.dir/feature_selection.cc.o.d"
  "CMakeFiles/iustitia_ml.dir/metrics.cc.o"
  "CMakeFiles/iustitia_ml.dir/metrics.cc.o.d"
  "CMakeFiles/iustitia_ml.dir/model_selection.cc.o"
  "CMakeFiles/iustitia_ml.dir/model_selection.cc.o.d"
  "CMakeFiles/iustitia_ml.dir/scaler.cc.o"
  "CMakeFiles/iustitia_ml.dir/scaler.cc.o.d"
  "CMakeFiles/iustitia_ml.dir/serialize.cc.o"
  "CMakeFiles/iustitia_ml.dir/serialize.cc.o.d"
  "CMakeFiles/iustitia_ml.dir/svm.cc.o"
  "CMakeFiles/iustitia_ml.dir/svm.cc.o.d"
  "libiustitia_ml.a"
  "libiustitia_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
