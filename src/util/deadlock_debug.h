// Runtime lock-order validator behind the IUSTITIA_DEADLOCK_DEBUG build
// option (CMake preset `deadlock-debug`).
//
// util::Mutex calls these hooks around every acquisition.  Each thread
// keeps a stack of the locks it holds; a global registry accumulates the
// directed edges "held A, then acquired B" keyed by the *names* given at
// Mutex construction (`util::Mutex mu{"Class::member"};`).  The name
// convention matches the node identities of the static lock-order graph
// emitted by `tools/analyze --lock-graph-out`, so an observed graph can
// be checked as a subgraph of the static one (tools/check_lock_graph.py,
// wired into tools/ci.sh stage `deadlock-debug`).
//
// Violations FATAL immediately, *before* blocking on the lock, so a true
// deadlock becomes a crash with both acquisition orders named instead of
// a hang:
//  - acquiring a mutex this thread already holds (recursive acquisition);
//  - acquiring named lock B while holding named lock A when some thread
//    has already been seen acquiring A while holding B.
// Edges between two locks carrying the same name (two shards' `Shard::mu`)
// are ignored: instance-level hand-over-hand within a class is ordered by
// the caller, not by this class-level graph.
#ifndef IUSTITIA_UTIL_DEADLOCK_DEBUG_H_
#define IUSTITIA_UTIL_DEADLOCK_DEBUG_H_

#include <string>

namespace iustitia::util::deadlock {

// Pre-acquisition check + edge recording; FATALs on an order inversion
// or recursive acquisition.  `name` may be null (unnamed mutex): the
// held stack still tracks it, but it contributes no named edges.
void on_acquire(const void* mu, const char* name);

// Post-acquisition recording for a successful try_lock(): cannot
// deadlock, so edges are recorded without the inversion FATAL.
void on_acquired_try(const void* mu, const char* name);

// Pops the mutex from the calling thread's held stack.
void on_release(const void* mu);

// Writes the accumulated edge set as JSON {"format":1,"edges":[...]} —
// the shape tools/check_lock_graph.py consumes.  Called by tests, and at
// process exit for every directory named in $IUSTITIA_LOCK_GRAPH_OUT
// (file lock_graph.<pid>.json inside it).
void write_graph(const std::string& path);

// Testing hook: number of locks the calling thread currently holds.
std::size_t held_depth();

}  // namespace iustitia::util::deadlock

#endif  // IUSTITIA_UTIL_DEADLOCK_DEBUG_H_
