// End-to-end integration tests: corpus -> offline training -> synthetic
// gateway trace -> online engine -> accuracy against ground truth; plus the
// pcap round-trip variant of the same pipeline.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "appproto/trace_headers.h"
#include "core/engine.h"
#include "core/trainer.h"
#include "net/flow_table.h"
#include "net/pcap.h"
#include "net/trace_gen.h"

namespace iustitia::core {
namespace {

using datagen::FileClass;

FlowNatureModel trained_model(std::size_t buffer_size, Backend backend) {
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 40;
  corpus_options.min_size = 2048;
  corpus_options.max_size = 8192;
  corpus_options.seed = 2024;
  const auto corpus = datagen::build_corpus(corpus_options);

  TrainerOptions options;
  options.backend = backend;
  options.widths = backend == Backend::kCart
                       ? entropy::cart_preferred_widths()
                       : entropy::svm_preferred_widths();
  options.method = TrainingMethod::kFirstBytes;
  options.buffer_size = buffer_size;
  options.svm.gamma = 10.0;
  options.svm.c = 100.0;
  return train_model(corpus, options);
}

net::Trace small_trace() {
  net::TraceOptions options;
  options.target_packets = 20000;
  options.app_header_fraction = 0.0;  // no headers in the baseline test
  options.seed = 77;
  return generate_trace(options);
}

// Runs a trace through an engine and returns (accuracy, classified count)
// against the generator's ground truth.
std::pair<double, std::size_t> run_and_score(Iustitia& engine,
                                             const net::Trace& trace) {
  for (const net::Packet& p : trace.packets) engine.on_packet(p);
  engine.flush_all();
  std::size_t correct = 0, total = 0;
  for (const FlowDelayRecord& record : engine.delays()) {
    const auto it = trace.truth.find(record.key);
    if (it == trace.truth.end()) continue;
    ++total;
    correct += (record.label == it->second.nature);
  }
  return {total > 0 ? static_cast<double>(correct) /
                          static_cast<double>(total)
                    : 0.0,
          total};
}

TEST(Integration, CartEngineBeatsChanceComfortablyOnLiveTrace) {
  EngineOptions engine_options;
  engine_options.buffer_size = 64;
  Iustitia engine(trained_model(64, Backend::kCart), engine_options);
  const net::Trace trace = small_trace();
  const auto [accuracy, classified] = run_and_score(engine, trace);
  EXPECT_GT(classified, 100u);
  // Paper reports ~86% on 32-byte buffers; synthetic corpus + partial
  // buffers make this noisier, so assert a conservative floor well above
  // the 33% chance level.
  EXPECT_GT(accuracy, 0.6);
}

TEST(Integration, EveryDataFlowGetsClassifiedEventually) {
  EngineOptions engine_options;
  engine_options.buffer_size = 64;
  Iustitia engine(trained_model(64, Backend::kCart), engine_options);
  const net::Trace trace = small_trace();
  for (const net::Packet& p : trace.packets) engine.on_packet(p);
  engine.flush_all();
  std::size_t data_flows = 0;
  net::FlowTable table;
  for (const net::Packet& p : trace.packets) table.add(p);
  for (const auto& [key, record] : table.flows()) {
    data_flows += (record.data_packets > 0);
  }
  EXPECT_EQ(engine.stats().flows_classified, data_flows);
}

TEST(Integration, ReloadedModelReproducesEngineBehaviour) {
  FlowNatureModel original = trained_model(64, Backend::kCart);
  std::stringstream ss;
  original.save(ss);
  FlowNatureModel reloaded = FlowNatureModel::load(ss);

  EngineOptions engine_options;
  engine_options.buffer_size = 64;
  Iustitia engine_a(std::move(original), engine_options);
  Iustitia engine_b(std::move(reloaded), engine_options);
  const net::Trace trace = small_trace();
  for (const net::Packet& p : trace.packets) {
    engine_a.on_packet(p);
    engine_b.on_packet(p);
  }
  engine_a.flush_all();
  engine_b.flush_all();
  ASSERT_EQ(engine_a.delays().size(), engine_b.delays().size());
  for (std::size_t i = 0; i < engine_a.delays().size(); ++i) {
    ASSERT_EQ(engine_a.delays()[i].label, engine_b.delays()[i].label);
  }
}

TEST(Integration, PcapRoundTripPreservesClassification) {
  const net::Trace trace = [] {
    net::TraceOptions options;
    options.target_packets = 5000;
    options.app_header_fraction = 0.0;
    options.seed = 78;
    return generate_trace(options);
  }();

  // Write the trace to pcap and read it back.
  std::stringstream pcap;
  net::PcapWriter writer(pcap);
  for (const net::Packet& p : trace.packets) writer.write(p);
  std::vector<net::Packet> replayed;
  net::PcapReader reader(pcap);
  while (auto p = reader.next()) replayed.push_back(std::move(*p));
  ASSERT_EQ(replayed.size(), trace.packets.size());

  EngineOptions engine_options;
  engine_options.buffer_size = 64;
  Iustitia engine_live(trained_model(64, Backend::kCart), engine_options);
  Iustitia engine_pcap(trained_model(64, Backend::kCart), engine_options);
  for (const net::Packet& p : trace.packets) engine_live.on_packet(p);
  for (const net::Packet& p : replayed) engine_pcap.on_packet(p);
  engine_live.flush_all();
  engine_pcap.flush_all();
  EXPECT_EQ(engine_live.stats().flows_classified,
            engine_pcap.stats().flows_classified);

  // Same labels per flow.
  for (const FlowDelayRecord& record : engine_live.delays()) {
    EXPECT_EQ(engine_pcap.label_of(record.key).has_value(),
              engine_live.label_of(record.key).has_value());
  }
}

TEST(Integration, HeaderStrippingImprovesAccuracyOnHeaderedTraffic) {
  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = 15000;
  trace_options.app_header_fraction = 0.8;  // headers nearly everywhere
  trace_options.seed = 79;
  const net::Trace trace = generate_trace(trace_options);

  EngineOptions with_strip;
  with_strip.buffer_size = 64;
  with_strip.strip_known_headers = true;
  EngineOptions without_strip = with_strip;
  without_strip.strip_known_headers = false;

  Iustitia engine_strip(trained_model(64, Backend::kCart), with_strip);
  Iustitia engine_raw(trained_model(64, Backend::kCart), without_strip);
  const auto [acc_strip, n1] = run_and_score(engine_strip, trace);
  const auto [acc_raw, n2] = run_and_score(engine_raw, trace);
  EXPECT_GT(n1, 50u);
  // Aggregate accuracy includes tiny flows that never transmit more than a
  // partial header (unclassifiable either way), so the aggregate margin is
  // modest but must favor stripping.
  EXPECT_GT(acc_strip, acc_raw + 0.02);

  // On flows that transmitted a full post-header window, stripping must
  // recover encrypted flows that the raw engine reads as text/binary.
  net::FlowTable table(4096);
  for (const net::Packet& p : trace.packets) table.add(p);
  auto subset_accuracy = [&](const Iustitia& engine) {
    std::size_t correct = 0, total = 0;
    for (const FlowDelayRecord& record : engine.delays()) {
      const auto truth_it = trace.truth.find(record.key);
      const auto flow_it = table.flows().find(record.key);
      if (truth_it == trace.truth.end() || flow_it == table.flows().end()) {
        continue;
      }
      const net::FlowTruth& truth = truth_it->second;
      if (truth.nature != datagen::FileClass::kEncrypted) continue;
      if (truth.app_protocol_id == 0) continue;
      if (flow_it->second.payload_bytes < truth.app_header_length + 64) {
        continue;  // never transmitted a full content window
      }
      ++total;
      correct += (record.label == truth.nature);
    }
    return total > 0 ? static_cast<double>(correct) /
                           static_cast<double>(total)
                     : 0.0;
  };
  EXPECT_GT(subset_accuracy(engine_strip), subset_accuracy(engine_raw) + 0.3);
}

}  // namespace
}  // namespace iustitia::core
