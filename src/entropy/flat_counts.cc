#include "entropy/flat_counts.h"

#include "util/rt_guard.h"

namespace iustitia::entropy {

namespace {
// Smallest table ever allocated; keeps the probe mask valid without a
// per-increment emptiness branch.
constexpr std::size_t kMinSlots = 16;

// Grow when size exceeds 11/16 (~0.69) of capacity: linear probing stays
// short, and the check compiles to shifts.
constexpr std::size_t load_limit(std::size_t capacity) noexcept {
  return capacity - (capacity >> 2) - (capacity >> 4);
}

constexpr std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = kMinSlots;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

FlatCounts::FlatCounts(std::size_t min_capacity) {
  // Size so `min_capacity` live entries stay under the load limit.
  std::size_t capacity = kMinSlots;
  while (load_limit(capacity) < min_capacity) capacity <<= 1;
  slots_.resize(round_up_pow2(capacity));
  mask_ = slots_.size() - 1;
  grow_at_ = load_limit(slots_.size());
}

void FlatCounts::reset() noexcept {
  size_ = 0;
  ++epoch_;
  if (epoch_ == 0) {  // epoch wrapped: stale tags could alias; hard-clear
    for (Slot& slot : slots_) slot.epoch = 0;
    epoch_ = 1;
  }
}

void FlatCounts::reserve(std::size_t min_capacity) {
  while (load_limit(slots_.size()) < min_capacity) grow();
}

void FlatCounts::grow() {
  // Rehash is the table's only steady-state heap traffic, and it stops
  // once the slot array reaches the working-set size (reset() keeps the
  // capacity) — the warm-up cost the streaming contract tolerates.
  util::rt::AllowScope allow(util::rt::kAlloc);  // analyze: hotpath-allow(may-allocate)
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  grow_at_ = load_limit(slots_.size());
  for (const Slot& slot : old) {
    if (slot.epoch != epoch_) continue;
    std::size_t idx = slot_hash(slot.lo, slot.hi) & mask_;
    while (slots_[idx].epoch == epoch_) idx = (idx + 1) & mask_;
    slots_[idx] = slot;
  }
}

std::size_t FlatCounts::resident_bytes() const noexcept {
  return slots_.size() * sizeof(Slot);
}

}  // namespace iustitia::entropy
