// Reproduces Figure 8: CDB size over time with and without purging,
// against the cumulative number of flows and packets.
//
// Paper shape: without purging the CDB tracks the (ever-growing) total
// flow count; with FIN/RST removal and the n*lambda inactivity purge the
// CDB size flattens out near the number of concurrent flows (the paper
// reports a steady ~29,713 records on its trace; up to 46% of flows are
// removed by FIN/RST alone).
#include "appproto/trace_headers.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "net/trace_gen.h"

#include <iostream>
#include <string>
#include <unordered_map>

#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

core::FlowNatureModel quick_model() {
  const auto corpus = standard_corpus(40);
  core::TrainerOptions options;
  options.backend = core::Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = core::TrainingMethod::kFirstBytes;
  options.buffer_size = 32;
  return core::train_model(corpus, options);
}

int run() {
  banner("Fig. 8: CDB size vs total flows/packets, with and w/o purging",
         "purged CDB flat near concurrent-flow count; unpurged tracks "
         "total flows");

  const std::size_t packets = env_size("IUSTITIA_TRACE_PACKETS", 120000);
  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = packets;
  trace_options.duration_seconds = 20.0;
  trace_options.seed = 0xF18;
  const net::Trace trace = net::generate_trace(trace_options);
  std::cout << "trace: " << trace.packets.size() << " packets, "
            << trace.truth.size() << " flows over "
            << util::fmt(trace.duration_seconds, 1)
            << "s (override with IUSTITIA_TRACE_PACKETS)\n\n";

  core::EngineOptions purged;
  purged.buffer_size = 32;
  purged.cdb.purge_trigger_flows = 500;  // scaled from the paper's 5000
  core::EngineOptions unpurged = purged;
  unpurged.cdb.inactivity_purge_enabled = false;
  unpurged.cdb.fin_rst_removal_enabled = false;

  core::Iustitia engine_purged(quick_model(), purged);
  core::Iustitia engine_unpurged(quick_model(), unpurged);

  const int sample_points = 20;
  const double step = trace.duration_seconds / sample_points;
  double next_sample = step;
  std::size_t total_packets = 0;
  std::unordered_map<net::FlowKey, bool, net::FlowKeyHash> seen;

  util::Table table({"time (s)", "total packets", "total flows",
                     "CDB w/o purging", "CDB with purging"});
  std::size_t final_purged = 0, final_unpurged = 0;
  for (const net::Packet& packet : trace.packets) {
    engine_purged.on_packet(packet);
    engine_unpurged.on_packet(packet);
    ++total_packets;
    seen.emplace(packet.key, true);
    if (packet.timestamp >= next_sample) {
      table.add_row({util::fmt(packet.timestamp, 1),
                     std::to_string(total_packets),
                     std::to_string(seen.size()),
                     std::to_string(engine_unpurged.cdb().size()),
                     std::to_string(engine_purged.cdb().size())});
      next_sample += step;
      final_purged = engine_purged.cdb().size();
      final_unpurged = engine_unpurged.cdb().size();
    }
  }
  table.render(std::cout);

  const auto& stats = engine_purged.cdb().stats();
  const double fin_rst_fraction =
      stats.inserts == 0
          ? 0.0
          : static_cast<double>(stats.fin_rst_removals) /
                static_cast<double>(stats.inserts);
  std::cout << "\npurged-engine CDB stats: inserts=" << stats.inserts
            << " fin_rst_removals=" << stats.fin_rst_removals << " ("
            << util::fmt_percent(fin_rst_fraction)
            << " of flows; paper: up to 46%)"
            << " inactivity_removals=" << stats.inactivity_removals
            << " purge_runs=" << stats.purge_runs << '\n';
  std::cout << "record size: 194 bits/flow -> purged CDB memory "
            << util::fmt_bytes(
                   static_cast<double>(engine_purged.cdb().memory_bits()) / 8)
            << '\n';
  std::cout << "shape check: purged CDB << unpurged CDB at end: "
            << (final_purged * 2 < final_unpurged ? "YES" : "NO") << " ("
            << final_purged << " vs " << final_unpurged << ")\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
