#include "runtime/watchdog.h"

#include <algorithm>
#include <chrono>

#include "util/check.h"
#include "util/logging.h"

namespace iustitia::runtime {

Watchdog::Watchdog(std::size_t threads, const WatchdogOptions& options,
                   MetricsRegistry* metrics)
    : threads_(threads),
      options_(options),
      metrics_(metrics),
      beats_(std::make_unique<Beat[]>(threads)),
      last_seen_(threads, 0),
      idle_millis_(threads, 0),
      stalled_(threads, false) {
  CHECK_GT(threads, std::size_t{0}) << "watchdog needs at least one thread";
}

Watchdog::~Watchdog() { stop_watching(); }

void Watchdog::start_watching() {
  if (options_.deadline_ms == 0 || thread_.joinable()) return;
  {
    util::MutexLock lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { watch_loop(); });
}

void Watchdog::stop_watching() {
  if (!thread_.joinable()) return;
  {
    util::MutexLock lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void Watchdog::watch_loop() {
  // Sample at a quarter of the deadline so a stall is detected within
  // deadline..deadline*1.25 of the last heartbeat.
  const std::uint64_t period_ms = std::max<std::uint64_t>(
      1, options_.deadline_ms / 4);
  for (;;) {
    {
      // condition_variable_any waits on util::Mutex directly, so the
      // deadlock-debug hooks see this wait like any other acquire.
      util::MutexLock lock(mu_);
      if (stop_requested_) return;
      cv_.wait_for(mu_, std::chrono::milliseconds(period_ms));
      if (stop_requested_) return;
    }
    for (std::size_t i = 0; i < threads_; ++i) {
      const std::uint64_t seen =
          beats_[i].count.load(std::memory_order_relaxed);
      const bool retired = beats_[i].retired.load(std::memory_order_relaxed);
      if (retired || seen != last_seen_[i]) {
        last_seen_[i] = seen;
        idle_millis_[i] = 0;
        if (stalled_[i]) {
          stalled_[i] = false;
          stalled_now_.fetch_sub(1, std::memory_order_relaxed);
          IUSTITIA_LOG_INFO << "watchdog: thread " << i  // analyze: hotpath-allow(may-block, may-allocate)
                            << (retired ? " retired" : " recovered");
        }
        continue;
      }
      idle_millis_[i] += period_ms;
      if (!stalled_[i] && idle_millis_[i] >= options_.deadline_ms) {
        stalled_[i] = true;
        stalled_now_.fetch_add(1, std::memory_order_relaxed);
        stall_events_.fetch_add(1, std::memory_order_relaxed);
        if (metrics_ != nullptr) metrics_->on_watchdog_stall();
        IUSTITIA_LOG_WARN << "watchdog: thread " << i << " made no progress "  // analyze: hotpath-allow(may-block, may-allocate)
                          << "for " << idle_millis_[i] << "ms (deadline "
                          << options_.deadline_ms << "ms)";
        CHECK(!options_.fatal)
            << "watchdog: thread " << i << " stalled past "
            << options_.deadline_ms << "ms and watchdog_fatal is set";
      }
    }
  }
}

}  // namespace iustitia::runtime
