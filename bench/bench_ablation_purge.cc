// Ablation for the CDB inactivity coefficient n (Section 4.5: "our
// experimental results show that n = 4 is an optimal value").
//
// Small n purges aggressively: tiny CDB, but flows that pause get purged
// and must be re-buffered and re-classified (expensive relative to a
// 194-bit record).  Large n keeps everything: no reclassification, but the
// CDB grows toward the unpurged size.  The sweep shows the knee around the
// paper's n = 4.
#include "appproto/trace_headers.h"
#include "bench/bench_common.h"
#include "core/engine.h"
#include "net/trace_gen.h"

#include <algorithm>
#include <iostream>
#include <string>
#include <unordered_map>

#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

core::FlowNatureModel quick_model() {
  const auto corpus = standard_corpus(40);
  core::TrainerOptions options;
  options.backend = core::Backend::kCart;
  options.widths = entropy::cart_preferred_widths();
  options.method = core::TrainingMethod::kFirstBytes;
  options.buffer_size = 32;
  return core::train_model(corpus, options);
}

int run() {
  banner("Ablation (Section 4.5): CDB inactivity coefficient n",
         "n = 4 balances CDB size against reclassification of paused flows");

  const std::size_t packets = env_size("IUSTITIA_TRACE_PACKETS", 80000);
  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = packets;
  trace_options.duration_seconds = 16.0;
  trace_options.seed = 0xAB1;
  const net::Trace trace = net::generate_trace(trace_options);
  std::cout << "trace: " << trace.packets.size() << " packets, "
            << trace.truth.size() << " flows\n\n";

  util::Table table({"n", "classifications", "reclassified flows",
                     "mean CDB size", "peak CDB size"});
  for (const double n : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    core::EngineOptions options;
    options.buffer_size = 32;
    options.cdb.inactivity_coefficient = n;
    options.cdb.purge_trigger_flows = 200;
    core::Iustitia engine(quick_model(), options);

    std::uint64_t cdb_size_sum = 0;
    std::size_t cdb_size_peak = 0, samples = 0;
    for (std::size_t i = 0; i < trace.packets.size(); ++i) {
      engine.on_packet(trace.packets[i]);
      if (i % 1000 == 0) {
        cdb_size_sum += engine.cdb().size();
        cdb_size_peak = std::max(cdb_size_peak, engine.cdb().size());
        ++samples;
      }
    }
    engine.flush_all();

    // Flows classified more than once = flows purged while still active.
    std::unordered_map<net::FlowKey, std::size_t, net::FlowKeyHash> times;
    for (const core::FlowDelayRecord& record : engine.delays()) {
      ++times[record.key];
    }
    std::size_t reclassified = 0;
    for (const auto& [key, count] : times) reclassified += (count > 1);

    table.add_row({util::fmt(n, 1),
                   std::to_string(engine.stats().flows_classified),
                   std::to_string(reclassified),
                   std::to_string(cdb_size_sum / samples),
                   std::to_string(cdb_size_peak)});
  }
  table.render(std::cout);
  std::cout << "\npaper: n = 4 avoids reclassification of the same flow "
               "while keeping the CDB near the concurrent-flow count.\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
