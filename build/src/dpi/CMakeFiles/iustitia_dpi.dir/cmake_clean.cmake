file(REMOVE_RECURSE
  "CMakeFiles/iustitia_dpi.dir/aho_corasick.cc.o"
  "CMakeFiles/iustitia_dpi.dir/aho_corasick.cc.o.d"
  "CMakeFiles/iustitia_dpi.dir/signature_set.cc.o"
  "CMakeFiles/iustitia_dpi.dir/signature_set.cc.o.d"
  "libiustitia_dpi.a"
  "libiustitia_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
