file(REMOVE_RECURSE
  "CMakeFiles/test_output_queues.dir/test_output_queues.cc.o"
  "CMakeFiles/test_output_queues.dir/test_output_queues.cc.o.d"
  "test_output_queues"
  "test_output_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_output_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
