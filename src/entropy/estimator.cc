#include "entropy/estimator.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace iustitia::entropy {

int estimator_group_count(double delta) noexcept {
  if (delta >= 1.0) return 1;
  if (delta <= 0.0) delta = 1e-6;
  const double g = 2.0 * std::log2(1.0 / delta);
  return std::max(1, static_cast<int>(std::ceil(g)));
}

int estimator_samples_per_group(int width, std::size_t buffer_size,
                                double epsilon) noexcept {
  if (buffer_size < 2) return 1;
  if (epsilon <= 0.0) epsilon = 1e-3;
  // log_{|f_k|}(b) = ln b / (8k * ln 2)
  const double log_fk_b = std::log(static_cast<double>(buffer_size)) /
                          (8.0 * static_cast<double>(width) * std::numbers::ln2);
  const double z = 32.0 * log_fk_b / (epsilon * epsilon);
  return std::max(1, static_cast<int>(std::ceil(z)));
}

double feature_set_coefficient(std::span<const int> widths) noexcept {
  double sum = 0.0;
  for (const int w : widths) {
    if (w != 1) sum += 1.0 / static_cast<double>(w);
  }
  return 8.0 * sum;
}

double epsilon_lower_bound(double k_phi, std::size_t buffer_size, double alpha,
                           double delta) noexcept {
  if (alpha <= 0.0 || buffer_size < 2) return 0.0;
  if (delta >= 1.0) return 0.0;
  if (delta <= 0.0) delta = 1e-6;
  const double value = k_phi * std::log2(static_cast<double>(buffer_size)) /
                       alpha * std::log2(1.0 / delta);
  return value <= 0.0 ? 0.0 : std::sqrt(value);
}

double estimate_sum_count_log_count(std::span<const std::uint8_t> data,
                                    int width, int samples_per_group,
                                    int groups, util::Rng& rng) {
  CHECK_GE(width, 1);
  CHECK_GT(samples_per_group, 0);
  CHECK_GT(groups, 0);
  const auto w = static_cast<std::size_t>(width);
  if (data.size() < w) return 0.0;
  const std::size_t gram_count = data.size() - w + 1;
  const double m = static_cast<double>(gram_count);

  std::vector<double> group_means;
  group_means.reserve(static_cast<std::size_t>(groups));
  for (int gi = 0; gi < groups; ++gi) {
    double sum = 0.0;
    for (int zi = 0; zi < samples_per_group; ++zi) {
      const auto pos = static_cast<std::size_t>(rng.next_below(gram_count));
      const GramKey element = pack_gram(data.data() + pos, width);
      // Count occurrences of `element` from `pos` to the end of the buffer,
      // as the paper's step 2 prescribes.  This linear scan is the reason
      // estimation costs more time than exact counting at these buffer
      // sizes (Table 3) while using far less space.
      std::uint64_t c = 0;
      for (std::size_t i = pos; i < gram_count; ++i) {
        if (pack_gram(data.data() + i, width) == element) ++c;
      }
      // Unbiased estimator of S_k: m * (c ln c - (c-1) ln (c-1)).
      DCHECK_GE(c, std::uint64_t{1}) << "sampled gram must count itself";
      const double cd = static_cast<double>(c);
      double x = cd * std::log(cd);
      if (c > 1) {
        x -= (cd - 1.0) * std::log(cd - 1.0);
      }
      sum += m * x;
    }
    group_means.push_back(sum / static_cast<double>(samples_per_group));
  }

  std::sort(group_means.begin(), group_means.end());
  const std::size_t n = group_means.size();
  if (n % 2 == 1) return group_means[n / 2];
  return 0.5 * (group_means[n / 2 - 1] + group_means[n / 2]);
}

EntropyVectorResult estimate_entropy_vector(std::span<const std::uint8_t> data,
                                            std::span<const int> widths,
                                            const EstimatorParams& params,
                                            util::Rng& rng) {
  // Domain of the (delta, epsilon)-approximation guarantee: relative error
  // bound in (0, 1], failure probability in (0, 1).
  CHECK_GT(params.epsilon, 0.0) << "estimator epsilon out of domain";
  CHECK_LE(params.epsilon, 1.0) << "estimator epsilon out of domain";
  CHECK_GT(params.delta, 0.0) << "estimator delta out of domain";
  CHECK_LT(params.delta, 1.0) << "estimator delta out of domain";
  EntropyVectorResult out;
  out.h.reserve(widths.size());
  const int groups = estimator_group_count(params.delta);
  for (const int w : widths) {
    if (w == 1) {
      // |f_1| = 256 is not >> b: the sketch's precondition fails, so h_1 is
      // always computed exactly (paper Section 4.4.1).
      GramCounter counter(1);
      counter.add(data);
      out.h.push_back(normalized_entropy(counter));
      out.space_bytes += 256 * sizeof(std::uint32_t);
      continue;
    }
    const int z = estimator_samples_per_group(w, data.size(), params.epsilon);
    const double s_hat =
        estimate_sum_count_log_count(data, w, z, groups, rng);
    const auto ws = static_cast<std::size_t>(w);
    const std::uint64_t gram_count =
        data.size() >= ws ? data.size() - ws + 1 : 0;
    out.h.push_back(normalized_entropy_from_sum(s_hat, gram_count, w));
    out.space_bytes += static_cast<std::size_t>(z) *
                       static_cast<std::size_t>(groups) * sizeof(std::uint32_t);
  }
  return out;
}

std::optional<EstimatorParams> choose_estimator_params(
    std::span<const int> widths, std::size_t buffer_size,
    std::size_t max_counters, double max_epsilon) {
  // Most-confident candidates first; 0.75 is the paper's SVM optimum.
  static constexpr double kDeltas[] = {0.1, 0.25, 0.5, 0.75, 0.9};
  const double k_phi = feature_set_coefficient(widths);
  if (k_phi <= 0.0) {
    // Only width 1 requested: no sketch counters needed at all.
    return EstimatorParams{.epsilon = max_epsilon, .delta = 0.9};
  }
  for (const double delta : kDeltas) {
    // Formula (4) lower bound, then a 2% margin over it to absorb the
    // ceil() in the per-width counter counts.
    const double floor = epsilon_lower_bound(
        k_phi, buffer_size, static_cast<double>(max_counters), delta);
    double epsilon = floor * 1.02;
    if (epsilon > max_epsilon || epsilon <= 0.0) continue;
    // ceil() rounding can still overshoot slightly; nudge epsilon up until
    // the realized counter count fits.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const EstimatorParams params{.epsilon = epsilon, .delta = delta};
      std::size_t counters = 0;
      const int groups = estimator_group_count(delta);
      for (const int w : widths) {
        if (w == 1) continue;
        counters += static_cast<std::size_t>(estimator_samples_per_group(
                        w, buffer_size, epsilon)) *
                    static_cast<std::size_t>(groups);
      }
      if (counters <= max_counters) return params;
      epsilon *= 1.05;
      if (epsilon > max_epsilon) break;
    }
  }
  return std::nullopt;
}

std::size_t estimator_space_bytes(std::span<const int> widths,
                                  std::size_t buffer_size,
                                  const EstimatorParams& params) noexcept {
  std::size_t total = 0;
  const int groups = estimator_group_count(params.delta);
  for (const int w : widths) {
    if (w == 1) {
      total += 256 * sizeof(std::uint32_t);
      continue;
    }
    const int z = estimator_samples_per_group(w, buffer_size, params.epsilon);
    total += static_cast<std::size_t>(z) * static_cast<std::size_t>(groups) *
             sizeof(std::uint32_t);
  }
  return total;
}

}  // namespace iustitia::entropy
