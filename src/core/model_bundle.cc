#include "core/model_bundle.h"

#include <istream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "ml/serialize.h"

namespace iustitia::core {

void save_model_bundle(const FlowNatureModel& model,
                       std::string_view metadata, std::ostream& os) {
  std::ostringstream payload;
  model.save(payload);
  ml::Bundle bundle;
  bundle.metadata = std::string(metadata);
  bundle.payload = std::move(payload).str();
  ml::save_bundle(bundle, os);
}

LoadedModelBundle load_model_bundle(std::istream& is) {
  ml::Bundle bundle = ml::load_bundle(is);
  std::istringstream payload(std::move(bundle.payload));
  LoadedModelBundle out;
  out.model = FlowNatureModel::load(payload);
  out.metadata = std::move(bundle.metadata);
  out.format_version = bundle.format_version;
  return out;
}

FlowNatureModel load_model_any(std::istream& is, std::string* metadata_out) {
  // Peek the first token without consuming: a bundle opens with the
  // frame magic, a bare model with its own "flowmodel-v1" magic.
  const std::istream::pos_type start = is.tellg();
  std::string first;
  if (!(is >> first)) {
    throw std::runtime_error("model parse error: empty stream");
  }
  is.clear();
  is.seekg(start);
  if (first == ml::kBundleMagic) {
    LoadedModelBundle bundle = load_model_bundle(is);
    if (metadata_out != nullptr) *metadata_out = std::move(bundle.metadata);
    return std::move(bundle.model);
  }
  if (metadata_out != nullptr) metadata_out->clear();
  return FlowNatureModel::load(is);
}

std::string model_version_of(std::string_view metadata) {
  std::size_t begin = metadata.find_first_not_of(" \t");
  if (begin == std::string_view::npos) return "unversioned";
  std::size_t end = metadata.find_first_of(" \t", begin);
  if (end == std::string_view::npos) end = metadata.size();
  return std::string(metadata.substr(begin, end - begin));
}

}  // namespace iustitia::core
