# Empty dependencies file for iustitia_appproto.
# This may be replaced when dependencies are built.
