// Tests for the flow-sharded engine: steering determinism, equivalence
// with the single engine, and actual multi-threaded operation.
#include "core/sharded_engine.h"

#include <gtest/gtest.h>

#include <functional>
#include <thread>
#include <vector>

#include "appproto/trace_headers.h"
#include "core/trainer.h"
#include "net/trace_gen.h"

namespace iustitia::core {
namespace {

std::function<FlowNatureModel()> model_factory() {
  return [] {
    datagen::CorpusOptions corpus_options;
    corpus_options.files_per_class = 15;
    corpus_options.min_size = 2048;
    corpus_options.max_size = 4096;
    corpus_options.seed = 90;
    const auto corpus = datagen::build_corpus(corpus_options);
    TrainerOptions options;
    options.backend = Backend::kCart;
    options.widths = entropy::cart_preferred_widths();
    options.method = TrainingMethod::kFirstBytes;
    options.buffer_size = 32;
    return train_model(corpus, options);
  };
}

net::Trace small_trace() {
  net::TraceOptions options;
  options.header_source = appproto::standard_header_source();
  options.target_packets = 10000;
  options.seed = 91;
  return net::generate_trace(options);
}

TEST(ShardedIustitia, RejectsZeroShards) {
  EXPECT_THROW(ShardedIustitia(model_factory(), EngineOptions{}, 0),
               std::invalid_argument);
}

TEST(ShardedIustitia, SteeringIsDeterministicAndCoversShards) {
  ShardedIustitia sharded(model_factory(), EngineOptions{}, 4);
  const net::Trace trace = small_trace();
  std::vector<std::size_t> per_shard(4, 0);
  for (const auto& [key, truth] : trace.truth) {
    const std::size_t s = sharded.shard_of(key);
    ASSERT_EQ(s, sharded.shard_of(key));  // stable
    ASSERT_LT(s, 4u);
    ++per_shard[s];
  }
  // The hash spreads flows roughly evenly: no shard starves.
  for (const std::size_t n : per_shard) {
    EXPECT_GT(n, trace.truth.size() / 16);
  }
}

TEST(ShardedIustitia, MatchesSingleEngineResults) {
  EngineOptions options;
  options.buffer_size = 32;
  Iustitia single(model_factory()(), options);
  ShardedIustitia sharded(model_factory(), options, 4);

  const net::Trace trace = small_trace();
  for (const net::Packet& p : trace.packets) {
    single.on_packet(p);
    sharded.on_packet(p);
  }
  single.flush_all();
  sharded.flush_all();

  // Same flows classified, same labels per flow (models are identical and
  // packets per flow arrive in the same order within a shard).
  EXPECT_EQ(sharded.total_flows_classified(),
            single.stats().flows_classified);
  for (const FlowDelayRecord& record : single.delays()) {
    const auto label =
        sharded.shard(sharded.shard_of(record.key)).label_of(record.key);
    const auto single_label = single.label_of(record.key);
    if (single_label.has_value() && label.has_value()) {
      EXPECT_EQ(*label, *single_label);
    }
  }
}

TEST(ShardedIustitia, RunsFromMultipleThreads) {
  const std::size_t shard_count = 4;
  EngineOptions options;
  options.buffer_size = 32;
  ShardedIustitia sharded(model_factory(), options, shard_count);

  // Pre-partition packets by shard (what NIC steering would do), then
  // drive each shard from its own thread.
  const net::Trace trace = small_trace();
  std::vector<std::vector<const net::Packet*>> partitions(shard_count);
  for (const net::Packet& p : trace.packets) {
    partitions[sharded.shard_of(p.key)].push_back(&p);
  }
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < shard_count; ++s) {
    threads.emplace_back([&sharded, &partitions, s] {
      for (const net::Packet* p : partitions[s]) {
        sharded.shard(s).on_packet(*p);
      }
      sharded.shard(s).flush_all();
    });
  }
  for (auto& t : threads) t.join();

  const EngineStats total = sharded.total_stats();
  EXPECT_EQ(total.packets, trace.packets.size());
  EXPECT_GT(total.flows_classified, 0u);

  // Ground-truth accuracy survives sharding.
  std::size_t correct = 0, scored = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    for (const FlowDelayRecord& record : sharded.shard(s).delays()) {
      const auto it = trace.truth.find(record.key);
      if (it == trace.truth.end()) continue;
      ++scored;
      correct += (record.label == it->second.nature);
    }
  }
  ASSERT_GT(scored, 0u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(scored), 0.6);
}

}  // namespace
}  // namespace iustitia::core
