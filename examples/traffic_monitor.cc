// Traffic monitor: the paper's "network monitoring and management" use
// case (Section 1.1).  An ISP-style vantage point classifies live flows by
// nature and routes them to per-class output queues — e.g. prioritizing
// encrypted flows of a bank or binary (voice) flows of a call center —
// while keeping per-flow state tiny via the CDB.
//
// Run:  ./traffic_monitor
#include <iostream>
#include <string>

#include "appproto/trace_headers.h"
#include "core/engine.h"
#include "core/trainer.h"
#include "net/trace_gen.h"
#include "util/table.h"

using namespace iustitia;

int main() {
  // Offline: train the classifier once (Fig. 1's right-hand process).
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 60;
  corpus_options.seed = 11;
  const auto corpus = datagen::build_corpus(corpus_options);
  core::TrainerOptions trainer;
  trainer.backend = core::Backend::kCart;
  trainer.widths = entropy::cart_preferred_widths();
  trainer.method = core::TrainingMethod::kFirstBytes;
  trainer.buffer_size = 32;
  core::FlowNatureModel model = core::train_model(corpus, trainer);

  // Online: a synthetic gateway trace stands in for the live link.
  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = 60000;
  trace_options.seed = 12;
  const net::Trace trace = net::generate_trace(trace_options);
  std::cout << "monitoring " << trace.packets.size() << " packets / "
            << trace.truth.size() << " flows over "
            << util::fmt(trace.duration_seconds, 1) << " s...\n\n";

  core::EngineOptions engine_options;
  engine_options.buffer_size = 32;
  core::Iustitia engine(std::move(model), engine_options);
  for (const net::Packet& packet : trace.packets) engine.on_packet(packet);
  engine.flush_all();

  // Operator dashboard.
  const core::EngineStats& stats = engine.stats();
  util::Table queues({"output queue", "packets", "share"});
  static constexpr const char* kNames[3] = {"text", "binary", "encrypted"};
  std::uint64_t forwarded = 0;
  for (const std::uint64_t q : stats.queue_packets) forwarded += q;
  for (int c = 0; c < 3; ++c) {
    const double share =
        forwarded == 0 ? 0.0
                       : static_cast<double>(stats.queue_packets[
                             static_cast<std::size_t>(c)]) /
                             static_cast<double>(forwarded);
    queues.add_row({kNames[c],
                    std::to_string(stats.queue_packets[
                        static_cast<std::size_t>(c)]),
                    util::fmt_percent(share)});
  }
  queues.render(std::cout);

  // Accuracy against the generator's ground truth.
  std::size_t correct = 0, scored = 0;
  for (const core::FlowDelayRecord& record : engine.delays()) {
    const auto it = trace.truth.find(record.key);
    if (it == trace.truth.end()) continue;
    ++scored;
    correct += (record.label == it->second.nature);
  }
  std::cout << "\nflows classified: " << stats.flows_classified
            << " (of which " << stats.flows_timed_out
            << " on partial buffers)\n";
  std::cout << "ground-truth accuracy: "
            << util::fmt_percent(static_cast<double>(correct) /
                                 static_cast<double>(scored))
            << " over " << scored << " flows\n";
  std::cout << "CDB: " << engine.cdb().size() << " records ("
            << util::fmt_bytes(
                   static_cast<double>(engine.cdb().memory_bits()) / 8)
            << " at 194 bits/record), "
            << engine.cdb().stats().fin_rst_removals
            << " FIN/RST removals, "
            << engine.cdb().stats().inactivity_removals
            << " inactivity removals\n";
  return 0;
}
