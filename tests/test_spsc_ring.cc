// SPSC ring unit tests: geometry, FIFO order across wraparound, full/empty
// edges, the close()/drain termination protocol, the burst push/pop
// protocol (partial bursts, wraparound, move-only payloads), and
// two-thread hammers that tools/ci.sh also runs under TSan.
#include "runtime/spsc_ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <utility>
#include <vector>

namespace iustitia::runtime {
namespace {

// Sanitized builds run the same logic at a fraction of the iteration
// count: TSan's happens-before bookkeeping makes each op ~20x slower, and
// the interleavings it checks do not need volume to be reached.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr std::uint64_t kHammerItems = 20'000;
#else
constexpr std::uint64_t kHammerItems = 200'000;
#endif

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FullAndEmptyEdges) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out)) << "fresh ring must be empty";
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99)) << "5th push into capacity 4 must fail";
  EXPECT_EQ(ring.size_approx(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size_approx(), 0u);
  // The freed slots are reusable (indices keep counting up; wrap is a mask).
  EXPECT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
}

TEST(SpscRing, FifoOrderAcrossManyWraparounds) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  // Keep the ring partially full while indices lap the buffer many times.
  while (next_pop < 1000) {
    for (int burst = 0; burst < 3; ++burst) {
      if (!ring.try_push(std::uint64_t{next_push})) break;
      ++next_push;
    }
    std::uint64_t out = 0;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRing, MoveOnlyElements) {
  SpscRing<std::unique_ptr<int>> ring(2);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(41)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 41);
}

TEST(SpscRing, CloseDrainTerminationProtocol) {
  SpscRing<int> ring(8);
  EXPECT_FALSE(ring.closed());
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  ring.close();
  EXPECT_TRUE(ring.closed());
  // Consumer side: the flag alone is not the end — everything pushed
  // before close() must still drain, and only then does try_pop fail.
  int out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRingBurst, PartialBurstNearFullAndEmptyEdges) {
  SpscRing<int> ring(4);
  // Push 6 into capacity 4: only 4 fit, the unpushed tail is untouched.
  std::vector<int> values = {0, 1, 2, 3, 4, 5};
  EXPECT_EQ(ring.try_push_burst(std::span<int>(values)), 4u);
  EXPECT_EQ(values[4], 4) << "unpushed tail must be left intact for retry";
  EXPECT_EQ(values[5], 5);
  EXPECT_EQ(ring.try_push_burst(std::span<int>(values).subspan(4)), 0u)
      << "full ring refuses the remainder";

  // Pop 6 from a ring holding 4: only 4 arrive, in FIFO order.
  std::vector<int> out(6, -1);
  EXPECT_EQ(ring.try_pop_burst(std::span<int>(out)), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(out[4], -1) << "slots beyond the arrival count are untouched";
  EXPECT_EQ(ring.try_pop_burst(std::span<int>(out)), 0u) << "empty ring";

  // Empty spans are no-ops on both sides.
  EXPECT_EQ(ring.try_push_burst(std::span<int>()), 0u);
  EXPECT_EQ(ring.try_pop_burst(std::span<int>()), 0u);
}

TEST(SpscRingBurst, FifoOrderAcrossWraparoundWithMixedBurstSizes) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  std::vector<std::uint64_t> in;
  std::vector<std::uint64_t> out(5);
  // Mixed burst sizes keep the cursors landing on every offset modulo the
  // capacity, so bursts regularly straddle the wrap point.
  while (next_pop < 1000) {
    const std::size_t want = 1 + next_push % 7;
    in.clear();
    for (std::size_t i = 0; i < want; ++i) in.push_back(next_push + i);
    next_push += ring.try_push_burst(std::span<std::uint64_t>(in));
    std::size_t got;
    while ((got = ring.try_pop_burst(std::span<std::uint64_t>(out))) != 0) {
      for (std::size_t i = 0; i < got; ++i) {
        ASSERT_EQ(out[i], next_pop);
        ++next_pop;
      }
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRingBurst, MoveOnlyPayloadsMoveThroughBursts) {
  SpscRing<std::unique_ptr<int>> ring(4);
  std::vector<std::unique_ptr<int>> in;
  for (int i = 0; i < 3; ++i) in.push_back(std::make_unique<int>(i));
  ASSERT_EQ(ring.try_push_burst(std::span<std::unique_ptr<int>>(in)), 3u);
  for (const auto& p : in) {
    EXPECT_EQ(p, nullptr) << "pushed items must be moved out, not copied";
  }
  std::vector<std::unique_ptr<int>> out(4);
  ASSERT_EQ(ring.try_pop_burst(std::span<std::unique_ptr<int>>(out)), 3u);
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(out[static_cast<std::size_t>(i)], nullptr);
    EXPECT_EQ(*out[static_cast<std::size_t>(i)], i);
  }
}

TEST(SpscRingBurst, FullRingDrainsCompletelyViaBurstsAfterClose) {
  SpscRing<int> ring(8);
  std::vector<int> all(ring.capacity());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  ASSERT_EQ(ring.try_push_burst(std::span<int>(all)), ring.capacity());
  ring.close();

  // Worker-side final drain: closed() observed first, then burst pops
  // until a zero return — every pre-close item must surface, no loss.
  ASSERT_TRUE(ring.closed());
  std::vector<int> window(3);
  int expected = 0;
  std::size_t got;
  while ((got = ring.try_pop_burst(std::span<int>(window))) != 0) {
    for (std::size_t i = 0; i < got; ++i) {
      ASSERT_EQ(window[i], expected);
      ++expected;
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(expected), ring.capacity())
      << "zero-size pop after close() must mean a fully drained ring";
}

// Producer and consumer on separate threads push/pop a long monotone
// sequence through a tiny ring, forcing constant full/empty collisions on
// the cached-index fast paths.  TSan checks the memory-order contract;
// the assertions check lossless FIFO delivery.
TEST(SpscRing, TwoThreadHammerDeliversEverythingInOrder) {
  SpscRing<std::uint64_t> ring(16);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kHammerItems; ++i) {
      while (!ring.try_push(std::uint64_t{i})) std::this_thread::yield();
    }
    ring.close();
  });

  std::uint64_t expected = 0;
  std::uint64_t out = 0;
  for (;;) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
      continue;
    }
    if (ring.closed()) {
      while (ring.try_pop(out)) {
        ASSERT_EQ(out, expected);
        ++expected;
      }
      break;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, kHammerItems);
}

// Burst flavor of the hammer: both sides use varying burst sizes through
// a tiny ring, so bursts constantly split at the full/empty boundary and
// wrap the index mask mid-burst.  TSan checks that one acquire/release
// pair per burst is enough to publish every slot write; the assertions
// check lossless FIFO delivery and that partial-burst retries resume at
// exactly the right element.
TEST(SpscRingBurst, TwoThreadBurstHammerDeliversEverythingInOrder) {
  SpscRing<std::uint64_t> ring(16);

  std::thread producer([&ring] {
    std::vector<std::uint64_t> staged;
    std::uint64_t next = 0;
    while (next < kHammerItems) {
      const std::size_t want = static_cast<std::size_t>(
          1 + next % 23);  // spans sub- and super-capacity bursts
      staged.clear();
      for (std::size_t i = 0; i < want && next + i < kHammerItems; ++i) {
        staged.push_back(next + i);
      }
      std::span<std::uint64_t> rest(staged);
      while (!rest.empty()) {
        const std::size_t pushed = ring.try_push_burst(rest);
        rest = rest.subspan(pushed);
        next += pushed;
        if (pushed == 0) std::this_thread::yield();
      }
    }
    ring.close();
  });

  std::vector<std::uint64_t> window(13);  // deliberately != producer sizes
  std::uint64_t expected = 0;
  for (;;) {
    const std::size_t got =
        ring.try_pop_burst(std::span<std::uint64_t>(window));
    if (got != 0) {
      for (std::size_t i = 0; i < got; ++i) {
        ASSERT_EQ(window[i], expected);
        ++expected;
      }
      continue;
    }
    if (ring.closed()) {
      std::size_t more;
      while ((more = ring.try_pop_burst(std::span<std::uint64_t>(window))) !=
             0) {
        for (std::size_t i = 0; i < more; ++i) {
          ASSERT_EQ(window[i], expected);
          ++expected;
        }
      }
      break;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, kHammerItems);
}

// Move-only payloads through the threaded burst path: every element must
// arrive exactly once (no double-move, no leak — ASan would flag either).
TEST(SpscRingBurst, TwoThreadBurstHammerMoveOnly) {
  SpscRing<std::unique_ptr<std::uint64_t>> ring(8);
  constexpr std::uint64_t kItems = kHammerItems / 20;

  std::thread producer([&ring] {
    std::vector<std::unique_ptr<std::uint64_t>> staged;
    std::uint64_t next = 0;
    while (next < kItems) {
      staged.clear();
      for (std::size_t i = 0; i < 5 && next + i < kItems; ++i) {
        staged.push_back(std::make_unique<std::uint64_t>(next + i));
      }
      std::span<std::unique_ptr<std::uint64_t>> rest(staged);
      while (!rest.empty()) {
        const std::size_t pushed = ring.try_push_burst(rest);
        rest = rest.subspan(pushed);
        next += pushed;
        if (pushed == 0) std::this_thread::yield();
      }
    }
    ring.close();
  });

  std::vector<std::unique_ptr<std::uint64_t>> window(7);
  std::uint64_t expected = 0;
  for (;;) {
    const std::size_t got = ring.try_pop_burst(
        std::span<std::unique_ptr<std::uint64_t>>(window));
    if (got != 0) {
      for (std::size_t i = 0; i < got; ++i) {
        ASSERT_NE(window[i], nullptr);
        ASSERT_EQ(*window[i], expected);
        window[i].reset();
        ++expected;
      }
      continue;
    }
    if (ring.closed()) {
      std::size_t more;
      while ((more = ring.try_pop_burst(
                  std::span<std::unique_ptr<std::uint64_t>>(window))) != 0) {
        for (std::size_t i = 0; i < more; ++i) {
          ASSERT_NE(window[i], nullptr);
          ASSERT_EQ(*window[i], expected);
          window[i].reset();
          ++expected;
        }
      }
      break;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(expected, kItems);
}

// A producer spinning on a full ring must be released by a close() from
// the other side: the spin loop's give-up path is closed(), whose acquire
// load pairs with close()'s release store.  The consumer never pops, so
// observing the flag is the producer's ONLY way out — and because the
// ring stays full, the spin never reaches try_push's success path, which
// is what keeps the push-after-close DCHECK out of the race.
TEST(SpscRing, CloseReleasesProducerSpinningOnFullRing) {
  SpscRing<int> ring(4);
  int filled = 0;
  while (ring.try_push(int{filled})) ++filled;
  ASSERT_EQ(static_cast<std::size_t>(filled), ring.capacity());

  std::atomic<bool> spinning{false};
  std::atomic<bool> gave_up{false};
  std::thread producer([&ring, &spinning, &gave_up] {
    int v = -1;
    while (!ring.try_push(std::move(v))) {
      spinning.store(true, std::memory_order_release);
      if (ring.closed()) {
        gave_up.store(true, std::memory_order_release);
        return;
      }
      std::this_thread::yield();
    }
  });

  // Let the producer hit the full-ring spin before pulling the plug.
  while (!spinning.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  ring.close();
  producer.join();
  EXPECT_TRUE(gave_up.load(std::memory_order_acquire));

  // The abandoned push left no mark: the pre-close fill drains intact and
  // the ring ends empty.
  int out = -1;
  for (int i = 0; i < filled; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

}  // namespace
}  // namespace iustitia::runtime
