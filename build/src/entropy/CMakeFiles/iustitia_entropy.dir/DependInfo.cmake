
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/entropy/divergence.cc" "src/entropy/CMakeFiles/iustitia_entropy.dir/divergence.cc.o" "gcc" "src/entropy/CMakeFiles/iustitia_entropy.dir/divergence.cc.o.d"
  "/root/repo/src/entropy/entropy_vector.cc" "src/entropy/CMakeFiles/iustitia_entropy.dir/entropy_vector.cc.o" "gcc" "src/entropy/CMakeFiles/iustitia_entropy.dir/entropy_vector.cc.o.d"
  "/root/repo/src/entropy/estimator.cc" "src/entropy/CMakeFiles/iustitia_entropy.dir/estimator.cc.o" "gcc" "src/entropy/CMakeFiles/iustitia_entropy.dir/estimator.cc.o.d"
  "/root/repo/src/entropy/gram_counter.cc" "src/entropy/CMakeFiles/iustitia_entropy.dir/gram_counter.cc.o" "gcc" "src/entropy/CMakeFiles/iustitia_entropy.dir/gram_counter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iustitia_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
