// Tests for application-layer header generation and signature-based
// stripping (Section 4.3).
#include "appproto/header_gen.h"
#include "appproto/header_stripper.h"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::appproto {
namespace {

std::string as_string(std::span<const std::uint8_t> bytes) {
  return {bytes.begin(), bytes.end()};
}

TEST(ProtocolName, AllValues) {
  EXPECT_STREQ(protocol_name(AppProtocol::kNone), "none");
  EXPECT_STREQ(protocol_name(AppProtocol::kHttp), "http");
  EXPECT_STREQ(protocol_name(AppProtocol::kSmtp), "smtp");
  EXPECT_STREQ(protocol_name(AppProtocol::kPop3), "pop3");
  EXPECT_STREQ(protocol_name(AppProtocol::kImap), "imap");
}

TEST(GenerateHeader, NoneIsEmpty) {
  util::Rng rng(1);
  EXPECT_TRUE(generate_header(AppProtocol::kNone, rng).empty());
}

TEST(HttpResponseHeader, EndsWithDoubleCrlfAndDetects) {
  util::Rng rng(2);
  const auto header = generate_http_response_header(rng, 12345);
  const std::string text = as_string(header);
  ASSERT_GE(text.size(), 4u);
  EXPECT_EQ(text.substr(text.size() - 4), "\r\n\r\n");
  EXPECT_NE(text.find("Content-Length: 12345"), std::string::npos);

  const HeaderDetection det = detect_header(header);
  EXPECT_EQ(det.protocol, AppProtocol::kHttp);
  EXPECT_TRUE(det.header_complete);
  EXPECT_EQ(det.header_length, header.size());
}

TEST(HttpRequestHeader, DetectedAndStrippedExactly) {
  util::Rng rng(3);
  auto flow = generate_http_request_header(rng);
  const std::size_t header_len = flow.size();
  // Binary payload follows the header.
  for (int i = 0; i < 500; ++i) {
    flow.push_back(static_cast<std::uint8_t>(i * 37 + 128));
  }
  const HeaderDetection det = detect_header(flow);
  EXPECT_EQ(det.protocol, AppProtocol::kHttp);
  EXPECT_TRUE(det.header_complete);
  EXPECT_EQ(det.header_length, header_len);
  EXPECT_EQ(strip_header(flow).size(), 500u);
}

TEST(HttpHeader, IncompletePrefixReportedAsIncomplete) {
  util::Rng rng(4);
  const auto header = generate_http_response_header(rng, 100);
  // Cut before the terminating CRLF CRLF.
  const std::span<const std::uint8_t> partial(header.data(),
                                              header.size() - 6);
  const HeaderDetection det = detect_header(partial);
  EXPECT_EQ(det.protocol, AppProtocol::kHttp);
  EXPECT_FALSE(det.header_complete);
  EXPECT_EQ(det.header_length, partial.size());
}

class MailProtocols : public ::testing::TestWithParam<AppProtocol> {};

TEST_P(MailProtocols, PreambleDetectedAndStrippedBeforePayload) {
  util::Rng rng(5);
  auto flow = generate_header(GetParam(), rng);
  const std::size_t preamble_len = flow.size();
  ASSERT_GT(preamble_len, 0u);
  // Non-protocol content follows (binary attachment bytes).
  for (int i = 0; i < 300; ++i) {
    flow.push_back(static_cast<std::uint8_t>(0x80 + i % 100));
  }
  const HeaderDetection det = detect_header(flow);
  EXPECT_EQ(det.protocol, GetParam());
  EXPECT_TRUE(det.header_complete);
  EXPECT_EQ(det.header_length, preamble_len);
}

INSTANTIATE_TEST_SUITE_P(Smtp, MailProtocols,
                         ::testing::Values(AppProtocol::kSmtp,
                                           AppProtocol::kPop3,
                                           AppProtocol::kImap));

TEST(DetectHeader, PlainTextIsNotAHeader) {
  const std::string text =
      "Dear colleague, the measurements are attached below.";
  const std::vector<std::uint8_t> bytes(text.begin(), text.end());
  const HeaderDetection det = detect_header(bytes);
  EXPECT_EQ(det.protocol, AppProtocol::kNone);
  EXPECT_EQ(det.header_length, 0u);
  EXPECT_EQ(strip_header(bytes).size(), bytes.size());
}

TEST(DetectHeader, RandomBinaryIsNotAHeader) {
  util::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(200);
    rng.fill_bytes(data);
    // Avoid the vanishingly unlikely accidental signature.
    if (data[0] == 'G' || data[0] == 'P' || data[0] == 'H' || data[0] == '+' ||
        data[0] == '*' || data[0] == '2') {
      data[0] = 0x00;
    }
    const HeaderDetection det = detect_header(data);
    ASSERT_EQ(det.protocol, AppProtocol::kNone) << "trial " << trial;
  }
}

TEST(DetectHeader, EmptyInput) {
  const HeaderDetection det = detect_header({});
  EXPECT_EQ(det.protocol, AppProtocol::kNone);
  EXPECT_EQ(det.header_length, 0u);
}

TEST(DetectHeader, EncryptedPayloadAfterHttpHeaderSurvivesStrip) {
  // The motivating case of Section 4.3: a binary object behind a text
  // header must expose only the object after stripping.
  util::Rng rng(7);
  auto flow = generate_http_response_header(rng, 1000);
  const std::size_t header_len = flow.size();
  std::vector<std::uint8_t> body(1000);
  rng.fill_bytes(body);
  flow.insert(flow.end(), body.begin(), body.end());
  const auto stripped = strip_header(flow);
  ASSERT_EQ(stripped.size(), 1000u);
  EXPECT_TRUE(std::equal(stripped.begin(), stripped.end(), body.begin()));
  EXPECT_EQ(detect_header(flow).header_length, header_len);
}

}  // namespace
}  // namespace iustitia::appproto
