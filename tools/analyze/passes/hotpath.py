"""Hot-path real-time-safety audit.

Walks the effect-annotated call graph (callgraph.py) from every
function marked `// analyze: hotpath` and reports each effect the hot
path can reach:

  hotpath-may-allocate    heap traffic (new/delete, malloc family,
                          resizing container mutators)
  hotpath-may-block       locks, condition waits, sleeps, I/O, logging
  hotpath-may-throw       throw statements and throwing accessors
  hotpath-unresolved-call a call the resolver cannot attribute —
                          virtuals, function pointers, unknown
                          externals — which *could* be any of the above

Each finding is anchored at the effect's origin with the full static
call chain (hot entry → … → origin) attached as SARIF
relatedLocations.  Documented cold branches are suppressed with
`// analyze: hotpath-allow(<effects>)` placed on the statement (the
same line as the matching `util::rt::AllowScope` RAII, when the branch
is also runtime-guarded); suppression scopes end when the enclosing
brace closes.  `noexcept` definitions mask may-throw below them.

The pass also ties the runtime verifier to the static claims:

  hotpath-allow-undeclared  a `util::rt::AllowScope` constructed in
                            src/ without a same-line hotpath-allow
                            annotation, or a `util::rt::GuardRegion`
                            inside a function that is not a declared
                            hot entry — either would let the
                            IUSTITIA_RT_DEBUG runtime enforce a
                            different contract than the analyzer
                            proves.

Fingerprints are line-independent: rule + origin file + origin
function + effect detail.
"""

from __future__ import annotations

import callgraph
from findings import Finding

_RULE_BY_EFFECT = {
    "may-allocate": "hotpath-may-allocate",
    "may-block": "hotpath-may-block",
    "may-throw": "hotpath-may-throw",
    "unresolved-call": "hotpath-unresolved-call",
}

_DESC_BY_EFFECT = {
    "may-allocate": "may allocate",
    "may-block": "may block",
    "may-throw": "may throw",
    "unresolved-call": "reaches an unresolvable call",
}


def _propagate(graph: callgraph.CallGraph) -> list[Finding]:
    findings: list[Finding] = []
    reported: set[tuple[str, str, str]] = set()
    entries = sorted(k for k, f in graph.funcs.items() if f.is_hot_entry)
    for entry in entries:
        root = graph.funcs[entry]
        stack = [(entry, frozenset(),
                  [(root.path, root.line, f"hot entry '{entry}'")])]
        visited: set[tuple[str, frozenset]] = set()
        while stack:
            key, allowed, chain = stack.pop()
            if (key, allowed) in visited:
                continue
            visited.add((key, allowed))
            info = graph.funcs[key]
            if info.is_noexcept:
                allowed = allowed | {"may-throw"}
            for e in info.effects:
                if e.kind in allowed:
                    continue
                rkey = (e.kind, key, e.detail)
                if rkey in reported:
                    continue
                reported.add(rkey)
                via = "" if key == entry else f" via '{key}'"
                findings.append(Finding(
                    rule=_RULE_BY_EFFECT[e.kind],
                    path=info.path,
                    line=e.line,
                    message=f"hot path '{entry}' "
                            f"{_DESC_BY_EFFECT[e.kind]}: '{e.detail}'"
                            f"{via}",
                    anchor=f"{key}:{e.kind}:{e.detail}",
                    related=list(chain)))
            for c in info.calls:
                edge_allowed = allowed | c.allowed
                for tgt in c.targets:
                    if tgt not in graph.funcs:
                        continue
                    stack.append((tgt, edge_allowed, chain + [
                        (info.path, c.line,
                         f"'{key}' calls '{tgt}'")]))
    return findings


def _guard_declarations(ctx, graph: callgraph.CallGraph) -> list[Finding]:
    """Cross-checks util::rt RAII constructions against annotations."""
    findings: list[Finding] = []
    for path, model in sorted(ctx.models.items()):
        if not path.startswith("src/") or path.endswith("rt_guard.h"):
            continue
        hot_spans = []
        for m in model.methods:
            if not m.body:
                continue
            key = f"{m.cls}::{m.name}" if m.cls else m.name
            info = graph.funcs.get(key)
            if info is not None and info.is_hot_entry:
                hot_spans.append((m.body[0].line, m.body[-1].line))
        allow_lines = {
            line for line, items in model.annotations.items()
            if any(kind == "hotpath-allow" for kind, _ in items)}
        for i, t in enumerate(model.code):
            if t.kind != callgraph.IDENT or \
                    t.text not in ("AllowScope", "GuardRegion"):
                continue
            nxt = model.code[i + 1] if i + 1 < len(model.code) else None
            if nxt is None or nxt.kind != callgraph.IDENT:
                continue  # not a named-variable construction
            if t.text == "AllowScope":
                if t.line not in allow_lines:
                    findings.append(Finding(
                        rule="hotpath-allow-undeclared",
                        path=path, line=t.line,
                        message="util::rt::AllowScope without a "
                                "same-line `// analyze: hotpath-allow"
                                "(<effects>)` annotation; the runtime "
                                "verifier would relax a constraint the "
                                "analyzer still enforces",
                        anchor=f"AllowScope:{nxt.text}"))
            else:
                if not any(lo <= t.line <= hi for lo, hi in hot_spans):
                    findings.append(Finding(
                        rule="hotpath-allow-undeclared",
                        path=path, line=t.line,
                        message="util::rt::GuardRegion inside a function "
                                "not annotated `// analyze: hotpath`; "
                                "the runtime verifier would enforce a "
                                "contract the analyzer never checked",
                        anchor=f"GuardRegion:{nxt.text}"))
    return findings


def run(ctx) -> list[Finding]:
    graph = callgraph.build(ctx.models)
    findings = _propagate(graph)
    findings.extend(_guard_declarations(ctx, graph))
    return findings
