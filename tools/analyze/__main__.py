"""Entry point: `python3 tools/analyze [args]`.

Running a directory executes this file with the directory itself as
sys.path[0], so the flat module names used across the package (tokenizer,
cppmodel, passes.*) resolve regardless of the caller's CWD.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
