// Descriptive statistics, empirical CDFs, and histograms.
//
// Used throughout the benchmark harness to summarize accuracy sweeps and to
// reproduce the trace-statistics figures (Fig. 9 payload/inter-arrival CDFs).
#ifndef IUSTITIA_UTIL_STATS_H_
#define IUSTITIA_UTIL_STATS_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iustitia::util {

// Five-number-plus summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Computes a Summary of `values`. Returns an all-zero summary when empty.
Summary summarize(std::span<const double> values);

// Linear-interpolated quantile of an already sorted sample, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q) noexcept;

// Arithmetic mean (0 for an empty span).
double mean(std::span<const double> values) noexcept;

// Sample standard deviation (0 for fewer than two values).
double stddev(std::span<const double> values) noexcept;

// Median (0 for an empty span); copies and sorts internally.
double median(std::span<const double> values);

// Empirical cumulative distribution function of a sample.
//
// Built once from data; evaluate() answers P(X <= x).  points() yields a
// compact piecewise representation suitable for printing a CDF table.
class EmpiricalCdf {
 public:
  // Builds from an unsorted sample; `values` may be empty.
  explicit EmpiricalCdf(std::span<const double> values);

  // P(X <= x); 0 for empty samples.
  double evaluate(double x) const noexcept;

  // The value below which a fraction q of the sample lies (inverse CDF).
  double quantile(double q) const noexcept;

  // Down-samples the CDF to at most `max_points` (x, P(X<=x)) pairs.
  std::vector<std::pair<double, double>> points(std::size_t max_points) const;

  std::size_t size() const noexcept { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

// Fixed-bin histogram over [lo, hi); values outside are clamped into the
// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_n(double value, std::size_t n) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  std::size_t total() const noexcept { return total_; }

  // Center of the given bin.
  double bin_center(std::size_t bin) const noexcept;

  // Fraction of samples in the given bin (0 when empty).
  double fraction(std::size_t bin) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  // sample variance
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_STATS_H_
