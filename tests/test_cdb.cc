// Tests for the Classification Database: lookup/refresh semantics, FIN/RST
// removal, and the n*lambda inactivity purge of Section 4.5.
#include "core/cdb.h"

#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "util/sha1.h"

namespace iustitia::core {
namespace {

using datagen::FileClass;

net::FlowId id_of(int n) { return util::sha1("flow-" + std::to_string(n)); }

TEST(Cdb, MissThenInsertThenHit) {
  ClassificationDatabase cdb;
  EXPECT_EQ(cdb.lookup(id_of(1), 0.0), std::nullopt);
  cdb.insert(id_of(1), FileClass::kBinary, 0.0);
  EXPECT_EQ(cdb.lookup(id_of(1), 0.1), FileClass::kBinary);
  EXPECT_EQ(cdb.size(), 1u);
  EXPECT_EQ(cdb.stats().lookups, 2u);
  EXPECT_EQ(cdb.stats().hits, 1u);
  EXPECT_EQ(cdb.stats().inserts, 1u);
}

TEST(Cdb, PeekDoesNotRefreshTiming) {
  CdbOptions options;
  options.inactivity_coefficient = 2.0;
  options.default_lambda = 0.5;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  // Many peeks later, the record still purges based on the insert time.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cdb.peek(id_of(1)), FileClass::kText);
  }
  EXPECT_EQ(cdb.purge(10.0), 1u);
  EXPECT_EQ(cdb.peek(id_of(1)), std::nullopt);
}

TEST(Cdb, LookupRefreshesLambdaFromObservedGap) {
  CdbOptions options;
  options.inactivity_coefficient = 4.0;
  options.default_lambda = 0.5;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  // Packet at t=2.0: lambda' becomes 2.0; obsolete only after t > 2 + 8.
  EXPECT_TRUE(cdb.lookup(id_of(1), 2.0).has_value());
  EXPECT_EQ(cdb.purge(9.9), 0u);
  EXPECT_EQ(cdb.purge(10.1), 1u);
}

TEST(Cdb, DefaultLambdaUsedForSinglePacketFlows) {
  CdbOptions options;
  options.inactivity_coefficient = 4.0;
  options.default_lambda = 0.5;  // n * lambda = 2.0 seconds
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kEncrypted, 0.0);
  EXPECT_EQ(cdb.purge(1.9), 0u);
  EXPECT_EQ(cdb.purge(2.1), 1u);
}

TEST(Cdb, FinRstRemoval) {
  ClassificationDatabase cdb;
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.insert(id_of(2), FileClass::kBinary, 0.0);
  cdb.remove_on_close(id_of(1));
  EXPECT_EQ(cdb.size(), 1u);
  EXPECT_EQ(cdb.stats().fin_rst_removals, 1u);
  // Removing an absent flow is a no-op.
  cdb.remove_on_close(id_of(99));
  EXPECT_EQ(cdb.stats().fin_rst_removals, 1u);
}

TEST(Cdb, FinRstRemovalCanBeDisabled) {
  CdbOptions options;
  options.fin_rst_removal_enabled = false;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.remove_on_close(id_of(1));
  EXPECT_EQ(cdb.size(), 1u);
}

TEST(Cdb, InactivityPurgeCanBeDisabled) {
  CdbOptions options;
  options.inactivity_purge_enabled = false;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  EXPECT_EQ(cdb.purge(1e9), 0u);
  EXPECT_EQ(cdb.size(), 1u);
}

TEST(Cdb, MaybePurgeHonorsTriggerThreshold) {
  CdbOptions options;
  options.purge_trigger_flows = 10;
  options.inactivity_coefficient = 1.0;
  options.default_lambda = 0.001;  // everything old is purgeable
  ClassificationDatabase cdb(options);
  for (int i = 0; i < 9; ++i) {
    cdb.insert(id_of(i), FileClass::kText, 0.0);
    cdb.maybe_purge(100.0);
  }
  EXPECT_EQ(cdb.stats().purge_runs, 0u);  // below trigger
  cdb.insert(id_of(9), FileClass::kText, 100.0);
  cdb.maybe_purge(100.0);
  EXPECT_EQ(cdb.stats().purge_runs, 1u);
  EXPECT_EQ(cdb.size(), 1u);  // only the fresh flow survives
}

TEST(Cdb, MemoryBitsUsePaperRecordSize) {
  ClassificationDatabase cdb;
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.insert(id_of(2), FileClass::kText, 0.0);
  EXPECT_EQ(cdb.memory_bits(), 2u * 194u);
}

TEST(Cdb, OverwriteKeepsSingleRecord) {
  ClassificationDatabase cdb;
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.insert(id_of(1), FileClass::kEncrypted, 1.0);
  EXPECT_EQ(cdb.size(), 1u);
  EXPECT_EQ(cdb.peek(id_of(1)), FileClass::kEncrypted);
}

TEST(Cdb, ReclassificationRuleDeletesOldRecords) {
  CdbOptions options;
  options.reclassify_after_seconds = 10.0;
  options.inactivity_coefficient = 1000.0;  // inactivity never triggers here
  options.default_lambda = 1000.0;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  // Keep the flow active so only the reclassification rule can remove it.
  cdb.lookup(id_of(1), 5.0);
  EXPECT_EQ(cdb.purge(9.0), 0u);
  EXPECT_EQ(cdb.purge(10.5), 1u);
  EXPECT_EQ(cdb.stats().reclassification_removals, 1u);
  EXPECT_EQ(cdb.stats().inactivity_removals, 0u);
}

TEST(Cdb, ReclassificationDisabledByDefault) {
  CdbOptions options;
  options.inactivity_coefficient = 1000.0;
  options.default_lambda = 1000.0;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.lookup(id_of(1), 1.0);  // lambda' = 1.0 -> obsolete only after t=1001
  EXPECT_EQ(cdb.purge(500.0), 0u);  // old record, but no reclassify rule
}

TEST(Cdb, PurgeCountsInStats) {
  CdbOptions options;
  options.inactivity_coefficient = 1.0;
  options.default_lambda = 0.1;
  ClassificationDatabase cdb(options);
  for (int i = 0; i < 5; ++i) cdb.insert(id_of(i), FileClass::kBinary, 0.0);
  EXPECT_EQ(cdb.purge(1.0), 5u);
  EXPECT_EQ(cdb.stats().inactivity_removals, 5u);
  EXPECT_EQ(cdb.size(), 0u);
}

}  // namespace
}  // namespace iustitia::core
