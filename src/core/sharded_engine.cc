#include "core/sharded_engine.h"

#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/rt_guard.h"

namespace iustitia::core {

ShardedIustitia::ShardedIustitia(
    const std::function<FlowNatureModel()>& model_factory,
    const EngineOptions& options, std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedIustitia: shards must be > 0");
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    EngineOptions shard_options = options;
    shard_options.seed = options.seed + i;  // independent random-skip streams
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<Iustitia>(model_factory(), shard_options);
    shards_.push_back(std::move(shard));
  }
}

ShardedIustitia::ShardedIustitia(
    std::shared_ptr<const FlowNatureModel> model, const EngineOptions& options,
    std::size_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedIustitia: shards must be > 0");
  }
  if (model == nullptr) {
    throw std::invalid_argument("ShardedIustitia: model must be non-null");
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    EngineOptions shard_options = options;
    shard_options.seed = options.seed + i;  // independent random-skip streams
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<Iustitia>(model, shard_options);
    shards_.push_back(std::move(shard));
  }
}

// Per-packet on the dispatch side: one hash, one modulo, nothing else.
// analyze: hotpath
std::size_t ShardedIustitia::shard_of(
    const net::FlowKey& key) const noexcept {
  return net::FlowKeyHash{}(key) % shards_.size();
}

// Cross-thread classify entry.  The per-shard lock is the accepted cost
// of external callers; the runtime's single-owner workers bypass it via
// shard().
// analyze: hotpath
PacketAction ShardedIustitia::on_packet(const net::Packet& packet) {
  Shard& shard = *shards_[shard_of(packet.key)];
  util::rt::AllowScope allow(util::rt::kBlock);  // analyze: hotpath-allow(may-block)
  util::MutexLock lock(shard.mu);
  return shard.engine->on_packet(packet);
}

// Single-owner escape hatch: the caller guarantees no concurrent access to
// this shard, so the lock is deliberately skipped (and the analysis told so).
Iustitia& ShardedIustitia::shard(std::size_t index)
    IUSTITIA_NO_THREAD_SAFETY_ANALYSIS {
  CHECK_LT(index, shards_.size());
  return *shards_[index]->engine;
}

const Iustitia& ShardedIustitia::shard(std::size_t index) const
    IUSTITIA_NO_THREAD_SAFETY_ANALYSIS {
  CHECK_LT(index, shards_.size());
  return *shards_[index]->engine;
}

EngineStats ShardedIustitia::total_stats() const {
  EngineStats total;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    const EngineStats& s = shard->engine->stats();
    total.packets += s.packets;
    total.data_packets += s.data_packets;
    total.flows_classified += s.flows_classified;
    total.flows_timed_out += s.flows_timed_out;
    for (std::size_t c = 0; c < total.queue_packets.size(); ++c) {
      total.queue_packets[c] += s.queue_packets[c];
    }
  }
  return total;
}

std::size_t ShardedIustitia::total_cdb_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    total += shard->engine->cdb().size();
  }
  return total;
}

std::size_t ShardedIustitia::total_flows_classified() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    total += shard->engine->stats().flows_classified;
  }
  return total;
}

std::size_t ShardedIustitia::flush_all() {
  std::size_t flushed = 0;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    flushed += shard->engine->flush_all();
  }
  return flushed;
}

}  // namespace iustitia::core
