file(REMOVE_RECURSE
  "libiustitia_ml.a"
)
