// Ablation for the multi-class SVM choice: the paper uses DAGSVM because
// it "is the fastest among other multi-class voting methods" [16], [7].
// This bench verifies that claim on the flow-classification task by
// comparing DAGSVM (K-1 pairwise evaluations per prediction) against
// one-vs-one max-wins voting (K(K-1)/2 evaluations): both are built from
// the *same* trained pairwise machines, so accuracy should be essentially
// identical while DAGSVM predicts faster.
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "ml/scaler.h"
#include "util/timer.h"
#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

int run() {
  banner("Ablation: DAGSVM vs max-wins one-vs-one prediction",
         "paper picks DAGSVM as 'the fastest among multi-class voting "
         "methods' at equal accuracy");

  const std::size_t files = env_size("IUSTITIA_FILES_PER_CLASS", 150);
  const auto corpus = standard_corpus(files);
  core::TrainerOptions extract;
  extract.method = core::TrainingMethod::kFirstBytes;
  extract.buffer_size = 64;
  extract.widths = entropy::full_feature_widths();
  ml::Dataset data = core::build_entropy_dataset(corpus, extract);

  util::Rng rng(0xDA6);
  const ml::Split split = ml::stratified_holdout(data, 0.6, rng);
  ml::MinMaxScaler scaler;
  scaler.fit(split.train);
  const ml::Dataset train = scaler.transform(split.train);
  const ml::Dataset test = scaler.transform(split.test);

  ml::SvmParams params;
  params.gamma = 50.0;
  params.c = 1000.0;
  ml::DagSvm dag;
  dag.train(train, params);
  const ml::MaxWinsSvm max_wins = ml::MaxWinsSvm::from_dag(dag);

  // Accuracy comparison.
  const double dag_accuracy = dag.evaluate(test).accuracy();
  const double mw_accuracy = max_wins.evaluate(test).accuracy();

  // Prediction throughput comparison (repeat passes over the test set).
  const int repeats = 200;
  util::Stopwatch dag_timer;
  std::size_t sink = 0;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& s : test.samples()) {
      sink += static_cast<std::size_t>(dag.predict(s.features));
    }
  }
  const double dag_micros = dag_timer.elapsed_micros() /
                            static_cast<double>(repeats * test.size());
  util::Stopwatch mw_timer;
  for (int r = 0; r < repeats; ++r) {
    for (const auto& s : test.samples()) {
      sink += static_cast<std::size_t>(max_wins.predict(s.features));
    }
  }
  const double mw_micros = mw_timer.elapsed_micros() /
                           static_cast<double>(repeats * test.size());

  util::Table table({"method", "pairwise evals/predict", "accuracy",
                     "prediction time"});
  table.add_row({"DAGSVM", "K-1 = 2", util::fmt_percent(dag_accuracy),
                 util::fmt(dag_micros, 2) + " us"});
  table.add_row({"max-wins voting", "K(K-1)/2 = 3",
                 util::fmt_percent(mw_accuracy),
                 util::fmt(mw_micros, 2) + " us"});
  table.render(std::cout);

  std::cout << "\nshape check: DAGSVM faster at ~equal accuracy: "
            << ((dag_micros < mw_micros &&
                 std::abs(dag_accuracy - mw_accuracy) < 0.03)
                    ? "YES"
                    : "NO")
            << " (speedup " << util::fmt(mw_micros / dag_micros, 2)
            << "x; K=3 predicts 2 vs 3 machines, so ~1.5x is expected)\n"
            << "(sink=" << sink % 2 << ")\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
