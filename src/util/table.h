// Console table and CSV rendering for the benchmark harness.
//
// Every bench binary prints its reproduction of a paper table/figure as an
// aligned ASCII table (matching the paper's rows) and can optionally dump the
// same data as CSV for plotting.
#ifndef IUSTITIA_UTIL_TABLE_H_
#define IUSTITIA_UTIL_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace iustitia::util {

// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; missing trailing cells render as empty, extra cells widen
  // the table.
  void add_row(std::vector<std::string> cells);

  // Renders with a header underline and two-space column gaps.
  void render(std::ostream& os) const;

  // Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void render_csv(std::ostream& os) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimals.
std::string fmt(double value, int decimals = 2);

// Formats a fraction as a percentage string, e.g. 0.8651 -> "86.51%".
std::string fmt_percent(double fraction, int decimals = 2);

// Formats a byte count with a unit suffix (B, KB, MB).
std::string fmt_bytes(double bytes);

// Formats seconds with an adaptive unit (us / ms / s).
std::string fmt_seconds(double seconds);

// Renders a crude horizontal bar (for quick-look ASCII plots in benches).
std::string bar(double fraction, std::size_t width = 40);

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_TABLE_H_
