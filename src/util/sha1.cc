#include "util/sha1.h"

#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define IUSTITIA_SHA1_X86_DISPATCH 1
#include <immintrin.h>
#endif

namespace iustitia::util {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

// Portable FIPS 180-4 compression function over one 64-byte block.
void compress_portable(std::uint32_t h[5], const std::uint8_t* block) noexcept {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl32(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f, k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl32(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = temp;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
}

#if defined(IUSTITIA_SHA1_X86_DISPATCH)
// SHA-NI compression function: the same 80 rounds via the x86 SHA
// extensions (SHA1RNDS4 does four rounds per instruction).  Produces
// bit-identical digests to compress_portable — the FIPS vectors and the
// one-shot/incremental cross-check in test_sha1 run against whichever
// variant dispatch picks on the host.  Selected at startup only when
// cpuid reports the extensions (see g_have_sha_ni).
__attribute__((target("sha,ssse3,sse4.1"))) void compress_shani(
    std::uint32_t h[5], const std::uint8_t* block) noexcept {
  const __m128i kByteSwap =
      _mm_set_epi64x(0x0001020304050607LL, 0x08090a0b0c0d0e0fLL);

  __m128i abcd =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(h));
  abcd = _mm_shuffle_epi32(abcd, 0x1B);  // lanes: a in the high lane
  __m128i e0 = _mm_set_epi32(static_cast<int>(h[4]), 0, 0, 0);
  const __m128i abcd_save = abcd;
  const __m128i e_save = e0;
  __m128i e1;

  // Rounds 0-3.
  __m128i msg0 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 0));
  msg0 = _mm_shuffle_epi8(msg0, kByteSwap);
  e0 = _mm_add_epi32(e0, msg0);
  e1 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);

  // Rounds 4-7.
  __m128i msg1 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16));
  msg1 = _mm_shuffle_epi8(msg1, kByteSwap);
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);

  // Rounds 8-11.
  __m128i msg2 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32));
  msg2 = _mm_shuffle_epi8(msg2, kByteSwap);
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 12-15.
  __m128i msg3 =
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48));
  msg3 = _mm_shuffle_epi8(msg3, kByteSwap);
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 0);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 16-19.
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 0);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  // Rounds 20-23.
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 24-27.
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 28-31.
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 32-35.
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 1);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  // Rounds 36-39.
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 1);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 40-43.
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 44-47.
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 48-51.
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  // Rounds 52-55.
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 2);
  msg0 = _mm_sha1msg1_epu32(msg0, msg1);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 56-59.
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 2);
  msg1 = _mm_sha1msg1_epu32(msg1, msg2);
  msg0 = _mm_xor_si128(msg0, msg2);

  // Rounds 60-63.
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  msg0 = _mm_sha1msg2_epu32(msg0, msg3);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
  msg2 = _mm_sha1msg1_epu32(msg2, msg3);
  msg1 = _mm_xor_si128(msg1, msg3);

  // Rounds 64-67.
  e0 = _mm_sha1nexte_epu32(e0, msg0);
  e1 = abcd;
  msg1 = _mm_sha1msg2_epu32(msg1, msg0);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);
  msg3 = _mm_sha1msg1_epu32(msg3, msg0);
  msg2 = _mm_xor_si128(msg2, msg0);

  // Rounds 68-71.
  e1 = _mm_sha1nexte_epu32(e1, msg1);
  e0 = abcd;
  msg2 = _mm_sha1msg2_epu32(msg2, msg1);
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);
  msg3 = _mm_xor_si128(msg3, msg1);

  // Rounds 72-75.
  e0 = _mm_sha1nexte_epu32(e0, msg2);
  e1 = abcd;
  msg3 = _mm_sha1msg2_epu32(msg3, msg2);
  abcd = _mm_sha1rnds4_epu32(abcd, e0, 3);

  // Rounds 76-79.
  e1 = _mm_sha1nexte_epu32(e1, msg3);
  e0 = abcd;
  abcd = _mm_sha1rnds4_epu32(abcd, e1, 3);

  // Fold into the chaining state.
  e0 = _mm_sha1nexte_epu32(e0, e_save);
  abcd = _mm_add_epi32(abcd, abcd_save);

  abcd = _mm_shuffle_epi32(abcd, 0x1B);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(h), abcd);
  h[4] = static_cast<std::uint32_t>(_mm_extract_epi32(e0, 3));
}

bool detect_sha_ni() noexcept {
  return __builtin_cpu_supports("sha") && __builtin_cpu_supports("ssse3") &&
         __builtin_cpu_supports("sse4.1");
}

// Resolved once at startup; both callees are direct calls so the
// compression stays statically analyzable.
const bool g_have_sha_ni = detect_sha_ni();
#endif  // IUSTITIA_SHA1_X86_DISPATCH

inline void compress(std::uint32_t h[5], const std::uint8_t* block) noexcept {
#if defined(IUSTITIA_SHA1_X86_DISPATCH)
  if (g_have_sha_ni) {
    // The target("sha,...") attribute hides the definition from the
    // analyzer's parser; the callee is leaf SHA intrinsics on stack
    // state — no heap, no locks, no syscalls.
    compress_shani(h, block);  // analyze: hotpath-allow(unresolved-call)
    return;
  }
#endif
  compress_portable(h, block);
}

constexpr std::uint32_t kInitState[5] = {0x67452301u, 0xEFCDAB89u,
                                         0x98BADCFEu, 0x10325476u,
                                         0xC3D2E1F0u};

Sha1Digest digest_from_state(const std::uint32_t h[5]) noexcept {
  Sha1Digest out;
  for (int i = 0; i < 5; ++i) {
    out.bytes[static_cast<std::size_t>(4 * i)] =
        static_cast<std::uint8_t>(h[i] >> 24);
    out.bytes[static_cast<std::size_t>(4 * i + 1)] =
        static_cast<std::uint8_t>(h[i] >> 16);
    out.bytes[static_cast<std::size_t>(4 * i + 2)] =
        static_cast<std::uint8_t>(h[i] >> 8);
    out.bytes[static_cast<std::size_t>(4 * i + 3)] =
        static_cast<std::uint8_t>(h[i]);
  }
  return out;
}

}  // namespace

std::uint64_t Sha1Digest::prefix64() const noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | bytes[static_cast<std::size_t>(i)];
  return v;
}

std::string Sha1Digest::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

Sha1::Sha1() noexcept { reset(); }

void Sha1::reset() noexcept {
  for (int i = 0; i < 5; ++i) h_[i] = kInitState[i];
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) noexcept {
  compress(h_, block);
}

void Sha1::update(std::span<const std::uint8_t> data) noexcept {
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t need = 64 - buffer_len_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == 64) {
      process_block(buffer_);
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha1::update(std::string_view data) noexcept {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Sha1Digest Sha1::digest() const noexcept {
  Sha1 copy = *this;  // finalize a copy so callers may continue absorbing
  const std::uint64_t bit_len = copy.total_len_ * 8;

  std::uint8_t pad = 0x80;
  copy.update(std::span<const std::uint8_t>(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (copy.buffer_len_ != 56) {
    copy.update(std::span<const std::uint8_t>(&zero, 1));
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
  }
  copy.update(std::span<const std::uint8_t>(len_bytes, 8));

  return digest_from_state(copy.h_);
}

Sha1Digest sha1(std::span<const std::uint8_t> data) noexcept {
  // Single-block fast path: messages of at most 55 bytes pad into ONE
  // 64-byte block (data + 0x80 + zeros + 8-byte bit length), so the
  // whole digest is a stack-built block and one compression — no Sha1
  // object, no finalization copy, no byte-at-a-time padding.  This is
  // the shape of every flow-id hash (net::flow_id serializes ~13 header
  // bytes), which is why the one-shot wrapper special-cases it.
  // analyze: hotpath
  if (data.size() <= 55) {
    std::uint8_t block[64] = {};
    if (!data.empty()) std::memcpy(block, data.data(), data.size());
    block[data.size()] = 0x80;
    const std::uint64_t bit_len = static_cast<std::uint64_t>(data.size()) * 8;
    for (int i = 0; i < 8; ++i) {
      block[56 + i] = static_cast<std::uint8_t>(bit_len >> (8 * (7 - i)));
    }
    std::uint32_t h[5];
    for (int i = 0; i < 5; ++i) h[i] = kInitState[i];
    compress(h, block);
    return digest_from_state(h);
  }
  Sha1 h;
  h.update(data);
  return h.digest();
}

Sha1Digest sha1(std::string_view data) noexcept {
  Sha1 h;
  h.update(data);
  return h.digest();
}

}  // namespace iustitia::util
