// Quickstart: train a flow-nature model and classify a few byte streams.
//
// Demonstrates the minimal Iustitia workflow:
//   1. build (or bring) a labeled corpus of text/binary/encrypted content,
//   2. train a model on first-b-byte entropy vectors (the paper's H_b
//      method, which makes 32-byte buffers work),
//   3. classify raw byte windows and inspect the entropy features.
//
// Run:  ./quickstart
#include <iostream>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "datagen/corpus.h"
#include "util/table.h"

using namespace iustitia;

int main() {
  // 1. A small synthetic corpus (substitute your own labeled files here).
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 60;
  corpus_options.seed = 42;
  const auto corpus = datagen::build_corpus(corpus_options);
  std::cout << "corpus: " << corpus.size() << " files, 3 classes\n";

  // 2. Train an SVM-RBF model on 32-byte prefixes with the paper's
  //    preferred feature set {h1, h2, h3, h5}.
  core::TrainerOptions options;
  options.backend = core::Backend::kSvm;
  options.widths = entropy::svm_preferred_widths();
  options.method = core::TrainingMethod::kFirstBytes;
  options.buffer_size = 32;
  options.svm.gamma = 50.0;
  options.svm.c = 1000.0;
  core::FlowNatureModel model = core::train_model(corpus, options);
  std::cout << "trained " << core::backend_name(model.backend())
            << " model, " << model.model_space_bytes() << " bytes\n\n";

  // 3. Classify three hand-made 32-byte windows.
  util::Rng rng(7);
  const std::string prose = "The gateway forwards packets to the";
  std::vector<std::uint8_t> text_window(prose.begin(), prose.end());
  text_window.resize(32);

  const datagen::FileSample zip =
      datagen::generate_file(datagen::FileClass::kBinary, 4096, rng);
  std::vector<std::uint8_t> binary_window(zip.bytes.begin(),
                                          zip.bytes.begin() + 32);

  std::vector<std::uint8_t> encrypted_window(32);
  rng.fill_bytes(encrypted_window);  // stand-in for ciphertext

  util::Table table({"window", "h1", "h2", "h3", "h5", "predicted nature"});
  const char* names[] = {"English prose", "ZIP-like binary",
                         "random/ciphertext"};
  const std::vector<std::uint8_t>* windows[] = {&text_window, &binary_window,
                                                &encrypted_window};
  for (int i = 0; i < 3; ++i) {
    core::Classification result = model.classify(*windows[i]);
    table.add_row({names[i], util::fmt(result.features[0], 3),
                   util::fmt(result.features[1], 3),
                   util::fmt(result.features[2], 3),
                   util::fmt(result.features[3], 3),
                   datagen::class_name(result.label)});
  }
  table.render(std::cout);
  std::cout << "\nEach prediction cost ~hundreds of microseconds and ~200 "
               "bytes of counter space at b=32 (paper Table 3).\n";
  return 0;
}
