// Parameterized engine invariants: for random traces and a sweep of
// buffer sizes / configurations, structural properties of the online
// pipeline must hold regardless of classification quality.
#include <gtest/gtest.h>

#include "appproto/trace_headers.h"
#include "core/engine.h"
#include "core/trainer.h"
#include "net/trace_gen.h"

namespace iustitia::core {
namespace {

struct EngineConfigCase {
  std::size_t buffer_size;
  std::size_t header_threshold;
  bool strip_headers;
  std::size_t random_skip_max;
};

class EngineInvariants : public ::testing::TestWithParam<EngineConfigCase> {
 protected:
  static FlowNatureModel model(std::size_t buffer_size) {
    datagen::CorpusOptions corpus_options;
    corpus_options.files_per_class = 10;
    corpus_options.min_size = 2048;
    corpus_options.max_size = 4096;
    corpus_options.seed = 120;
    const auto corpus = datagen::build_corpus(corpus_options);
    TrainerOptions options;
    options.backend = Backend::kCart;
    options.widths = entropy::cart_preferred_widths();
    options.method = TrainingMethod::kFirstBytes;
    options.buffer_size = buffer_size;
    return train_model(corpus, options);
  }
};

TEST_P(EngineInvariants, StructuralPropertiesHold) {
  const EngineConfigCase& config = GetParam();
  EngineOptions options;
  options.buffer_size = config.buffer_size;
  options.header_threshold = config.header_threshold;
  options.strip_known_headers = config.strip_headers;
  options.random_skip_max = config.random_skip_max;
  Iustitia engine(model(config.buffer_size), options);

  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = 6000;
  trace_options.seed = 0xE0 + config.buffer_size;
  const net::Trace trace = net::generate_trace(trace_options);
  for (const net::Packet& p : trace.packets) engine.on_packet(p);
  engine.flush_all();

  const EngineStats& stats = engine.stats();
  // Every packet was seen exactly once.
  EXPECT_EQ(stats.packets, trace.packets.size());
  // Nothing remains pending after flush_all.
  EXPECT_EQ(engine.pending_flows(), 0u);
  EXPECT_EQ(engine.pending_buffer_bytes(), 0u);
  // One delay record per classification event.
  EXPECT_EQ(engine.delays().size(), stats.flows_classified);
  // Timed-out flows are a subset of classifications.
  EXPECT_LE(stats.flows_timed_out, stats.flows_classified);
  // CDB can only hold flows that were classified (minus removals).
  EXPECT_LE(engine.cdb().size(), stats.flows_classified);
  EXPECT_EQ(engine.cdb().stats().inserts, stats.flows_classified);

  for (const FlowDelayRecord& record : engine.delays()) {
    // Labels in range; every classified flow exists in the trace.
    ASSERT_GE(static_cast<int>(record.label), 0);
    ASSERT_LE(static_cast<int>(record.label), 2);
    ASSERT_TRUE(trace.truth.count(record.key));
    // Delay accounting is physically sensible.
    ASSERT_GE(record.tau_b, 0.0);
    ASSERT_GE(record.packets_to_fill, 1u);
    ASSERT_GE(record.hash_micros, 0.0);
    ASSERT_GE(record.cdb_micros, 0.0);
    ASSERT_GE(record.extract_micros, 0.0);
    // Never classified on more than the configured buffer.
    ASSERT_LE(record.buffered_bytes, config.buffer_size);
    ASSERT_GE(record.buffered_bytes, 1u);
    ASSERT_LE(record.classified_at,
              trace.packets.back().timestamp + 1e-9);
  }

  // Queue counters cover exactly the data packets of classified flows
  // plus classification events; they never exceed total packets + flows.
  std::uint64_t queued = 0;
  for (const std::uint64_t q : stats.queue_packets) queued += q;
  EXPECT_LE(queued, stats.packets + stats.flows_classified);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, EngineInvariants,
    ::testing::Values(EngineConfigCase{16, 0, false, 0},
                      EngineConfigCase{32, 0, true, 0},
                      EngineConfigCase{64, 128, true, 0},
                      EngineConfigCase{64, 0, false, 512},
                      EngineConfigCase{256, 256, true, 128},
                      EngineConfigCase{1024, 0, true, 0}));

}  // namespace
}  // namespace iustitia::core
