// Minimal leveled logger.
//
// Writes to stderr; the level is process-global and settable via the
// IUSTITIA_LOG environment variable (error|warn|info|debug) or set_level().
#ifndef IUSTITIA_UTIL_LOGGING_H_
#define IUSTITIA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace iustitia::util {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

// Current process-wide log level (initialized from IUSTITIA_LOG, default
// warn).
LogLevel log_level() noexcept;

// Overrides the process-wide level.
void set_log_level(LogLevel level) noexcept;

// Emits one line at `level` if the current level permits.
void log_line(LogLevel level, const std::string& message);

// Reports an unrecoverable invariant violation and aborts.  Emitted
// unconditionally (never filtered by the level) with a FATAL tag; this is
// the sink behind the CHECK/DCHECK macros of util/check.h.
[[noreturn]] void log_fatal(const std::string& message);

namespace internal {

// Stream-style helper that emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

}  // namespace iustitia::util

#define IUSTITIA_LOG_ERROR \
  ::iustitia::util::internal::LogMessage(::iustitia::util::LogLevel::kError)
#define IUSTITIA_LOG_WARN \
  ::iustitia::util::internal::LogMessage(::iustitia::util::LogLevel::kWarn)
#define IUSTITIA_LOG_INFO \
  ::iustitia::util::internal::LogMessage(::iustitia::util::LogLevel::kInfo)
#define IUSTITIA_LOG_DEBUG \
  ::iustitia::util::internal::LogMessage(::iustitia::util::LogLevel::kDebug)

#endif  // IUSTITIA_UTIL_LOGGING_H_
