// Tests for flow identification (SHA-1 over the canonical header).
#include "net/flow.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace iustitia::net {
namespace {

FlowKey sample_key() {
  return FlowKey{.src_ip = 0x0A000001,
                 .dst_ip = 0xC0A80101,
                 .src_port = 49152,
                 .dst_port = 443,
                 .protocol = Protocol::kTcp};
}

TEST(CanonicalHeaderBytes, LayoutIsBigEndian) {
  const auto bytes = canonical_header_bytes(sample_key());
  EXPECT_EQ(bytes[0], 0x0A);
  EXPECT_EQ(bytes[3], 0x01);
  EXPECT_EQ(bytes[4], 0xC0);
  EXPECT_EQ(bytes[8], 49152 >> 8);
  EXPECT_EQ(bytes[9], 49152 & 0xFF);
  EXPECT_EQ(bytes[10], 443 >> 8);
  EXPECT_EQ(bytes[11], 443 & 0xFF);
  EXPECT_EQ(bytes[12], 6);  // TCP
}

TEST(FlowId, DeterministicForSameKey) {
  EXPECT_EQ(flow_id(sample_key()), flow_id(sample_key()));
}

TEST(FlowId, EveryFieldAffectsTheId) {
  const FlowKey base = sample_key();
  const FlowId base_id = flow_id(base);

  FlowKey k = base;
  k.src_ip ^= 1;
  EXPECT_NE(flow_id(k), base_id);
  k = base;
  k.dst_ip ^= 1;
  EXPECT_NE(flow_id(k), base_id);
  k = base;
  k.src_port ^= 1;
  EXPECT_NE(flow_id(k), base_id);
  k = base;
  k.dst_port ^= 1;
  EXPECT_NE(flow_id(k), base_id);
  k = base;
  k.protocol = Protocol::kUdp;
  EXPECT_NE(flow_id(k), base_id);
}

TEST(FlowId, DirectionSensitive) {
  // Like the paper, the flow ID covers the oriented 5-tuple.
  FlowKey forward = sample_key();
  FlowKey reverse{.src_ip = forward.dst_ip,
                  .dst_ip = forward.src_ip,
                  .src_port = forward.dst_port,
                  .dst_port = forward.src_port,
                  .protocol = forward.protocol};
  EXPECT_NE(flow_id(forward), flow_id(reverse));
}

TEST(FlowKeyHash, SpreadsDistinctKeys) {
  FlowKeyHash hasher;
  std::set<std::size_t> hashes;
  for (std::uint16_t port = 1000; port < 1200; ++port) {
    FlowKey k = sample_key();
    k.src_port = port;
    hashes.insert(hasher(k));
  }
  EXPECT_EQ(hashes.size(), 200u);  // no collisions on a trivial family
}

TEST(FlowKey, UsableInUnorderedContainers) {
  std::unordered_set<FlowKey, FlowKeyHash> keys;
  keys.insert(sample_key());
  keys.insert(sample_key());
  EXPECT_EQ(keys.size(), 1u);
  FlowKey other = sample_key();
  other.dst_port = 80;
  keys.insert(other);
  EXPECT_EQ(keys.size(), 2u);
}

}  // namespace
}  // namespace iustitia::net
