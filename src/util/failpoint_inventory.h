// Central inventory of failpoint names (DESIGN.md §12).
//
// Every FAILPOINT("...") literal in the tree must appear here:
// tools/lint.py rule `failpoint-inventory` cross-checks call sites
// against this list so a typo'd name fails the build instead of
// silently never arming, and failpoints_configure() rejects specs that
// name points outside the inventory.  Keep entries sorted and comment
// where each point lives and what its armed action simulates.
#ifndef IUSTITIA_UTIL_FAILPOINT_INVENTORY_H_
#define IUSTITIA_UTIL_FAILPOINT_INVENTORY_H_

namespace iustitia::util {

inline constexpr const char* kFailpointInventory[] = {
    "cdb.insert",    // core/cdb.cc: alloc-fail skips caching the record
    "ctrl.request",  // ctrl/admin.cc: error turns any request into a 500
    "ring.push",     // runtime/runtime.cc dispatcher: delay emulates a
                     // slow ring consumer at the push site
    "source.next",   // runtime/packet_source.cc: error surfaces a
                     // transient read failure (retried by the dispatcher)
    "test.probe",    // unit tests only (tests/test_failpoint.cc)
    "worker.stall",  // runtime/runtime.cc worker loop: stall pins a
                     // shard long enough to trip the watchdog
};

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_FAILPOINT_INVENTORY_H_
