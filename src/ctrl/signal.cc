#include "ctrl/signal.h"

#include <csignal>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

#include "util/check.h"

namespace iustitia::ctrl {

namespace {

// The handler's only channel: the pipe's write end.  Plain atomic int so
// the async-signal context does one relaxed load + one write(2).
std::atomic<int> g_signal_write_fd{-1};  // analyze: atomic(relaxed-flag)

// Dispositions we replaced, restored by the destructor.
struct sigaction g_old_int;   // analyze: escape(written before handlers install, read after restore)
struct sigaction g_old_term;  // analyze: escape(written before handlers install, read after restore)

void signal_handler(int /*signo*/) {
  const int fd = g_signal_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    // Best effort: a full pipe means a byte is already in flight, which
    // is all the watcher needs.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

SignalDrain::SignalDrain(std::function<void()> on_signal)
    : on_signal_(std::move(on_signal)) {
  CHECK(on_signal_ != nullptr) << "SignalDrain needs a callback";
  CHECK_EQ(g_signal_write_fd.load(std::memory_order_relaxed), -1)
      << "only one SignalDrain at a time (process dispositions are global)";

  int fds[2] = {-1, -1};
  CHECK_EQ(::pipe(fds), 0) << "SignalDrain: pipe() failed";
  // Non-blocking write end: the handler must never block in signal
  // context, no matter how many signals pile up.
  ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
  read_fd_.store(fds[0], std::memory_order_relaxed);
  write_fd_.store(fds[1], std::memory_order_relaxed);
  g_signal_write_fd.store(fds[1], std::memory_order_relaxed);

  struct sigaction action{};
  action.sa_handler = &signal_handler;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, &g_old_int);
  ::sigaction(SIGTERM, &action, &g_old_term);

  watcher_ = std::thread([this] { watch(); });
}

SignalDrain::~SignalDrain() {
  // Unhook the handler first, then poke the watcher awake with a
  // sentinel so it exits even when no signal ever arrived.
  ::sigaction(SIGINT, &g_old_int, nullptr);
  ::sigaction(SIGTERM, &g_old_term, nullptr);
  const int write_fd = write_fd_.load(std::memory_order_relaxed);
  const char quit = 'q';
  [[maybe_unused]] const ssize_t n = ::write(write_fd, &quit, 1);
  if (watcher_.joinable()) watcher_.join();
  g_signal_write_fd.store(-1, std::memory_order_relaxed);
  ::close(write_fd);
  ::close(read_fd_.load(std::memory_order_relaxed));
}

void SignalDrain::watch() {
  const int read_fd = read_fd_.load(std::memory_order_relaxed);
  char byte = 0;
  for (;;) {
    const ssize_t n = ::read(read_fd, &byte, 1);
    if (n < 0) continue;  // EINTR: retry
    if (n == 0 || byte == 'q') return;  // destructor sentinel
    break;  // a real signal byte
  }
  triggered_.store(true, std::memory_order_relaxed);
  // Second Ctrl-C should kill a process wedged inside the drain: hand
  // the dispositions back to the default before draining.
  ::sigaction(SIGINT, &g_old_int, nullptr);
  ::sigaction(SIGTERM, &g_old_term, nullptr);
  on_signal_();
  // Keep consuming bytes until the destructor's sentinel so repeated
  // pre-restore signals cannot leave the pipe readable forever.
  for (;;) {
    const ssize_t n = ::read(read_fd, &byte, 1);
    if (n < 0) continue;
    if (n == 0 || byte == 'q') return;
  }
}

}  // namespace iustitia::ctrl
