// Control-plane tests: HTTP parsing, response serialization, the
// Prometheus renderer, socket round-trips through HttpServer, and the
// AdminServer endpoints including a model hot-swap upload.
#include "ctrl/admin.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/model_bundle.h"
#include "core/model_registry.h"
#include "ctrl/http.h"
#include "ctrl/prometheus.h"
#include "runtime/metrics.h"
#include "runtime/runtime.h"
#include "util/failpoint.h"

namespace iustitia::ctrl {
namespace {

// ---------------------------------------------------------------- parsing

TEST(HttpParse, RequestLineAndHeaders) {
  HttpRequest req;
  std::string error;
  ASSERT_TRUE(parse_request_head(
      "POST /model HTTP/1.1\r\nHost: localhost\r\nContent-Length: 12\r\n",
      req, error))
      << error;
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/model");
  EXPECT_EQ(req.version, "HTTP/1.1");
  EXPECT_EQ(req.header("host"), "localhost");          // case-insensitive
  EXPECT_EQ(req.header("CONTENT-LENGTH"), "12");
  EXPECT_EQ(req.content_length(), 12u);
  EXPECT_EQ(req.header("absent"), "");
}

TEST(HttpParse, ToleratesBareLfAndWhitespace) {
  HttpRequest req;
  std::string error;
  ASSERT_TRUE(parse_request_head(
      "GET /healthz HTTP/1.1\nX-Pad:   spaced value  \n", req, error));
  EXPECT_EQ(req.header("x-pad"), "spaced value");
}

TEST(HttpParse, RejectsMalformedInput) {
  HttpRequest req;
  std::string error;
  EXPECT_FALSE(parse_request_head("", req, error));
  EXPECT_FALSE(parse_request_head("GETonly\r\n", req, error));
  EXPECT_FALSE(parse_request_head("GET /x NOTHTTP\r\n", req, error));
  EXPECT_FALSE(
      parse_request_head("GET /x HTTP/1.1\r\nbroken header line\r\n", req,
                         error));
  EXPECT_FALSE(error.empty());
}

TEST(HttpParse, ContentLengthEdgeCases) {
  HttpRequest req;
  std::string error;
  ASSERT_TRUE(parse_request_head("GET / HTTP/1.1\r\n", req, error));
  EXPECT_EQ(req.content_length(), 0u);  // absent
  ASSERT_TRUE(parse_request_head(
      "GET / HTTP/1.1\r\nContent-Length: 12junk\r\n", req, error));
  EXPECT_EQ(req.content_length(), static_cast<std::size_t>(-1));
  ASSERT_TRUE(parse_request_head(
      "GET / HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n", req,
      error));
  EXPECT_EQ(req.content_length(), static_cast<std::size_t>(-1));  // overflow
}

TEST(HttpResponseTest, StatusReasons) {
  EXPECT_STREQ(status_reason(200), "OK");
  EXPECT_STREQ(status_reason(400), "Bad Request");
  EXPECT_STREQ(status_reason(404), "Not Found");
  EXPECT_STREQ(status_reason(405), "Method Not Allowed");
  EXPECT_STREQ(status_reason(503), "Service Unavailable");
  EXPECT_STREQ(status_reason(299), "Unknown");
}

TEST(HttpResponseTest, SerializesFraming) {
  const HttpResponse resp = text_response(404, "nope\n");
  const std::string wire = resp.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "nope\n");
}

// ------------------------------------------------------------- prometheus

TEST(Prometheus, RendersCoreSeries) {
  runtime::MetricsSnapshot snap;
  snap.shards = 2;
  snap.rings.resize(2);
  snap.rings[0].pushed = 10;
  snap.rings[1].dropped = 3;
  snap.flows_by_nature = {4, 5, 6};
  snap.model_version = "v7";
  snap.model_swaps = 2;
  snap.uptime_seconds = 1.5;

  const std::string text = render_prometheus(snap);
  EXPECT_NE(text.find("# TYPE iustitia_uptime_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("iustitia_model_info{version=\"v7\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("iustitia_model_swaps_total 2"), std::string::npos);
  EXPECT_NE(text.find("iustitia_ring_pushed_total{shard=\"0\"} 10"),
            std::string::npos);
  EXPECT_NE(text.find("iustitia_ring_dropped_total{shard=\"1\"} 3"),
            std::string::npos);
  EXPECT_NE(
      text.find("iustitia_flows_classified_total{nature=\"encrypted\"} 6"),
      std::string::npos);
  // No queue stats folded in -> no output series.
  EXPECT_EQ(text.find("iustitia_output_enqueued_total"), std::string::npos);
}

TEST(Prometheus, EscapesLabelValues) {
  EXPECT_EQ(prometheus_label_escape("plain"), "plain");
  EXPECT_EQ(prometheus_label_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ------------------------------------------------------- socket round-trip

// Minimal blocking client: one request, reads to connection close.
std::string http_exchange(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    reply.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

std::string get(std::uint16_t port, const std::string& target) {
  return http_exchange(port, "GET " + target +
                                 " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string post(std::uint16_t port, const std::string& target,
                 const std::string& body) {
  return http_exchange(port, "POST " + target +
                                 " HTTP/1.1\r\nHost: t\r\nContent-Length: " +
                                 std::to_string(body.size()) + "\r\n\r\n" +
                                 body);
}

TEST(HttpServerTest, ServesConcurrentRequestsAndStops) {
  HttpServer::Options options;
  HttpServer server(options, [](const HttpRequest& req) {
    return text_response(200, "echo:" + req.target + ":" + req.body);
  });
  server.start();
  ASSERT_GT(server.port(), 0);

  EXPECT_NE(get(server.port(), "/a").find("echo:/a:"), std::string::npos);
  EXPECT_NE(post(server.port(), "/b", "payload").find("echo:/b:payload"),
            std::string::npos);
  // Malformed request line -> 400, not a wedge.
  EXPECT_NE(http_exchange(server.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);
  server.stop();
  server.stop();  // idempotent
}

TEST(HttpServerTest, HandlerExceptionBecomes500) {
  HttpServer::Options options;
  HttpServer server(options, [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("boom");
  });
  server.start();
  const std::string reply = get(server.port(), "/x");
  EXPECT_NE(reply.find("500"), std::string::npos);
  EXPECT_NE(reply.find("boom"), std::string::npos);
}

// ----------------------------------------------------------------- admin

core::FlowNatureModel tiny_model() {
  return core::FlowNatureModel(core::Backend::kCart, std::vector<int>{1});
}

std::string bundle_bytes(const std::string& metadata) {
  std::ostringstream out;
  core::save_model_bundle(tiny_model(), metadata, out);
  return out.str();
}

struct AdminHarness {
  std::shared_ptr<core::ModelRegistry> registry;
  std::unique_ptr<runtime::Runtime> rt;
  std::unique_ptr<AdminServer> admin;

  AdminHarness() {
    runtime::RuntimeOptions options;
    options.shards = 2;
    registry = std::make_shared<core::ModelRegistry>(
        options.shards,
        std::make_shared<const core::FlowNatureModel>(tiny_model()), "v1");
    rt = std::make_unique<runtime::Runtime>(registry, options);
    admin = std::make_unique<AdminServer>(rt.get(), registry,
                                          HttpServer::Options{});
    admin->start();
  }
};

TEST(AdminServerTest, HealthMetricsAndStats) {
  AdminHarness h;
  EXPECT_NE(get(h.admin->port(), "/healthz").find("200 OK"),
            std::string::npos);
  const std::string metrics = get(h.admin->port(), "/metrics");
  EXPECT_NE(metrics.find("iustitia_model_info{version=\"v1\"} 1"),
            std::string::npos);
  const std::string stats = get(h.admin->port(), "/stats.json");
  EXPECT_NE(stats.find("\"model_version\": \"v1\""), std::string::npos);
  EXPECT_NE(get(h.admin->port(), "/missing").find("404"), std::string::npos);
  // Method mismatches are 405, not handled-as-GET.
  EXPECT_NE(post(h.admin->port(), "/healthz", "x").find("405"),
            std::string::npos);
  EXPECT_NE(get(h.admin->port(), "/model").find("405"), std::string::npos);
}

TEST(AdminServerTest, ModelUploadSwapsAndRejectsCorrupt) {
  AdminHarness h;
  // Valid bundle -> swapped at epoch 2.
  const std::string ok =
      post(h.admin->port(), "/model", bundle_bytes("v2 retrained"));
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("\"version\": \"v2\""), std::string::npos);
  EXPECT_EQ(h.registry->swap_count(), 1u);
  EXPECT_EQ(h.registry->current_version(), "v2");

  // One flipped payload byte -> CRC mismatch -> 400, nothing published.
  std::string corrupt = bundle_bytes("v3 bad");
  corrupt[corrupt.size() / 2] ^= 0x01;
  const std::string rejected = post(h.admin->port(), "/model", corrupt);
  EXPECT_NE(rejected.find("400"), std::string::npos);
  EXPECT_NE(rejected.find("rejected"), std::string::npos);
  EXPECT_EQ(h.registry->swap_count(), 1u);

  // Empty body -> 400.
  EXPECT_NE(post(h.admin->port(), "/model", "").find("400"),
            std::string::npos);
  // The swap is visible through the runtime snapshot too.
  const std::string stats = get(h.admin->port(), "/stats.json");
  EXPECT_NE(stats.find("\"model_version\": \"v2\""), std::string::npos);
  EXPECT_NE(stats.find("\"model_swaps\": 1"), std::string::npos);
}

TEST(AdminServerTest, ReadyzReportsHealthAndDraining) {
  AdminHarness h;
  // Idle runtime: ready, body carries the health string.
  const std::string ready = get(h.admin->port(), "/readyz");
  EXPECT_NE(ready.find("200 OK"), std::string::npos);
  EXPECT_NE(ready.find("ok"), std::string::npos);
  EXPECT_NE(post(h.admin->port(), "/readyz", "").find("405"),
            std::string::npos);
  // After /quitquitquit the process is still *live* but not *ready*.
  post(h.admin->port(), "/quitquitquit", "");
  EXPECT_NE(get(h.admin->port(), "/healthz").find("200 OK"),
            std::string::npos);
  const std::string draining = get(h.admin->port(), "/readyz");
  EXPECT_NE(draining.find("503"), std::string::npos);
  EXPECT_NE(draining.find("draining"), std::string::npos);
}

TEST(AdminServerTest, FailpointsEndpointListsArmsAndRejects) {
  util::failpoints_disarm_all();
  AdminHarness h;
  // GET: every inventory point is listed, disarmed.
  const std::string listing = get(h.admin->port(), "/failpoints");
  EXPECT_NE(listing.find("200 OK"), std::string::npos);
  EXPECT_NE(listing.find("\"test.probe\""), std::string::npos);
  EXPECT_NE(listing.find("\"armed\": false"), std::string::npos);

  // POST arms at runtime; the armed spec shows up in the next GET.
  const std::string armed =
      post(h.admin->port(), "/failpoints", "test.probe=error(0.5)");
  EXPECT_NE(armed.find("200 OK"), std::string::npos);
  const std::string after = get(h.admin->port(), "/failpoints");
  EXPECT_NE(after.find("\"spec\": \"error(0.5)\""), std::string::npos);
  EXPECT_NE(after.find("\"armed\": true"), std::string::npos);

  // A bad spec is rejected atomically with a 400 and the parser's error.
  const std::string rejected =
      post(h.admin->port(), "/failpoints", "test.probe=explode");
  EXPECT_NE(rejected.find("400"), std::string::npos);
  EXPECT_NE(rejected.find("rejected"), std::string::npos);

  // POST "off" disarms everything.
  EXPECT_NE(post(h.admin->port(), "/failpoints", "off").find("200 OK"),
            std::string::npos);
  EXPECT_EQ(get(h.admin->port(), "/failpoints").find("\"armed\": true"),
            std::string::npos);
  util::failpoints_disarm_all();
}

TEST(AdminServerTest, CtrlRequestFailpointInjectsServerErrors) {
  util::failpoints_disarm_all();
  AdminHarness h;
  ASSERT_EQ(util::failpoints_configure("ctrl.request=error"), "");
  // Every admin request now fails up front — including /failpoints
  // itself, which is why recovery below goes through the in-process API.
  EXPECT_NE(get(h.admin->port(), "/healthz").find("500"),
            std::string::npos);
  util::failpoints_disarm_all();
  EXPECT_NE(get(h.admin->port(), "/healthz").find("200 OK"),
            std::string::npos);
}

// Slowloris guard: a client that connects and then trickles (or stops
// sending entirely) must get a 408 and its handler thread back — it
// cannot pin the server for longer than the idle timeout.
TEST(HttpServerTest, IdleClientGets408AndDoesNotPinTheServer) {
  HttpServer::Options options;
  options.idle_timeout_millis = 100;
  HttpServer server(options, [](const HttpRequest&) {
    return text_response(200, "served\n");
  });
  server.start();
  ASSERT_GT(server.port(), 0);

  const auto start = std::chrono::steady_clock::now();
  // Send half a request line and then go silent.
  const std::string reply = http_exchange(server.port(), "GET /stuck HT");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_NE(reply.find("408"), std::string::npos) << reply;
  EXPECT_NE(reply.find("Request Timeout"), std::string::npos) << reply;
  // The connection was cut by the timeout, not by the 5s total deadline.
  EXPECT_LT(elapsed, std::chrono::seconds(4));
  // And the server still answers a well-formed request afterwards.
  EXPECT_NE(get(server.port(), "/ok").find("served"), std::string::npos);
  server.stop();
}

TEST(HttpServerTest, ZeroIdleTimeoutDisablesTheGuard) {
  HttpServer::Options options;
  options.idle_timeout_millis = 0;
  HttpServer server(options, [](const HttpRequest&) {
    return text_response(200, "served\n");
  });
  server.start();
  // A normal request still round-trips with the guard off.
  EXPECT_NE(get(server.port(), "/ok").find("served"), std::string::npos);
  server.stop();
}

TEST(AdminServerTest, QuitLatch) {
  AdminHarness h;
  EXPECT_FALSE(h.admin->quit_requested());
  EXPECT_NE(post(h.admin->port(), "/quitquitquit", "").find("draining"),
            std::string::npos);
  EXPECT_TRUE(h.admin->quit_requested());
  h.admin->wait_for_quit();  // already latched: returns immediately
}

}  // namespace
}  // namespace iustitia::ctrl
