file(REMOVE_RECURSE
  "CMakeFiles/iustitia_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/iustitia_bench_common.dir/bench_common.cc.o.d"
  "libiustitia_bench_common.a"
  "libiustitia_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
