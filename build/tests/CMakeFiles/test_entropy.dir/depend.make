# Empty dependencies file for test_entropy.
# This may be replaced when dependencies are built.
