#!/usr/bin/env python3
"""Perf-smoke gate: compare a bench JSON against its checked-in baseline.

Usage: tools/perf_check.py CURRENT.json BASELINE.json [TOLERANCE]

Both files use the bench JSON schema: a top-level "results" list of rows.
Rows are matched between the two files by the fields named in the
baseline's "key_fields" list (default: width_set + buffer_bytes, the
bench_entropy_kernel key).  For every row in the baseline, the matching
current row must reach at least (1 - TOLERANCE) of the baseline value for
each metric named in the baseline's "gated_metrics" list (default:
speedup only, which is the machine-portable metric).  TOLERANCE defaults
to 0.30, i.e. the gate fails on a >30% regression.

The baseline is refreshed deliberately: rerun the bench on the reference
machine, inspect the diff, and commit the new JSON alongside the change
that moved the numbers.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_TOLERANCE = 0.30
DEFAULT_GATED_METRICS = ["speedup"]
DEFAULT_KEY_FIELDS = ["width_set", "buffer_bytes"]


def rows_by_key(doc: dict,
                key_fields: list[str]) -> dict[tuple[str, ...], dict]:
    # Stringify key parts so 1024 and "1024" key identically across docs.
    return {tuple(str(r[f]) for f in key_fields): r
            for r in doc.get("results", [])}


def main(argv: list[str]) -> int:
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    current_path, baseline_path = Path(argv[1]), Path(argv[2])
    tolerance = float(argv[3]) if len(argv) > 3 else DEFAULT_TOLERANCE

    baseline_doc = json.loads(baseline_path.read_text())
    key_fields = baseline_doc.get("key_fields", DEFAULT_KEY_FIELDS)
    current = rows_by_key(json.loads(current_path.read_text()), key_fields)
    baseline = rows_by_key(baseline_doc, key_fields)
    metrics = baseline_doc.get("gated_metrics", DEFAULT_GATED_METRICS)

    failures: list[str] = []
    checked = 0
    for key, base_row in sorted(baseline.items()):
        label = "/".join(key)
        cur_row = current.get(key)
        if cur_row is None:
            failures.append(f"{label}: missing from {current_path}")
            continue
        for metric in metrics:
            base = float(base_row[metric])
            got = float(cur_row[metric])
            floor = base * (1.0 - tolerance)
            checked += 1
            status = "ok" if got >= floor else "REGRESSION"
            print(f"perf_check: {label} {metric}: "
                  f"{got:.3g} vs baseline {base:.3g} "
                  f"(floor {floor:.3g}) {status}")
            if got < floor:
                failures.append(
                    f"{label}: {metric} {got:.3g} < floor {floor:.3g} "
                    f"(baseline {base:.3g}, tolerance {tolerance:.0%})")

    if failures:
        print("perf_check: FAILED", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"perf_check: {checked} metric(s) within {tolerance:.0%} "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
