// Labeled feature datasets and stratified resampling.
//
// Every classifier in this library consumes a Dataset: rows of double
// features with an integer class label in [0, num_classes).  Splitting
// helpers are stratified so that the equal-per-class draws of the paper's
// 10-fold cross-validation (Section 3.2) are reproducible.
#ifndef IUSTITIA_ML_DATASET_H_
#define IUSTITIA_ML_DATASET_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::ml {

// One labeled observation.
struct Sample {
  std::vector<double> features;
  int label = 0;
};

// A labeled dataset with a fixed feature dimensionality.
class Dataset {
 public:
  Dataset() = default;

  // `num_classes` fixes the label range; labels outside [0, num_classes)
  // are rejected by add().
  explicit Dataset(int num_classes)
      : num_classes_(num_classes), classes_preset_(true) {}

  // Adds one sample; the first add() fixes the feature dimension, later
  // adds must match it.  Throws std::invalid_argument on mismatch.
  void add(std::vector<double> features, int label);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }
  std::size_t feature_count() const noexcept { return feature_count_; }
  int num_classes() const noexcept { return num_classes_; }

  const Sample& operator[](std::size_t i) const noexcept { return samples_[i]; }
  std::span<const Sample> samples() const noexcept { return samples_; }

  // Number of samples carrying each label.
  std::vector<std::size_t> class_counts() const;

  // Dataset restricted to the given row indices.
  Dataset subset(std::span<const std::size_t> indices) const;

  // Dataset with features restricted to the given column indices, in order.
  Dataset project(std::span<const std::size_t> feature_indices) const;

  // Randomly keeps at most `per_class` samples of each class.
  Dataset balanced_sample(std::size_t per_class, util::Rng& rng) const;

  // Shuffles sample order in place.
  void shuffle(util::Rng& rng);

 private:
  int num_classes_ = 0;
  bool classes_preset_ = false;  // construction fixed the label range
  std::size_t feature_count_ = 0;
  std::vector<Sample> samples_;
};

// One train/test split.
struct Split {
  Dataset train;
  Dataset test;
};

// Stratified k-fold assignment: returns, for each fold, the test-row
// indices; each class's rows are spread evenly across folds.
std::vector<std::vector<std::size_t>> stratified_folds(const Dataset& data,
                                                       std::size_t folds,
                                                       util::Rng& rng);

// Materializes fold `fold_index` of a stratified k-fold split.
Split stratified_fold_split(const Dataset& data,
                            const std::vector<std::vector<std::size_t>>& folds,
                            std::size_t fold_index);

// Single stratified holdout split with the given train fraction.
Split stratified_holdout(const Dataset& data, double train_fraction,
                         util::Rng& rng);

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_DATASET_H_
