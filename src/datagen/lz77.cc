#include "datagen/lz77.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

namespace iustitia::datagen {

namespace {

constexpr std::size_t kWindow = 65535;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

std::vector<std::uint8_t> lz77_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);

  // Hash chains: head[h] = most recent position with hash h; prev[i % window]
  // links to the previous position with the same hash.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(kWindow + 1, -1);

  std::size_t pos = 0;
  std::size_t flag_index = 0;
  int flag_bit = 8;  // forces a new flag byte on first token

  auto begin_token = [&](bool is_match) {
    if (flag_bit == 8) {
      flag_index = out.size();
      out.push_back(0);
      flag_bit = 0;
    }
    if (is_match) {
      out[flag_index] = static_cast<std::uint8_t>(
          out[flag_index] | (1u << flag_bit));
    }
    ++flag_bit;
  };

  auto insert_pos = [&](std::size_t p) {
    if (p + 4 <= input.size()) {
      const std::uint32_t h = hash4(input.data() + p);
      prev[p % (kWindow + 1)] = head[h];
      head[h] = static_cast<std::int64_t>(p);
    }
  };

  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_offset = 0;
    if (pos + kMinMatch <= input.size()) {
      const std::uint32_t h = hash4(input.data() + pos);
      std::int64_t cand = head[h];
      int chain_budget = 32;  // bounded search keeps compression O(n)
      while (cand >= 0 && chain_budget-- > 0) {
        const auto cpos = static_cast<std::size_t>(cand);
        if (pos - cpos > kWindow) break;
        const std::size_t limit =
            std::min(kMaxMatch, input.size() - pos);
        std::size_t len = 0;
        while (len < limit && input[cpos + len] == input[pos + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_offset = pos - cpos;
          if (len >= limit) break;
        }
        cand = prev[cpos % (kWindow + 1)];
      }
    }

    if (best_len >= kMinMatch) {
      begin_token(true);
      out.push_back(static_cast<std::uint8_t>(best_offset & 0xFF));
      out.push_back(static_cast<std::uint8_t>(best_offset >> 8));
      out.push_back(static_cast<std::uint8_t>(best_len - kMinMatch));
      for (std::size_t i = 0; i < best_len; ++i) insert_pos(pos + i);
      pos += best_len;
    } else {
      begin_token(false);
      out.push_back(input[pos]);
      insert_pos(pos);
      ++pos;
    }
  }
  return out;
}

std::vector<std::uint8_t> lz77_decompress(
    std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  int flag_bit = 8;
  std::uint8_t flags = 0;
  while (pos < input.size()) {
    if (flag_bit == 8) {
      flags = input[pos++];
      flag_bit = 0;
      if (pos >= input.size()) break;  // trailing flag byte with no tokens
    }
    const bool is_match = (flags >> flag_bit) & 1u;
    ++flag_bit;
    if (is_match) {
      if (pos + 3 > input.size()) {
        throw std::runtime_error("lz77: truncated match token");
      }
      const std::size_t offset = static_cast<std::size_t>(input[pos]) |
                                 (static_cast<std::size_t>(input[pos + 1]) << 8);
      const std::size_t length = kMinMatch + input[pos + 2];
      pos += 3;
      if (offset == 0 || offset > out.size()) {
        throw std::runtime_error("lz77: invalid match offset");
      }
      // Byte-by-byte copy: overlapping matches (offset < length) are legal
      // and reproduce runs.
      std::size_t src = out.size() - offset;
      for (std::size_t i = 0; i < length; ++i) {
        out.push_back(out[src + i]);
      }
    } else {
      out.push_back(input[pos++]);
    }
  }
  return out;
}

}  // namespace iustitia::datagen
