#include "dpi/signature_set.h"

#include "datagen/markov_text.h"

namespace iustitia::dpi {

std::vector<std::string> generate_text_signatures(std::size_t count,
                                                  util::Rng& rng) {
  static constexpr const char* kShapes[] = {
      "select %w from %w",   "<script>%w",       "../../%w/%w",
      "%w=%w' or '1'='1",    "/cgi-bin/%w.%w",   "cmd.exe /c %w",
      "union select %w",     "%w.php?%w=",       "etc/passwd",
      "javascript:%w(",      "onerror=%w(",      "wget http://%w/%w",
  };
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string shape = kShapes[rng.next_below(std::size(kShapes))];
    std::string sig;
    for (std::size_t at = 0; at < shape.size(); ++at) {
      if (at + 1 < shape.size() && shape[at] == '%' && shape[at + 1] == 'w') {
        sig += datagen::random_word(rng, 3, 8);
        ++at;
      } else {
        sig.push_back(shape[at]);
      }
    }
    out.push_back(std::move(sig));
  }
  return out;
}

std::vector<std::string> generate_binary_signatures(std::size_t count,
                                                    util::Rng& rng) {
  std::vector<std::string> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(4, 12));
    std::string sig(len, '\0');
    for (char& c : sig) {
      // Opcode-ish bytes; avoid 0x00 runs that would match everything in
      // zero-padded sections.
      c = static_cast<char>(rng.uniform_int(1, 255));
    }
    out.push_back(std::move(sig));
  }
  return out;
}

namespace {

std::vector<std::string> concat(std::vector<std::string> a,
                                const std::vector<std::string>& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

}  // namespace

SignatureEngine::SignatureEngine(std::vector<std::string> text_rules,
                                 std::vector<std::string> binary_rules)
    : text_(text_rules),
      binary_(binary_rules),
      combined_(concat(std::move(text_rules), binary_rules)) {}

SignatureEngine SignatureEngine::generate(std::size_t text_rules,
                                          std::size_t binary_rules,
                                          util::Rng& rng) {
  return SignatureEngine(generate_text_signatures(text_rules, rng),
                         generate_binary_signatures(binary_rules, rng));
}

}  // namespace iustitia::dpi
