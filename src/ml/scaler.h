// Feature scaling.
//
// Entropy features are already in [0, 1] by construction, but the RBF SVM
// is sensitive to per-feature spread, so the trainer fits a min-max scaler
// on the training split and applies it to test/inference inputs.
#ifndef IUSTITIA_ML_SCALER_H_
#define IUSTITIA_ML_SCALER_H_

#include <span>
#include <vector>

#include "ml/dataset.h"

namespace iustitia::ml {

// Per-feature min-max scaler mapping training range to [0, 1].
class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  // Learns per-feature min/max from `data`; constant features map to 0.
  void fit(const Dataset& data);

  // Whether fit() has been called on a non-empty dataset.
  bool fitted() const noexcept { return !mins_.empty(); }

  // Scales one feature vector (unfitted scaler = identity).
  std::vector<double> transform(std::span<const double> features) const;

  // Scales every sample of a dataset.
  Dataset transform(const Dataset& data) const;

  std::span<const double> mins() const noexcept { return mins_; }
  std::span<const double> maxs() const noexcept { return maxs_; }

  // Restores state from serialized bounds (sizes must match).
  void restore(std::vector<double> mins, std::vector<double> maxs);

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_SCALER_H_
