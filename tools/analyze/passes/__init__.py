"""Analyzer passes.  Each exposes run(ctx) -> list[Finding]."""

from passes import (annotations, atomics, contracts, deadcode, escape,
                    hotpath, layering, lockorder, locks)

PASSES = {
    "layering": layering.run,
    "locks": locks.run,
    "lockorder": lockorder.run,
    "atomics": atomics.run,
    "escape": escape.run,
    "deadcode": deadcode.run,
    "contracts": contracts.run,
    "hotpath": hotpath.run,
    "annotations": annotations.run,
}
