// Offline flow reassembly: groups a packet stream by 5-tuple and keeps
// per-flow byte prefixes and timing statistics.  Used by trace analysis
// benches (Figs. 9 and 10) and by examples that need whole flows.
#ifndef IUSTITIA_NET_FLOW_TABLE_H_
#define IUSTITIA_NET_FLOW_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "net/packet.h"

namespace iustitia::net {

// Aggregated view of one flow.
struct FlowRecord {
  FlowKey key;
  std::size_t packets = 0;
  std::size_t data_packets = 0;
  std::uint64_t payload_bytes = 0;
  double first_seen = 0.0;
  double last_seen = 0.0;
  bool saw_fin = false;
  bool saw_rst = false;
  std::vector<std::uint8_t> prefix;  // first prefix_limit payload bytes
  std::vector<double> data_packet_times;
};

// Reassembles flows from packets fed in timestamp order.
class FlowTable {
 public:
  // `prefix_limit` caps how many payload bytes are retained per flow.
  explicit FlowTable(std::size_t prefix_limit = 4096)
      : prefix_limit_(prefix_limit) {}

  void add(const Packet& packet);

  std::size_t flow_count() const noexcept { return flows_.size(); }
  const std::unordered_map<FlowKey, FlowRecord, FlowKeyHash>& flows()
      const noexcept {
    return flows_;
  }

 private:
  std::size_t prefix_limit_;
  std::unordered_map<FlowKey, FlowRecord, FlowKeyHash> flows_;
};

}  // namespace iustitia::net

#endif  // IUSTITIA_NET_FLOW_TABLE_H_
