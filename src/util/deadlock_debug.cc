#include "util/deadlock_debug.h"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <string_view>
#include <unistd.h>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/rt_guard.h"

namespace iustitia::util::deadlock {
namespace {

constexpr const char* kAnon = "<anon>";

struct HeldLock {
  const void* mu;
  const char* name;  // nullptr for unnamed mutexes
};

// The registry guards its edge set with a raw std::mutex, never
// util::Mutex: the hooks run inside util::Mutex::lock() and an
// instrumented registry lock would recurse into itself.
struct Registry {
  std::mutex mu;
  // Directed name pairs ever observed: held .first, then acquired .second.
  std::set<std::pair<std::string, std::string>> edges;
};

Registry& registry() {
  // Leaked so the atexit graph writer can still read it during static
  // destruction.
  static Registry* r = new Registry;  // NOLINT(no-owning-new)
  return *r;
}

std::vector<HeldLock>& held_stack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

const char* display(const char* name) { return name ? name : kAnon; }

// Records held->acquired edges for `name` and, when `check` is set,
// FATALs if the reverse of any new edge was already observed.
void record_edges(const char* name, bool check) {
  const auto& stack = held_stack();
  if (stack.empty()) return;
  Registry& reg = registry();
  std::lock_guard<std::mutex> guard(reg.mu);
  for (const HeldLock& held : stack) {
    const char* held_name = display(held.name);
    const char* next_name = display(name);
    if (std::string_view(held_name) == next_name) {
      continue;  // instance-level ordering within one class is the
                 // caller's contract, not this graph's
    }
    if (check) {
      CHECK(reg.edges.find({next_name, held_name}) == reg.edges.end())
          << "lock-order inversion: this thread acquires '" << next_name
          << "' while holding '" << held_name << "', but the opposite "
          << "order was already observed; one of the two paths can "
          << "deadlock (static graph: tools/analyze --lock-graph-out)";
    }
    reg.edges.insert({held_name, next_name});
  }
}

void write_graphs_at_exit() {
  const char* dir = std::getenv("IUSTITIA_LOCK_GRAPH_OUT");
  if (dir == nullptr || *dir == '\0') return;
  write_graph(std::string(dir) + "/lock_graph." +
              std::to_string(::getpid()) + ".json");
}

// Installs the atexit hook the first time any mutex is touched.  A
// FATALed process aborts without running atexit handlers, so death-test
// children never emit partial graphs.
void ensure_exit_hook() {
  static std::atomic<bool> installed{false};
  if (!installed.exchange(true)) std::atexit(write_graphs_at_exit);
}

}  // namespace

void on_acquire(const void* mu, const char* name) {
  // The detector's own bookkeeping — held-stack growth, edge-set nodes,
  // the registry's raw mutex — is instrumentation overhead, not
  // application behavior.  Exempt it from rt-guard accounting so a
  // IUSTITIA_DEADLOCK_DEBUG build does not report the probe itself as a
  // hot-path violation (the first lock a fresh thread takes inside a
  // GuardRegion would otherwise count the stack's initial allocation).
  rt::AllowScope rt_allow(rt::kAlloc | rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block)
  ensure_exit_hook();
  for (const HeldLock& held : held_stack()) {
    CHECK(held.mu != mu) << "recursive acquisition of mutex '"
                         << display(name) << "' (already held by this "
                         << "thread); util::Mutex is not reentrant";
  }
  // Check + record BEFORE blocking: a true inversion must crash with
  // both orders named, not hang in std::mutex::lock().
  record_edges(name, /*check=*/true);
  held_stack().push_back({mu, name});
}

void on_acquired_try(const void* mu, const char* name) {
  // Same instrumentation-overhead exemption as on_acquire().
  rt::AllowScope rt_allow(rt::kAlloc | rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block)
  ensure_exit_hook();
  // A successful try_lock cannot deadlock; record the ordering silently
  // so the observed graph stays complete.
  record_edges(name, /*check=*/false);
  held_stack().push_back({mu, name});
}

void on_release(const void* mu) {
  auto& stack = held_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  // Unlock of a lock this thread never locked: either a cross-thread
  // unlock (unsupported by std::mutex anyway) or hook misuse.
  CHECK(false) << "unlock of a mutex not held by this thread";
}

void write_graph(const std::string& path) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> guard(reg.mu);
  std::ofstream out(path);
  if (!out) return;  // unwritable directory: silently skip (exit path)
  out << "{\n  \"format\": 1,\n  \"edges\": [";
  bool first = true;
  for (const auto& [from, to] : reg.edges) {
    if (!first) out << ",";
    first = false;
    out << "\n    {\"from\": \"" << from << "\", \"to\": \"" << to
        << "\"}";
  }
  out << "\n  ]\n}\n";
}

std::size_t held_depth() { return held_stack().size(); }

}  // namespace iustitia::util::deadlock
