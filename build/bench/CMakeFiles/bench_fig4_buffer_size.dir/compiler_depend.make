# Empty compiler generated dependencies file for bench_fig4_buffer_size.
# This may be replaced when dependencies are built.
