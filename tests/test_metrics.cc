// Tests for ml/metrics.h confusion-matrix arithmetic (the Table 1 / Table 2
// reporting machinery).
#include "ml/metrics.h"

#include <gtest/gtest.h>

namespace iustitia::ml {
namespace {

TEST(ConfusionMatrix, RejectsBadDimension) {
  EXPECT_THROW(ConfusionMatrix(0), std::invalid_argument);
  EXPECT_THROW(ConfusionMatrix(-1), std::invalid_argument);
}

TEST(ConfusionMatrix, AddValidatesLabels) {
  ConfusionMatrix m(2);
  EXPECT_THROW(m.add(2, 0), std::out_of_range);
  EXPECT_THROW(m.add(0, -1), std::out_of_range);
  m.add(0, 1);
  EXPECT_EQ(m.total(), 1u);
}

TEST(ConfusionMatrix, AccuracyOverall) {
  ConfusionMatrix m(3);
  m.add(0, 0);
  m.add(1, 1);
  m.add(2, 2);
  m.add(0, 2);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.75);
}

TEST(ConfusionMatrix, EmptyAccuracyIsZero) {
  ConfusionMatrix m(3);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.class_accuracy(0), 0.0);
  EXPECT_DOUBLE_EQ(m.misclassification_rate(0, 1), 0.0);
}

TEST(ConfusionMatrix, PerClassBreakdownMatchesPaperSemantics) {
  // 10 text samples: 8 correct, 1 -> binary, 1 -> encrypted.
  ConfusionMatrix m(3);
  for (int i = 0; i < 8; ++i) m.add(0, 0);
  m.add(0, 1);
  m.add(0, 2);
  EXPECT_DOUBLE_EQ(m.class_accuracy(0), 0.8);
  EXPECT_DOUBLE_EQ(m.misclassification_rate(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(m.misclassification_rate(0, 2), 0.1);
  EXPECT_DOUBLE_EQ(m.misclassification_rate(0, 0), 0.8);  // diagonal = recall
}

TEST(ConfusionMatrix, MergeAccumulates) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);
  b.add(0, 1);
  b.add(1, 1);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(0, 1), 1u);
  EXPECT_NEAR(a.accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrix, MergeRejectsDimensionMismatch) {
  ConfusionMatrix a(2), b(3);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MeanAccuracy, AveragesFolds) {
  ConfusionMatrix a(2), b(2);
  a.add(0, 0);           // 100%
  b.add(0, 1);
  b.add(1, 1);           // 50%
  EXPECT_DOUBLE_EQ(mean_accuracy({a, b}), 0.75);
  EXPECT_DOUBLE_EQ(mean_accuracy({}), 0.0);
}

}  // namespace
}  // namespace iustitia::ml
