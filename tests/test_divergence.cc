// Tests for entropy/divergence.h: KL/JS divergence properties used to
// validate the paper's Hypothesis 2.
#include "entropy/divergence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::entropy {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(ToDistribution, NormalizesCounts) {
  GramCounter c(1);
  const auto data = bytes_of("aab");
  c.add(data);
  const GramDistribution dist = to_distribution(c);
  EXPECT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist.at('a'), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(dist.at('b'), 1.0 / 3.0, 1e-12);
}

TEST(ToDistribution, EmptyCounterYieldsEmptyDistribution) {
  GramCounter c(2);
  EXPECT_TRUE(to_distribution(c).empty());
}

TEST(DistributionEntropy, UniformTwoSymbolsIsOneBit) {
  GramDistribution p{{'a', 0.5}, {'b', 0.5}};
  EXPECT_NEAR(distribution_entropy_bits(p), 1.0, 1e-12);
}

TEST(KlDivergence, ZeroForIdenticalDistributions) {
  GramDistribution p{{'a', 0.3}, {'b', 0.7}};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergence, KnownValue) {
  GramDistribution p{{'a', 0.5}, {'b', 0.5}};
  GramDistribution q{{'a', 0.25}, {'b', 0.75}};
  const double expected =
      0.5 * std::log2(0.5 / 0.25) + 0.5 * std::log2(0.5 / 0.75);
  EXPECT_NEAR(kl_divergence(p, q), expected, 1e-12);
}

TEST(KlDivergence, InfiniteWhenSupportEscapes) {
  GramDistribution p{{'a', 0.5}, {'b', 0.5}};
  GramDistribution q{{'a', 1.0}};
  EXPECT_TRUE(std::isinf(kl_divergence(p, q)));
}

TEST(JsDivergence, ZeroIffEqual) {
  GramDistribution p{{'a', 0.4}, {'b', 0.6}};
  EXPECT_NEAR(js_divergence(p, p), 0.0, 1e-12);
  GramDistribution q{{'a', 0.41}, {'b', 0.59}};
  EXPECT_GT(js_divergence(p, q), 0.0);
}

TEST(JsDivergence, SymmetricUnlikeKl) {
  GramDistribution p{{'a', 0.9}, {'b', 0.1}};
  GramDistribution q{{'a', 0.2}, {'b', 0.5}, {'c', 0.3}};
  EXPECT_NEAR(js_divergence(p, q), js_divergence(q, p), 1e-12);
  EXPECT_NE(kl_divergence(p, q), kl_divergence(q, p));
}

TEST(JsDivergence, DisjointSupportsGiveExactlyOne) {
  GramDistribution p{{'a', 1.0}};
  GramDistribution q{{'b', 1.0}};
  EXPECT_NEAR(js_divergence(p, q), 1.0, 1e-12);
}

TEST(JsDivergence, AlwaysBounded) {
  util::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    GramDistribution p, q;
    double pt = 0, qt = 0;
    for (int s = 0; s < 8; ++s) {
      p[static_cast<GramKey>(s)] = rng.uniform();
      q[static_cast<GramKey>(s + 4)] = rng.uniform();
      pt += p[static_cast<GramKey>(s)];
      qt += q[static_cast<GramKey>(s + 4)];
    }
    for (auto& [k, v] : p) v /= pt;
    for (auto& [k, v] : q) v /= qt;
    const double jsd = js_divergence(p, q);
    ASSERT_GE(jsd, 0.0);
    ASSERT_LE(jsd, 1.0);
  }
}

TEST(JsDivergence, MatchesEntropyFormulation) {
  // JSD = H(M) - H(P)/2 - H(Q)/2 must equal the averaged-KL definition.
  GramDistribution p{{'a', 0.7}, {'b', 0.3}};
  GramDistribution q{{'a', 0.2}, {'b', 0.8}};
  GramDistribution m{{'a', 0.45}, {'b', 0.55}};
  const double via_kl =
      0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m);
  EXPECT_NEAR(js_divergence(p, q), via_kl, 1e-12);
}

TEST(GramDistributionOfData, PrefixConvergesToWholeFile) {
  // Hypothesis 2 in miniature: the JSD between the prefix distribution and
  // the full distribution must shrink as the prefix grows.
  util::Rng rng(77);
  std::vector<std::uint8_t> data(20000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(64));
  const GramDistribution whole = gram_distribution(data, 1);
  double last = 1.0;
  for (const double portion : {0.05, 0.2, 0.5, 1.0}) {
    const auto len = static_cast<std::size_t>(portion * 20000);
    const GramDistribution prefix = gram_distribution(
        std::span<const std::uint8_t>(data.data(), len), 1);
    const double jsd = js_divergence(prefix, whole);
    EXPECT_LE(jsd, last + 1e-9);
    last = jsd;
  }
  EXPECT_NEAR(last, 0.0, 1e-12);  // portion 1.0 -> identical
}

}  // namespace
}  // namespace iustitia::entropy
