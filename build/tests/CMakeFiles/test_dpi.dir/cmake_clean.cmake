file(REMOVE_RECURSE
  "CMakeFiles/test_dpi.dir/test_dpi.cc.o"
  "CMakeFiles/test_dpi.dir/test_dpi.cc.o.d"
  "test_dpi"
  "test_dpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
