#include "entropy/entropy_vector.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "util/check.h"

namespace iustitia::entropy {

double normalized_entropy_from_sum(double sum_count_log_count,
                                   std::uint64_t total_grams,
                                   int width) noexcept {
  DCHECK_GE(width, 1);
  // Note: sum_count_log_count may drift slightly negative on the estimated
  // path; the contract is to clamp the result into [0, 1], not to reject it.
  if (total_grams <= 1) return 0.0;
  const double m = static_cast<double>(total_grams);
  // Entropy in nats: ln(m) - S/m, then normalize by ln(|f_k|) = 8k * ln 2.
  const double nats = std::log(m) - sum_count_log_count / m;
  const double norm = 8.0 * static_cast<double>(width) * std::numbers::ln2;
  double h = nats / norm;
  // Clamp tiny numeric drift; the estimated path can also overshoot.
  if (h < 0.0) h = 0.0;
  if (h > 1.0) h = 1.0;
  return h;
}

double normalized_entropy(const GramCounter& counter) noexcept {
  return normalized_entropy_from_sum(counter.sum_count_log_count(),
                                     counter.total_grams(), counter.width());
}

std::vector<int> full_feature_widths() {
  return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
}
std::vector<int> cart_selected_widths() { return {1, 3, 4, 10}; }
std::vector<int> cart_preferred_widths() { return {1, 3, 4, 5}; }
std::vector<int> svm_selected_widths() { return {1, 2, 3, 9}; }
std::vector<int> svm_preferred_widths() { return {1, 2, 3, 5}; }

namespace {

// Thread-local fused-kernel scratch, one kernel per distinct widths set
// this thread has extracted with.  Kernels are reset (keeping their table
// capacity), never freed, so the steady-state extraction path performs no
// heap allocation inside the kernel.  Real deployments use a handful of
// feature sets (full, phi'_SVM, phi'_CART), so the cache stays tiny.
FusedEntropyKernel& fused_scratch(std::span<const int> widths) {
  thread_local std::vector<std::unique_ptr<FusedEntropyKernel>> cache;
  for (const auto& entry : cache) {
    FusedEntropyKernel& kernel = *entry;
    const std::span<const int> have = kernel.widths();
    if (std::equal(have.begin(), have.end(), widths.begin(), widths.end())) {
      kernel.reset();
      return kernel;
    }
  }
  {
    // First sight of this widths set on this thread: build (and keep) its
    // kernel.  Warm-up cost, never repeated in steady state.
    // analyze: hotpath-allow(may-allocate, may-throw, unresolved-call)
    cache.push_back(std::make_unique<FusedEntropyKernel>(widths));
  }
  return *cache.back();
}

}  // namespace

// The extraction entry the classification path drives: thread-local
// kernel reuse keeps steady-state heap traffic to the output vector.
// analyze: hotpath
EntropyVectorResult compute_entropy_vector(std::span<const std::uint8_t> data,
                                           std::span<const int> widths) {
  FusedEntropyKernel& kernel = fused_scratch(widths);
  kernel.add(data);
  EntropyVectorResult out;
  {
    // |widths| doubles for the result the caller takes ownership of.
    // analyze: hotpath-allow(may-allocate)
    out.h.resize(widths.size());
  }
  kernel.features(out.h);
  out.space_bytes = kernel.space_bytes();
  for (std::size_t i = 0; i < out.h.size(); ++i) {
    DCHECK_GE(out.h[i], 0.0)
        << "normalized entropy left [0, 1] for width " << widths[i];
    DCHECK_LE(out.h[i], 1.0)
        << "normalized entropy left [0, 1] for width " << widths[i];
  }
  return out;
}

EntropyVectorResult compute_entropy_vector_legacy(
    std::span<const std::uint8_t> data, std::span<const int> widths) {
  EntropyVectorResult out;
  out.h.reserve(widths.size());
  for (const int w : widths) {
    GramCounter counter(w);
    counter.add(data);
    const double h = normalized_entropy(counter);
    DCHECK_GE(h, 0.0) << "normalized entropy left [0, 1] for width " << w;
    DCHECK_LE(h, 1.0) << "normalized entropy left [0, 1] for width " << w;
    out.h.push_back(h);
    out.space_bytes += counter.space_bytes();
  }
  return out;
}

std::vector<double> entropy_vector(std::span<const std::uint8_t> data,
                                   std::span<const int> widths) {
  return compute_entropy_vector(data, widths).h;
}

StreamingEntropyVector::StreamingEntropyVector(std::span<const int> widths)
    : kernel_(widths) {}

void StreamingEntropyVector::add(std::span<const std::uint8_t> data) {
  kernel_.add(data);
}

void StreamingEntropyVector::reset() noexcept { kernel_.reset(); }

std::vector<double> StreamingEntropyVector::vector() const {
  std::vector<double> out = kernel_.vector();
  for (const double h : out) {
    DCHECK_GE(h, 0.0);
    DCHECK_LE(h, 1.0);
  }
  return out;
}

std::uint64_t StreamingEntropyVector::total_bytes() const noexcept {
  return kernel_.total_bytes();
}

std::size_t StreamingEntropyVector::space_bytes() const noexcept {
  return kernel_.space_bytes();
}

}  // namespace iustitia::entropy
