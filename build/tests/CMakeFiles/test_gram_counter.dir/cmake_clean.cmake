file(REMOVE_RECURSE
  "CMakeFiles/test_gram_counter.dir/test_gram_counter.cc.o"
  "CMakeFiles/test_gram_counter.dir/test_gram_counter.cc.o.d"
  "test_gram_counter"
  "test_gram_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gram_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
