#include "util/rt_guard.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace iustitia::util::rt {
namespace {

// Depth, not flag: hot loops may nest guarded callees (worker loop ->
// guarded kernel) without the inner exit disarming the outer region.
thread_local unsigned t_guard_depth = 0;
thread_local unsigned t_allowed = 0;

std::atomic<std::size_t> g_violations{0};  // analyze: atomic(relaxed-counter)

void violation([[maybe_unused]] const char* effect,
               [[maybe_unused]] const char* what) noexcept {
  g_violations.fetch_add(1, std::memory_order_relaxed);
#if defined(IUSTITIA_RT_DEBUG)
  // The failure path must not allocate (we may be inside operator new),
  // so no logging/streams here: fprintf straight to stderr and abort.
  std::fprintf(stderr,
               "rt_guard: FATAL: %s (%s) inside a real-time guard "
               "region without a matching AllowScope\n",
               effect, what);
  std::abort();
#endif
}

}  // namespace

void note_alloc(const char* what) noexcept {
  if (t_guard_depth == 0 || (t_allowed & kAlloc) != 0) return;
  violation("heap allocation", what);
}

void note_block(const char* what) noexcept {
  if (t_guard_depth == 0 || (t_allowed & kBlock) != 0) return;
  violation("blocking call", what);
}

bool in_guard() noexcept { return t_guard_depth != 0; }

std::size_t violation_count() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

void reset_violation_count() noexcept {
  g_violations.store(0, std::memory_order_relaxed);
}

GuardRegion::GuardRegion() noexcept { ++t_guard_depth; }

GuardRegion::~GuardRegion() { --t_guard_depth; }

AllowScope::AllowScope(unsigned mask) noexcept : prev_(t_allowed) {
  t_allowed |= mask;
}

AllowScope::~AllowScope() { t_allowed = prev_; }

}  // namespace iustitia::util::rt
