"""Shared-state escape pass.

Finds state reachable from more than one thread that is neither atomic
nor lock-guarded.  Thread entry points are recovered from launch sites:

  - `std::thread t(...)` constructions,
  - `.emplace_back(...)`/`.push_back(...)` on a member whose declared
    type mentions `thread` (worker pools),

where the launch argument is a lambda (or `&Class::method` pointer):
every identifier inside the argument list that names a method of the
enclosing class marks that method as a thread entry.  A class that
launches threads shares its members between the launching thread and
the workers, so every member referenced from an entry-method body must
be one of:

  - const / constexpr,
  - std::atomic (the atomics pass then audits its orders),
  - IUSTITIA_GUARDED_BY-annotated,
  - a synchronization primitive (mutex / condition_variable / etc.),
  - of a thread-safe class type (has a mutex member, an atomic member,
    or a member of another thread-safe class — fixpoint),
  - documented with `// analyze: escape(<reason>)` on its declaration
    (e.g. a single-writer field handed over by thread join).

Namespace-scope variables referenced from an entry body get the same
treatment.  Everything else is rule `escape-unguarded-shared`.
"""

from __future__ import annotations

from cppmodel import MUTEX_TYPES, ClassDef
from findings import Finding
from tokenizer import IDENT, Token, nolint_lines

RULE = "escape-unguarded-shared"

_SYNC_TYPES = MUTEX_TYPES + ("condition_variable", "condition_variable_any",
                             "once_flag", "shared_mutex", "counting_semaphore",
                             "binary_semaphore", "barrier", "latch")
_CONST_KEYWORDS = ("const", "constexpr", "constinit")


def _merged_classes(ctx) -> dict[str, list[ClassDef]]:
    out: dict[str, list[ClassDef]] = {}
    for model in ctx.models.values():
        for cls in model.classes:
            out.setdefault(cls.name, []).append(cls)
    return out


def _thread_safe_classes(classes: dict[str, list[ClassDef]]) -> set[str]:
    """Fixpoint: a class is thread-safe if it owns a mutex, owns an
    atomic member, or owns a member of a thread-safe class type."""
    safe: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, defs in classes.items():
            if name in safe:
                continue
            for cls in defs:
                if cls.mutexes:
                    safe.add(name)
                    changed = True
                    break
                for type_toks in cls.fields.values():
                    idents = {t.text for t in type_toks if t.kind == IDENT}
                    if "atomic" in idents or idents & safe:
                        safe.add(name)
                        changed = True
                        break
                if name in safe:
                    break
    return safe


def _is_exempt_type(type_toks: list[Token], safe: set[str]) -> bool:
    texts = {t.text for t in type_toks}
    if texts & set(_CONST_KEYWORDS):
        return True
    idents = {t.text for t in type_toks if t.kind == IDENT}
    if "atomic" in idents:
        return True
    if idents & set(_SYNC_TYPES):
        return True
    if idents & safe:
        return True
    if "thread" in idents or "jthread" in idents:
        return True  # the worker pool itself (joined by the owner)
    return False


def _launch_groups(body: list[Token], thread_members: set[str]):
    """Yields the argument token groups of thread-launch expressions."""
    n = len(body)
    for i, t in enumerate(body):
        if t.kind != IDENT:
            continue
        is_ctor = t.text == "thread" and i + 1 < n and \
            body[i + 1].text in ("(", "{") and \
            (i == 0 or body[i - 1].text != ".")
        is_pool = t.text in ("emplace_back", "push_back") and \
            i + 1 < n and body[i + 1].text == "(" and i >= 2 and \
            body[i - 1].text in (".", "->") and \
            body[i - 2].text in thread_members
        if not (is_ctor or is_pool):
            continue
        open_p = body[i + 1].text
        close_p = ")" if open_p == "(" else "}"
        depth, j, group = 0, i + 1, []
        while j < n:
            if body[j].text == open_p:
                depth += 1
            elif body[j].text == close_p:
                depth -= 1
                if depth == 0:
                    break
            if depth >= 1 and j > i + 1:
                group.append(body[j])
            j += 1
        if group:
            yield group


def _entry_methods(ctx, cls_name: str, cls_defs: list[ClassDef],
                   method_names: set[str]) -> set[str]:
    """Methods of `cls_name` used as thread bodies anywhere."""
    thread_members = set()
    for cls in cls_defs:
        for fname, type_toks in cls.fields.items():
            if any(t.text in ("thread", "jthread") for t in type_toks):
                thread_members.add(fname)
    entries: set[str] = set()
    for model in ctx.models.values():
        for method in model.methods:
            if method.cls != cls_name:
                continue
            for group in _launch_groups(method.body, thread_members):
                for t in group:
                    if t.kind == IDENT and t.text in method_names and \
                            t.text != method.name:
                        entries.add(t.text)
    return entries


def run(ctx) -> list[Finding]:
    findings: list[Finding] = []
    classes = _merged_classes(ctx)
    safe = _thread_safe_classes(classes)

    # Method name universe per class (out-of-line definitions).
    methods_of: dict[str, set[str]] = {}
    for model in ctx.models.values():
        for method in model.methods:
            if method.cls:
                methods_of.setdefault(method.cls, set()).add(method.name)

    for cls_name in sorted(classes):
        defs = classes[cls_name]
        entries = _entry_methods(ctx, cls_name, defs,
                                 methods_of.get(cls_name, set()))
        if not entries:
            continue

        # Merge field views (header declares, source may re-model).
        fields: dict[str, list[Token]] = {}
        field_lines: dict[str, int] = {}
        field_paths: dict[str, str] = {}
        guarded: set[str] = set()
        for path, model in sorted(ctx.models.items()):
            for cls in model.classes:
                if cls.name != cls_name:
                    continue
                guarded |= set(cls.guarded_fields)
                for fname, toks in cls.fields.items():
                    fields.setdefault(fname, toks)
                    field_lines.setdefault(fname, cls.field_lines[fname])
                    field_paths.setdefault(fname, path)

        flagged: set[str] = set()
        for model_path, model in sorted(ctx.models.items()):
            for method in model.methods:
                if method.cls != cls_name or method.name not in entries:
                    continue
                for t in method.body:
                    if t.kind != IDENT:
                        continue
                    # Members referenced from a worker body.
                    if t.text in fields and t.text not in flagged:
                        fname = t.text
                        if fname in guarded or \
                                _is_exempt_type(fields[fname], safe):
                            continue
                        fpath = field_paths[fname]
                        fline = field_lines[fname]
                        fmodel = ctx.models.get(fpath)
                        if fmodel is not None and (
                                _escape_annotated(fmodel, fline) or
                                fline in nolint_lines(fmodel.tokens,
                                                      RULE)):
                            flagged.add(fname)  # documented: stay quiet
                            continue
                        if ctx.universe.module_of(fpath) is None:
                            continue
                        flagged.add(fname)
                        findings.append(Finding(
                            RULE, fpath, fline,
                            f"{cls_name}::{fname} is written by thread "
                            f"entry {cls_name}::{method.name} "
                            f"({model_path}:{t.line}) but is neither "
                            f"atomic nor GUARDED_BY; guard it, or "
                            f"document the handoff with `// analyze: "
                            f"escape(<reason>)`",
                            anchor=f"{cls_name}::{fname}",
                            related=[(model_path, t.line,
                                      f"accessed from thread entry "
                                      f"{method.name}")]))
                        continue
                    # Namespace-scope state referenced from a worker body.
                    gmodel = model
                    if t.text in gmodel.globals_ and \
                            f"g:{t.text}" not in flagged:
                        gline = gmodel.global_lines[t.text]
                        if gline == t.line:
                            continue
                        if _is_exempt_type(gmodel.globals_[t.text], safe):
                            continue
                        if _escape_annotated(gmodel, gline) or \
                                gline in nolint_lines(gmodel.tokens, RULE):
                            flagged.add(f"g:{t.text}")
                            continue
                        if ctx.universe.module_of(model_path) is None:
                            continue
                        flagged.add(f"g:{t.text}")
                        findings.append(Finding(
                            RULE, model_path, gline,
                            f"namespace-scope '{t.text}' is accessed by "
                            f"thread entry {cls_name}::{method.name} "
                            f"(line {t.line}) but is neither atomic, "
                            f"const, nor lock-guarded",
                            anchor=f"::{t.text}",
                            related=[(model_path, t.line,
                                      f"accessed from thread entry "
                                      f"{method.name}")]))
    return findings


def _escape_annotated(model, line: int) -> bool:
    return any(kind == "escape"
               for kind, _ in model.annotations.get(line, ()))
