// Tests for util/check.h: pass-through on success, fatal (death) on
// failure, message formatting, single evaluation of operands, and the
// DCHECK on/off contract.  Also regression death tests for invariants the
// CHECK deployment added across the engine.
#include "util/check.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "datagen/corpus.h"
#include "entropy/estimator.h"
#include "util/random.h"

namespace iustitia::util {
namespace {

class CheckDeathTest : public ::testing::Test {
 protected:
  CheckDeathTest() {
    // The stress/engine tests in this binary may spawn threads; fork-based
    // death tests need the threadsafe style to stay reliable.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

TEST(Check, PassingChecksAreSilent) {
  CHECK(true);
  CHECK(1 + 1 == 2) << "never evaluated";
  CHECK_EQ(4, 4);
  CHECK_NE(4, 5);
  CHECK_LT(4, 5);
  CHECK_LE(5, 5);
  CHECK_GT(5, 4);
  CHECK_GE(5, 5);
  CHECK_NEAR(1.0, 1.0 + 1e-12, 1e-9);
}

TEST(Check, OperandsAreEvaluatedExactlyOnce) {
  int calls = 0;
  const auto bump = [&calls] { return ++calls; };
  CHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 1);
  CHECK_NEAR(bump(), 2.0, 0.5);
  EXPECT_EQ(calls, 2);
}

TEST_F(CheckDeathTest, CheckFailureIsFatalAndNamesTheCondition) {
  EXPECT_DEATH(CHECK(2 + 2 == 5), "CHECK failed: 2 \\+ 2 == 5");
}

TEST_F(CheckDeathTest, StreamedContextReachesTheFatalMessage) {
  EXPECT_DEATH(CHECK(false) << "flow " << 42 << " corrupt",
               "flow 42 corrupt");
}

TEST_F(CheckDeathTest, BinaryChecksReportBothOperands) {
  EXPECT_DEATH(CHECK_EQ(1, 2), "1 vs 2");
  EXPECT_DEATH(CHECK_LT(7, 3), "7 vs 3");
  const std::string name = "shard";
  EXPECT_DEATH(CHECK_NE(name, "shard"), "shard vs shard");
}

TEST_F(CheckDeathTest, CheckNearReportsTheDelta) {
  EXPECT_DEATH(CHECK_NEAR(1.0, 2.0, 1e-3) << "probability sum drifted",
               "probability sum drifted");
}

TEST_F(CheckDeathTest, FailureMessageCarriesFileAndLine) {
  EXPECT_DEATH(CHECK(false), "test_check\\.cc");
}

TEST(DCheck, CompiledStateMatchesBuildFlag) {
#if IUSTITIA_DCHECK_IS_ON
  EXPECT_TRUE(kDCheckEnabled);
#else
  EXPECT_FALSE(kDCheckEnabled);
#endif
}

TEST_F(CheckDeathTest, DCheckIsFatalExactlyWhenEnabled) {
  if (kDCheckEnabled) {
    EXPECT_DEATH(DCHECK_EQ(1, 2), "1 vs 2");
  } else {
    DCHECK_EQ(1, 2) << "compiled out";  // must be a no-op
  }
}

TEST(DCheck, CompiledOutOperandsAreNotEvaluated) {
  if (kDCheckEnabled) return;  // only meaningful when DCHECKs are off
  int calls = 0;
  const auto bump = [&calls] { return ++calls; };
  DCHECK_GE(bump(), 1);
  EXPECT_EQ(calls, 0);
}

// --- Regression death tests for deployed invariants ---------------------

// build_corpus used to feed min_size straight into std::log: min_size == 0
// produced log(0) = -inf and an all-empty corpus instead of failing fast.
TEST_F(CheckDeathTest, CorpusRejectsZeroMinSize) {
  datagen::CorpusOptions options;
  options.files_per_class = 1;
  options.min_size = 0;
  options.max_size = 64;
  EXPECT_DEATH(datagen::build_corpus(options), "positive minimum size");
}

// The (epsilon, delta) sketch guarantee only holds on its domain; out-of-
// range parameters used to silently clamp deep inside the helpers.
TEST_F(CheckDeathTest, EstimatorRejectsOutOfDomainParams) {
  const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
  const int widths[] = {2};
  util::Rng rng(7);
  entropy::EstimatorParams params;
  params.epsilon = 0.0;  // must be in (0, 1]
  params.delta = 0.5;
  EXPECT_DEATH(entropy::estimate_entropy_vector(data, widths, params, rng),
               "epsilon out of domain");
  params.epsilon = 0.5;
  params.delta = 1.0;  // must be in (0, 1)
  EXPECT_DEATH(entropy::estimate_entropy_vector(data, widths, params, rng),
               "delta out of domain");
}

}  // namespace
}  // namespace iustitia::util
