#include "bench/bench_common.h"

namespace iustitia::bench {

void print_class_breakdown(const ml::ConfusionMatrix& matrix,
                           const std::string& model_name) {
  util::Table table({"", "Accuracy", "-> text", "-> binary", "-> encrypted"});
  table.add_row({model_name + " total", util::fmt_percent(matrix.accuracy()),
                 "", "", ""});
  static constexpr const char* kNames[3] = {"Text", "Binary", "Encrypted"};
  for (int actual = 0; actual < 3; ++actual) {
    std::vector<std::string> row;
    row.push_back(std::string(kNames[actual]) + " file");
    row.push_back(util::fmt_percent(matrix.class_accuracy(actual)));
    for (int predicted = 0; predicted < 3; ++predicted) {
      row.push_back(actual == predicted
                        ? "-"
                        : util::fmt_percent(
                              matrix.misclassification_rate(actual, predicted)));
    }
    table.add_row(std::move(row));
  }
  table.render(std::cout);
  std::cout << '\n';
}

ml::ConfusionMatrix run_cv(const ml::Dataset& data, std::size_t folds,
                           const ml::ModelFactory& factory, std::uint64_t seed,
                           bool print_folds, const std::string& label) {
  util::Rng rng(seed);
  const auto fold_matrices = ml::cross_validate(data, folds, factory, rng);
  if (print_folds) {
    util::Table table({"CV index", label + " accuracy"});
    for (std::size_t f = 0; f < fold_matrices.size(); ++f) {
      table.add_row({std::to_string(f + 1),
                     util::fmt_percent(fold_matrices[f].accuracy())});
    }
    table.render(std::cout);
    std::cout << '\n';
  }
  return ml::pool_folds(fold_matrices);
}

}  // namespace iustitia::bench
