#include "net/tunnel.h"

#include <algorithm>
#include <span>

namespace iustitia::net {

namespace {
constexpr std::uint8_t kTunnelMagic0 = 'T';
constexpr std::uint8_t kTunnelMagic1 = '!';
constexpr std::size_t kTunnelMaxFramePayload = 0xFFFF;
}  // namespace

TunnelMux::TunnelMux(const datagen::ChaCha20::Key& key,
                     const datagen::ChaCha20::Nonce& nonce)
    : cipher_(datagen::ChaCha20(key, nonce)) {}

std::vector<std::uint8_t> TunnelMux::encapsulate(
    std::uint32_t inner_id, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  std::size_t at = 0;
  do {
    const std::size_t take =
        std::min(kTunnelMaxFramePayload, payload.size() - at);
    out.push_back(kTunnelMagic0);
    out.push_back(kTunnelMagic1);
    out.push_back(static_cast<std::uint8_t>(inner_id >> 24));
    out.push_back(static_cast<std::uint8_t>(inner_id >> 16));
    out.push_back(static_cast<std::uint8_t>(inner_id >> 8));
    out.push_back(static_cast<std::uint8_t>(inner_id));
    out.push_back(static_cast<std::uint8_t>(take >> 8));
    out.push_back(static_cast<std::uint8_t>(take));
    out.insert(out.end(), payload.begin() + static_cast<std::ptrdiff_t>(at),
               payload.begin() + static_cast<std::ptrdiff_t>(at + take));
    at += take;
  } while (at < payload.size());
  if (cipher_.has_value()) {
    cipher_->apply(out);
  }
  return out;
}

TunnelDemux::TunnelDemux(std::size_t per_flow_limit)
    : per_flow_limit_(per_flow_limit) {}

void TunnelDemux::feed(std::span<const std::uint8_t> outer_payload) {
  if (corrupted_) return;
  pending_.insert(pending_.end(), outer_payload.begin(), outer_payload.end());

  std::size_t at = 0;
  while (pending_.size() - at >= kTunnelFrameHeader) {
    const std::uint8_t* frame = pending_.data() + at;
    if (frame[0] != kTunnelMagic0 || frame[1] != kTunnelMagic1) {
      corrupted_ = true;
      break;
    }
    const std::uint32_t inner_id = (static_cast<std::uint32_t>(frame[2]) << 24) |
                                   (static_cast<std::uint32_t>(frame[3]) << 16) |
                                   (static_cast<std::uint32_t>(frame[4]) << 8) |
                                   static_cast<std::uint32_t>(frame[5]);
    const std::size_t length = (static_cast<std::size_t>(frame[6]) << 8) |
                               static_cast<std::size_t>(frame[7]);
    if (pending_.size() - at < kTunnelFrameHeader + length) {
      break;  // frame split across outer packets: wait for more
    }
    std::vector<std::uint8_t>& stream = streams_[inner_id];
    if (stream.size() < per_flow_limit_) {
      const std::size_t room = per_flow_limit_ - stream.size();
      const std::size_t take = std::min(room, length);
      stream.insert(stream.end(), frame + kTunnelFrameHeader,
                    frame + kTunnelFrameHeader + take);
    }
    ++frames_decoded_;
    at += kTunnelFrameHeader + length;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(at));
}

}  // namespace iustitia::net
