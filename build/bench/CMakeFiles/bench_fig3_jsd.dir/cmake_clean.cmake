file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_jsd.dir/bench_fig3_jsd.cc.o"
  "CMakeFiles/bench_fig3_jsd.dir/bench_fig3_jsd.cc.o.d"
  "bench_fig3_jsd"
  "bench_fig3_jsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_jsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
