// Tests for the Classification Database: lookup/refresh semantics, FIN/RST
// removal, and the n*lambda inactivity purge of Section 4.5.
#include "core/cdb.h"

#include <cstdint>
#include <optional>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "util/sha1.h"

namespace iustitia::core {
namespace {

using datagen::FileClass;

net::FlowId id_of(int n) { return util::sha1("flow-" + std::to_string(n)); }

TEST(Cdb, MissThenInsertThenHit) {
  ClassificationDatabase cdb;
  EXPECT_EQ(cdb.lookup(id_of(1), 0.0), std::nullopt);
  cdb.insert(id_of(1), FileClass::kBinary, 0.0);
  EXPECT_EQ(cdb.lookup(id_of(1), 0.1), FileClass::kBinary);
  EXPECT_EQ(cdb.size(), 1u);
  EXPECT_EQ(cdb.stats().lookups, 2u);
  EXPECT_EQ(cdb.stats().hits, 1u);
  EXPECT_EQ(cdb.stats().inserts, 1u);
}

TEST(Cdb, PeekDoesNotRefreshTiming) {
  CdbOptions options;
  options.inactivity_coefficient = 2.0;
  options.default_lambda = 0.5;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  // Many peeks later, the record still purges based on the insert time.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(cdb.peek(id_of(1)), FileClass::kText);
  }
  EXPECT_EQ(cdb.purge(10.0), 1u);
  EXPECT_EQ(cdb.peek(id_of(1)), std::nullopt);
}

TEST(Cdb, LookupRefreshesLambdaFromObservedGap) {
  CdbOptions options;
  options.inactivity_coefficient = 4.0;
  options.default_lambda = 0.5;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  // Packet at t=2.0: lambda' becomes 2.0; obsolete only after t > 2 + 8.
  EXPECT_TRUE(cdb.lookup(id_of(1), 2.0).has_value());
  EXPECT_EQ(cdb.purge(9.9), 0u);
  EXPECT_EQ(cdb.purge(10.1), 1u);
}

TEST(Cdb, DefaultLambdaUsedForSinglePacketFlows) {
  CdbOptions options;
  options.inactivity_coefficient = 4.0;
  options.default_lambda = 0.5;  // n * lambda = 2.0 seconds
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kEncrypted, 0.0);
  EXPECT_EQ(cdb.purge(1.9), 0u);
  EXPECT_EQ(cdb.purge(2.1), 1u);
}

TEST(Cdb, FinRstRemoval) {
  ClassificationDatabase cdb;
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.insert(id_of(2), FileClass::kBinary, 0.0);
  cdb.remove_on_close(id_of(1));
  EXPECT_EQ(cdb.size(), 1u);
  EXPECT_EQ(cdb.stats().fin_rst_removals, 1u);
  // Removing an absent flow is a no-op.
  cdb.remove_on_close(id_of(99));
  EXPECT_EQ(cdb.stats().fin_rst_removals, 1u);
}

TEST(Cdb, FinRstRemovalCanBeDisabled) {
  CdbOptions options;
  options.fin_rst_removal_enabled = false;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.remove_on_close(id_of(1));
  EXPECT_EQ(cdb.size(), 1u);
}

TEST(Cdb, InactivityPurgeCanBeDisabled) {
  CdbOptions options;
  options.inactivity_purge_enabled = false;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  EXPECT_EQ(cdb.purge(1e9), 0u);
  EXPECT_EQ(cdb.size(), 1u);
}

TEST(Cdb, MaybePurgeHonorsTriggerThreshold) {
  CdbOptions options;
  options.purge_trigger_flows = 10;
  options.inactivity_coefficient = 1.0;
  options.default_lambda = 0.001;  // everything old is purgeable
  ClassificationDatabase cdb(options);
  for (int i = 0; i < 9; ++i) {
    cdb.insert(id_of(i), FileClass::kText, 0.0);
    cdb.maybe_purge(100.0);
  }
  EXPECT_EQ(cdb.stats().purge_runs, 0u);  // below trigger
  cdb.insert(id_of(9), FileClass::kText, 100.0);
  cdb.maybe_purge(100.0);
  EXPECT_EQ(cdb.stats().purge_runs, 1u);
  EXPECT_EQ(cdb.size(), 1u);  // only the fresh flow survives
}

TEST(Cdb, MemoryBitsUsePaperRecordSize) {
  ClassificationDatabase cdb;
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.insert(id_of(2), FileClass::kText, 0.0);
  EXPECT_EQ(cdb.memory_bits(), 2u * 194u);
}

TEST(Cdb, OverwriteKeepsSingleRecord) {
  ClassificationDatabase cdb;
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.insert(id_of(1), FileClass::kEncrypted, 1.0);
  EXPECT_EQ(cdb.size(), 1u);
  EXPECT_EQ(cdb.peek(id_of(1)), FileClass::kEncrypted);
}

TEST(Cdb, ReclassificationRuleDeletesOldRecords) {
  CdbOptions options;
  options.reclassify_after_seconds = 10.0;
  options.inactivity_coefficient = 1000.0;  // inactivity never triggers here
  options.default_lambda = 1000.0;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  // Keep the flow active so only the reclassification rule can remove it.
  cdb.lookup(id_of(1), 5.0);
  EXPECT_EQ(cdb.purge(9.0), 0u);
  EXPECT_EQ(cdb.purge(10.5), 1u);
  EXPECT_EQ(cdb.stats().reclassification_removals, 1u);
  EXPECT_EQ(cdb.stats().inactivity_removals, 0u);
}

TEST(Cdb, ReclassificationDisabledByDefault) {
  CdbOptions options;
  options.inactivity_coefficient = 1000.0;
  options.default_lambda = 1000.0;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.lookup(id_of(1), 1.0);  // lambda' = 1.0 -> obsolete only after t=1001
  EXPECT_EQ(cdb.purge(500.0), 0u);  // old record, but no reclassify rule
}

TEST(Cdb, PurgeCountsInStats) {
  CdbOptions options;
  options.inactivity_coefficient = 1.0;
  options.default_lambda = 0.1;
  ClassificationDatabase cdb(options);
  for (int i = 0; i < 5; ++i) cdb.insert(id_of(i), FileClass::kBinary, 0.0);
  EXPECT_EQ(cdb.purge(1.0), 5u);
  EXPECT_EQ(cdb.stats().inactivity_removals, 5u);
  EXPECT_EQ(cdb.size(), 0u);
}

TEST(Cdb, HardCeilingForcesOldestFirstEviction) {
  CdbOptions options;
  options.max_records = 4;
  ClassificationDatabase cdb(options);
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(cdb.insert(id_of(i), FileClass::kBinary, 0.1 * i));
    EXPECT_LE(cdb.size(), 4u);
  }
  // The two least-recently-active records (0, 1) were force-evicted.
  EXPECT_EQ(cdb.size(), 4u);
  EXPECT_EQ(cdb.stats().forced_evictions, 2u);
  EXPECT_EQ(cdb.peek(id_of(0)), std::nullopt);
  EXPECT_EQ(cdb.peek(id_of(1)), std::nullopt);
  for (int i = 2; i < 6; ++i) {
    EXPECT_EQ(cdb.peek(id_of(i)), FileClass::kBinary) << i;
  }
}

TEST(Cdb, CeilingEvictionHonorsRecencyRefreshes) {
  CdbOptions options;
  options.max_records = 2;
  ClassificationDatabase cdb(options);
  cdb.insert(id_of(1), FileClass::kText, 0.0);
  cdb.insert(id_of(2), FileClass::kText, 1.0);
  // A lookup refreshes record 1's recency, so 2 is now the oldest.
  EXPECT_EQ(cdb.lookup(id_of(1), 2.0), FileClass::kText);
  cdb.insert(id_of(3), FileClass::kText, 3.0);
  EXPECT_EQ(cdb.peek(id_of(1)), FileClass::kText);
  EXPECT_EQ(cdb.peek(id_of(2)), std::nullopt);
  EXPECT_EQ(cdb.peek(id_of(3)), FileClass::kText);
  EXPECT_EQ(cdb.stats().forced_evictions, 1u);
}

// Property soak: under a random mix of inserts, overwrites, FIN/RST
// removals, and inactivity purges the resident size never exceeds the
// ceiling, and at the end every departure is accounted for exactly:
//   new records = resident + fin/rst + inactivity + forced evictions.
TEST(Cdb, CeilingPropertyHoldsUnderRandomizedChurn) {
  CdbOptions options;
  options.max_records = 16;
  options.inactivity_coefficient = 3.0;
  options.default_lambda = 0.5;
  ClassificationDatabase cdb(options);

  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> flow_pick(0, 63);
  std::uniform_int_distribution<int> op_pick(0, 9);
  std::uint64_t new_records = 0;
  double now = 0.0;
  for (int step = 0; step < 2000; ++step) {
    now += 0.05;
    const net::FlowId id = id_of(flow_pick(rng));
    const int op = op_pick(rng);
    if (op < 7) {
      if (!cdb.peek(id).has_value()) ++new_records;
      EXPECT_TRUE(cdb.insert(id, FileClass::kBinary, now));
    } else if (op < 9) {
      cdb.remove_on_close(id);
    } else {
      cdb.purge(now);
    }
    ASSERT_LE(cdb.size(), 16u) << "step " << step;
  }
  const CdbStats stats = cdb.stats();
  EXPECT_GT(stats.forced_evictions, 0u);
  EXPECT_EQ(new_records,
            cdb.size() + stats.fin_rst_removals +
                stats.inactivity_removals + stats.forced_evictions);
}

}  // namespace
}  // namespace iustitia::core
