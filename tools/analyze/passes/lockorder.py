"""Lock-order pass: a global lock-acquisition graph over util::Mutex.

Builds one directed graph for the whole universe: node = lock identity,
edge A -> B = somewhere, B is acquired while A is held.  Acquisition
sites are RAII guards (util::MutexLock, std::lock_guard/scoped_lock/
unique_lock), direct .lock()/.unlock() calls, and IUSTITIA_REQUIRES
annotations (entering an annotated method means the mutex is already
held).  One level of call propagation is applied: a call made while
holding L contributes L -> M for every lock M the callee acquires.

Reported:
  lock-order-inversion  both A -> B and B -> A exist (two-edge cycle);
                        the SARIF result carries both witness sites.
  lock-order-cycle      a strongly connected component of three or more
                        locks, or a self-edge (recursive acquisition).

Lock identity is `Class::member` for member mutexes (the immediate
enclosing class), `::name` for namespace-scope mutexes.  A lock
expression the model cannot resolve to a unique identity contributes no
edges (under-reporting by design).  The same `Class::member` strings are
the runtime names registered by the IUSTITIA_DEADLOCK_DEBUG build, so
the observed runtime graph can be checked as a subgraph of this one
(tools/check_lock_graph.py).
"""

from __future__ import annotations

from dataclasses import dataclass

from cppmodel import LOCK_TYPES, MUTEX_TYPES, ClassDef, FileModel
from findings import Finding
from tokenizer import IDENT, Token, nolint_lines

INVERSION_RULE = "lock-order-inversion"
CYCLE_RULE = "lock-order-cycle"

_UNLOCKABLE = ("lock", "Lock")
_UNLOCK_NAMES = ("unlock", "Unlock")


@dataclass
class Edge:
    src: str
    dst: str
    path: str
    line: int
    context: str   # "Class::method" holding src when dst was taken


class _LockIndex:
    """Resolves a lock expression to a stable `Class::member` identity."""

    def __init__(self, ctx):
        # mutex member name -> set of owning class names (whole universe).
        self.owners: dict[str, set[str]] = {}
        # class name -> instrumented (util::Mutex) members.  Only these
        # join the graph: the runtime deadlock detector instruments
        # exactly util::Mutex, and raw std::mutex members (inside
        # util::Mutex itself or the detector's own registry) would make
        # common names like `mu` ambiguous.  Unknown types keep the member.
        self.instrumented: dict[str, set[str]] = {}
        # class name -> merged ClassDef views (header + source).
        self.classes: dict[str, list[ClassDef]] = {}
        # namespace-scope mutex variables: name -> defining path.
        self.globals: dict[str, str] = {}
        for path, model in ctx.models.items():
            for cls in model.classes:
                self.classes.setdefault(cls.name, []).append(cls)
                for mu in cls.mutexes:
                    type_toks = cls.fields.get(mu)
                    if type_toks is not None and not any(
                            t.text == "Mutex" for t in type_toks):
                        continue
                    self.owners.setdefault(mu, set()).add(cls.name)
                    self.instrumented.setdefault(cls.name, set()).add(mu)
            for name, type_toks in model.globals_.items():
                if any(t.text in MUTEX_TYPES for t in type_toks):
                    self.globals.setdefault(name, path)

    def class_has_mutex(self, cls_name: str, member: str) -> bool:
        return member in self.instrumented.get(cls_name, ())

    def _class_has_raw_mutex(self, cls_name: str, member: str) -> bool:
        return any(member in c.mutexes
                   for c in self.classes.get(cls_name, ()))

    def _receiver_class(self, var: str, body: list[Token]) -> str | None:
        """Type of a local `Shard& shard = ...;`-style declaration of
        `var` in `body`, when the type is a known class."""
        for i, t in enumerate(body):
            if t.kind != IDENT or t.text != var or i == 0:
                continue
            if i + 1 >= len(body) or body[i + 1].text not in ("=", ";", "{"):
                continue
            j = i - 1
            while j >= 0 and body[j].text in ("&", "*", "const"):
                j -= 1
            if j >= 0 and body[j].kind == IDENT and \
                    body[j].text in self.classes:
                return body[j].text
        return None

    def resolve(self, expr: list[Token], cls_name: str,
                body: list[Token] | None = None) -> str | None:
        idents = [t.text for t in expr
                  if t.kind == IDENT and t.text != "this"]
        if not idents:
            return None
        member = idents[-1]
        if len(idents) == 1:
            # Bare `mu_` (or `this->mu_`): the enclosing class wins, then
            # a namespace-scope mutex, then a globally unique member.
            if cls_name and self.class_has_mutex(cls_name, member):
                return f"{cls_name}::{member}"
            if cls_name and self._class_has_raw_mutex(cls_name, member):
                return None  # the class's own lock, but not instrumented
            if member in self.globals:
                return f"::{member}"
            owners = self.owners.get(member, set())
            if len(owners) == 1:
                return f"{next(iter(owners))}::{member}"
            return None
        # `obj.mu` / `obj->mu` / `Class::mu`: type the receiver when a
        # local declaration names it, else unique ownership.
        first = idents[0]
        if first in self.classes and self.class_has_mutex(first, member):
            return f"{first}::{member}"
        recv = self._receiver_class(first, body) if body is not None else None
        if recv is not None:
            if self.class_has_mutex(recv, member):
                return f"{recv}::{member}"
            if self._class_has_raw_mutex(recv, member):
                return None  # known receiver, uninstrumented mutex
        owners = self.owners.get(member, set())
        if len(owners) == 1:
            return f"{next(iter(owners))}::{member}"
        return None


def _guard_lock_expr(body: list[Token], i: int) -> tuple[list[Token], int] | None:
    """At body[i] in LOCK_TYPES, returns (mutex expr tokens, index past)."""
    j = i + 1
    if j < len(body) and body[j].text == "<":
        depth = 0
        while j < len(body):
            if body[j].text == "<":
                depth += 1
            elif body[j].text == ">":
                depth -= 1
                if depth == 0:
                    j += 1
                    break
            j += 1
    if j < len(body) and body[j].kind == IDENT:
        j += 1
    if j >= len(body) or body[j].text not in ("(", "{"):
        return None
    close = ")" if body[j].text == "(" else "}"
    expr: list[Token] = []
    k = j + 1
    while k < len(body) and body[k].text != close:
        expr.append(body[k])
        k += 1
    return (expr, k + 1) if expr else None


def _walk_method(method, index: _LockIndex, path: str,
                 acquires: dict, edges: list[Edge],
                 callee_acquires: dict[str, set[str]] | None) -> None:
    """One pass over a method body maintaining the held-lock stack.

    A guard holds until its enclosing block closes; .lock()/.unlock()
    bracket explicitly.  With `callee_acquires` set, calls propagate one
    level: held L and callee acquiring M adds L -> M.
    """
    ctx_name = f"{method.cls}::{method.name}" if method.cls else method.name
    held: list[tuple[str, int]] = []  # (lock id, brace depth at acquire)
    cls_def = index.classes.get(method.cls, [None])[0]
    required = None
    if cls_def is not None:
        required = cls_def.requires_methods.get(method.name)
    if required is not None:
        req_id = index.resolve(
            [Token(IDENT, p, method.line) for p in
             required.replace("this->", "").replace("&", "").split("::")],
            method.cls)
        if req_id is not None:
            held.append((req_id, -1))  # held for the whole body

    def acquire(lock_id: str, line: int, depth: int) -> None:
        for prior, _ in held:
            if prior == lock_id:
                continue
            edges.append(Edge(prior, lock_id, path, line, ctx_name))
        if any(h == lock_id for h, _ in held):
            edges.append(Edge(lock_id, lock_id, path, line, ctx_name))
        held.append((lock_id, depth))
        acquires.setdefault(ctx_name, set()).add(lock_id)

    body = method.body
    depth = 0
    i = 0
    while i < len(body):
        t = body[i]
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            depth -= 1
            while held and held[-1][1] >= depth and held[-1][1] >= 0:
                held.pop()
        elif t.kind == IDENT and t.text in LOCK_TYPES:
            got = _guard_lock_expr(body, i)
            if got is not None:
                expr, end = got
                lock_id = index.resolve(expr, method.cls, body)
                if lock_id is not None:
                    acquire(lock_id, t.line, depth)
                i = end
                continue
        elif t.kind == IDENT and t.text in _UNLOCK_NAMES and i >= 2 and \
                body[i - 1].text in (".", "->") and \
                i + 1 < len(body) and body[i + 1].text == "(":
            # mu_.unlock(): releases the most recent matching acquisition.
            expr = _member_chain(body, i - 2)
            lock_id = index.resolve(expr, method.cls, body)
            if lock_id is not None:
                for k in range(len(held) - 1, -1, -1):
                    if held[k][0] == lock_id:
                        del held[k]
                        break
        elif t.kind == IDENT and t.text in _UNLOCKABLE and i >= 2 and \
                body[i - 1].text in (".", "->") and \
                i + 1 < len(body) and body[i + 1].text == "(":
            expr = _member_chain(body, i - 2)
            lock_id = index.resolve(expr, method.cls, body)
            if lock_id is not None:
                acquire(lock_id, t.line, depth)
        elif callee_acquires is not None and held and t.kind == IDENT and \
                i + 1 < len(body) and body[i + 1].text == "(" and \
                t.text not in LOCK_TYPES and not t.text.isupper():
            for callee_lock in callee_acquires.get(t.text, ()):
                for prior, _ in held:
                    if prior != callee_lock:
                        edges.append(Edge(prior, callee_lock, path,
                                          t.line, ctx_name))
        i += 1


def _member_chain(body: list[Token], i: int) -> list[Token]:
    """Tokens of the `a->b.c` chain ending at body[i] (walking back)."""
    chain = [body[i]]
    j = i - 1
    while j > 0 and body[j].text in (".", "->", "::") and \
            body[j - 1].kind == IDENT:
        chain.append(body[j - 1])
        j -= 2
    chain.reverse()
    return chain


def _call_names(method) -> set[str]:
    """Short names of functions called in `method`'s body (free or member)."""
    body = method.body
    out: set[str] = set()
    for i, t in enumerate(body[:-1]):
        if t.kind == IDENT and body[i + 1].text == "(" and \
                not t.text.isupper() and t.text not in LOCK_TYPES:
            out.add(t.text)
    return out


def _collect_edges(ctx) -> tuple[list[Edge], _LockIndex]:
    index = _LockIndex(ctx)
    acquires: dict[str, set[str]] = {}
    edges: list[Edge] = []
    calls: dict[str, set[str]] = {}
    # First pass: direct acquisition edges + per-method acquire sets.
    for path, model in sorted(ctx.models.items()):
        for method in model.methods:
            _walk_method(method, index, path, acquires, edges, None)
            ctx_name = (f"{method.cls}::{method.name}" if method.cls
                        else method.name)
            calls.setdefault(ctx_name, set()).update(_call_names(method))
    # Per-callee-name acquire sets for call propagation; a name defined by
    # several classes merges (over-approximation is fine: the runtime
    # detector arbitrates, and names here are method-local).  The sets are
    # closed transitively so `wait() -> finish_flush() -> cdb lock` chains
    # still produce a wait-context edge.
    by_name: dict[str, set[str]] = {}
    for ctx_name, locks in acquires.items():
        short = ctx_name.split("::")[-1]
        by_name.setdefault(short, set()).update(locks)
    changed = True
    while changed:
        changed = False
        for ctx_name, callees in calls.items():
            reached: set[str] = set()
            for callee in callees:
                reached |= by_name.get(callee, set())
            target = by_name.setdefault(ctx_name.split("::")[-1], set())
            if not reached <= target:
                target |= reached
                changed = True
    prop_edges: list[Edge] = []
    for path, model in sorted(ctx.models.items()):
        for method in model.methods:
            _walk_method(method, index, path, {}, prop_edges, by_name)
    seen = {(e.src, e.dst) for e in edges}
    for e in prop_edges:
        if (e.src, e.dst) not in seen:
            seen.add((e.src, e.dst))
            edges.append(e)
    return edges, index


def build_graph(ctx) -> dict:
    """The static lock-order graph as a JSON-able document.

    tools/check_lock_graph.py asserts the runtime-observed graph from an
    IUSTITIA_DEADLOCK_DEBUG build is a subgraph of this.
    """
    edges, _ = _collect_edges(ctx)
    first: dict[tuple[str, str], Edge] = {}
    for e in edges:
        first.setdefault((e.src, e.dst), e)
    nodes = sorted({n for pair in first for n in pair})
    return {
        "format": 1,
        "nodes": nodes,
        "edges": [
            {"from": e.src, "to": e.dst, "path": e.path, "line": e.line,
             "context": e.context}
            for (_, _), e in sorted(first.items())
        ],
    }


def _sccs(adj: dict[str, set[str]]) -> list[list[str]]:
    """Tarjan's strongly connected components (iterative)."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    out: list[list[str]] = []
    counter = [0]

    def strongconnect(root: str) -> None:
        work = [(root, iter(sorted(adj.get(root, ()))))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index_of:
                    index_of[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj.get(w, ())))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index_of[w])
            if advanced:
                continue
            work.pop()
            if low[v] == index_of[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                out.append(comp)
            if work:
                pv = work[-1][0]
                low[pv] = min(low[pv], low[v])

    for node in sorted(adj):
        if node not in index_of:
            strongconnect(node)
    return out


def run(ctx) -> list[Finding]:
    edges, _ = _collect_edges(ctx)
    first: dict[tuple[str, str], Edge] = {}
    for e in edges:
        first.setdefault((e.src, e.dst), e)

    findings: list[Finding] = []
    reported_pairs: set[tuple[str, str]] = set()

    def suppressed(e: Edge) -> bool:
        model = ctx.models.get(e.path)
        if model is None:
            return False
        return e.line in nolint_lines(model.tokens, INVERSION_RULE) or \
            e.line in nolint_lines(model.tokens, CYCLE_RULE)

    # Pairwise inversions: A -> B and B -> A both witnessed.
    for (src, dst), e in sorted(first.items()):
        if src == dst:
            continue
        rev = first.get((dst, src))
        if rev is None:
            continue
        pair = tuple(sorted((src, dst)))
        if pair in reported_pairs:
            continue
        reported_pairs.add(pair)
        if suppressed(e) or suppressed(rev):
            continue
        findings.append(Finding(
            INVERSION_RULE, e.path, e.line,
            f"inconsistent lock order: {e.context} acquires {dst} while "
            f"holding {src}, but {rev.context} acquires {src} while "
            f"holding {dst} ({rev.path}:{rev.line})",
            anchor=f"{pair[0]}<->{pair[1]}",
            related=[(rev.path, rev.line,
                      f"reverse edge: {rev.context} acquires {src} "
                      f"while holding {dst}")]))

    # Cycles: self-edges and SCCs of three or more locks.
    adj: dict[str, set[str]] = {}
    for (src, dst) in first:
        adj.setdefault(src, set()).add(dst)
        adj.setdefault(dst, set())
    for (src, dst), e in sorted(first.items()):
        if src == dst and not suppressed(e):
            findings.append(Finding(
                CYCLE_RULE, e.path, e.line,
                f"recursive acquisition: {e.context} acquires {src} "
                f"while already holding it",
                anchor=f"self:{src}"))
    for comp in _sccs(adj):
        if len(comp) < 3:
            continue
        comp_set = set(comp)
        witnesses = [e for (s, d), e in sorted(first.items())
                     if s in comp_set and d in comp_set and s != d]
        if not witnesses or any(suppressed(e) for e in witnesses):
            continue
        cyc = " -> ".join(sorted(comp))
        head = witnesses[0]
        findings.append(Finding(
            CYCLE_RULE, head.path, head.line,
            f"lock-order cycle across {len(comp)} locks: {cyc}",
            anchor="cycle:" + "|".join(sorted(comp)),
            related=[(e.path, e.line,
                      f"{e.context} acquires {e.dst} while holding {e.src}")
                     for e in witnesses[1:]]))
    return findings
