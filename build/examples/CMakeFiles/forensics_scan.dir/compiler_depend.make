# Empty compiler generated dependencies file for forensics_scan.
# This may be replaced when dependencies are built.
