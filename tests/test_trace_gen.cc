// Tests that the synthetic gateway trace hits its calibration targets —
// the statistics the paper reports for the UMASS trace (Section 4.5).
#include "net/trace_gen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "appproto/trace_headers.h"

namespace iustitia::net {
namespace {

TraceOptions small_options() {
  TraceOptions options;
  options.target_packets = 30000;
  options.seed = 1234;
  options.header_source = appproto::standard_header_source();
  return options;
}

TEST(SamplePayloadSize, MatchesBimodalTargets) {
  util::Rng rng(1);
  std::size_t small = 0, mtu = 0, total = 20000;
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t size = sample_payload_size(rng);
    ASSERT_GE(size, 16u);
    ASSERT_LE(size, 1480u);
    small += (size <= 140);
    mtu += (size >= 1460);
  }
  // Paper Fig. 9(a): >50% under 140 bytes, ~20% at the MTU mode.
  EXPECT_NEAR(static_cast<double>(small) / total, 0.52, 0.02);
  EXPECT_NEAR(static_cast<double>(mtu) / total, 0.22, 0.02);
}

TEST(GenerateTrace, PacketBudgetAndOrdering) {
  const Trace trace = generate_trace(small_options());
  EXPECT_EQ(trace.packets.size(), 30000u);
  EXPECT_TRUE(std::is_sorted(trace.packets.begin(), trace.packets.end(),
                             [](const Packet& a, const Packet& b) {
                               return a.timestamp < b.timestamp;
                             }));
  EXPECT_GT(trace.duration_seconds, 0.0);
}

TEST(GenerateTrace, DataPacketFractionNearTarget) {
  const Trace trace = generate_trace(small_options());
  std::size_t data = 0;
  for (const Packet& p : trace.packets) data += p.is_data();
  const double fraction =
      static_cast<double>(data) / static_cast<double>(trace.packets.size());
  EXPECT_NEAR(fraction, 0.4116, 0.08);
}

TEST(GenerateTrace, FlowDensityNearTarget) {
  const Trace trace = generate_trace(small_options());
  const double flows_per_packet =
      static_cast<double>(trace.truth.size()) /
      static_cast<double>(trace.packets.size());
  // Paper: 299,564 / 11,976,410 ~= 0.025 flows per packet.
  EXPECT_NEAR(flows_per_packet, 0.025, 0.012);
}

TEST(GenerateTrace, EveryPacketHasKnownTruth) {
  const Trace trace = generate_trace(small_options());
  for (const Packet& p : trace.packets) {
    ASSERT_TRUE(trace.truth.count(p.key)) << "packet with unknown flow";
  }
}

TEST(GenerateTrace, ClassMixRoughlyHonored) {
  TraceOptions options = small_options();
  options.class_mix = {0.5, 0.3, 0.2};
  const Trace trace = generate_trace(options);
  std::size_t counts[3] = {};
  for (const auto& [key, truth] : trace.truth) {
    ++counts[static_cast<int>(truth.nature)];
  }
  const double total = static_cast<double>(trace.truth.size());
  EXPECT_NEAR(counts[0] / total, 0.5, 0.1);
  EXPECT_NEAR(counts[1] / total, 0.3, 0.1);
  EXPECT_NEAR(counts[2] / total, 0.2, 0.1);
}

TEST(GenerateTrace, TcpLifecycleFlags) {
  const Trace trace = generate_trace(small_options());
  std::size_t tcp = 0, udp = 0, fin = 0, rst = 0;
  for (const auto& [key, truth] : trace.truth) {
    if (key.protocol == Protocol::kTcp) {
      ++tcp;
      fin += truth.closed_by_fin;
      rst += truth.closed_by_rst;
      EXPECT_FALSE(truth.closed_by_fin && truth.closed_by_rst);
    } else {
      ++udp;
      EXPECT_FALSE(truth.closed_by_fin);
    }
  }
  EXPECT_GT(tcp, udp);  // 85% TCP target
  // FIN+RST closures near the configured 46% of TCP flows.
  EXPECT_NEAR(static_cast<double>(fin + rst) / static_cast<double>(tcp), 0.46,
              0.08);
}

TEST(GenerateTrace, SynPacketsOpenTcpFlows) {
  const Trace trace = generate_trace(small_options());
  std::unordered_map<FlowKey, bool, FlowKeyHash> first_is_syn;
  for (const Packet& p : trace.packets) {
    if (p.key.protocol != Protocol::kTcp) continue;
    if (!first_is_syn.count(p.key)) first_is_syn[p.key] = p.flags.syn;
  }
  std::size_t syn_first = 0;
  for (const auto& [key, is_syn] : first_is_syn) syn_first += is_syn;
  // Nearly all TCP flows start with their SYN (a few lose it to the
  // trace-trim at the budget boundary).
  EXPECT_GT(static_cast<double>(syn_first) /
                static_cast<double>(first_is_syn.size()),
            0.9);
}

TEST(GenerateTrace, AppHeaderFlowsStartWithSignature) {
  TraceOptions options = small_options();
  options.app_header_fraction = 1.0;  // force headers everywhere
  options.target_packets = 5000;
  const Trace trace = generate_trace(options);
  std::size_t with_header = 0;
  for (const auto& [key, truth] : trace.truth) {
    if (truth.app_protocol_id != 0) {
      ++with_header;
      EXPECT_GT(truth.app_header_length, 0u);
    }
  }
  EXPECT_EQ(with_header, trace.truth.size());
}

TEST(GenerateTrace, DeterministicForSeed) {
  const Trace a = generate_trace(small_options());
  const Trace b = generate_trace(small_options());
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); i += 997) {
    ASSERT_EQ(a.packets[i].key, b.packets[i].key);
    ASSERT_EQ(a.packets[i].payload, b.packets[i].payload);
    ASSERT_DOUBLE_EQ(a.packets[i].timestamp, b.packets[i].timestamp);
  }
}

TEST(GenerateTrace, PacketRateMatchesDurationBudget) {
  TraceOptions options = small_options();
  options.duration_seconds = 5.0;
  const Trace trace = generate_trace(options);
  // Nominal rate = packets / configured duration; the realized last-packet
  // timestamp may overhang by flow tails but must stay the same order.
  const double last = trace.packets.back().timestamp;
  EXPECT_GT(last, 2.5);
  EXPECT_LT(last, 30.0);
}

TEST(GenerateTrace, PaperScaleRateIsReachable) {
  // 11,976,410 packets over 81.63 s = 146,714 pkt/s: verify the options
  // arithmetic (without generating 12M packets).
  TraceOptions options;
  options.target_packets = 11976410;
  options.duration_seconds = 81.6318;
  EXPECT_NEAR(static_cast<double>(options.target_packets) /
                  options.duration_seconds,
              146714.38, 100.0);
}

}  // namespace
}  // namespace iustitia::net
