#include "runtime/runtime.h"

#include <bit>
#include <chrono>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "util/check.h"
#include "util/failpoint.h"
#include "util/rt_guard.h"
#include "util/timer.h"

namespace iustitia::runtime {

namespace {

// Progressive wait for a full/empty ring: spin briefly (the peer is
// usually just a few instructions away), then yield (essential when
// producer and consumer share a core), then sleep so a long stall does
// not burn a CPU.
class Backoff {
 public:
  void pause() {
    // The hot loops reach this only when a ring stalls; the deliberate
    // yield/sleep ladder is the documented cold branch of that wait.
    // analyze: hotpath-allow(may-block)
    ++rounds_;
    if (rounds_ < 64) return;
    if (rounds_ < 128) {
      std::this_thread::yield();
      return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }

  void reset() noexcept { rounds_ = 0; }

 private:
  unsigned rounds_ = 0;
};

core::ModelRegistry::Published bootstrap_snapshot(
    const std::shared_ptr<core::ModelRegistry>& registry, std::size_t shards) {
  CHECK(registry != nullptr) << "hot-swap Runtime needs a registry";
  CHECK_EQ(registry->shard_count(), shards)
      << "registry reader slots must match runtime shards";
  return registry->current();
}

void pin_current_thread(std::size_t worker_index) {
#ifdef __linux__
  const unsigned cpus = std::thread::hardware_concurrency();
  if (cpus == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(worker_index % cpus, &set);
  // Best effort: a failed pin (cgroup mask, exotic topology) just means
  // the scheduler keeps choosing, which is the unpinned default anyway.
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker_index;
#endif
}

}  // namespace

RuntimeOptions Runtime::sanitize(RuntimeOptions options) {
  const std::size_t ring_capacity =
      std::bit_ceil(options.ring_capacity < 2 ? std::size_t{2}
                                              : options.ring_capacity);
  if (options.burst < 1) options.burst = 1;
  if (options.burst > ring_capacity) options.burst = ring_capacity;
  return options;
}

Runtime::Runtime(const std::function<core::FlowNatureModel()>& model_factory,
                 const RuntimeOptions& options)
    : options_(sanitize(options)),
      registry_(nullptr),
      bootstrap_epoch_(0),
      engine_(model_factory, options.engine, options.shards),
      queues_(options.output_queue_capacity),
      metrics_(options.shards),
      overload_(options_.overload, &metrics_),
      folded_delays_(options.shards, 0) {
  build_rings();
}

Runtime::Runtime(std::shared_ptr<core::ModelRegistry> registry,
                 const RuntimeOptions& options)
    : Runtime(registry, bootstrap_snapshot(registry, options.shards),
              options) {}

Runtime::Runtime(std::shared_ptr<core::ModelRegistry> registry,
                 core::ModelRegistry::Published published,
                 const RuntimeOptions& options)
    : options_(sanitize(options)),
      registry_(std::move(registry)),
      bootstrap_epoch_(published.epoch),
      engine_(std::move(published.model), options.engine, options.shards),
      queues_(options.output_queue_capacity),
      metrics_(options.shards),
      overload_(options_.overload, &metrics_),
      folded_delays_(options.shards, 0) {
  build_rings();
}

void Runtime::build_rings() {
  rings_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    rings_.push_back(
        std::make_unique<SpscRing<net::Packet>>(options_.ring_capacity));
  }
  // One heartbeat slot per worker plus one for the dispatcher (index
  // `shards`).  Constructed here — with the runtime, not in start() — so
  // health() may consult it from any thread at any time; the watcher
  // thread itself only runs between start() and wait().
  WatchdogOptions wd;
  wd.deadline_ms = options_.watchdog_deadline_ms;
  wd.fatal = options_.watchdog_fatal;
  watchdog_ = std::make_unique<Watchdog>(options_.shards + 1, wd, &metrics_);
}

Runtime::~Runtime() { stop(); }

void Runtime::start(PacketSource& source) {
  util::MutexLock lock(lifecycle_mu_);
  CHECK(!started_) << "Runtime is single-shot; construct a new one";
  started_ = true;
  workers_.reserve(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    workers_.emplace_back([this, s] { worker_loop(s); });
  }
  PacketSource* source_ptr = &source;
  dispatcher_ = std::thread([this, source_ptr] { dispatch_loop(source_ptr); });
  watchdog_->start_watching();
}

void Runtime::wait() {
  util::MutexLock lock(lifecycle_mu_);
  if (!started_ || joined_) return;
  join_threads_locked();
  watchdog_->stop_watching();
  joined_ = true;
  finish_flush();
}

void Runtime::stop() {
  // Set the flag before touching the lifecycle lock: a concurrent wait()
  // holds the lock while joining, and this store is what lets its joins
  // finish early.
  stop_requested_.store(true, std::memory_order_relaxed);
  wait();
}

MetricsSnapshot Runtime::snapshot() const {
  MetricsSnapshot snap = metrics_.snapshot(&queues_);
  if (registry_ != nullptr) {
    snap.model_version = registry_->current_version();
    snap.model_swaps = registry_->swap_count();
  }
  snap.overload_stage = static_cast<int>(overload_.stage());
  snap.health = health_string();
  snap.cdb_ceiling = options_.engine.cdb.max_records;
  for (std::size_t s = 0; s < engine_.shard_count(); ++s) {
    // The CDB is internally locked, so reading it while workers run is
    // safe (each read is one short critical section on that shard).
    const core::ClassificationDatabase& cdb = engine_.shard(s).cdb();
    const core::CdbStats stats = cdb.stats();
    snap.cdb_records += cdb.size();
    snap.cdb_forced_evictions += stats.forced_evictions;
    snap.cdb_insert_failures += stats.insert_failures;
  }
  return snap;
}

RuntimeHealth Runtime::health() const {
  RuntimeHealth h;
  h.stage = overload_.stage();
  if (watchdog_ != nullptr) h.stalled_threads = watchdog_->stalled_count();
  if (h.stalled_threads > 0) {
    h.state = HealthState::kUnhealthy;
  } else if (h.stage != ShedStage::kNormal) {
    h.state = HealthState::kDegraded;
  }
  return h;
}

std::string Runtime::health_string() const {
  const RuntimeHealth h = health();
  switch (h.state) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return std::string("degraded(") + shed_stage_name(h.stage) + ")";
    case HealthState::kUnhealthy:
      return "unhealthy(watchdog)";
  }
  return "ok";  // unreachable; placates -Wreturn-type
}

bool Runtime::running() const {
  util::MutexLock lock(lifecycle_mu_);
  return started_ && !joined_;
}

void Runtime::join_threads_locked() {
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

// Real-time contract: once packets flow, the dispatcher neither touches
// the heap nor takes a lock — payloads move by buffer handoff into the
// rings.  The only tolerated exceptions are documented AllowScopes.
// analyze: hotpath
void Runtime::dispatch_loop(PacketSource* source) {
  if (options_.burst == 1) {
    dispatch_single(source);
  } else {
    dispatch_burst(source);
  }
  // Poison pill: every worker terminates once its ring is closed *and*
  // drained, whether we got here by source exhaustion or by stop().
  for (auto& ring : rings_) ring->close();
  // No more enqueues: the shed ladder steps back to normal (counting the
  // stage exits) and the dispatcher's heartbeat slot retires so the
  // watchdog stops expecting progress from it.
  overload_.reset();
  watchdog_->retire(options_.shards);
}

// The unbatched flavor: one try_push round-trip per packet, kept as the
// exact low-latency path behind burst == 1 (nothing is ever staged, so a
// paced source never parks a packet).
// analyze: hotpath
void Runtime::dispatch_single(PacketSource* source) {
  const std::size_t dispatcher_beat = options_.shards;
  Backoff backoff;
  Backoff source_backoff;
  std::size_t transient_failures = 0;
  {
    util::rt::GuardRegion guard;
    while (!stop_requested_.load(std::memory_order_relaxed)) {
      watchdog_->heartbeat(dispatcher_beat);
      std::optional<net::Packet> packet;
      {
        // Source refill sits upstream of the hot handoff: replay files
        // and generators may read, allocate payload, or block on I/O.
        util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block, may-throw, unresolved-call)
        packet = source->next();
      }
      if (!packet.has_value()) {
        // A transient failure (injected or a real I/O hiccup) is retried
        // with the stall backoff ladder up to the configured limit of
        // *consecutive* failures; end-of-stream breaks out.
        if (source->transient_error()) {  // analyze: hotpath-allow(unresolved-call)
          metrics_.on_source_transient_error();
          if (transient_failures < options_.source_retry_limit) {
            ++transient_failures;
            source_backoff.pause();
            continue;
          }
          metrics_.on_source_retries_exhausted();
        }
        break;
      }
      transient_failures = 0;
      source_backoff.reset();
      metrics_.on_source_packet();
      // Fault injection: an armed delay/stall on ring.push perturbs the
      // handoff timing (the sleep happens inside the armed slow path).
      (void)FAILPOINT("ring.push");
      const std::size_t shard = engine_.shard_of(packet->key);
      SpscRing<net::Packet>& ring = *rings_[shard];
      if (ring.try_push(std::move(*packet))) {
        metrics_.on_push(shard, ring.size_approx());
        overload_.observe_occupancy(ring.size_approx(), ring.capacity());
        continue;
      }
      // Shed stage 3 turns lossless backpressure into drops: keeping up
      // with the source beats completeness once the EWMA says the
      // workers cannot drain what we enqueue.
      if (options_.backpressure == BackpressurePolicy::kDrop ||
          overload_.stage() == ShedStage::kDrop) {
        metrics_.on_drop(shard);
        overload_.observe_occupancy(ring.size_approx(), ring.capacity());
        {
          // Retire the refused payload here, not at the iteration
          // boundary where the optional's destructor would free it
          // inside the bare guard region.
          util::rt::AllowScope allow(util::rt::kAlloc);  // analyze: hotpath-allow(may-allocate, unresolved-call)
          packet.reset();
        }
        continue;
      }
      // kBlock: stall until the worker frees a slot.  A stop() request
      // abandons the held packet (counted as a drop) so shutdown can never
      // deadlock against a full ring.
      backoff.reset();
      bool pushed = false;
      while (!stop_requested_.load(std::memory_order_relaxed)) {
        // Intentionally waiting, not stalled: keep the watchdog fed.
        watchdog_->heartbeat(dispatcher_beat);
        if (ring.try_push(std::move(*packet))) {
          pushed = true;
          break;
        }
        backoff.pause();
      }
      if (!pushed) {
        metrics_.on_drop(shard);
        {
          // Shutdown abandons the held packet; free its payload under a
          // scope instead of at the loop exit.
          util::rt::AllowScope allow(util::rt::kAlloc);  // analyze: hotpath-allow(may-allocate, unresolved-call)
          packet.reset();
        }
        break;
      }
      metrics_.on_push(shard, ring.size_approx());
      overload_.observe_occupancy(ring.size_approx(), ring.capacity());
    }
  }
}

// The batched flavor: read up to `burst` packets per source visit,
// steering each straight into its shard's staging buffer, and flush
// every buffer that fills as ONE ring burst — one head/tail
// acquire/release pair, one metrics update, and one backpressure
// decision per burst instead of per packet.  Every buffer is allocated
// (and first-touched) before the guarded region; the hot loop itself
// only moves payloads.
// analyze: hotpath
void Runtime::dispatch_burst(PacketSource* source) {
  const std::size_t burst = options_.burst;
  const std::size_t shards = options_.shards;
  Backoff backoff;
  using StagingBuffer = std::vector<net::Packet>;
  // Setup runs before the GuardRegion below; the alias's constructor call
  // is opaque to the analyzer but it is just vector pre-sizing.
  std::vector<StagingBuffer> staging(shards, StagingBuffer(burst));  // analyze: hotpath-allow(unresolved-call)
  std::vector<std::size_t> staged(shards, 0);

  // Flushes shard s's staged packets.  A nearly-full ring may take the
  // burst in pieces; the configured backpressure policy applies to any
  // remainder (drop: count + retire, block: wait for the worker, with a
  // stop() request downgrading to drop so shutdown cannot deadlock).
  const auto flush_shard = [&](std::size_t s) {
    const std::size_t count = staged[s];
    if (count == 0) return;
    staged[s] = 0;
    SpscRing<net::Packet>& ring = *rings_[s];
    net::Packet* packets = staging[s].data();
    metrics_.on_dispatch_flush(s);
    // Fault injection: an armed delay/stall on ring.push perturbs the
    // handoff timing (the sleep happens inside the armed slow path).
    (void)FAILPOINT("ring.push");
    std::size_t at = 0;
    backoff.reset();
    for (;;) {
      const std::size_t pushed = ring.try_push_burst(
          std::span<net::Packet>(packets + at, count - at));
      if (pushed != 0) {
        metrics_.on_push_burst(s, pushed, ring.size_approx());
        overload_.observe_occupancy(ring.size_approx(), ring.capacity());
        at += pushed;
        if (at == count) return;
        backoff.reset();
      }
      // Shed stage 3 turns lossless backpressure into drops: keeping up
      // with the source beats completeness once the EWMA says the
      // workers cannot drain what we enqueue.
      if (options_.backpressure == BackpressurePolicy::kDrop ||
          overload_.stage() == ShedStage::kDrop ||
          stop_requested_.load(std::memory_order_relaxed)) {
        metrics_.on_drop_burst(s, count - at);
        overload_.observe_occupancy(ring.size_approx(), ring.capacity());
        {
          // Retire the refused payloads here, not at the next staging
          // reuse where the move-assign would free them mid-guard.
          util::rt::AllowScope allow(util::rt::kAlloc);  // analyze: hotpath-allow(may-allocate, unresolved-call)
          for (std::size_t i = at; i < count; ++i) {
            packets[i] = net::Packet();
          }
        }
        return;
      }
      // Intentionally waiting on the worker, not stalled.
      watchdog_->heartbeat(options_.shards);
      backoff.pause();
    }
  };

  // Arrival buffer for the batched source read, allocated (and
  // first-touched) before the guarded region like the staging buffers.
  std::vector<net::Packet> arrivals(burst);
  const std::span<net::Packet> arrival_window(arrivals.data(), burst);

  const std::size_t dispatcher_beat = options_.shards;
  Backoff source_backoff;
  std::size_t transient_failures = 0;
  {
    util::rt::GuardRegion guard;
    while (!stop_requested_.load(std::memory_order_relaxed)) {
      watchdog_->heartbeat(dispatcher_beat);
      std::size_t read = 0;
      {
        // Source refill sits upstream of the hot handoff: replay files
        // and generators may read, allocate payload, or block on I/O.
        // One AllowScope and ONE virtual call cover the whole burst
        // (PacketSource::next_burst), not one of each per packet.
        util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block, may-throw, unresolved-call)
        read = source->next_burst(arrival_window);
      }
      if (read == 0) {
        // A transient failure (injected or a real I/O hiccup) is retried
        // with the stall backoff ladder up to the configured limit of
        // *consecutive* failures; end-of-stream breaks out.
        if (source->transient_error()) {  // analyze: hotpath-allow(unresolved-call)
          metrics_.on_source_transient_error();
          if (transient_failures < options_.source_retry_limit) {
            ++transient_failures;
            source_backoff.pause();
            continue;
          }
          metrics_.on_source_retries_exhausted();
        }
        break;
      }
      transient_failures = 0;
      source_backoff.reset();
      metrics_.on_source_packets(read);
      // Steer each arrival to its shard's staging buffer; a buffer
      // reaching `burst` flushes immediately as one ring burst.
      for (std::size_t i = 0; i < read; ++i) {
        const std::size_t s = engine_.shard_of(arrivals[i].key);
        staging[s][staged[s]] = std::move(arrivals[i]);
        if (++staged[s] == burst) flush_shard(s);
      }
    }
    // Hand anything still staged to the rings (or, refused, to the drop
    // counter) before the poison pill: these packets were already
    // consumed from the source and must stay accounted for.
    for (std::size_t s = 0; s < shards; ++s) flush_shard(s);
  }
}

// Real-time contract: the steady-state worker path is the engine's
// CDB-hit fast lane — no heap, no locks, no throws.  Unknown-flow setup
// and the output handoff are the documented cold branches (see the
// AllowScopes in core/engine.cc and core/output_queues.cc).
// analyze: hotpath
void Runtime::worker_loop(std::size_t shard) {
  if (options_.pin_workers) {
    // Once-per-thread startup cost, ahead of the guarded loop.
    // analyze: hotpath-allow(unresolved-call)
    pin_current_thread(shard);
  }

  // Single-owner drive for the whole run: this thread is the only one
  // touching the shard until the dispatcher's close() and our exit, which
  // the post-join finish_flush() ordering respects.
  core::Iustitia& eng = engine_.shard(shard);
  SpscRing<net::Packet>& ring = *rings_[shard];
  const std::size_t sample_every = options_.latency_sample_every;
  std::size_t folded = 0;
  std::uint64_t processed = 0;

  // RCU reader state (null registry = no hot-swap; one branch per burst).
  core::ModelRegistry* const registry = registry_.get();
  std::uint64_t model_epoch = bootstrap_epoch_;
  if (registry != nullptr) {
    // Pre-loop registration (cold, takes the registry mutex): this shard
    // runs the bootstrap model, which opens reclamation accounting.
    // analyze: hotpath-allow(may-block, may-throw, unresolved-call)
    registry->report_crossed(shard, model_epoch);
  }

  // Burst-boundary model check: one relaxed load while the epoch is
  // unchanged; on a publish, the cold branch takes the registry mutex
  // once, installs the new model (shared_ptr copy + extractor rebuild),
  // and reports the crossing so the old model's grace period can close.
  const auto maybe_swap = [&] {
    if (registry == nullptr ||
        registry->epoch_hint() == model_epoch) {
      return;
    }
    util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block, may-throw, unresolved-call)
    core::ModelRegistry::Published next = registry->current();
    model_epoch = next.epoch;
    eng.install_model(std::move(next.model));
    registry->report_crossed(shard, model_epoch);
  };

  // Applies the dispatcher-published shed stage to this shard's engine.
  // Stage 1 caps the per-flow classification buffer (the paper's c≈1 at
  // b=32 configuration: cheaper, slightly less certain); stage 2
  // additionally admits only a sampled fraction of brand-new flows.
  // Plain stores are fine: this thread owns the engine.
  ShedStage applied_stage = ShedStage::kNormal;
  const auto apply_stage = [&] {
    const ShedStage stage = overload_.stage();
    if (stage == applied_stage) return;
    applied_stage = stage;
    eng.set_buffer_cap(static_cast<int>(stage) >=
                               static_cast<int>(ShedStage::kCapBuffer)
                           ? options_.overload.degraded_buffer_bytes
                           : 0);
    eng.set_admission_permille(static_cast<int>(stage) >=
                                       static_cast<int>(
                                           ShedStage::kSampleAdmission)
                                   ? options_.overload.admission_permille
                                   : 1000);
  };

  const auto process = [&](net::Packet& packet) {
    ++processed;
    datagen::FileClass label = datagen::FileClass::kText;
    core::PacketAction action;
    if (sample_every != 0 && processed % sample_every == 0) {
      const util::Stopwatch watch;
      action = eng.on_packet(packet, &label);
      metrics_.record_engine_latency(watch.elapsed_micros());
    } else {
      action = eng.on_packet(packet, &label);
    }
    // Fold classifications as they happen (including flush_idle batches)
    // so a live snapshot() sees per-nature counts move in real time.
    const auto& delays = eng.delays();
    for (; folded < delays.size(); ++folded) {
      metrics_.on_classified(delays[folded].label);
    }
    if (action == core::PacketAction::kShed) metrics_.on_packets_shed(1);
    if (action == core::PacketAction::kForwarded ||
        action == core::PacketAction::kClassifiedNow) {
      // The handoff may touch the heap (lock + deque node, see
      // output_queues.cc) — and when the queue refuses, the by-value
      // parameter is destroyed *here*, in the caller (Itanium ABI), so
      // the payload retirement needs this scope too.
      util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block)
      queues_.enqueue(label, std::move(packet));
    } else {
      // A buffered/dropped packet keeps its payload; the next try_pop
      // move-assign would free it mid-guard, so retire it here.
      util::rt::AllowScope allow(util::rt::kAlloc);  // analyze: hotpath-allow(may-allocate, unresolved-call)
      packet = net::Packet();
    }
  };

  Backoff backoff;
  const std::size_t burst = options_.burst;
  // Local drain + output buffers for the burst path, allocated (and
  // first-touched) before the guarded loop.
  std::vector<net::Packet> batch(burst);
  const std::span<net::Packet> window(batch.data(), burst);
  std::vector<core::QueuedPacket> outbox(burst);

  // Burst flavor of the drive: classify the whole batch first, staging
  // forwarded packets into `outbox`, then cross to the output queues
  // ONCE — one queue lock (enqueue_burst), one allow scope, and one
  // batched payload retirement per burst instead of per packet.
  const auto process_burst = [&](std::span<net::Packet> packets) {
    std::size_t out_n = 0;
    for (net::Packet& packet : packets) {
      ++processed;
      datagen::FileClass label = datagen::FileClass::kText;
      core::PacketAction action;
      if (sample_every != 0 && processed % sample_every == 0) {
        const util::Stopwatch watch;
        action = eng.on_packet(packet, &label);
        metrics_.record_engine_latency(watch.elapsed_micros());
      } else {
        action = eng.on_packet(packet, &label);
      }
      // Fold classifications as they happen (including flush_idle
      // batches) so a live snapshot() sees per-nature counts move in
      // real time.
      const auto& delays = eng.delays();
      for (; folded < delays.size(); ++folded) {
        metrics_.on_classified(delays[folded].label);
      }
      if (action == core::PacketAction::kShed) metrics_.on_packets_shed(1);
      if (action == core::PacketAction::kForwarded ||
          action == core::PacketAction::kClassifiedNow) {
        outbox[out_n].label = label;
        outbox[out_n].packet = std::move(packet);
        ++out_n;
      }
      // Buffered/dropped packets keep their payloads; they are retired
      // in the batched scope below, before the slots are reused.
    }
    {
      // One output crossing per burst: the queue lock, the deque nodes,
      // and every payload retirement (refused enqueues and buffered
      // packets alike) under a single documented scope.
      util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block, unresolved-call)
      queues_.enqueue_burst(
          std::span<core::QueuedPacket>(outbox.data(), out_n));
      for (std::size_t j = 0; j < out_n; ++j) {
        outbox[j].packet = net::Packet();
      }
      for (net::Packet& packet : packets) packet = net::Packet();
    }
  };
  {
    util::rt::GuardRegion guard;
    if (burst == 1) {
      // Unbatched flavor: one try_pop round-trip per packet.
      net::Packet packet;
      for (;;) {
        watchdog_->heartbeat(shard);
        maybe_swap();
        apply_stage();
        // Fault injection: an armed stall here freezes this worker long
        // enough for the watchdog to notice (the sleep happens inside
        // the armed slow path).
        (void)FAILPOINT("worker.stall");
        if (ring.try_pop(packet)) {
          backoff.reset();
          metrics_.on_pop(shard);
          process(packet);
          continue;
        }
        if (ring.closed()) {
          // Flag observed: one more drain pass is definitive (see
          // spsc_ring.h termination protocol).
          while (ring.try_pop(packet)) {
            metrics_.on_pop(shard);
            process(packet);
          }
          break;
        }
        backoff.pause();
      }
    } else {
      for (;;) {
        watchdog_->heartbeat(shard);
        maybe_swap();
        apply_stage();
        // Fault injection: an armed stall here freezes this worker long
        // enough for the watchdog to notice (the sleep happens inside
        // the armed slow path).
        (void)FAILPOINT("worker.stall");
        std::size_t n = ring.try_pop_burst(window);
        if (n != 0) {
          backoff.reset();
          metrics_.on_pop_burst(shard, n);
          process_burst(window.first(n));
          continue;
        }
        if (ring.closed()) {
          // Post-close drain uses bursts too, so shutdown costs
          // O(occupancy / burst) ring operations, not O(occupancy) —
          // and the same definitive-pass protocol applies: a zero-size
          // burst after the flag was seen proves exhaustion.
          while ((n = ring.try_pop_burst(window)) != 0) {
            metrics_.on_pop_burst(shard, n);
            process_burst(window.first(n));
          }
          break;
        }
        backoff.pause();
      }
    }
  }
  // Done draining: this heartbeat slot retires so the watchdog stops
  // expecting progress from a worker that has legitimately finished.
  watchdog_->retire(shard);
  folded_delays_[shard] = folded;
}

void Runtime::finish_flush() {
  for (std::size_t s = 0; s < engine_.shard_count(); ++s) {
    core::Iustitia& eng = engine_.shard(s);
    eng.flush_all();
    const auto& delays = eng.delays();
    for (std::size_t i = folded_delays_[s]; i < delays.size(); ++i) {
      metrics_.on_classified(delays[i].label);
    }
    folded_delays_[s] = delays.size();
  }
}

}  // namespace iustitia::runtime
