# Empty dependencies file for test_appproto.
# This may be replaced when dependencies are built.
