// Tests for util/table.h rendering and formatting helpers.
#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace iustitia::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.render(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  // Header underline present.
  EXPECT_NE(text.find("---"), std::string::npos);
  // Every line where "value" appears is aligned to the same column.
  const auto header_col = text.find("value");
  const auto row_col = text.find("22222") - text.rfind('\n', text.find("22222")) - 1;
  EXPECT_EQ(header_col - text.rfind('\n', header_col) - 1, row_col);
}

TEST(Table, HandlesRaggedRows) {
  Table t({"a", "b"});
  t.add_row({"only-one"});
  t.add_row({"x", "y", "extra"});
  std::ostringstream os;
  t.render(os);
  EXPECT_NE(os.str().find("extra"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t({"k", "v"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"quote", "say \"hi\""});
  std::ostringstream os;
  t.render_csv(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(text.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Fmt, DecimalControl) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
}

TEST(FmtPercent, MatchesPaperStyle) {
  EXPECT_EQ(fmt_percent(0.8651), "86.51%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(FmtBytes, UnitSelection) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KB");
  EXPECT_EQ(fmt_bytes(3.5 * 1024 * 1024), "3.50 MB");
}

TEST(FmtSeconds, UnitSelection) {
  EXPECT_EQ(fmt_seconds(5e-6), "5.0 us");
  EXPECT_EQ(fmt_seconds(0.0123), "12.30 ms");
  EXPECT_EQ(fmt_seconds(2.5), "2.500 s");
}

TEST(Bar, FillProportional) {
  EXPECT_EQ(bar(0.0, 4), "....");
  EXPECT_EQ(bar(0.5, 4), "##..");
  EXPECT_EQ(bar(1.0, 4), "####");
  EXPECT_EQ(bar(2.0, 4), "####");   // clamped
  EXPECT_EQ(bar(-1.0, 4), "....");  // clamped
}

}  // namespace
}  // namespace iustitia::util
