file(REMOVE_RECURSE
  "libiustitia_appproto.a"
)
