// Clang thread-safety annotations and an annotated mutex wrapper.
//
// When compiled with Clang (which enables -Wthread-safety in the build),
// these macros let the compiler prove lock discipline statically: data
// members declare which mutex guards them (IUSTITIA_GUARDED_BY), private
// helpers declare the locks they expect held (IUSTITIA_REQUIRES), and the
// analysis rejects any access path that does not hold the right capability.
// Under GCC the macros expand to nothing and the wrappers are plain
// std::mutex, so the annotations cost nothing.
//
// Repo conventions (see DESIGN.md "Correctness tooling"):
//  - use util::Mutex + util::MutexLock, never bare std::mutex, so the
//    annotations are never silently dropped;
//  - every member guarded by a mutex carries IUSTITIA_GUARDED_BY(mu_);
//  - locked private helpers are suffixed `_locked` and annotated with
//    IUSTITIA_REQUIRES(mu_);
//  - deliberately unsynchronized escape hatches (e.g. single-owner shard
//    access) are annotated IUSTITIA_NO_THREAD_SAFETY_ANALYSIS and must say
//    why in a comment.
#ifndef IUSTITIA_UTIL_THREAD_ANNOTATIONS_H_
#define IUSTITIA_UTIL_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(IUSTITIA_DEADLOCK_DEBUG)
#include "util/deadlock_debug.h"
#endif

#if defined(IUSTITIA_RT_DEBUG)
#include "util/rt_guard.h"
#endif

#if defined(__clang__)
#define IUSTITIA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define IUSTITIA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define IUSTITIA_CAPABILITY(x) IUSTITIA_THREAD_ANNOTATION(capability(x))
#define IUSTITIA_SCOPED_CAPABILITY IUSTITIA_THREAD_ANNOTATION(scoped_lockable)
#define IUSTITIA_GUARDED_BY(x) IUSTITIA_THREAD_ANNOTATION(guarded_by(x))
#define IUSTITIA_PT_GUARDED_BY(x) IUSTITIA_THREAD_ANNOTATION(pt_guarded_by(x))
#define IUSTITIA_REQUIRES(...) \
  IUSTITIA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IUSTITIA_ACQUIRE(...) \
  IUSTITIA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IUSTITIA_RELEASE(...) \
  IUSTITIA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IUSTITIA_TRY_ACQUIRE(...) \
  IUSTITIA_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define IUSTITIA_EXCLUDES(...) \
  IUSTITIA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define IUSTITIA_RETURN_CAPABILITY(x) \
  IUSTITIA_THREAD_ANNOTATION(lock_returned(x))
#define IUSTITIA_NO_THREAD_SAFETY_ANALYSIS \
  IUSTITIA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace iustitia::util {

// std::mutex with the capability annotation the analysis needs.
//
// The optional name ties a mutex to its node in the lock-order graph;
// the convention is the owning member's qualified name, e.g.
// `util::Mutex mu_{"ClassificationDatabase::mu_"};`.  That string must
// match the identity the tools/analyze lockorder pass derives
// (`Class::member`), because IUSTITIA_DEADLOCK_DEBUG builds feed the
// names into the runtime order registry that is cross-checked against
// the static graph (tools/check_lock_graph.py).  Unnamed mutexes are
// still deadlock-checked for recursive acquisition, but contribute no
// named ordering edges.
class IUSTITIA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IUSTITIA_ACQUIRE() {
#if defined(IUSTITIA_RT_DEBUG)
    rt::note_block(name_ ? name_ : "unnamed util::Mutex");
#endif
#if defined(IUSTITIA_DEADLOCK_DEBUG)
    deadlock::on_acquire(this, name_);
#endif
    mu_.lock();
  }
  void unlock() IUSTITIA_RELEASE() {
#if defined(IUSTITIA_DEADLOCK_DEBUG)
    deadlock::on_release(this);
#endif
    mu_.unlock();
  }
  bool try_lock() IUSTITIA_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if defined(IUSTITIA_DEADLOCK_DEBUG)
    if (acquired) deadlock::on_acquired_try(this, name_);
#endif
    return acquired;
  }

  const char* name() const noexcept { return name_; }

 private:
  std::mutex mu_;
  const char* name_ = nullptr;
};

// RAII lock for util::Mutex (std::lock_guard is not annotated).
class IUSTITIA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) IUSTITIA_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() IUSTITIA_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_THREAD_ANNOTATIONS_H_
