#include "datagen/chacha20.h"

#include <cstring>

namespace iustitia::datagen {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int k) noexcept {
  return (x << k) | (x >> (32 - k));
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) noexcept {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

inline std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void init_state(std::uint32_t state[16], const ChaCha20::Key& key,
                const ChaCha20::Nonce& nonce, std::uint32_t counter) noexcept {
  // "expand 32-byte k"
  state[0] = 0x61707865u;
  state[1] = 0x3320646Eu;
  state[2] = 0x79622D32u;
  state[3] = 0x6B206574u;
  for (int i = 0; i < 8; ++i) {
    state[4 + i] = load_le32(key.data() + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = load_le32(nonce.data() + 4 * i);
  }
}

void run_block(const std::uint32_t input[16], std::uint8_t out[64]) noexcept {
  std::uint32_t x[16];
  std::memcpy(x, input, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    store_le32(out + 4 * i, x[i] + input[i]);
  }
}

}  // namespace

ChaCha20::ChaCha20(const Key& key, const Nonce& nonce,
                   std::uint32_t initial_counter) noexcept {
  init_state(state_, key, nonce, initial_counter);
}

std::array<std::uint8_t, 64> ChaCha20::block(const Key& key,
                                             const Nonce& nonce,
                                             std::uint32_t counter) noexcept {
  std::uint32_t state[16];
  init_state(state, key, nonce, counter);
  std::array<std::uint8_t, 64> out{};
  run_block(state, out.data());
  return out;
}

void ChaCha20::apply(std::span<std::uint8_t> data) noexcept {
  for (std::uint8_t& byte : data) {
    if (buffer_used_ == 64) {
      run_block(state_, buffer_.data());
      ++state_[12];  // block counter
      buffer_used_ = 0;
    }
    byte ^= buffer_[buffer_used_++];
  }
}

std::vector<std::uint8_t> ChaCha20::encrypt(
    std::span<const std::uint8_t> plaintext) {
  std::vector<std::uint8_t> out(plaintext.begin(), plaintext.end());
  apply(out);
  return out;
}

}  // namespace iustitia::datagen
