#include "ml/scaler.h"

#include <stdexcept>

namespace iustitia::ml {

void MinMaxScaler::fit(const Dataset& data) {
  mins_.clear();
  maxs_.clear();
  if (data.empty()) return;
  const std::size_t dims = data.feature_count();
  mins_.assign(dims, 0.0);
  maxs_.assign(dims, 0.0);
  for (std::size_t f = 0; f < dims; ++f) {
    mins_[f] = maxs_[f] = data[0].features[f];
  }
  for (std::size_t i = 1; i < data.size(); ++i) {
    for (std::size_t f = 0; f < dims; ++f) {
      const double v = data[i].features[f];
      if (v < mins_[f]) mins_[f] = v;
      if (v > maxs_[f]) maxs_[f] = v;
    }
  }
}

std::vector<double> MinMaxScaler::transform(
    std::span<const double> features) const {
  std::vector<double> out(features.begin(), features.end());
  if (!fitted()) return out;
  if (features.size() != mins_.size()) {
    throw std::invalid_argument("MinMaxScaler: dimension mismatch");
  }
  for (std::size_t f = 0; f < out.size(); ++f) {
    const double range = maxs_[f] - mins_[f];
    out[f] = range > 0.0 ? (out[f] - mins_[f]) / range : 0.0;
  }
  return out;
}

Dataset MinMaxScaler::transform(const Dataset& data) const {
  Dataset out(data.num_classes());
  for (const auto& s : data.samples()) {
    out.add(transform(s.features), s.label);
  }
  return out;
}

void MinMaxScaler::restore(std::vector<double> mins, std::vector<double> maxs) {
  if (mins.size() != maxs.size()) {
    throw std::invalid_argument("MinMaxScaler::restore: size mismatch");
  }
  mins_ = std::move(mins);
  maxs_ = std::move(maxs);
}

}  // namespace iustitia::ml
