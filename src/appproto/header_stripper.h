// Signature-based application-layer header detection and stripping
// (paper Section 4.3: "for headers of well-known application protocols,
// such as HTTP, SMTP, IMAP, and POP, ... our classifier strips them off
// using signature based header detection techniques").
#ifndef IUSTITIA_APPPROTO_HEADER_STRIPPER_H_
#define IUSTITIA_APPPROTO_HEADER_STRIPPER_H_

#include <cstdint>
#include <span>

#include "appproto/header_gen.h"

namespace iustitia::appproto {

// Detection result: which protocol the prefix matches and how many bytes
// of it are protocol header.
struct HeaderDetection {
  AppProtocol protocol = AppProtocol::kNone;
  std::size_t header_length = 0;  // bytes to strip (0 when kNone)
  bool header_complete = false;   // false if the delimiter wasn't seen yet
};

// Inspects the flow prefix and locates a well-known application header.
//
// HTTP headers end at the first CRLF CRLF; the line-oriented mail protocols
// (SMTP/POP3/IMAP) are stripped through the last *protocol* line in the
// prefix — for SMTP that means everything through the DATA/354 exchange.
// When the signature matches but the delimiter is not in `prefix` yet,
// `header_complete` is false and `header_length` covers the whole prefix.
HeaderDetection detect_header(std::span<const std::uint8_t> prefix) noexcept;

// Convenience: payload view with a detected header removed.
std::span<const std::uint8_t> strip_header(
    std::span<const std::uint8_t> prefix) noexcept;

}  // namespace iustitia::appproto

#endif  // IUSTITIA_APPPROTO_HEADER_STRIPPER_H_
