"""iustitia static analyzer: see tools/README.md and `__main__.py`."""
