"""API-contract pass: enum-switch exhaustiveness and hot-path hygiene.

switch-not-exhaustive
    A switch whose case labels name enumerators of a known project enum
    (`Enum::kFoo`) must either list every enumerator or carry a default
    arm that fails loudly (CHECK/LOG(FATAL)/abort/unreachable).  A silent
    default turns "someone added a FlowNature" into a wrong-answer bug
    instead of a compile/test failure.

check-in-hot-loop
    CHECK and its comparison forms are always-on; inside the per-packet /
    per-gram loops of src/entropy and src/core they tax the paths the
    paper's Table 3 measures.  Use DCHECK there (kept live by the default
    IUSTITIA_DCHECKS=ON build, free in benchmark builds).

lock-held-io
    While a MutexLock is live, blocking calls (stream/file I/O, logging,
    sleeping) stretch the critical section across every waiter.  Flagged
    from the lock's declaration to the end of its enclosing block.
    Container operations (push_back etc.) are deliberately not flagged:
    bounded allocation under a short lock is this codebase's idiom.
"""

from __future__ import annotations

from findings import Finding
from tokenizer import IDENT, PUNCT, nolint_lines

HOT_MODULES = ("entropy", "core")

_FATAL_DEFAULT_MARKERS = (
    "CHECK", "DCHECK", "abort", "unreachable", "LOG_FATAL", "FATAL",
    "CheckFailure", "throw",
)

_CHECK_FAMILY_PREFIX = "CHECK"  # CHECK, CHECK_EQ, CHECK_LT, ...

_BLOCKING_CALLS = {
    "printf", "fprintf", "snprintf_to_file", "puts", "fputs", "fopen",
    "fclose", "fread", "fwrite", "fflush", "cout", "cerr", "clog",
    "ofstream", "ifstream", "fstream", "getline", "system", "popen",
    "sleep", "sleep_for", "sleep_until", "usleep", "nanosleep",
    "read_corpus", "write_corpus", "load_model", "save_model",
}


def _is_check_ident(text: str) -> bool:
    return text.startswith(_CHECK_FAMILY_PREFIX) and \
        not text.startswith("CHECK_FAILURE")


def _enum_tables(ctx) -> dict[str, set[str]]:
    enums: dict[str, set[str]] = {}
    for model in ctx.models.values():
        for enum in model.enums:
            if enum.enumerators:
                enums.setdefault(enum.name, set(enum.enumerators))
    return enums


def _check_switches(ctx, path, model, enums, findings) -> None:
    code = model.code
    suppressed = nolint_lines(model.tokens, "switch-not-exhaustive")
    n = len(code)
    for i, tok in enumerate(code):
        if tok.kind != IDENT or tok.text != "switch":
            continue
        # Find the switch body brace.
        j = i + 1
        if j >= n or code[j].text != "(":
            continue
        depth = 0
        while j < n:
            if code[j].text == "(":
                depth += 1
            elif code[j].text == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        j += 1
        if j >= n or code[j].text != "{":
            continue
        # Walk the body at depth 1, collecting case labels and default arm.
        body_depth = 0
        cases: list[tuple[str | None, str]] = []  # (enum, enumerator)
        default_fatal = False
        has_default = False
        in_default_arm = False
        k = j
        while k < n:
            t = code[k]
            if t.text == "{":
                body_depth += 1
            elif t.text == "}":
                body_depth -= 1
                if body_depth == 0:
                    break
            elif t.kind == IDENT and t.text == "case" and body_depth == 1:
                in_default_arm = False
                # label: [Ns::]Enum::kFoo  or a plain constant.
                lbl: list[str] = []
                m = k + 1
                while m < n and code[m].text != ":":
                    if code[m].kind in (IDENT,) or code[m].text == "::":
                        lbl.append(code[m].text)
                    m += 1
                    if m - k > 12:
                        break
                if len(lbl) >= 3 and lbl[-2] == "::":
                    cases.append((lbl[-3], lbl[-1]))
                else:
                    cases.append((None, "".join(lbl)))
            elif t.kind == IDENT and t.text == "default" and body_depth == 1:
                has_default = True
                in_default_arm = True
            elif in_default_arm and t.kind == IDENT:
                if any(t.text.startswith(mark)
                       for mark in _FATAL_DEFAULT_MARKERS):
                    default_fatal = True
            k += 1

        enum_names = {e for e, _ in cases if e is not None and e in enums}
        if len(enum_names) != 1:
            continue  # not an enum switch we can attribute
        enum_name = enum_names.pop()
        covered = {c for e, c in cases if e == enum_name}
        missing = sorted(enums[enum_name] - covered)
        if not missing:
            continue
        if has_default and default_fatal:
            continue
        if tok.line in suppressed:
            continue
        arm = "a CHECK'd default arm" if has_default else "no default arm"
        findings.append(Finding(
            "switch-not-exhaustive", path, tok.line,
            f"switch over {enum_name} misses {{{', '.join(missing)}}} with "
            f"{arm}; add the cases or CHECK on default",
            anchor=f"{enum_name}@{tok.line // 10}"))


def _check_hot_loops(ctx, path, model, findings) -> None:
    module = ctx.universe.module_of(path)
    if module not in HOT_MODULES:
        return
    suppressed = nolint_lines(model.tokens, "check-in-hot-loop")
    code = model.code
    n = len(code)
    # Collect loop body spans: for/while followed by (...) then { ... }.
    i = 0
    loop_depths: list[int] = []  # brace depths at which a loop body opened
    depth = 0
    while i < n:
        t = code[i]
        if t.kind == IDENT and t.text in ("for", "while") and \
                i + 1 < n and code[i + 1].text == "(":
            j = i + 1
            pd = 0
            while j < n:
                if code[j].text == "(":
                    pd += 1
                elif code[j].text == ")":
                    pd -= 1
                    if pd == 0:
                        break
                j += 1
            j += 1
            if j < n and code[j].text == "{":
                loop_depths.append(depth + 1)
            i = j
            continue
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            if loop_depths and loop_depths[-1] == depth:
                loop_depths.pop()
            depth -= 1
        elif loop_depths and t.kind == IDENT and _is_check_ident(t.text) \
                and i + 1 < n and code[i + 1].text == "(":
            if t.line not in suppressed:
                findings.append(Finding(
                    "check-in-hot-loop", path, t.line,
                    f"{t.text} inside a loop in hot module '{module}'; "
                    f"use the DCHECK form (or hoist the check out of the "
                    f"loop)",
                    anchor=f"{t.text}@{t.line // 10}"))
        i += 1


def _check_lock_held_io(ctx, path, model, findings) -> None:
    suppressed = nolint_lines(model.tokens, "lock-held-io")
    code = model.code
    n = len(code)
    depth = 0
    # Stack of (depth, mutex_name) for live RAII locks.
    live: list[tuple[int, str]] = []
    for i, t in enumerate(code):
        if t.text == "{":
            depth += 1
        elif t.text == "}":
            while live and live[-1][0] > depth - 1:
                live.pop()
            depth -= 1
        elif t.kind == IDENT and t.text == "MutexLock" and \
                i + 2 < n and code[i + 1].kind == IDENT and \
                code[i + 2].text == "(":
            j = i + 3
            expr = []
            while j < n and code[j].text != ")":
                expr.append(code[j].text)
                j += 1
            live.append((depth, "".join(expr)))
        elif live and t.kind == IDENT and t.text in _BLOCKING_CALLS:
            if t.line in suppressed:
                continue
            findings.append(Finding(
                "lock-held-io", path, t.line,
                f"'{t.text}' called while MutexLock({live[-1][1]}) is "
                f"live; move the I/O outside the critical section",
                anchor=f"{t.text}@{live[-1][1]}"))
    return


def run(ctx) -> list[Finding]:
    findings: list[Finding] = []
    enums = _enum_tables(ctx)
    for path, model in sorted(ctx.models.items()):
        if ctx.universe.module_of(path) is None:
            continue
        _check_switches(ctx, path, model, enums, findings)
        _check_hot_loops(ctx, path, model, findings)
        _check_lock_held_io(ctx, path, model, findings)
    return findings
