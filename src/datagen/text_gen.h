// Text-class file generators (paper text pool: documents, manuals, txt,
// log files, HTML).
#ifndef IUSTITIA_DATAGEN_TEXT_GEN_H_
#define IUSTITIA_DATAGEN_TEXT_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::datagen {

// Plain prose via the Markov model.
std::vector<std::uint8_t> generate_prose(std::size_t size, util::Rng& rng);

// HTML page: tags, attributes, prose body, some entities.
std::vector<std::uint8_t> generate_html(std::size_t size, util::Rng& rng);

// Server-style log lines: timestamps, IPs, paths, status codes.
std::vector<std::uint8_t> generate_log(std::size_t size, util::Rng& rng);

// CSV table with a header row and mixed numeric/word columns.
std::vector<std::uint8_t> generate_csv(std::size_t size, util::Rng& rng);

// C-like source code: keywords, identifiers, punctuation, indentation.
std::vector<std::uint8_t> generate_source_code(std::size_t size,
                                               util::Rng& rng);

// Email message with header block and prose body (chat/email traffic).
std::vector<std::uint8_t> generate_email(std::size_t size, util::Rng& rng);

}  // namespace iustitia::datagen

#endif  // IUSTITIA_DATAGEN_TEXT_GEN_H_
