"""Interprocedural call graph with real-time-safety effect summaries.

Built on cppmodel: every captured function/method body (out-of-line,
inline member, free) becomes a node keyed "Class::name" (or the bare
name for free functions).  A single scan of each body records

  - direct effect sites: `may-allocate` (new/delete, malloc family,
    make_unique/make_shared, resizing std container mutators),
    `may-block` (scoped lockers, .lock(), condition waits, sleeps,
    stream/printf I/O, IUSTITIA_LOG_* macros), `may-throw` (throw,
    .at()), and the pseudo-effect `unresolved-call` for calls the
    resolver cannot attribute (virtuals through references, function
    pointers, unknown externals) — conservative by construction;
  - call sites resolved to other nodes: explicit `Class::name(...)`,
    receiver-typed member calls (local declarations, class fields,
    globals, unique field owner), same-class bare calls, and a
    unique-definition-by-name fallback.

`// analyze: hotpath` on (or just above) a definition marks it a hot
entry point.  `// analyze: hotpath-allow(<effects>)` opens a
suppression scope: it activates at the first code token at/after its
line and dies when the brace depth drops below the activation depth —
the static mirror of a `util::rt::AllowScope` RAII placed on the same
line.  Effects suppressed at their origin never propagate; a call site
inside an allow scope filters the listed effects out of everything
reachable through that edge.

Functions declared `noexcept` mask `may-throw` for their own body and
everything below them (an escaping exception is std::terminate, which
is the documented contract, not a silent stall).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from cppmodel import _KEYWORDS, FileModel, LOCK_TYPES
from tokenizer import IDENT, Token

EFFECTS = ("may-allocate", "may-block", "may-throw", "unresolved-call")

# Direct-effect tables.  Member names fire only after '.'/'->'; free
# names fire on any call position.  '<' also opens a call for the
# templated allocators (make_unique<T>(...)).
ALLOC_FREE_FUNCS = {
    "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "to_string",
}
ALLOC_MEMBERS = {
    "push_back", "emplace_back", "emplace", "emplace_front",
    "push_front", "insert", "try_emplace", "resize", "reserve",
    "assign", "append", "substr", "str", "to_string",
}
BLOCK_MEMBERS = {"lock", "wait", "wait_for", "wait_until"}
BLOCK_FREE_FUNCS = {
    "printf", "fprintf", "puts", "fputs", "fopen", "fclose", "fread",
    "fwrite", "fflush", "getline", "system", "popen", "sleep",
    "sleep_for", "sleep_until", "usleep", "nanosleep", "yield",
}
BLOCK_STREAMS = {"cout", "cerr", "clog"}
THROW_MEMBERS = {"at"}

# Calls known not to allocate/block/throw on any input this codebase
# feeds them: std utilities, atomics, cheap accessors, libm, chrono
# plumbing, and functional-style casts to fixed-width ints.
SAFE_CALLS = {
    "move", "forward", "swap", "exchange", "get", "data", "size",
    "size_bytes", "empty", "begin", "end", "cbegin", "cend", "front",
    "back", "first", "last", "subspan", "min", "max", "clamp", "abs",
    "memcpy", "memmove", "memcmp", "memset", "distance", "fill",
    "fill_n", "copy", "copy_n", "count", "equal", "has_value",
    "load", "store", "fetch_add",
    "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong", "try_lock",
    "unlock", "notify_one", "notify_all", "test_and_set",
    "log", "log2", "exp", "exp2", "sqrt", "pow", "floor", "ceil",
    "round", "lround", "fma", "isnan", "isfinite", "ldexp",
    "duration_cast", "time_since_epoch", "now",
    "uint8_t", "uint16_t", "uint32_t", "uint64_t", "int8_t", "int16_t",
    "int32_t", "int64_t", "size_t", "ptrdiff_t", "uintptr_t",
    "intptr_t", "nanoseconds", "microseconds", "milliseconds",
    "seconds", "popcount", "countl_zero", "countr_zero", "bit_width",
    "rotl", "rotr", "has_single_bit", "from_range", "hash_bytes",
    # Compiler intrinsic: a pure cache hint, no memory effects at all.
    "__builtin_prefetch",
}


@dataclass
class EffectSite:
    kind: str      # one of EFFECTS
    line: int
    detail: str    # the token/callee that produced the effect


@dataclass
class CallSite:
    line: int
    name: str                  # callee as written
    targets: tuple[str, ...]   # resolved node keys
    allowed: frozenset[str]    # effects suppressed through this edge


@dataclass
class FuncInfo:
    key: str
    path: str
    line: int
    is_noexcept: bool = False
    is_hot_entry: bool = False
    effects: list[EffectSite] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)


def _allow_values(value: str) -> frozenset[str]:
    return frozenset(v.strip() for v in value.split(",") if v.strip())


def _hot_entry_lines(model: FileModel) -> set[int]:
    return {line for line, items in model.annotations.items()
            if any(kind == "hotpath" for kind, _ in items)}


def _allow_lines(model: FileModel) -> dict[int, frozenset[str]]:
    out: dict[int, frozenset[str]] = {}
    for line, items in model.annotations.items():
        vals: set[str] = set()
        for kind, value in items:
            if kind == "hotpath-allow":
                vals |= _allow_values(value)
        if vals:
            out[line] = frozenset(vals)
    return out


class CallGraph:
    """Effect-annotated call graph over every model in the universe."""

    def __init__(self, models: dict[str, FileModel]):
        self.funcs: dict[str, FuncInfo] = {}
        self.by_name: dict[str, set[str]] = {}
        self.classes: set[str] = set()
        # field name -> {(owning class, field's class)}: receiver typing
        # fallback when the receiver expression itself cannot be typed.
        self._field_owners: dict[str, set[tuple[str, str]]] = {}
        self._class_fields: dict[str, dict[str, str]] = {}
        self._globals: dict[str, str] = {}
        for model in models.values():
            for cls in model.classes:
                self.classes.add(cls.name)
        for model in models.values():
            for cls in model.classes:
                fields = self._class_fields.setdefault(cls.name, {})
                for fname, type_toks in cls.fields.items():
                    fcls = self._type_class(type_toks)
                    if fcls is not None:
                        fields[fname] = fcls
                        self._field_owners.setdefault(fname, set()).add(
                            (cls.name, fcls))
            for gname, type_toks in model.globals_.items():
                gcls = self._type_class(type_toks)
                if gcls is not None:
                    self._globals.setdefault(gname, gcls)
        # Two phases: register every node first, then scan bodies —
        # resolution consults funcs/by_name, which must be complete
        # regardless of file order.
        pending: list = []
        for model in models.values():
            pending.extend(self._register_file(model))
        for info, m, model, allow_lines in pending:
            self._scan_body(info, m, model, allow_lines)

    # -- construction ------------------------------------------------------

    def _type_class(self, type_toks: list[Token]) -> str | None:
        """Rightmost identifier of a declared type that names a class."""
        for t in reversed(type_toks):
            if t.kind == IDENT and t.text in self.classes:
                return t.text
        return None

    def _register_file(self, model: FileModel) -> list:
        hot_lines = _hot_entry_lines(model)
        allow_lines = _allow_lines(model)
        out = []
        for m in model.methods:
            if not m.body:
                continue
            key = f"{m.cls}::{m.name}" if m.cls else m.name
            first_line = m.body[0].line
            is_hot = any(line in hot_lines
                         for line in range(m.line - 2, first_line + 1))
            info = self.funcs.get(key)
            if info is None:
                info = FuncInfo(key=key, path=model.path, line=m.line)
                info.is_noexcept = m.is_noexcept
                self.funcs[key] = info
                self.by_name.setdefault(m.name, set()).add(key)
            else:
                # Several definitions share a key (anon-namespace helpers
                # across TUs): merge conservatively.
                info.is_noexcept = info.is_noexcept and m.is_noexcept
            info.is_hot_entry = info.is_hot_entry or is_hot
            out.append((info, m, model, allow_lines))
        return out

    # -- body scan ---------------------------------------------------------

    def _scan_body(self, info: FuncInfo, m, model: FileModel,
                   allow_lines: dict[int, frozenset[str]]) -> None:
        body = m.body
        last_line = body[-1].line
        pending = sorted((line, effs) for line, effs in allow_lines.items()
                         if body[0].line <= line <= last_line)
        # `auto fn = [...]` lambda locals: their bodies are token spans of
        # this body and already scanned inline; calls to them are not edges.
        local_lambdas = {body[k].text for k in range(len(body) - 2)
                         if body[k].kind == IDENT and
                         body[k + 1].text == "=" and
                         body[k + 2].text == "["}
        depth = 0
        active: list[tuple[frozenset[str], int]] = []
        p = 0
        for idx, t in enumerate(body):
            while p < len(pending) and t.line >= pending[p][0]:
                active.append((pending[p][1], depth))
                p += 1
            if t.text == "{":
                depth += 1
                continue
            if t.text == "}":
                depth -= 1
                active = [(effs, d) for effs, d in active if d <= depth]
                continue
            allowed = frozenset().union(*(effs for effs, _ in active)) \
                if active else frozenset()

            def emit(kind: str, detail: str, line: int = t.line) -> None:
                if kind not in allowed:
                    info.effects.append(EffectSite(kind, line, detail))

            if t.text in ("new", "delete"):
                emit("may-allocate", t.text)
                continue
            if t.text == "throw":
                emit("may-throw", "throw")
                continue
            if t.kind != IDENT or t.text in _KEYWORDS:
                continue
            prv = body[idx - 1] if idx > 0 else None
            nxt = body[idx + 1] if idx + 1 < len(body) else None
            if t.text in BLOCK_STREAMS:
                emit("may-block", t.text)
                continue
            if t.text in LOCK_TYPES:
                emit("may-block", t.text)
                continue
            if t.text.startswith("IUSTITIA_LOG_"):
                emit("may-block", t.text)
                continue
            if nxt is None or nxt.text not in ("(", "<"):
                continue
            name = t.text
            if name.isupper():
                continue  # CHECK/DCHECK and friends: abort is the bug path
            member = prv is not None and prv.text in (".", "->")
            if nxt.text == "<":
                # Only the templated allocators matter here; template
                # calls otherwise stay un-modelled (under-reporting).
                if name in ALLOC_FREE_FUNCS:
                    emit("may-allocate", name)
                continue
            if not member and prv is not None and \
                    (prv.kind == IDENT or prv.text in (">", "*", "&", "~")):
                continue  # declaration `Type name(init)`, not a call
            if member:
                self._member_call(info, body, idx, m, emit, allowed,
                                  local_lambdas)
            else:
                self._free_call(info, body, idx, m, emit, allowed,
                                local_lambdas)

    def _add_call(self, info: FuncInfo, line: int, name: str,
                  targets: tuple[str, ...],
                  allowed: frozenset[str]) -> None:
        info.calls.append(CallSite(line, name, targets, allowed))

    def _member_call(self, info, body, idx, m, emit, allowed,
                     local_lambdas) -> None:
        name = body[idx].text
        rcls = self._receiver_class(body, idx, m)
        if rcls is not None and f"{rcls}::{name}" in self.funcs:
            self._add_call(info, body[idx].line, name,
                           (f"{rcls}::{name}",), allowed)
            return
        if name in ALLOC_MEMBERS:
            emit("may-allocate", name, body[idx].line)
            return
        if name in BLOCK_MEMBERS:
            emit("may-block", name, body[idx].line)
            return
        if name in THROW_MEMBERS:
            emit("may-throw", f".{name}()", body[idx].line)
            return
        if name in SAFE_CALLS:
            return
        keys = self.by_name.get(name, set())
        if len(keys) == 1:
            self._add_call(info, body[idx].line, name,
                           (next(iter(keys)),), allowed)
            return
        emit("unresolved-call", name, body[idx].line)

    def _free_call(self, info, body, idx, m, emit, allowed,
                   local_lambdas) -> None:
        name = body[idx].text
        line = body[idx].line
        prv = body[idx - 1] if idx > 0 else None
        if name in local_lambdas:
            return  # body scanned inline with this function
        if prv is not None and prv.text == "::" and idx >= 2:
            qual = body[idx - 2]
            if qual.kind == IDENT and f"{qual.text}::{name}" in self.funcs:
                self._add_call(info, line, name,
                               (f"{qual.text}::{name}",), allowed)
                return
        if name in ALLOC_FREE_FUNCS:
            emit("may-allocate", name, line)
            return
        if name in BLOCK_FREE_FUNCS:
            emit("may-block", name, line)
            return
        if m.cls and f"{m.cls}::{name}" in self.funcs:
            self._add_call(info, line, name, (f"{m.cls}::{name}",), allowed)
            return
        if name in self.funcs:
            self._add_call(info, line, name, (name,), allowed)
            return
        if name in SAFE_CALLS:
            return
        keys = self.by_name.get(name, set())
        if len(keys) == 1:
            self._add_call(info, line, name, (next(iter(keys)),), allowed)
            return
        if name in self.classes:
            return  # functional-style construction of a modelled type
        emit("unresolved-call", name, line)

    # -- receiver typing ---------------------------------------------------

    def _receiver_class(self, body, idx, m) -> str | None:
        """Class of the receiver in `recv.name(...)` at idx (the name)."""
        if idx < 2:
            return None
        recv = body[idx - 2]
        if recv.text == "this":
            return m.cls or None
        if recv.kind != IDENT:
            return None  # call chains `f().g()`, indexing `a[i].g()`
        var = recv.text
        local = self._local_class(var, body)
        if local is not None:
            return local
        if m.cls:
            fcls = self._class_fields.get(m.cls, {}).get(var)
            if fcls is not None:
                return fcls
        if var in self._globals:
            return self._globals[var]
        if idx >= 4 and body[idx - 3].text in (".", "->"):
            # One level of member chain, `outer.field->name(...)`: type
            # `outer`, then look `field` up in its class.
            outer = self._receiver_class(body, idx - 2, m)
            if outer is not None:
                fcls = self._class_fields.get(outer, {}).get(var)
                if fcls is not None:
                    return fcls
        owners = self._field_owners.get(var, set())
        if len({fcls for _, fcls in owners}) == 1:
            return next(iter(owners))[1]
        return None

    def _local_class(self, var: str, body) -> str | None:
        """Type of a local `Cls v ...` / `Cls& v = ...` declaration."""
        for k in range(1, len(body) - 1):
            t = body[k]
            if t.kind != IDENT or t.text != var:
                continue
            if body[k + 1].text not in ("=", ";", "{", "("):
                continue
            j = k - 1
            while j >= 0:
                if body[j].text in ("&", "*", "const", "::"):
                    j -= 1
                    continue
                if body[j].text == ">":
                    # Skip the whole <...> template-argument group so
                    # `SpscRing<net::Packet>& ring` types as SpscRing,
                    # not as the argument Packet.
                    angle = 1
                    j -= 1
                    while j >= 0 and angle:
                        if body[j].text == ">":
                            angle += 1
                        elif body[j].text == "<":
                            angle -= 1
                        j -= 1
                    continue
                break
            if j >= 0 and body[j].kind == IDENT and \
                    body[j].text in self.classes:
                return body[j].text
        return None


def build(models: dict[str, FileModel]) -> CallGraph:
    return CallGraph(models)
