# Empty dependencies file for iustitia_ml.
# This may be replaced when dependencies are built.
