// Small non-cryptographic hashing helpers used by hash tables and sketches.
#ifndef IUSTITIA_UTIL_HASH_H_
#define IUSTITIA_UTIL_HASH_H_

#include <cstdint>

namespace iustitia::util {

// FNV-1a parameters for callers that inline the byte loop (pcap's IPv6
// address folding).
constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

// Strong 64-bit finalizer (from MurmurHash3 / SplitMix64 family).
inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// Combines two 64-bit hashes (boost::hash_combine style, widened).
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2)));
}

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_HASH_H_
