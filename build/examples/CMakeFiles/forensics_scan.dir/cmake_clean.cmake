file(REMOVE_RECURSE
  "CMakeFiles/forensics_scan.dir/forensics_scan.cc.o"
  "CMakeFiles/forensics_scan.dir/forensics_scan.cc.o.d"
  "forensics_scan"
  "forensics_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forensics_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
