"""Baseline file handling: suppress legacy findings, gate only new ones.

The baseline is a checked-in JSON file of finding fingerprints (rule +
file + stable anchor, no line numbers, so unrelated edits do not churn
it).  The analyzer exits nonzero only for findings not in the baseline;
fixing a baselined finding then regenerating (--write-baseline) shrinks
the file, and review of baseline diffs is how legacy debt is paid down.

Policy knob: `clean_prefixes` lists path prefixes that must stay at zero
baselined findings (src/core and src/entropy — the online pipeline is
held to the clean bar even for legacy code).  --write-baseline refuses to
baseline findings there.
"""

from __future__ import annotations

import json
from pathlib import Path

from findings import Finding

CLEAN_PREFIXES = ("src/core/", "src/entropy/")
FORMAT_VERSION = 1


def load(path: Path) -> set[str]:
    if not path.exists():
        return set()
    data = json.loads(path.read_text())
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(f"{path}: unknown baseline format "
                         f"{data.get('format')!r}")
    return set(data.get("suppressed", []))


def save(path: Path, findings: list[Finding]) -> list[Finding]:
    """Writes all findings as the new baseline; returns the ones refused
    because they fall under a clean prefix."""
    refused = [f for f in findings
               if any(f.path.startswith(p) for p in CLEAN_PREFIXES)]
    allowed = [f for f in findings if f not in refused]
    data = {
        "format": FORMAT_VERSION,
        "comment": ("Legacy findings suppressed by tools/analyze.  Do not "
                    "add entries by hand: fix the finding, or run "
                    "`tools/analyze --write-baseline` and justify the diff "
                    "in review.  src/core and src/entropy must stay out of "
                    "this file."),
        "suppressed": sorted({f.fingerprint for f in allowed}),
    }
    path.write_text(json.dumps(data, indent=2) + "\n")
    return refused


def split(findings: list[Finding],
          suppressed: set[str]) -> tuple[list[Finding], list[Finding],
                                         set[str]]:
    """(new, baselined, stale fingerprints no longer produced)."""
    new, old = [], []
    seen: set[str] = set()
    for f in findings:
        seen.add(f.fingerprint)
        (old if f.fingerprint in suppressed else new).append(f)
    return new, old, suppressed - seen
