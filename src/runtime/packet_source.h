// Packet sources feeding the serving runtime's dispatcher.
//
// A PacketSource is a pull-model stream of time-ordered packets, consumed
// by exactly one thread (the dispatcher), so implementations need no
// internal synchronization.  Two implementations cover the deployment and
// the lab: PcapReplaySource streams a standard capture file (surviving
// truncated captures via net::PcapReader::truncated()), TraceSource
// serves a calibrated synthetic gateway trace.  Both can be paced to a
// target aggregate packet rate to emulate a live link instead of
// replaying as fast as the disk allows.
#ifndef IUSTITIA_RUNTIME_PACKET_SOURCE_H_
#define IUSTITIA_RUNTIME_PACKET_SOURCE_H_

#include <chrono>
#include <cstddef>
#include <iosfwd>
#include <optional>
#include <span>

#include "net/pcap.h"
#include "net/trace_gen.h"

namespace iustitia::runtime {

// Pull interface; next() returns std::nullopt once the stream is
// exhausted (and forever after).  Single-consumer by contract.
class PacketSource {
 public:
  virtual ~PacketSource() = default;
  virtual std::optional<net::Packet> next() = 0;

  // True when the last empty next()/next_burst() return was a transient
  // failure (injected or real I/O hiccup) rather than end-of-stream.
  // The dispatcher responds by retrying with backoff up to its
  // configured limit instead of treating the stream as drained.  The
  // flag describes only the most recent call.
  virtual bool transient_error() const noexcept { return false; }

  // Batched pull: fills the front of `out` and returns how many packets
  // were delivered; 0 means exhausted (and forever after, like next()).
  // One virtual call per burst instead of per packet — the producer half
  // of the runtime's batched hot path.  The default adapts any source by
  // looping next(); implementations override with a bulk move.
  virtual std::size_t next_burst(std::span<net::Packet> out) {
    std::size_t n = 0;
    for (net::Packet& slot : out) {
      std::optional<net::Packet> packet = next();
      if (!packet.has_value()) break;
      slot = *std::move(packet);
      ++n;
    }
    return n;
  }
};

// Sleeps the calling thread so successive tick() calls average out to a
// target rate.  Rate 0 disables pacing (tick() returns immediately).
// The schedule is absolute — tick i completes no earlier than
// start + i/rate — so short hiccups are caught up instead of compounding.
class Pacer {
 public:
  explicit Pacer(double target_per_sec) : target_(target_per_sec) {}

  // Call once per delivered item, before handing the item downstream.
  void tick();

 private:
  const double target_;
  std::uint64_t ticks_ = 0;
  bool started_ = false;
  std::chrono::steady_clock::time_point start_;
};

// Replays a capture via net::PcapReader.  The stream must outlive the
// source.  target_pps = 0 replays unpaced (as fast as the consumer
// accepts); otherwise delivery is paced to that aggregate packet rate.
class PcapReplaySource final : public PacketSource {
 public:
  explicit PcapReplaySource(std::istream& is, double target_pps = 0.0);

  std::optional<net::Packet> next() override;
  std::size_t next_burst(std::span<net::Packet> out) override;
  bool transient_error() const noexcept override { return transient_; }

  // True once the capture ended on a cut-off record: the replay served
  // everything up to the last complete record (see net/pcap.h).
  bool truncated() const noexcept { return reader_.truncated(); }
  std::size_t packets_delivered() const noexcept { return delivered_; }
  // Hostile/corrupt records the reader rejected and the replay skipped.
  std::size_t decode_errors() const noexcept { return decode_errors_; }

 private:
  // reader_.next() with hostile-input armor: a record the decoder
  // rejects is skipped (counted), never propagated into the dispatcher.
  std::optional<net::Packet> read_one();

  net::PcapReader reader_;
  Pacer pacer_;
  std::size_t delivered_ = 0;
  std::size_t decode_errors_ = 0;
  bool transient_ = false;  // set by the source.next failpoint
};

// Serves a synthetic gateway trace (net::generate_trace).  Owns the
// trace; packets are *moved* out one by one (a source is single-shot),
// while the ground-truth map stays valid for post-run scoring via
// trace().truth.
class TraceSource final : public PacketSource {
 public:
  explicit TraceSource(net::Trace trace, double target_pps = 0.0);
  // Convenience: generates the trace from options first.
  explicit TraceSource(const net::TraceOptions& options,
                       double target_pps = 0.0);

  std::optional<net::Packet> next() override;
  std::size_t next_burst(std::span<net::Packet> out) override;
  bool transient_error() const noexcept override { return transient_; }

  // The owned trace.  truth and duration stay intact; packets already
  // delivered are moved-from.
  const net::Trace& trace() const noexcept { return trace_; }
  std::size_t packets_delivered() const noexcept { return next_index_; }

 private:
  net::Trace trace_;
  Pacer pacer_;
  std::size_t next_index_ = 0;
  bool transient_ = false;  // set by the source.next failpoint
};

}  // namespace iustitia::runtime

#endif  // IUSTITIA_RUNTIME_PACKET_SOURCE_H_
