#!/usr/bin/env python3
"""Fixture tests for tools/analyze and tools/lint.py.

Each fixture under tests/tooling/fixtures/ is a tiny source tree with one
seeded violation per analyzer pass (plus a clean control tree).  Fixture
files are stored with a `.in` suffix so the repo-wide lint and analyze
gates never see them as real sources; each test materializes its fixture
into a temp directory with the suffixes stripped, then runs the tool as a
subprocess exactly the way the CMake targets do.

Registered with CTest one class per pass (see tests/CMakeLists.txt); can
also be run directly:

    python3 tests/tooling/run_tooling_tests.py            # everything
    python3 tests/tooling/run_tooling_tests.py LocksPass  # one class
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures"
ANALYZE = REPO_ROOT / "tools" / "analyze"
LINT = REPO_ROOT / "tools" / "lint.py"
SARIF_SCHEMA = Path(__file__).resolve().parent / \
    "sarif-2.1.0-subset.schema.json"

try:
    import jsonschema
except ImportError:  # structural asserts still run without it
    jsonschema = None


def expected_guard(path: Path) -> str:
    """Replicates lint.py's include-guard derivation for `path`."""
    if path.is_relative_to(REPO_ROOT):
        parts = list(path.relative_to(REPO_ROOT).parts)
        if parts[0] == "src":
            parts = parts[1:]
    else:
        parts = list(path.parts)
    return "IUSTITIA_" + "_".join(
        re.sub(r"[^A-Za-z0-9]", "_", p).upper() for p in parts) + "_"


class FixtureCase(unittest.TestCase):
    """Shared materialize/run helpers; subclasses cover one pass each."""

    def materialize(self, name: str) -> Path:
        """Copies fixtures/<name>/ to a temp dir, stripping `.in` suffixes
        and substituting @GUARD@ with the lint-expected guard for the
        materialized location."""
        src = FIXTURES / name
        self.assertTrue(src.is_dir(), f"missing fixture {src}")
        dest = Path(tempfile.mkdtemp(prefix=f"iustitia-{name}-"))
        self.addCleanup(shutil.rmtree, dest, ignore_errors=True)
        for template in sorted(src.rglob("*.in")):
            rel = template.relative_to(src)
            out = dest / rel.with_suffix("")  # foo.h.in -> foo.h
            out.parent.mkdir(parents=True, exist_ok=True)
            text = template.read_text()
            if "@GUARD@" in text:
                text = text.replace("@GUARD@", expected_guard(out))
            out.write_text(text)
        return dest

    def run_analyze(self, root: Path, *extra: str,
                    passes: str | None = None) -> subprocess.CompletedProcess:
        cmd = [sys.executable, str(ANALYZE), "--root", str(root)]
        if passes:
            cmd += ["--passes", passes]
        cmd += list(extra)
        return subprocess.run(cmd, capture_output=True, text=True)

    def run_lint(self, *paths: Path) -> subprocess.CompletedProcess:
        cmd = [sys.executable, str(LINT)] + [str(p) for p in paths]
        return subprocess.run(cmd, capture_output=True, text=True)


class LayeringPass(FixtureCase):
    def test_detects_upward_include_and_cycle(self):
        root = self.materialize("layering")
        proc = self.run_analyze(root, passes="layering")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[layer-violation]", proc.stdout)
        self.assertIn("src/entropy/uses_core.h", proc.stdout)
        self.assertIn("'entropy' may not depend on 'core'", proc.stdout)
        self.assertIn("[layer-cycle]", proc.stdout)
        self.assertIn("cycle_a.h", proc.stdout)
        # config_stub.h itself is legal; only the upward edge is flagged.
        self.assertNotIn("src/core/config_stub.h:", proc.stdout)


class LocksPass(FixtureCase):
    def test_flags_unguarded_access_only(self):
        root = self.materialize("locks")
        proc = self.run_analyze(root, passes="locks")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[lock-unguarded-access]", proc.stdout)
        self.assertIn("Counter::increment", proc.stdout)
        # The MutexLock'd and REQUIRES-annotated methods are clean.
        self.assertNotIn("Counter::reset", proc.stdout)
        self.assertNotIn("Counter::read", proc.stdout)


class DeadcodePass(FixtureCase):
    def test_flags_orphan_export_and_pointless_include(self):
        root = self.materialize("deadcode")
        proc = self.run_analyze(root, passes="deadcode")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[dead-symbol]", proc.stdout)
        self.assertIn("'never_called'", proc.stdout)
        self.assertIn("[unused-include]", proc.stdout)
        self.assertIn("src/util/pointless.cc", proc.stdout)
        # helper_used_by_cc is referenced from another component: alive.
        self.assertNotIn("helper_used_by_cc", proc.stdout)
        # includer.cc really uses orphan.h, so its include is kept.
        self.assertNotIn("src/util/includer.cc", proc.stdout)


class ContractsPass(FixtureCase):
    def test_flags_switch_hot_check_and_held_io(self):
        root = self.materialize("contracts")
        proc = self.run_analyze(root, passes="contracts")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("[switch-not-exhaustive]", proc.stdout)
        self.assertIn("FlowNature", proc.stdout)
        self.assertIn("kEncrypted", proc.stdout)
        self.assertIn("[check-in-hot-loop]", proc.stdout)
        self.assertIn("CHECK_GE", proc.stdout)
        self.assertIn("[lock-held-io]", proc.stdout)
        self.assertIn("'printf'", proc.stdout)


class CleanTree(FixtureCase):
    def test_all_passes_clean_and_exit_zero(self):
        root = self.materialize("clean")
        proc = self.run_analyze(root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("analyze: clean", proc.stdout)


class SarifOutput(FixtureCase):
    def make_sarif(self) -> dict:
        root = self.materialize("contracts")
        out = root / "findings.sarif"
        proc = self.run_analyze(root, "--sarif-out", str(out),
                                passes="contracts")
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        return json.loads(out.read_text())

    def test_document_shape(self):
        doc = self.make_sarif()
        self.assertEqual(doc["version"], "2.1.0")
        run = doc["runs"][0]
        self.assertEqual(run["tool"]["driver"]["name"], "iustitia-analyze")
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        results = run["results"]
        self.assertTrue(results, "contracts fixture must yield results")
        for result in results:
            self.assertIn(result["ruleId"], rule_ids)
            self.assertIn("iustitia/v1", result["fingerprints"])
            loc = result["locations"][0]["physicalLocation"]
            self.assertEqual(loc["artifactLocation"]["uriBaseId"], "SRCROOT")
            self.assertGreaterEqual(loc["region"]["startLine"], 1)
        self.assertIn("SRCROOT", run["originalUriBaseIds"])

    @unittest.skipIf(jsonschema is None, "jsonschema not installed")
    def test_validates_against_2_1_0_schema(self):
        doc = self.make_sarif()
        schema = json.loads(SARIF_SCHEMA.read_text())
        jsonschema.validate(instance=doc, schema=schema)


class BaselineGate(FixtureCase):
    def test_write_then_suppress_round_trip(self):
        root = self.materialize("deadcode")
        baseline = root / "baseline.json"
        # Fresh findings fail the gate...
        self.assertEqual(
            self.run_analyze(root, passes="deadcode").returncode, 1)
        # ...writing a baseline records them (src/util is baselinable)...
        write = self.run_analyze(root, "--baseline", str(baseline),
                                 "--write-baseline", passes="deadcode")
        self.assertEqual(write.returncode, 0, write.stdout + write.stderr)
        data = json.loads(baseline.read_text())
        self.assertEqual(data["format"], 1)
        self.assertTrue(data["suppressed"])
        # ...and a gated re-run is green with everything baselined.
        gated = self.run_analyze(root, "--baseline", str(baseline),
                                 passes="deadcode")
        self.assertEqual(gated.returncode, 0, gated.stdout + gated.stderr)
        self.assertIn("baselined", gated.stdout)

    def test_refuses_to_baseline_clean_prefixes(self):
        # The locks fixture's finding is in src/core/, which must stay
        # clean: --write-baseline refuses it and fails.
        root = self.materialize("locks")
        baseline = root / "baseline.json"
        write = self.run_analyze(root, "--baseline", str(baseline),
                                 "--write-baseline", passes="locks")
        self.assertEqual(write.returncode, 1, write.stdout + write.stderr)
        self.assertIn("NOT baselined", write.stderr)
        self.assertEqual(json.loads(baseline.read_text())["suppressed"], [])


class LintGuards(FixtureCase):
    def test_flags_each_bad_guard_shape(self):
        root = self.materialize("lint_guard")
        proc = self.run_lint(root)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        lines = [ln for ln in proc.stdout.splitlines()
                 if "[include-guard]" in ln]
        by_file = {name: [ln for ln in lines if name in ln]
                   for name in ("bad_buried.h", "bad_endif.h",
                                "bad_name.h", "good.h")}
        self.assertTrue(by_file["bad_buried.h"], proc.stdout)
        self.assertIn("first directive must be the include guard",
                      by_file["bad_buried.h"][0])
        self.assertTrue(by_file["bad_endif.h"], proc.stdout)
        self.assertIn("closing #endif must carry the comment",
                      by_file["bad_endif.h"][0])
        self.assertTrue(by_file["bad_name.h"], proc.stdout)
        self.assertIn("guard is SOME_OTHER_GUARD_H_",
                      by_file["bad_name.h"][0])
        self.assertEqual(by_file["good.h"], [], proc.stdout)

    def test_good_guard_is_clean(self):
        root = self.materialize("lint_guard")
        proc = self.run_lint(root / "good.h")
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
