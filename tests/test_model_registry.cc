// RCU model-registry tests: publication/epoch protocol, grace-period
// reclamation (freed exactly once, never early), and a concurrent
// publish/read hammer that tools/ci.sh also runs under TSan.
#include "core/model_registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/flow_model.h"

namespace iustitia::core {
namespace {

std::shared_ptr<const FlowNatureModel> tiny_model() {
  // Backend contents are irrelevant to the registry protocol; a default
  // CART model is enough.
  return std::make_shared<const FlowNatureModel>(Backend::kCart,
                                                 std::vector<int>{1});
}

TEST(ModelRegistry, BootstrapState) {
  ModelRegistry registry(3, tiny_model(), "v1");
  EXPECT_EQ(registry.epoch_hint(), 1u);
  EXPECT_EQ(registry.swap_count(), 0u);
  EXPECT_EQ(registry.current_version(), "v1");
  EXPECT_EQ(registry.shard_count(), 3u);
  EXPECT_EQ(registry.retired_count(), 0u);
  EXPECT_EQ(registry.min_crossed(), 0u);  // nobody reported yet

  const ModelRegistry::Published now = registry.current();
  EXPECT_NE(now.model, nullptr);
  EXPECT_EQ(now.epoch, 1u);
  EXPECT_EQ(now.version, "v1");
}

TEST(ModelRegistry, RejectsDegenerateConstruction) {
  EXPECT_THROW(ModelRegistry(0, tiny_model(), "v1"), std::invalid_argument);
  EXPECT_THROW(ModelRegistry(1, nullptr, "v1"), std::invalid_argument);
  ModelRegistry registry(1, tiny_model(), "v1");
  EXPECT_THROW(registry.publish(nullptr, "v2"), std::invalid_argument);
}

TEST(ModelRegistry, PublishBumpsEpochAndVersion) {
  ModelRegistry registry(2, tiny_model(), "v1");
  EXPECT_EQ(registry.publish(tiny_model(), "v2"), 2u);
  EXPECT_EQ(registry.epoch_hint(), 2u);
  EXPECT_EQ(registry.swap_count(), 1u);
  EXPECT_EQ(registry.current_version(), "v2");
  EXPECT_EQ(registry.publish(tiny_model(), "v3"), 3u);
  EXPECT_EQ(registry.swap_count(), 2u);
}

TEST(ModelRegistry, RetiredModelHeldUntilEveryShardCrosses) {
  ModelRegistry registry(2, tiny_model(), "v1");
  registry.report_crossed(0, 1);
  registry.report_crossed(1, 1);

  std::weak_ptr<const FlowNatureModel> old = registry.current().model;
  registry.publish(tiny_model(), "v2");
  // Both shards still report epoch 1: the old model must stay alive.
  EXPECT_EQ(registry.retired_count(), 1u);
  EXPECT_FALSE(old.expired());

  registry.report_crossed(0, 2);
  // One shard could still be classifying with the old model.
  EXPECT_EQ(registry.retired_count(), 1u);
  EXPECT_FALSE(old.expired());

  registry.report_crossed(1, 2);
  // Grace period closed: the registry held the last reference.
  EXPECT_EQ(registry.retired_count(), 0u);
  EXPECT_TRUE(old.expired());
}

TEST(ModelRegistry, ReaderReferenceOutlivesReclamation) {
  ModelRegistry registry(1, tiny_model(), "v1");
  registry.report_crossed(0, 1);
  // A reader that copied the shared_ptr (the shard's engine) keeps the
  // model alive even after the registry reaps its retired entry.
  std::shared_ptr<const FlowNatureModel> held = registry.current().model;
  std::weak_ptr<const FlowNatureModel> probe = held;
  registry.publish(tiny_model(), "v2");
  registry.report_crossed(0, 2);
  EXPECT_EQ(registry.retired_count(), 0u);
  EXPECT_FALSE(probe.expired());
  held.reset();  // the engine installs the replacement
  EXPECT_TRUE(probe.expired());
}

TEST(ModelRegistry, CrossedReportsAreMonotonic) {
  ModelRegistry registry(2, tiny_model(), "v1");
  registry.report_crossed(0, 3);
  registry.report_crossed(0, 1);  // stale report must not roll back
  registry.report_crossed(1, 3);
  EXPECT_EQ(registry.min_crossed(), 3u);
  // An unknown shard slot is ignored, not fatal.
  registry.report_crossed(99, 7);
  EXPECT_EQ(registry.min_crossed(), 3u);
}

TEST(ModelRegistry, BackToBackPublishesAccumulateThenReap) {
  ModelRegistry registry(1, tiny_model(), "v1");
  registry.report_crossed(0, 1);
  std::vector<std::weak_ptr<const FlowNatureModel>> retired;
  for (int i = 0; i < 4; ++i) {
    retired.push_back(registry.current().model);
    registry.publish(tiny_model(), "v" + std::to_string(i + 2));
  }
  // The shard never crossed past epoch 1, so every retiree is pinned.
  EXPECT_EQ(registry.retired_count(), 4u);
  registry.report_crossed(0, registry.epoch_hint());
  EXPECT_EQ(registry.retired_count(), 0u);
  for (const auto& weak : retired) EXPECT_TRUE(weak.expired());
}

// Concurrent publishers + reader shards driving the full protocol; run
// under TSan by tools/ci.sh.  Checks the invariant that a reader-held
// model is never destroyed while that reader still uses it (use-after-
// free would trip the sanitizer) and that every retiree is eventually
// reclaimed.
TEST(ModelRegistry, ConcurrentPublishAndReadHammer) {
  constexpr std::size_t kShards = 4;
  constexpr int kPublishes = 200;
  ModelRegistry registry(kShards, tiny_model(), "v0");
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    readers.emplace_back([&registry, &done, s] {
      std::uint64_t local_epoch = 0;
      std::shared_ptr<const FlowNatureModel> local;
      while (!done.load(std::memory_order_relaxed) ||
             registry.epoch_hint() != local_epoch) {
        if (registry.epoch_hint() != local_epoch) {
          ModelRegistry::Published next = registry.current();
          local = std::move(next.model);
          local_epoch = next.epoch;
          registry.report_crossed(s, local_epoch);
        }
        if (local != nullptr) {
          // Touch the model the way a worker would (const use).
          ASSERT_EQ(local->backend(), Backend::kCart);
        }
      }
    });
  }

  std::thread publisher([&registry] {
    for (int i = 1; i <= kPublishes; ++i) {
      registry.publish(tiny_model(), "v" + std::to_string(i));
    }
  });
  publisher.join();
  done.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(registry.swap_count(), static_cast<std::uint64_t>(kPublishes));
  EXPECT_EQ(registry.epoch_hint(), static_cast<std::uint64_t>(kPublishes) + 1);
  // Every reader drained to the final epoch before exiting, so all
  // retirees are reclaimable.
  EXPECT_EQ(registry.min_crossed(), registry.epoch_hint());
  EXPECT_EQ(registry.retired_count(), 0u);
}

}  // namespace
}  // namespace iustitia::core
