#include "entropy/fused_kernel.h"

#include <stdexcept>

#include "entropy/entropy_vector.h"
#include "entropy/log_lut.h"
#include "util/check.h"

namespace iustitia::entropy {

namespace {
// GramCounter's bound; the rolling key holds exactly 16 bytes.
constexpr int kMaxWidth = 16;

GramKey width_mask(int width) noexcept {
  if (width >= kMaxWidth) return ~GramKey{0};
  return (GramKey{1} << (8 * width)) - 1;
}

// Initial flat-table sizing for widths >= 2: enough for the distinct-gram
// working set of a few-KB buffer without growth, small enough that a
// kernel for a narrow feature set stays cheap to construct.
constexpr std::size_t kInitialTableCapacity = 1024;

// How many probes ahead add_block() prefetches a width's table slot.
// Far enough that the line arrives before the probe reaches it, close
// enough that a block tail does not evict still-needed lines.
constexpr std::size_t kPrefetchAhead = 4;
}  // namespace

FusedEntropyKernel::FusedEntropyKernel(std::span<const int> widths)
    : widths_(widths.begin(), widths.end()) {
  states_.reserve(widths_.size());
  for (const int w : widths_) {
    if (w < 1 || w > kMaxWidth) {
      throw std::invalid_argument(
          "FusedEntropyKernel widths must be in [1, 16]");
    }
    WidthState state;
    state.width = w;
    state.mask = width_mask(w);
    if (w >= 2) state.counts.reserve(kInitialTableCapacity);
    states_.push_back(std::move(state));
    if (w > max_width_) max_width_ = w;
  }
}

// Per-byte, per-width: table probe plus two LUT-backed float updates.
// analyze: hotpath
void FusedEntropyKernel::update_state(WidthState& state,
                                      const std::uint8_t byte) {
  // Same += / -= sequence as GramCounter::bump_sum, with n_ln_n exact to
  // the double, so S_k stays bit-identical to the legacy path.
  if (state.width == 1) {
    std::uint64_t& count = byte_counts_[byte];
    state.sum += n_ln_n(count + 1);
    if (count != 0) state.sum -= n_ln_n(count);
    ++count;
  } else {
    const std::uint32_t count = state.counts.increment(rolling_ & state.mask);
    state.sum += n_ln_n(static_cast<std::uint64_t>(count) + 1);
    if (count != 0) state.sum -= n_ln_n(count);
  }
  ++state.grams;
}

// Steady-state fast path: one whole block, keys first, then per-width
// probe passes with the table slot kPrefetchAhead probes out already in
// flight.  Bit-identity argument (§9): within one width the probes and
// the S_k += / -= expressions run in exactly stream order with exactly
// update_state's arithmetic; widths only ever touch their *own* sum and
// table, so hoisting the width loop outside the byte loop cannot reorder
// any float op that feeds a feature.
// analyze: hotpath
void FusedEntropyKernel::add_block(const std::uint8_t* bytes) {
  GramKey keys[kBlockBytes];
  GramKey rolling = rolling_;
  for (std::size_t j = 0; j < kBlockBytes; ++j) {
    rolling = (rolling << 8) | bytes[j];
    keys[j] = rolling;
  }
  rolling_ = rolling;
  pos_ += kBlockBytes;
  for (WidthState& state : states_) {
    double sum = state.sum;
    if (state.width == 1) {
      for (std::size_t j = 0; j < kBlockBytes; ++j) {
        std::uint64_t& count = byte_counts_[bytes[j]];
        sum += n_ln_n(count + 1);
        if (count != 0) sum -= n_ln_n(count);
        ++count;
      }
    } else {
      const GramKey mask = state.mask;
      FlatCounts& counts = state.counts;
      for (std::size_t j = 0; j < kPrefetchAhead && j < kBlockBytes; ++j) {
        counts.prefetch(keys[j] & mask);
      }
      for (std::size_t j = 0; j < kBlockBytes; ++j) {
        if (j + kPrefetchAhead < kBlockBytes) {
          counts.prefetch(keys[j + kPrefetchAhead] & mask);
        }
        const std::uint32_t count = counts.increment(keys[j] & mask);
        sum += n_ln_n(static_cast<std::uint64_t>(count) + 1);
        if (count != 0) sum -= n_ln_n(count);
      }
    }
    state.sum = sum;
    state.grams += kBlockBytes;
  }
}

// The extraction inner loop: after table warm-up it reads the input
// once and never touches the heap.
// analyze: hotpath
void FusedEntropyKernel::add(std::span<const std::uint8_t> data) {
  total_bytes_ += data.size();
  std::size_t i = 0;
  // Warm-up: until the rolling key holds max_width bytes, each width needs
  // its own "first gram complete yet?" check.
  const auto warm = static_cast<std::uint64_t>(max_width_ - 1);
  for (; i < data.size() && pos_ < warm; ++i) {
    rolling_ = (rolling_ << 8) | data[i];
    ++pos_;
    for (WidthState& state : states_) {
      if (pos_ >= static_cast<std::uint64_t>(state.width)) {
        update_state(state, data[i]);
      }
    }
  }
  // Steady state: every byte completes one gram of every width.  Whole
  // blocks take the keys-first prefetched path; the sub-block tail falls
  // back to the per-byte loop (same arithmetic, so same features).
  for (; i + kBlockBytes <= data.size(); i += kBlockBytes) {
    add_block(data.data() + i);
  }
  for (; i < data.size(); ++i) {
    rolling_ = (rolling_ << 8) | data[i];
    ++pos_;
    for (WidthState& state : states_) update_state(state, data[i]);
  }
}

void FusedEntropyKernel::reset() noexcept {
  rolling_ = 0;
  pos_ = 0;
  total_bytes_ = 0;
  byte_counts_.fill(0);
  for (WidthState& state : states_) {
    state.sum = 0.0;
    state.grams = 0;
    state.counts.reset();
  }
}

// Allocation-free readout into a caller-provided span (vector() is the
// allocating convenience wrapper and is not hot).
// analyze: hotpath
void FusedEntropyKernel::features(std::span<double> out) const {
  CHECK_EQ(out.size(), states_.size())
      << "features() output span must have one slot per width";
  for (std::size_t i = 0; i < states_.size(); ++i) {
    const WidthState& state = states_[i];
    out[i] =
        normalized_entropy_from_sum(state.sum, state.grams, state.width);
  }
}

std::vector<double> FusedEntropyKernel::vector() const {
  std::vector<double> out(states_.size());
  features(out);
  return out;
}

std::uint64_t FusedEntropyKernel::total_grams(std::size_t width_index) const {
  CHECK_LT(width_index, states_.size());
  return states_[width_index].grams;
}

std::size_t FusedEntropyKernel::distinct(std::size_t width_index) const {
  CHECK_LT(width_index, states_.size());
  const WidthState& state = states_[width_index];
  if (state.width == 1) {
    std::size_t n = 0;
    for (const std::uint64_t c : byte_counts_) n += (c != 0);
    return n;
  }
  return state.counts.size();
}

std::uint64_t FusedEntropyKernel::count(std::size_t width_index,
                                        GramKey key) const {
  CHECK_LT(width_index, states_.size());
  const WidthState& state = states_[width_index];
  if (state.width == 1) {
    return byte_counts_[static_cast<std::size_t>(key & 0xFF)];
  }
  return state.counts.count(key);
}

double FusedEntropyKernel::sum_count_log_count(std::size_t width_index) const {
  CHECK_LT(width_index, states_.size());
  return states_[width_index].sum;
}

std::size_t FusedEntropyKernel::space_bytes() const noexcept {
  std::size_t total = 0;
  for (const WidthState& state : states_) {
    if (state.width == 1) {
      total += 256 * sizeof(std::uint32_t);
    } else {
      total += state.counts.size() *
               (sizeof(GramKey) + sizeof(std::uint64_t) + 8);
    }
  }
  return total;
}

std::size_t FusedEntropyKernel::resident_bytes() const noexcept {
  std::size_t total = sizeof(byte_counts_);
  for (const WidthState& state : states_) {
    if (state.width >= 2) total += state.counts.resident_bytes();
  }
  return total;
}

}  // namespace iustitia::entropy
