file(REMOVE_RECURSE
  "CMakeFiles/tunnel_gateway.dir/tunnel_gateway.cc.o"
  "CMakeFiles/tunnel_gateway.dir/tunnel_gateway.cc.o.d"
  "tunnel_gateway"
  "tunnel_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tunnel_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
