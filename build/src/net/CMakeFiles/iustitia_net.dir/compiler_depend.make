# Empty compiler generated dependencies file for iustitia_net.
# This may be replaced when dependencies are built.
