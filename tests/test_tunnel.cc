// Tests for the tunneling substrate (Section 4.6): mux/demux round trips,
// split frames, the encrypted-tunnel case, and the classification rule.
#include "net/tunnel.h"

#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "datagen/corpus.h"
#include "entropy/entropy_vector.h"
#include "util/random.h"

namespace iustitia::net {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(TunnelMux, FrameLayout) {
  TunnelMux mux;
  const auto payload = bytes_of("hello");
  const auto frame = mux.encapsulate(0x01020304, payload);
  ASSERT_EQ(frame.size(), kTunnelFrameHeader + 5);
  EXPECT_EQ(frame[0], 'T');
  EXPECT_EQ(frame[1], '!');
  EXPECT_EQ(frame[2], 0x01);
  EXPECT_EQ(frame[5], 0x04);
  EXPECT_EQ(frame[6], 0x00);
  EXPECT_EQ(frame[7], 0x05);
  EXPECT_EQ(frame[8], 'h');
}

TEST(TunnelDemux, RoundTripTwoInterleavedFlows) {
  TunnelMux mux;
  TunnelDemux demux;
  const auto a1 = bytes_of("alpha-");
  const auto b1 = bytes_of("bravo-");
  const auto a2 = bytes_of("second");
  demux.feed(mux.encapsulate(1, a1));
  demux.feed(mux.encapsulate(2, b1));
  demux.feed(mux.encapsulate(1, a2));
  EXPECT_FALSE(demux.corrupted());
  EXPECT_EQ(demux.frames_decoded(), 3u);
  ASSERT_EQ(demux.inner_streams().size(), 2u);
  EXPECT_EQ(demux.inner_streams().at(1), bytes_of("alpha-second"));
  EXPECT_EQ(demux.inner_streams().at(2), bytes_of("bravo-"));
}

TEST(TunnelDemux, FramesSplitAcrossOuterPackets) {
  TunnelMux mux;
  const auto payload = bytes_of("split across many outer packets");
  const auto frame = mux.encapsulate(7, payload);
  TunnelDemux demux;
  // Feed one byte at a time: worst-case reassembly.
  for (const std::uint8_t byte : frame) {
    demux.feed(std::span<const std::uint8_t>(&byte, 1));
  }
  EXPECT_FALSE(demux.corrupted());
  EXPECT_EQ(demux.inner_streams().at(7), payload);
}

TEST(TunnelDemux, LargeSegmentSplitsIntoMultipleFrames) {
  TunnelMux mux;
  std::vector<std::uint8_t> big(200000, 0xAB);
  const auto stream = mux.encapsulate(3, big);
  TunnelDemux demux(1 << 20);
  demux.feed(stream);
  EXPECT_FALSE(demux.corrupted());
  EXPECT_GT(demux.frames_decoded(), 2u);
  EXPECT_EQ(demux.inner_streams().at(3), big);
}

TEST(TunnelDemux, PerFlowLimitCapsRetention) {
  TunnelMux mux;
  std::vector<std::uint8_t> data(1000, 0x42);
  TunnelDemux demux(64);
  demux.feed(mux.encapsulate(9, data));
  EXPECT_EQ(demux.inner_streams().at(9).size(), 64u);
  EXPECT_EQ(demux.frames_decoded(), 1u);  // frame still fully consumed
}

TEST(TunnelDemux, EncryptedTunnelReportsCorrupted) {
  datagen::ChaCha20::Key key{};
  key[0] = 0x55;
  datagen::ChaCha20::Nonce nonce{};
  TunnelMux mux(key, nonce);
  EXPECT_TRUE(mux.encrypted());
  TunnelDemux demux;
  demux.feed(mux.encapsulate(1, bytes_of("hidden content")));
  EXPECT_TRUE(demux.corrupted());
  EXPECT_TRUE(demux.inner_streams().empty());
}

TEST(Tunnel, ClassificationRuleOfSection46) {
  // Cleartext tunnel: inner flows classified separately, each by its own
  // nature.  Encrypted tunnel: the outer stream classifies as encrypted.
  datagen::CorpusOptions corpus_options;
  corpus_options.files_per_class = 20;
  corpus_options.seed = 61;
  const auto corpus = datagen::build_corpus(corpus_options);
  core::TrainerOptions trainer;
  trainer.backend = core::Backend::kCart;
  trainer.widths = entropy::cart_preferred_widths();
  trainer.method = core::TrainingMethod::kFirstBytes;
  trainer.buffer_size = 256;
  core::FlowNatureModel model = core::train_model(corpus, trainer);

  util::Rng rng(62);
  const datagen::FileSample text =
      datagen::generate_file(datagen::FileClass::kText, 2048, rng);
  const datagen::FileSample enc =
      datagen::generate_file(datagen::FileClass::kEncrypted, 2048, rng);

  // Cleartext tunnel carrying one text and one encrypted inner flow.
  TunnelMux clear;
  TunnelDemux demux;
  demux.feed(clear.encapsulate(1, text.bytes));
  demux.feed(clear.encapsulate(2, enc.bytes));
  ASSERT_FALSE(demux.corrupted());
  const auto& s1 = demux.inner_streams().at(1);
  const auto& s2 = demux.inner_streams().at(2);
  EXPECT_EQ(model.classify(std::span<const std::uint8_t>(s1.data(), 256))
                .label,
            datagen::FileClass::kText);
  EXPECT_EQ(model.classify(std::span<const std::uint8_t>(s2.data(), 256))
                .label,
            datagen::FileClass::kEncrypted);

  // Encrypted tunnel carrying the *text* flow: outer stream reads as
  // encrypted, per the paper's rule.
  datagen::ChaCha20::Key key{};
  rng.fill_bytes(key);
  datagen::ChaCha20::Nonce nonce{};
  TunnelMux sealed(key, nonce);
  const auto outer = sealed.encapsulate(1, text.bytes);
  TunnelDemux probe;
  probe.feed(outer);
  EXPECT_TRUE(probe.corrupted());
  EXPECT_EQ(model.classify(std::span<const std::uint8_t>(outer.data(), 256))
                .label,
            datagen::FileClass::kEncrypted);
}

}  // namespace
}  // namespace iustitia::net
