// Throughput scaling bench: packets/second of the online engine, single
// shard vs flow-sharded across threads.
//
// The paper's headline is per-flow delay (10% of packet inter-arrival
// time); a deployment also needs aggregate throughput headroom.  This
// bench measures the replay rate of the full pipeline (hash + CDB +
// buffering + entropy + CART) and how it scales when flows are sharded
// across cores — the standard RSS deployment pattern.
#include <algorithm>
#include <atomic>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "appproto/trace_headers.h"
#include "bench/bench_common.h"
#include "core/sharded_engine.h"
#include "net/trace_gen.h"
#include "util/timer.h"
#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

std::function<core::FlowNatureModel()> model_factory() {
  return [] {
    const auto corpus = standard_corpus(40);
    core::TrainerOptions options;
    options.backend = core::Backend::kCart;
    options.widths = entropy::cart_preferred_widths();
    options.method = core::TrainingMethod::kFirstBytes;
    options.buffer_size = 32;
    return core::train_model(corpus, options);
  };
}

int run() {
  banner("Throughput scaling: flow-sharded engine across threads",
         "context: the paper targets per-flow delay; this measures the "
         "pipeline's aggregate packet rate headroom");

  const std::size_t packets = env_size("IUSTITIA_TRACE_PACKETS", 200000);
  net::TraceOptions trace_options;
  trace_options.header_source = appproto::standard_header_source();
  trace_options.target_packets = packets;
  trace_options.seed = 0x789;
  const net::Trace trace = net::generate_trace(trace_options);
  std::cout << "trace: " << trace.packets.size() << " packets, "
            << trace.truth.size() << " flows\n\n";

  util::Table table({"shards", "replay time", "packets/sec",
                     "flows classified", "speedup"});
  double baseline_rate = 0.0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    if (shards > hw * 2) break;
    core::EngineOptions options;
    options.buffer_size = 32;
    core::ShardedIustitia sharded(model_factory(), options, shards);

    // Pre-partition (NIC steering is not what we are measuring).
    std::vector<std::vector<const net::Packet*>> partitions(shards);
    for (const net::Packet& p : trace.packets) {
      partitions[sharded.shard_of(p.key)].push_back(&p);
    }

    const util::Stopwatch timer;
    std::vector<std::thread> threads;
    for (std::size_t s = 0; s < shards; ++s) {
      threads.emplace_back([&sharded, &partitions, s] {
        for (const net::Packet* p : partitions[s]) {
          sharded.shard(s).on_packet(*p);
        }
        sharded.shard(s).flush_all();
      });
    }
    for (auto& t : threads) t.join();
    const double seconds = timer.elapsed_seconds();

    const double rate = static_cast<double>(trace.packets.size()) / seconds;
    if (shards == 1) baseline_rate = rate;
    table.add_row({std::to_string(shards), util::fmt_seconds(seconds),
                   util::fmt(rate / 1e6, 2) + " M",
                   std::to_string(sharded.total_flows_classified()),
                   util::fmt(rate / baseline_rate, 2) + "x"});
  }
  table.render(std::cout);
  std::cout << "\ncontext: the paper's trace runs at 0.147 M packets/sec; "
               "the single-shard engine already exceeds that, and sharding "
               "scales it with cores (hardware threads here: " << hw
            << ").\n";
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
