file(REMOVE_RECURSE
  "CMakeFiles/iustitia_cli.dir/iustitia_cli.cc.o"
  "CMakeFiles/iustitia_cli.dir/iustitia_cli.cc.o.d"
  "iustitia"
  "iustitia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iustitia_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
