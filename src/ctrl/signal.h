// Graceful SIGINT/SIGTERM handling via the self-pipe trick.
//
// A signal handler may only touch async-signal-safe calls, so the
// handler here does exactly one thing: write(2) a byte into a
// non-blocking pipe.  A watcher thread blocks on the read end and runs
// the (arbitrary, non-signal-safe) callback on the first byte — e.g.
// Runtime::stop() followed by a final metrics report.  After the first
// signal the default disposition is restored, so a second Ctrl-C kills
// a wedged process the usual way.
//
// One instance at a time (CHECK-enforced): process signal dispositions
// are global state.
#ifndef IUSTITIA_CTRL_SIGNAL_H_
#define IUSTITIA_CTRL_SIGNAL_H_

#include <atomic>
#include <functional>
#include <thread>

namespace iustitia::ctrl {

class SignalDrain {
 public:
  // Installs SIGINT/SIGTERM handlers and spawns the watcher.  The
  // callback runs at most once, on the watcher thread.
  explicit SignalDrain(std::function<void()> on_signal);

  // Restores the original dispositions (when still ours) and joins the
  // watcher.
  ~SignalDrain();

  SignalDrain(const SignalDrain&) = delete;
  SignalDrain& operator=(const SignalDrain&) = delete;

  // True once a signal has been seen (callback ran or is running).
  bool triggered() const noexcept {
    return triggered_.load(std::memory_order_relaxed);
  }

 private:
  void watch();

  const std::function<void()> on_signal_;
  std::atomic<bool> triggered_{false};  // analyze: atomic(relaxed-flag)
  // Pipe fds: written in the ctor before the watcher launches, the write
  // end is read by the async handler via a global, the read end only by
  // the watcher; closed in the dtor after join.
  std::atomic<int> read_fd_{-1};   // analyze: atomic(relaxed-flag)
  std::atomic<int> write_fd_{-1};  // analyze: atomic(relaxed-flag)
  std::thread watcher_;  // analyze: escape(joined in dtor, launched last in ctor)
};

}  // namespace iustitia::ctrl

#endif  // IUSTITIA_CTRL_SIGNAL_H_
