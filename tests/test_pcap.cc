// Tests for the from-scratch pcap reader/writer and frame codec.
#include "net/pcap.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/packet_source.h"


namespace iustitia::net {
namespace {

Packet make_packet(Protocol proto, std::size_t payload_size,
                   double timestamp = 1.25) {
  Packet p;
  p.timestamp = timestamp;
  p.key = {.src_ip = 0x0A010203,
           .dst_ip = 0xC0A80005,
           .src_port = 50123,
           .dst_port = proto == Protocol::kTcp ? std::uint16_t{443}
                                               : std::uint16_t{53},
           .protocol = proto};
  p.flags.ack = proto == Protocol::kTcp;
  p.payload.resize(payload_size);
  for (std::size_t i = 0; i < payload_size; ++i) {
    p.payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  return p;
}

TEST(FrameCodec, TcpRoundTrip) {
  const Packet original = make_packet(Protocol::kTcp, 100);
  const auto frame = encode_frame(original);
  const auto decoded = decode_frame(frame, original.timestamp);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, original.key);
  EXPECT_EQ(decoded->payload, original.payload);
  EXPECT_TRUE(decoded->flags.ack);
  EXPECT_FALSE(decoded->flags.syn);
}

TEST(FrameCodec, UdpRoundTrip) {
  const Packet original = make_packet(Protocol::kUdp, 64);
  const auto decoded = decode_frame(encode_frame(original), 0.0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key, original.key);
  EXPECT_EQ(decoded->payload, original.payload);
}

TEST(FrameCodec, TcpFlagsSurvive) {
  Packet p = make_packet(Protocol::kTcp, 0);
  p.flags = {.syn = true, .ack = false, .fin = true, .rst = false};
  const auto decoded = decode_frame(encode_frame(p), 0.0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->flags.syn);
  EXPECT_TRUE(decoded->flags.fin);
  EXPECT_FALSE(decoded->flags.rst);
  EXPECT_FALSE(decoded->flags.ack);
}

TEST(FrameCodec, EmptyPayloadRoundTrip) {
  const Packet original = make_packet(Protocol::kTcp, 0);
  const auto decoded = decode_frame(encode_frame(original), 0.0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameCodec, CorruptChecksumRejected) {
  auto frame = encode_frame(make_packet(Protocol::kTcp, 10));
  frame[14 + 12] ^= 0xFF;  // flip a source-IP byte; checksum now stale
  EXPECT_THROW(decode_frame(frame, 0.0), std::runtime_error);
}

TEST(FrameCodec, TruncatedFrameRejected) {
  auto frame = encode_frame(make_packet(Protocol::kTcp, 10));
  frame.resize(20);
  EXPECT_THROW(decode_frame(frame, 0.0), std::runtime_error);
}

TEST(FrameCodec, NonIpv4FrameSkipped) {
  auto frame = encode_frame(make_packet(Protocol::kTcp, 10));
  frame[12] = 0x86;  // EtherType -> IPv6
  frame[13] = 0xDD;
  EXPECT_EQ(decode_frame(frame, 0.0), std::nullopt);
}

// Hand-builds an Ethernet/IPv6/UDP frame (encode_frame emits IPv4 only).
std::vector<std::uint8_t> ipv6_udp_frame(std::uint16_t src_port,
                                         std::uint16_t dst_port,
                                         std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> f;
  // Ethernet: MACs + EtherType IPv6.
  f.insert(f.end(), 12, 0x02);
  f.push_back(0x86);
  f.push_back(0xDD);
  // IPv6 header.
  f.push_back(0x60);  // version 6
  f.insert(f.end(), 3, 0x00);
  const std::size_t payload_len = 8 + body.size();
  f.push_back(static_cast<std::uint8_t>(payload_len >> 8));
  f.push_back(static_cast<std::uint8_t>(payload_len));
  f.push_back(17);  // next header = UDP
  f.push_back(64);  // hop limit
  for (int i = 0; i < 16; ++i) f.push_back(static_cast<std::uint8_t>(i));
  for (int i = 0; i < 16; ++i) f.push_back(static_cast<std::uint8_t>(0xF0 + i));
  // UDP header.
  f.push_back(static_cast<std::uint8_t>(src_port >> 8));
  f.push_back(static_cast<std::uint8_t>(src_port));
  f.push_back(static_cast<std::uint8_t>(dst_port >> 8));
  f.push_back(static_cast<std::uint8_t>(dst_port));
  f.push_back(static_cast<std::uint8_t>(payload_len >> 8));
  f.push_back(static_cast<std::uint8_t>(payload_len));
  f.push_back(0);
  f.push_back(0);
  f.insert(f.end(), body.begin(), body.end());
  return f;
}

TEST(FrameCodec, Ipv6UdpFrameDecodes) {
  const std::vector<std::uint8_t> body{10, 20, 30, 40};
  const auto frame = ipv6_udp_frame(5353, 53, body);
  const auto decoded = decode_frame(frame, 2.0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->key.protocol, Protocol::kUdp);
  EXPECT_EQ(decoded->key.src_port, 5353);
  EXPECT_EQ(decoded->key.dst_port, 53);
  EXPECT_EQ(decoded->payload, body);
  // Folded addresses: nonzero and direction-sensitive.
  EXPECT_NE(decoded->key.src_ip, decoded->key.dst_ip);
}

TEST(FrameCodec, Ipv6FoldedKeysAreStable) {
  const std::vector<std::uint8_t> body{1};
  const auto a = decode_frame(ipv6_udp_frame(1000, 2000, body), 0.0);
  const auto b = decode_frame(ipv6_udp_frame(1000, 2000, body), 1.0);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->key, b->key);  // same flow across packets
}

TEST(FrameCodec, TruncatedIpv6Rejected) {
  const std::vector<std::uint8_t> body{1, 2, 3};
  auto frame = ipv6_udp_frame(10, 20, body);
  frame.resize(40);  // below Ethernet(14) + IPv6 header(40)
  EXPECT_THROW(decode_frame(frame, 0.0), std::runtime_error);
}

TEST(PcapFile, WriterReaderRoundTrip) {
  std::stringstream ss;
  PcapWriter writer(ss);
  std::vector<Packet> originals;
  for (int i = 0; i < 50; ++i) {
    Packet p = make_packet(i % 3 == 0 ? Protocol::kUdp : Protocol::kTcp,
                           static_cast<std::size_t>(i * 7 % 200),
                           0.001 * i);
    p.key.src_port = static_cast<std::uint16_t>(1000 + i);
    originals.push_back(p);
    writer.write(p);
  }
  EXPECT_EQ(writer.packets_written(), 50u);

  PcapReader reader(ss);
  for (const Packet& expected : originals) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->key, expected.key);
    EXPECT_EQ(got->payload, expected.payload);
    EXPECT_NEAR(got->timestamp, expected.timestamp, 1e-6);
  }
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_EQ(reader.packets_read(), 50u);
}

TEST(PcapFile, BadMagicRejected) {
  std::stringstream ss("this is not a pcap file at all, sorry");
  EXPECT_THROW(PcapReader reader(ss), std::runtime_error);
}

// A capture cut off mid-write (the usual end of an interrupted live
// capture) must not abort the replay: the reader serves every complete
// record, then reports truncated() instead of throwing.
TEST(PcapFile, TruncatedFinalBodyStopsCleanly) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write(make_packet(Protocol::kTcp, 100, 0.1));
  writer.write(make_packet(Protocol::kUdp, 80, 0.2));
  writer.write(make_packet(Protocol::kTcp, 120, 0.3));
  std::string data = ss.str();
  data.resize(data.size() - 40);  // cuts into the last record's frame bytes
  std::stringstream truncated(data);
  PcapReader reader(truncated);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_TRUE(reader.truncated());
  // Sticky: further reads stay at end-of-stream.
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_EQ(reader.packets_read(), 2u);
}

TEST(PcapFile, TruncatedFinalRecordHeaderStopsCleanly) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write(make_packet(Protocol::kTcp, 64, 0.1));
  writer.write(make_packet(Protocol::kTcp, 64, 0.2));
  std::string data = ss.str();
  // Leave 7 bytes of the second record's 16-byte header.
  const std::size_t second_record =
      24 + 16 + (14 + 20 + 20 + 64);  // global hdr + rec hdr + frame
  data.resize(second_record + 7);
  std::stringstream truncated(data);
  PcapReader reader(truncated);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.packets_read(), 1u);
}

TEST(PcapFile, CleanEofIsNotTruncated) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write(make_packet(Protocol::kTcp, 32, 0.1));
  PcapReader reader(ss);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_FALSE(reader.truncated());
}

TEST(PcapFile, TimestampMicrosecondPrecision) {
  std::stringstream ss;
  PcapWriter writer(ss);
  Packet p = make_packet(Protocol::kUdp, 1, 1234.567890);
  writer.write(p);
  PcapReader reader(ss);
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_NEAR(got->timestamp, 1234.567890, 1e-6);
}

// ------------------------------------------------- hostile-input hardening

void append_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

// Appends a record header claiming `incl_len` bytes plus `body` bytes of
// actual frame data.
void append_record(std::string& out, std::uint32_t incl_len,
                   std::size_t body) {
  append_u32_le(out, 1);  // ts_sec
  append_u32_le(out, 0);  // ts_usec
  append_u32_le(out, incl_len);
  append_u32_le(out, incl_len);  // orig_len
  out.append(body, '\x41');
}

// A record header claiming a near-4GiB frame must be rejected up front —
// never trusted as an allocation size.
TEST(PcapFile, AbsurdRecordLengthThrowsInsteadOfAllocating) {
  std::stringstream ss;
  PcapWriter writer(ss);  // valid global header, snaplen 65535
  std::string data = ss.str();
  append_record(data, 0xFFFFFFF0u, 64);
  std::stringstream hostile(data);
  PcapReader reader(hostile);
  EXPECT_THROW(reader.next(), std::runtime_error);
}

// Claimed lengths above the file's own snaplen are hostile even when
// they are small in absolute terms.
TEST(PcapFile, RecordOverSnaplenThrows) {
  std::stringstream ss;
  PcapWriter writer(ss, 64);
  writer.write(make_packet(Protocol::kTcp, 0, 0.1));  // 54-byte frame
  std::string data = ss.str();
  append_record(data, 200, 200);
  std::stringstream hostile(data);
  PcapReader reader(hostile);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_THROW(reader.next(), std::runtime_error);
}

// An absurd snaplen in the global header is clamped, not believed: the
// reader still serves well-formed records afterwards.
TEST(PcapFile, AbsurdSnaplenHeaderIsClampedNotFatal) {
  std::stringstream ss;
  PcapWriter writer(ss);
  writer.write(make_packet(Protocol::kTcp, 32, 0.1));
  std::string data = ss.str();
  // Overwrite the snaplen field (offset 16) with 0xFFFFFFFF.
  data[16] = data[17] = data[18] = data[19] = static_cast<char>(0xFF);
  std::stringstream patched(data);
  PcapReader reader(patched);
  const auto got = reader.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload.size(), 32u);
  EXPECT_EQ(reader.next(), std::nullopt);
}

// The replay source's armor: a corrupt record inside an otherwise good
// capture is skipped and counted, and the replay keeps going — the
// dispatcher never sees the poison.
TEST(PcapReplay, CorruptRecordIsSkippedAndCounted) {
  std::stringstream ss;
  PcapWriter writer(ss);
  const Packet p1 = make_packet(Protocol::kTcp, 40, 0.1);
  const Packet p2 = make_packet(Protocol::kTcp, 40, 0.2);
  const Packet p3 = make_packet(Protocol::kUdp, 24, 0.3);
  writer.write(p1);
  writer.write(p2);
  writer.write(p3);
  std::string data = ss.str();
  const std::size_t frame1 = encode_frame(p1).size();
  // Flip a source-IP byte inside record 2's IPv4 header: the stale
  // checksum makes decode_frame reject that record.
  const std::size_t record2_frame = 24 + (16 + frame1) + 16;
  data[record2_frame + 14 + 12] ^= static_cast<char>(0xFF);

  std::stringstream patched(data);
  runtime::PcapReplaySource source(patched);
  auto got = source.next();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, p1.payload);
  got = source.next();  // record 2 skipped, record 3 served
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, p3.payload);
  EXPECT_EQ(source.next(), std::nullopt);
  EXPECT_EQ(source.packets_delivered(), 2u);
  EXPECT_EQ(source.decode_errors(), 1u);
}

}  // namespace
}  // namespace iustitia::net
