#include "net/pcap.h"

#include <cmath>
#include <cstring>

#include "util/hash.h"
#include <istream>
#include <ostream>
#include <stdexcept>

namespace iustitia::net {

namespace {
// pcap magic for microsecond timestamps, native byte order.
constexpr std::uint32_t kPcapMagic = 0xA1B2C3D4u;
constexpr std::uint32_t kLinkTypeEthernet = 1;
}  // namespace

namespace {

constexpr std::size_t kEthernetHeader = 14;
constexpr std::size_t kIpv4Header = 20;
constexpr std::size_t kTcpHeader = 20;
constexpr std::size_t kUdpHeader = 8;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::uint16_t kEtherTypeIpv6 = 0x86DD;
constexpr std::size_t kIpv6Header = 40;

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

// RFC 1071 internet checksum over a byte range.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(get16(data.data() + i));
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

void write_le32(std::ostream& os, std::uint32_t v) {
  std::uint8_t buf[4] = {static_cast<std::uint8_t>(v),
                         static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v >> 16),
                         static_cast<std::uint8_t>(v >> 24)};
  os.write(reinterpret_cast<const char*>(buf), 4);
}

void write_le16(std::ostream& os, std::uint16_t v) {
  std::uint8_t buf[2] = {static_cast<std::uint8_t>(v),
                         static_cast<std::uint8_t>(v >> 8)};
  os.write(reinterpret_cast<const char*>(buf), 2);
}

bool read_le32(std::istream& is, std::uint32_t& v) {
  std::uint8_t buf[4];
  if (!is.read(reinterpret_cast<char*>(buf), 4)) return false;
  v = static_cast<std::uint32_t>(buf[0]) |
      (static_cast<std::uint32_t>(buf[1]) << 8) |
      (static_cast<std::uint32_t>(buf[2]) << 16) |
      (static_cast<std::uint32_t>(buf[3]) << 24);
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const Packet& packet) {
  const bool tcp = packet.key.protocol == Protocol::kTcp;
  const std::size_t transport = tcp ? kTcpHeader : kUdpHeader;
  const std::size_t ip_total = kIpv4Header + transport + packet.payload.size();

  std::vector<std::uint8_t> out;
  out.reserve(kEthernetHeader + ip_total);

  // Ethernet II: synthetic locally-administered MACs derived from the IPs.
  for (int i = 0; i < 2; ++i) {
    const std::uint32_t ip = i == 0 ? packet.key.dst_ip : packet.key.src_ip;
    out.push_back(0x02);
    out.push_back(0x00);
    put32(out, ip);
  }
  put16(out, kEtherTypeIpv4);

  // IPv4 header.
  const std::size_t ip_start = out.size();
  out.push_back(0x45);  // version 4, IHL 5
  out.push_back(0x00);  // DSCP/ECN
  put16(out, static_cast<std::uint16_t>(ip_total));
  put16(out, 0x0000);   // identification
  put16(out, 0x4000);   // flags: DF
  out.push_back(64);    // TTL
  out.push_back(static_cast<std::uint8_t>(packet.key.protocol));
  put16(out, 0x0000);   // checksum placeholder
  put32(out, packet.key.src_ip);
  put32(out, packet.key.dst_ip);
  const std::uint16_t checksum = internet_checksum(
      std::span<const std::uint8_t>(out.data() + ip_start, kIpv4Header));
  out[ip_start + 10] = static_cast<std::uint8_t>(checksum >> 8);
  out[ip_start + 11] = static_cast<std::uint8_t>(checksum);

  if (tcp) {
    put16(out, packet.key.src_port);
    put16(out, packet.key.dst_port);
    put32(out, 0);  // seq (not modeled)
    put32(out, 0);  // ack
    std::uint8_t flags = 0;
    if (packet.flags.fin) flags |= 0x01;
    if (packet.flags.syn) flags |= 0x02;
    if (packet.flags.rst) flags |= 0x04;
    if (packet.flags.ack) flags |= 0x10;
    out.push_back(0x50);  // data offset 5 words
    out.push_back(flags);
    put16(out, 65535);  // window
    put16(out, 0);      // checksum (not computed; readers here don't verify)
    put16(out, 0);      // urgent
  } else {
    put16(out, packet.key.src_port);
    put16(out, packet.key.dst_port);
    put16(out, static_cast<std::uint16_t>(kUdpHeader + packet.payload.size()));
    put16(out, 0);  // checksum optional in IPv4
  }

  out.insert(out.end(), packet.payload.begin(), packet.payload.end());
  return out;
}

namespace {

// Folds a 128-bit IPv6 address into 32 bits for the FlowKey (see header).
std::uint32_t fold_ipv6(const std::uint8_t* addr) noexcept {
  std::uint64_t h = util::kFnvOffset;
  for (int i = 0; i < 16; ++i) {
    h ^= addr[i];
    h *= util::kFnvPrime;
  }
  return static_cast<std::uint32_t>(util::mix64(h));
}

// Decodes the TCP/UDP transport section shared by the IPv4/IPv6 paths.
bool decode_transport(std::uint8_t proto, const std::uint8_t* transport,
                      std::size_t transport_len, Packet& packet) {
  if (proto == static_cast<std::uint8_t>(Protocol::kTcp)) {
    if (transport_len < kTcpHeader) {
      throw std::runtime_error("pcap: truncated TCP header");
    }
    packet.key.protocol = Protocol::kTcp;
    packet.key.src_port = get16(transport);
    packet.key.dst_port = get16(transport + 2);
    const std::size_t data_offset =
        static_cast<std::size_t>(transport[12] >> 4) * 4;
    if (data_offset < kTcpHeader || transport_len < data_offset) {
      throw std::runtime_error("pcap: bad TCP data offset");
    }
    const std::uint8_t flags = transport[13];
    packet.flags.fin = flags & 0x01;
    packet.flags.syn = flags & 0x02;
    packet.flags.rst = flags & 0x04;
    packet.flags.ack = flags & 0x10;
    packet.payload.assign(transport + data_offset,
                          transport + transport_len);
    return true;
  }
  if (proto == static_cast<std::uint8_t>(Protocol::kUdp)) {
    if (transport_len < kUdpHeader) {
      throw std::runtime_error("pcap: truncated UDP header");
    }
    packet.key.protocol = Protocol::kUdp;
    packet.key.src_port = get16(transport);
    packet.key.dst_port = get16(transport + 2);
    packet.payload.assign(transport + kUdpHeader, transport + transport_len);
    return true;
  }
  return false;
}

std::optional<Packet> decode_ipv6(std::span<const std::uint8_t> frame,
                                  double timestamp) {
  if (frame.size() < kEthernetHeader + kIpv6Header) {
    throw std::runtime_error("pcap: frame shorter than Ethernet+IPv6 headers");
  }
  const std::uint8_t* ip = frame.data() + kEthernetHeader;
  if ((ip[0] >> 4) != 6) return std::nullopt;
  const std::uint16_t payload_len = get16(ip + 4);
  const std::uint8_t next_header = ip[6];  // extension headers unsupported
  if (frame.size() < kEthernetHeader + kIpv6Header + payload_len) {
    throw std::runtime_error("pcap: IPv6 payload length exceeds frame");
  }
  Packet packet;
  packet.timestamp = timestamp;
  packet.key.src_ip = fold_ipv6(ip + 8);
  packet.key.dst_ip = fold_ipv6(ip + 24);
  if (!decode_transport(next_header, ip + kIpv6Header, payload_len, packet)) {
    return std::nullopt;
  }
  return packet;
}

}  // namespace

std::optional<Packet> decode_frame(std::span<const std::uint8_t> frame,
                                   double timestamp) {
  if (frame.size() < kEthernetHeader + kIpv4Header) {
    throw std::runtime_error("pcap: frame shorter than Ethernet+IPv4 headers");
  }
  const std::uint16_t ether_type = get16(frame.data() + 12);
  if (ether_type == kEtherTypeIpv6) return decode_ipv6(frame, timestamp);
  if (ether_type != kEtherTypeIpv4) return std::nullopt;

  const std::uint8_t* ip = frame.data() + kEthernetHeader;
  if ((ip[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
  if (ihl < kIpv4Header ||
      frame.size() < kEthernetHeader + ihl) {
    throw std::runtime_error("pcap: bad IPv4 IHL");
  }
  if (internet_checksum(std::span<const std::uint8_t>(ip, ihl)) != 0) {
    throw std::runtime_error("pcap: IPv4 header checksum mismatch");
  }
  const std::uint16_t ip_total = get16(ip + 2);
  if (ip_total < ihl || frame.size() < kEthernetHeader + ip_total) {
    throw std::runtime_error("pcap: IPv4 total length exceeds frame");
  }

  Packet packet;
  packet.timestamp = timestamp;
  packet.key.src_ip = get32(ip + 12);
  packet.key.dst_ip = get32(ip + 16);
  if (!decode_transport(ip[9], ip + ihl, ip_total - ihl, packet)) {
    return std::nullopt;
  }
  return packet;
}

PcapWriter::PcapWriter(std::ostream& os, std::uint32_t snaplen) : os_(os) {
  write_le32(os_, kPcapMagic);
  write_le16(os_, 2);  // version major
  write_le16(os_, 4);  // version minor
  write_le32(os_, 0);  // thiszone
  write_le32(os_, 0);  // sigfigs
  write_le32(os_, snaplen);
  write_le32(os_, kLinkTypeEthernet);
}

void PcapWriter::write(const Packet& packet) {
  const std::vector<std::uint8_t> frame = encode_frame(packet);
  const double ts = packet.timestamp;
  const auto sec = static_cast<std::uint32_t>(ts);
  const auto usec = static_cast<std::uint32_t>(
      std::lround((ts - std::floor(ts)) * 1e6) % 1000000);
  write_le32(os_, sec);
  write_le32(os_, usec);
  write_le32(os_, static_cast<std::uint32_t>(frame.size()));
  write_le32(os_, static_cast<std::uint32_t>(frame.size()));
  os_.write(reinterpret_cast<const char*>(frame.data()),
            static_cast<std::streamsize>(frame.size()));
  ++packets_written_;
}

PcapReader::PcapReader(std::istream& is) : is_(is) {
  std::uint32_t magic = 0;
  if (!read_le32(is_, magic) || magic != kPcapMagic) {
    throw std::runtime_error("pcap: bad magic (only native-order "
                             "microsecond pcap is supported)");
  }
  std::uint32_t word = 0;
  read_le32(is_, word);  // versions
  read_le32(is_, word);  // thiszone
  read_le32(is_, word);  // sigfigs
  std::uint32_t snaplen = 0;
  read_le32(is_, snaplen);
  // The snaplen bounds every record below; a zero or absurd value (a
  // garbage or hostile header) falls back to the hard clamp rather than
  // being trusted as an allocation size.
  snaplen_ = (snaplen == 0 || snaplen > kMaxRecordBytes) ? kMaxRecordBytes
                                                         : snaplen;
  std::uint32_t link_type = 0;
  if (!read_le32(is_, link_type) || link_type != kLinkTypeEthernet) {
    throw std::runtime_error("pcap: unsupported link type");
  }
}

std::optional<Packet> PcapReader::next() {
  if (truncated_) return std::nullopt;
  for (;;) {
    std::uint32_t sec = 0, usec = 0, incl = 0, orig = 0;
    if (!read_le32(is_, sec)) return std::nullopt;
    if (!read_le32(is_, usec) || !read_le32(is_, incl) ||
        !read_le32(is_, orig)) {
      // Record header cut off: the capture stopped mid-write.  Everything
      // before this point was complete, so end the stream and let the
      // caller decide what a truncated capture means.
      truncated_ = true;
      return std::nullopt;
    }
    if (incl > snaplen_) {
      // No valid writer produces a record larger than its own snaplen:
      // this is a corrupt or hostile capture.  Reject the record (the
      // length-based framing cannot be trusted past this point) instead
      // of allocating an attacker-controlled buffer.
      throw std::runtime_error("pcap: record length exceeds snaplen");
    }
    std::vector<std::uint8_t> frame(incl);
    if (!is_.read(reinterpret_cast<char*>(frame.data()),
                  static_cast<std::streamsize>(incl))) {
      truncated_ = true;  // body cut off: same story as a cut header
      return std::nullopt;
    }
    const double ts =
        static_cast<double>(sec) + static_cast<double>(usec) * 1e-6;
    std::optional<Packet> packet = decode_frame(frame, ts);
    if (packet.has_value()) {
      ++packets_read_;
      return packet;
    }
    // Non-IPv4/TCP/UDP frame: skip and continue.
  }
}

}  // namespace iustitia::net
