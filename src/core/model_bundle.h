// Versioned flow-model artifacts: FlowNatureModel in a sealed bundle.
//
// The offline trainer of Fig. 1 hands the online classifier a model
// artifact; in production that artifact crosses machines and process
// generations (the admin server's POST /model accepts a retrained one
// into a live fleet), so it must be self-describing and tamper-evident.
// These helpers put the full model serialization (widths, estimator
// config, embedded scaler, tree/SVM) inside the ml::Bundle frame —
// magic, format version, free-form metadata line, CRC-32 trailer — and
// validate the frame *before* parsing a single model value.
//
// Metadata convention: the first whitespace-separated token is the
// operator-facing model version (reported by /metrics and /stats.json);
// everything after it is free-form provenance.
#ifndef IUSTITIA_CORE_MODEL_BUNDLE_H_
#define IUSTITIA_CORE_MODEL_BUNDLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/flow_model.h"

namespace iustitia::core {

struct LoadedModelBundle {
  FlowNatureModel model;
  std::string metadata;
  std::uint32_t format_version = 0;
};

// Serializes `model` inside a bundle frame.  Throws std::invalid_argument
// when metadata contains a newline.
void save_model_bundle(const FlowNatureModel& model,
                       std::string_view metadata, std::ostream& os);

// Validates the frame (magic, version, size, CRC) and then parses the
// payload.  Throws std::runtime_error with an actionable message on any
// corruption — nothing partially parsed ever escapes.
LoadedModelBundle load_model_bundle(std::istream& is);

// Auto-detecting loader: accepts both a bundle and a bare serialized
// model (the pre-bundle artifact format).  When `metadata_out` is
// non-null it receives the bundle metadata, or "" for a bare model.
FlowNatureModel load_model_any(std::istream& is,
                               std::string* metadata_out = nullptr);

// First whitespace token of a metadata line — the operator-facing model
// version — or "unversioned" when the line is empty.
std::string model_version_of(std::string_view metadata);

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_MODEL_BUNDLE_H_
