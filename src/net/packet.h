// Packet and flow-key model.
//
// The online classifier consumes a time-ordered stream of packets, each
// carrying its 5-tuple, TCP flags, and transport payload.  These types are
// deliberately transport-level: link/IP framing only exists at the pcap
// boundary (net/pcap.h).
#ifndef IUSTITIA_NET_PACKET_H_
#define IUSTITIA_NET_PACKET_H_

#include <cstdint>
#include <vector>

namespace iustitia::net {

enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17 };

// Transport 5-tuple identifying a flow direction.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::kTcp;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

// TCP control flags (subset relevant to flow lifecycle tracking).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
};

// One captured packet.
struct Packet {
  double timestamp = 0.0;  // seconds since trace start
  FlowKey key;
  TcpFlags flags;          // all-false for UDP
  std::vector<std::uint8_t> payload;

  bool is_data() const noexcept { return !payload.empty(); }
};

}  // namespace iustitia::net

#endif  // IUSTITIA_NET_PACKET_H_
