#include "net/flow_table.h"

#include <algorithm>

namespace iustitia::net {

void FlowTable::add(const Packet& packet) {
  auto [it, inserted] = flows_.try_emplace(packet.key);
  FlowRecord& record = it->second;
  if (inserted) {
    record.key = packet.key;
    record.first_seen = packet.timestamp;
  }
  record.last_seen = packet.timestamp;
  ++record.packets;
  record.saw_fin |= packet.flags.fin;
  record.saw_rst |= packet.flags.rst;
  if (packet.is_data()) {
    ++record.data_packets;
    record.payload_bytes += packet.payload.size();
    record.data_packet_times.push_back(packet.timestamp);
    if (record.prefix.size() < prefix_limit_) {
      const std::size_t take =
          std::min(prefix_limit_ - record.prefix.size(), packet.payload.size());
      record.prefix.insert(record.prefix.end(), packet.payload.begin(),
                           packet.payload.begin() +
                               static_cast<std::ptrdiff_t>(take));
    }
  }
}

}  // namespace iustitia::net
