#!/usr/bin/env python3
"""Repo linter for iustitia.

Runs a small set of repo-specific static checks that the compiler does not
enforce.  Wired up as the `lint` CMake target and run by tools/ci.sh; a
finding is a hard failure (exit 1) and must be fixed, not suppressed,
unless a rule-specific NOLINT comment documents why the code is right.

Rules
-----
  std-include        IWYU-lite: a file that names a std:: symbol from the
                     curated table below must include the owning header
                     itself (for src/foo.cc, an include in the paired
                     src/foo.h also counts).
  no-assert          assert() is banned in src/ — use CHECK/DCHECK from
                     util/check.h so failures are logged and fatal in every
                     build type (assert vanishes under NDEBUG).
  no-owning-new      no raw `new` expressions; use std::make_unique /
                     containers.  Suppress with // NOLINT(no-owning-new)
                     only for placement new or non-owning framework calls.
  log2-domain        log2()/log() of a count must be guarded against zero
                     (log2(0) is -inf and poisons entropy math).  A guard
                     is any zero/positivity test or CHECK within the three
                     preceding lines; suppress deliberate cases with
                     // NOLINT(log2-domain).
  include-guard      headers use #ifndef IUSTITIA_<PATH>_H_ guards derived
                     from their repo-relative path.
  no-using-namespace `using namespace std` (or any `using namespace` at
                     header scope) is banned.
  no-thread-detach   `.detach()` on a thread is banned: a detached thread
                     outlives every join point, races static destruction,
                     and is invisible to the deadlock detector's graph
                     writer.  Keep the handle and join it (see
                     runtime/runtime.cc for the owning pattern).
  failpoint-inventory every FAILPOINT("...") call site must name an entry
                     of kFailpointInventory (src/util/failpoint_inventory.h)
                     so a typo'd point fails the build instead of silently
                     never arming, and the name must be a string literal so
                     this cross-check can see it.  Skipped when the linted
                     set contains no inventory file.
  hot-module-io      stream I/O and logging are banned in the hot modules
                     (src/runtime, src/entropy): <iostream>, std::cout /
                     cerr / clog, std::endl, and IUSTITIA_LOG_* stall the
                     packet path the hotpath analyzer proves allocation-
                     and block-free.  A deliberate cold-branch use is
                     suppressed by the same `// analyze: hotpath-allow`
                     annotation the analyzer audits (or NOLINT with a
                     reason).

Usage: tools/lint.py [path ...]   (defaults to src tests bench tools examples)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_ROOTS = ["src", "tests", "bench", "tools", "examples"]
SOURCE_SUFFIXES = {".cc", ".h"}

# Curated std symbol -> owning header table (deliberately unambiguous
# symbols only; transitively-available-everywhere names like std::size_t,
# std::move or std::pair are out of scope for the lite checker).
STD_HEADERS = {
    "functional": ["std::function"],
    "span": ["std::span"],
    "optional": ["std::optional", "std::nullopt"],
    "memory": ["std::unique_ptr", "std::shared_ptr", "std::make_unique",
               "std::make_shared"],
    "vector": ["std::vector"],
    "string": ["std::string", "std::to_string"],
    "string_view": ["std::string_view"],
    "unordered_map": ["std::unordered_map"],
    "unordered_set": ["std::unordered_set"],
    "map": ["std::map", "std::multimap"],
    "set": ["std::set", "std::multiset"],
    "array": ["std::array"],
    "deque": ["std::deque"],
    "variant": ["std::variant", "std::get_if", "std::holds_alternative"],
    "atomic": ["std::atomic"],
    "thread": ["std::thread"],
    "mutex": ["std::mutex", "std::lock_guard", "std::scoped_lock",
              "std::unique_lock"],
    "condition_variable": ["std::condition_variable"],
    "chrono": ["std::chrono"],
    "limits": ["std::numeric_limits"],
    "sstream": ["std::ostringstream", "std::istringstream",
                "std::stringstream"],
    "fstream": ["std::ofstream", "std::ifstream", "std::fstream"],
    "iostream": ["std::cout", "std::cerr", "std::cin"],
    "random": ["std::mt19937", "std::uniform_int_distribution",
               "std::uniform_real_distribution", "std::normal_distribution"],
    "numbers": ["std::numbers"],
    "numeric": ["std::accumulate", "std::iota", "std::gcd", "std::lcm"],
    "algorithm": ["std::sort", "std::stable_sort", "std::min", "std::max",
                  "std::minmax", "std::clamp", "std::fill", "std::find",
                  "std::find_if", "std::count", "std::count_if",
                  "std::lower_bound", "std::upper_bound", "std::max_element",
                  "std::min_element", "std::all_of", "std::any_of",
                  "std::none_of", "std::shuffle", "std::copy",
                  # std::remove is ambiguous (cstdio's file remove) — only
                  # the _if variant is safely attributable to <algorithm>.
                  "std::transform", "std::remove_if",
                  "std::reverse", "std::unique", "std::nth_element"],
    "cmath": ["std::log2", "std::log", "std::exp", "std::sqrt", "std::pow",
              "std::ceil", "std::floor", "std::fabs", "std::round",
              "std::isnan", "std::isinf", "std::fmod", "std::hypot"],
    "cstring": ["std::memcpy", "std::memset", "std::memcmp", "std::strcmp",
                "std::strlen"],
    "cstdio": ["std::fprintf", "std::printf", "std::snprintf", "std::fflush",
               "std::fopen", "std::fclose", "std::fwrite", "std::fread"],
    "cstdlib": ["std::getenv", "std::abort", "std::exit", "std::atoll",
                "std::atoi", "std::strtod"],
}

GUARD_PATTERNS = (
    "> 0", ">= 1", ">= 2", "!= 0", "== 0", "<= 0", "< 1", "<= 1", "> 1",
    "CHECK", "DCHECK", "empty()", "max(", "clamp(",
)

LINE_COMMENT_RE = re.compile(r"//.*$")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^">]+)[">]')


def strip_code(text: str, keep_strings: bool = False) -> str:
    """Removes comments and (unless keep_strings) string/char literals,
    preserving line structure."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            start = i
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    if not keep_strings:
                        out.append("\n")
                i += 1
            i += 1
            if keep_strings:
                out.append(text[start:i])
        else:
            out.append(c)
            i += 1
    return "".join(out)


def rel_path(path: Path) -> Path:
    """Repo-relative when possible; out-of-repo paths stay absolute."""
    return path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) \
        else path


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{rel_path(self.path)}:{self.line}: " \
               f"[{self.rule}] {self.message}"


def raw_lines_with_nolint(text: str, rule: str) -> set[int]:
    """1-based line numbers carrying a NOLINT marker for `rule`."""
    marked = set()
    for i, line in enumerate(text.splitlines(), start=1):
        if f"NOLINT({rule})" in line or "NOLINTALL" in line:
            marked.add(i)
        if f"NOLINTNEXTLINE({rule})" in line:
            marked.add(i + 1)
    return marked


def includes_of(text: str) -> set[str]:
    return {m.group(1) for line in text.splitlines()
            if (m := INCLUDE_RE.match(line))}


def check_std_includes(path: Path, raw: str, stripped: str,
                       findings: list[Finding]) -> None:
    direct = includes_of(raw)
    # For src/foo.cc, includes of the paired header src/foo.h count too:
    # the pair is one component and the header is always included first.
    if path.suffix == ".cc":
        paired = path.with_suffix(".h")
        if paired.exists():
            direct |= includes_of(paired.read_text())
    lines = stripped.splitlines()
    for header, symbols in STD_HEADERS.items():
        if header in direct:
            continue
        for symbol in symbols:
            pattern = re.compile(re.escape(symbol) + r"\b")
            for lineno, line in enumerate(lines, start=1):
                if pattern.search(line):
                    findings.append(Finding(
                        path, lineno, "std-include",
                        f"uses {symbol} but does not include <{header}>"))
                    break  # one finding per (file, header) pair
            else:
                continue
            break


def check_no_assert(path: Path, stripped: str,
                    findings: list[Finding]) -> None:
    if rel_path(path).parts[:1] != ("src",):
        return
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if re.search(r"(?<![\w_])assert\s*\(", line) and \
                "static_assert" not in line:
            findings.append(Finding(
                path, lineno, "no-assert",
                "assert() is compiled out under NDEBUG; use CHECK/DCHECK "
                "from util/check.h"))


def check_no_owning_new(path: Path, raw: str, stripped: str,
                        findings: list[Finding]) -> None:
    nolint = raw_lines_with_nolint(raw, "no-owning-new")
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if lineno in nolint:
            continue
        if re.search(r"(?<![\w_])new\s+[A-Za-z_:(]", line):
            findings.append(Finding(
                path, lineno, "no-owning-new",
                "raw new expression; use std::make_unique or a container"))


def check_log2_domain(path: Path, raw: str, stripped: str,
                      findings: list[Finding]) -> None:
    nolint = raw_lines_with_nolint(raw, "log2-domain")
    lines = stripped.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if lineno in nolint:
            continue
        m = re.search(r"(?<![\w_.])(?:std::)?log2?\s*\(", line)
        if not m:
            continue
        # A literal or obviously-constant argument is fine: log2(1.0 / x).
        arg_start = line[m.end():].lstrip()
        if re.match(r"[0-9]", arg_start):
            continue
        context = lines[max(0, lineno - 4):lineno]
        if any(g in ctx for ctx in context for g in GUARD_PATTERNS):
            continue
        findings.append(Finding(
            path, lineno, "log2-domain",
            "log of a possibly-zero count: guard the argument (or add "
            "// NOLINT(log2-domain) with a reason)"))


def check_include_guard(path: Path, raw: str,
                        findings: list[Finding]) -> None:
    if path.suffix != ".h":
        return
    parts = list(rel_path(path).parts)
    if parts[0] == "src":
        parts = parts[1:]  # headers are included relative to src/
    expected = "IUSTITIA_" + "_".join(
        re.sub(r"[^A-Za-z0-9]", "_", p).upper() for p in parts) + "_"
    lines = raw.splitlines()

    # The guard #ifndef must be the first directive in the file: searching
    # for any #ifndef/#define pair anywhere would accept a pair buried in
    # the body (or a file whose real guard name is wrong but that happens
    # to contain a matching pair later).
    open_idx = None
    in_comment = False
    for i, line in enumerate(lines):
        s = line.strip()
        if in_comment:
            if "*/" in s:
                in_comment = False
            continue
        if not s or s.startswith("//"):
            continue
        if s.startswith("/*"):
            in_comment = "*/" not in s
            continue
        open_idx = i
        break
    if open_idx is None:
        findings.append(Finding(path, 1, "include-guard",
                                f"missing include guard {expected}"))
        return
    m = re.fullmatch(r"#\s*ifndef\s+(\S+)", lines[open_idx].strip())
    if not m:
        findings.append(Finding(
            path, open_idx + 1, "include-guard",
            f"first directive must be the include guard "
            f"'#ifndef {expected}'"))
        return
    if m.group(1) != expected:
        findings.append(Finding(path, open_idx + 1, "include-guard",
                                f"guard is {m.group(1)}, expected {expected}"))
        return
    define = lines[open_idx + 1].strip() if open_idx + 1 < len(lines) else ""
    dm = re.fullmatch(r"#\s*define\s+(\S+)", define)
    if not dm or dm.group(1) != expected:
        findings.append(Finding(
            path, open_idx + 2, "include-guard",
            f"'#define {expected}' must immediately follow its #ifndef"))
        return
    last_endif = None
    for i in range(len(lines) - 1, -1, -1):
        if lines[i].strip().startswith("#endif"):
            last_endif = i
            break
    if last_endif is None or \
            not re.search(rf"//\s*{re.escape(expected)}\s*$",
                          lines[last_endif]):
        findings.append(Finding(
            path, (last_endif if last_endif is not None else len(lines) - 1)
            + 1, "include-guard",
            f"closing #endif must carry the comment '// {expected}'"))


def check_no_thread_detach(path: Path, raw: str, stripped: str,
                           findings: list[Finding]) -> None:
    nolint = raw_lines_with_nolint(raw, "no-thread-detach")
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if lineno in nolint:
            continue
        if re.search(r"(?:\.|->)\s*detach\s*\(\s*\)", line):
            findings.append(Finding(
                path, lineno, "no-thread-detach",
                "detached threads race shutdown and static destruction; "
                "keep the std::thread handle and join it"))


# Modules whose steady state the hotpath analyzer proves block-free;
# matched as consecutive path components so materialized fixture trees
# (absolute temp dirs) hit the same rule as the real tree.
HOT_MODULES = (("src", "runtime"), ("src", "entropy"))

_HOT_IO_PATTERNS = (
    (re.compile(r"^\s*#\s*include\s*<iostream>"), "#include <iostream>"),
    (re.compile(r"std::endl\b"), "std::endl"),
    (re.compile(r"std::(cout|cerr|clog)\b"), "std::cout/cerr/clog"),
    (re.compile(r"(?<![\w_])(IUSTITIA_LOG_[A-Z_]+)"), "IUSTITIA_LOG_*"),
)


def in_hot_module(path: Path) -> bool:
    parts = rel_path(path).parts
    return any(parts[i:i + 2] == pair
               for pair in HOT_MODULES for i in range(len(parts) - 1))


def check_hot_module_io(path: Path, raw: str, stripped: str,
                        findings: list[Finding]) -> None:
    if not in_hot_module(path):
        return
    nolint = raw_lines_with_nolint(raw, "hot-module-io")
    raw_lines = raw.splitlines()
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if lineno in nolint:
            continue
        # A line carrying the analyzer's cold-branch annotation is a
        # documented exception: the hotpath pass audits the same line.
        raw_line = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
        if "analyze: hotpath-allow" in raw_line:
            continue
        for pattern, what in _HOT_IO_PATTERNS:
            if pattern.search(line):
                findings.append(Finding(
                    path, lineno, "hot-module-io",
                    f"{what} in a hot module: stream I/O and logging "
                    "stall the packet path; use the metrics/report APIs, "
                    "or mark a deliberate cold branch with "
                    "`// analyze: hotpath-allow(may-block)`"))
                break


def check_using_namespace(path: Path, stripped: str,
                          findings: list[Finding]) -> None:
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if re.search(r"using\s+namespace\s+std\b", line):
            findings.append(Finding(path, lineno, "no-using-namespace",
                                    "using namespace std is banned"))
        elif path.suffix == ".h" and re.search(r"using\s+namespace\s", line):
            findings.append(Finding(
                path, lineno, "no-using-namespace",
                "using namespace in a header leaks into every includer"))


# ---- failpoint-inventory: FAILPOINT("...") call sites vs the inventory ----

FAILPOINT_INVENTORY_NAME = "failpoint_inventory.h"
FAILPOINT_LITERAL_RE = re.compile(r'(?<![\w_])FAILPOINT\s*\(\s*"([^"]*)"')
FAILPOINT_CALL_RE = re.compile(r'(?<![\w_])FAILPOINT\s*\(')


def failpoint_inventory_names(path: Path) -> set[str]:
    """Every string literal in the inventory header is a registered name."""
    stripped = strip_code(path.read_text(), keep_strings=True)
    return set(re.findall(r'"([^"]*)"', stripped))


def check_failpoint_inventory(path: Path, names: set[str],
                              findings: list[Finding]) -> None:
    if path.name == FAILPOINT_INVENTORY_NAME:
        return
    raw = path.read_text()
    nolint = raw_lines_with_nolint(raw, "failpoint-inventory")
    stripped = strip_code(raw, keep_strings=True)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if lineno in nolint:
            continue
        # The macro's own #define is not a call site.
        if line.lstrip().startswith("#"):
            continue
        literals = FAILPOINT_LITERAL_RE.findall(line)
        for name in literals:
            if name not in names:
                findings.append(Finding(
                    path, lineno, "failpoint-inventory",
                    f'FAILPOINT("{name}") is not in kFailpointInventory '
                    f"(src/util/{FAILPOINT_INVENTORY_NAME}); add it there "
                    "or fix the typo"))
        if len(FAILPOINT_CALL_RE.findall(line)) > len(literals):
            findings.append(Finding(
                path, lineno, "failpoint-inventory",
                "FAILPOINT name must be a string literal so the "
                "inventory cross-check can see it"))


def lint_file(path: Path) -> list[Finding]:
    raw = path.read_text()
    stripped = strip_code(raw)
    findings: list[Finding] = []
    check_std_includes(path, raw, stripped, findings)
    check_no_assert(path, stripped, findings)
    check_no_owning_new(path, raw, stripped, findings)
    check_log2_domain(path, raw, stripped, findings)
    check_include_guard(path, raw, findings)
    check_no_thread_detach(path, raw, stripped, findings)
    check_hot_module_io(path, raw, stripped, findings)
    check_using_namespace(path, stripped, findings)
    return findings


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv[1:]] or \
            [REPO_ROOT / r for r in DEFAULT_ROOTS]
    files: list[Path] = []
    for root in roots:
        root = root.resolve()
        if root.is_file():
            files.append(root)
        else:
            files.extend(p for p in sorted(root.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    # Cross-file rule: FAILPOINT call sites against the central inventory.
    # Skipped when the linted set has no inventory (partial-tree runs).
    inventory = next(
        (p for p in files if p.name == FAILPOINT_INVENTORY_NAME), None)
    if inventory is not None:
        names = failpoint_inventory_names(inventory)
        for path in files:
            check_failpoint_inventory(path, names, findings)
    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"lint: clean ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
