// Flow-sharded engine for multi-core deployment.
//
// A single Iustitia engine is single-threaded by design (per-flow state,
// no locks on the fast path).  To keep up with multi-gigabit links, the
// standard scaling move — and what RSS-style NIC steering gives for free —
// is to shard flows across engines by a hash of the 5-tuple: every packet
// of a flow always lands on the same engine, so no state is shared and no
// synchronization is needed.  ShardedIustitia packages that pattern:
// shard_of() implements the steering function, and each shard is an
// independent engine the caller may drive from its own thread.
//
// Thread safety: each shard is protected by its own annotated mutex, so
// on_packet() and the aggregate accessors are safe from arbitrary threads.
// With RSS-style steering (one thread per shard) the per-shard lock is
// never contended and costs a few nanoseconds; callers without steering
// can simply call on_packet() from any thread and let the hash route.
// shard() bypasses the lock for single-owner access (setup, teardown,
// experiments) — see the method comment.
#ifndef IUSTITIA_CORE_SHARDED_ENGINE_H_
#define IUSTITIA_CORE_SHARDED_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "util/thread_annotations.h"

namespace iustitia::core {

class ShardedIustitia {
 public:
  // Builds `shards` engines, each with its own copy of the model.  The
  // factory is invoked once per shard so models are never shared across
  // threads.  Throws std::invalid_argument when shards == 0.
  ShardedIustitia(const std::function<FlowNatureModel()>& model_factory,
                  const EngineOptions& options, std::size_t shards);

  // Shared-model form: every shard holds the same immutable model (the
  // control plane's ModelRegistry publishes replacements; each shard still
  // keeps its own extractor copy inside its engine).  Throws
  // std::invalid_argument when shards == 0.
  ShardedIustitia(std::shared_ptr<const FlowNatureModel> model,
                  const EngineOptions& options, std::size_t shards);

  // Deterministic steering: same flow -> same shard (uses the flow-key
  // hash, mixing both directions independently like the paper's CDB).
  std::size_t shard_of(const net::FlowKey& key) const noexcept;

  // Routes to the owning shard under that shard's lock; callable from any
  // thread concurrently.
  PacketAction on_packet(const net::Packet& packet);

  std::size_t shard_count() const noexcept { return shards_.size(); }

  // Direct, unlocked shard access for a single-owner phase (configuration,
  // per-thread RSS drive of exactly this shard, post-join inspection).
  // The caller takes over the serialization the lock would provide.
  Iustitia& shard(std::size_t index);
  const Iustitia& shard(std::size_t index) const;

  // Aggregated statistics across shards (each shard read under its lock).
  EngineStats total_stats() const;
  std::size_t total_cdb_size() const;
  std::size_t total_flows_classified() const;

  // Flushes every shard's pending flows.
  std::size_t flush_all();

 private:
  // One engine plus the lock that serializes cross-thread access to it.
  struct Shard {
    mutable util::Mutex mu{"Shard::mu"};
    std::unique_ptr<Iustitia> engine IUSTITIA_PT_GUARDED_BY(mu);
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_SHARDED_ENGINE_H_
