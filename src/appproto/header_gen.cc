#include "appproto/header_gen.h"

#include "datagen/markov_text.h"

namespace iustitia::appproto {

namespace {

std::vector<std::uint8_t> to_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

std::string host(util::Rng& rng) {
  return datagen::random_word(rng, 3, 8) + "." +
         datagen::random_word(rng, 4, 9) + ".example.com";
}

}  // namespace

const char* protocol_name(AppProtocol p) noexcept {
  switch (p) {
    case AppProtocol::kNone:
      return "none";
    case AppProtocol::kHttp:
      return "http";
    case AppProtocol::kSmtp:
      return "smtp";
    case AppProtocol::kPop3:
      return "pop3";
    case AppProtocol::kImap:
      return "imap";
  }
  return "?";
}

std::vector<std::uint8_t> generate_http_response_header(
    util::Rng& rng, std::size_t content_length) {
  static constexpr const char* kTypes[] = {
      "text/html", "image/jpeg", "application/octet-stream", "video/mpeg",
      "application/zip"};
  std::string h = "HTTP/1.1 200 OK\r\n";
  h += "Date: Tue, 10 Mar 2009 1";
  h += std::to_string(rng.uniform_int(0, 9));
  h += ":24:5" + std::to_string(rng.uniform_int(0, 9)) + " GMT\r\n";
  h += "Server: Apache/2.2." + std::to_string(rng.uniform_int(3, 11)) +
       " (Unix)\r\n";
  h += "Content-Type: ";
  h += kTypes[rng.next_below(std::size(kTypes))];
  h += "\r\n";
  h += "Content-Length: " + std::to_string(content_length) + "\r\n";
  if (rng.chance(0.5)) h += "Connection: keep-alive\r\n";
  if (rng.chance(0.4)) {
    h += "ETag: \"" + std::to_string(rng.next_u64() & 0xFFFFFFFF) + "\"\r\n";
  }
  h += "\r\n";
  return to_bytes(h);
}

std::vector<std::uint8_t> generate_http_request_header(util::Rng& rng) {
  std::string h = rng.chance(0.8) ? "GET /" : "POST /";
  h += datagen::random_word(rng, 3, 8) + "/" +
       datagen::random_word(rng, 3, 10);
  h += rng.chance(0.5) ? ".html" : ".jpg";
  h += " HTTP/1.1\r\n";
  h += "Host: " + host(rng) + "\r\n";
  h += "User-Agent: Mozilla/5.0 (X11; Linux x86_64)\r\n";
  h += "Accept: */*\r\n";
  if (rng.chance(0.5)) h += "Accept-Encoding: gzip, deflate\r\n";
  h += "\r\n";
  return to_bytes(h);
}

namespace {

std::vector<std::uint8_t> generate_smtp_preamble(util::Rng& rng) {
  std::string h = "220 " + host(rng) + " ESMTP Postfix\r\n";
  h += "EHLO " + host(rng) + "\r\n";
  h += "250-" + host(rng) + "\r\n250-PIPELINING\r\n250 8BITMIME\r\n";
  h += "MAIL FROM:<" + datagen::random_word(rng, 3, 8) + "@" + host(rng) +
       ">\r\n250 2.1.0 Ok\r\n";
  h += "RCPT TO:<" + datagen::random_word(rng, 3, 8) + "@" + host(rng) +
       ">\r\n250 2.1.5 Ok\r\n";
  h += "DATA\r\n354 End data with <CR><LF>.<CR><LF>\r\n";
  return to_bytes(h);
}


std::vector<std::uint8_t> generate_pop3_preamble(util::Rng& rng) {
  std::string h = "+OK POP3 server ready <" +
                  std::to_string(rng.next_u64() & 0xFFFFFF) + "@" + host(rng) +
                  ">\r\n";
  h += "USER " + datagen::random_word(rng, 3, 8) + "\r\n+OK\r\n";
  h += "PASS ****\r\n+OK user logged in\r\n";
  h += "RETR " + std::to_string(rng.uniform_int(1, 40)) + "\r\n+OK " +
       std::to_string(rng.uniform_int(500, 90000)) + " octets\r\n";
  return to_bytes(h);
}


std::vector<std::uint8_t> generate_imap_preamble(util::Rng& rng) {
  std::string h = "* OK [CAPABILITY IMAP4rev1] " + host(rng) +
                  " IMAP server ready\r\n";
  h += "a1 LOGIN " + datagen::random_word(rng, 3, 8) + " ****\r\na1 OK\r\n";
  h += "a2 SELECT INBOX\r\n* " + std::to_string(rng.uniform_int(1, 900)) +
       " EXISTS\r\na2 OK [READ-WRITE]\r\n";
  h += "a3 FETCH " + std::to_string(rng.uniform_int(1, 900)) +
       " BODY[]\r\n";
  return to_bytes(h);
}

}  // namespace

std::vector<std::uint8_t> generate_header(AppProtocol protocol, util::Rng& rng,
                                          std::size_t content_length) {
  switch (protocol) {
    case AppProtocol::kNone:
      return {};
    case AppProtocol::kHttp:
      return rng.chance(0.7)
                 ? generate_http_response_header(rng, content_length)
                 : generate_http_request_header(rng);
    case AppProtocol::kSmtp:
      return generate_smtp_preamble(rng);
    case AppProtocol::kPop3:
      return generate_pop3_preamble(rng);
    case AppProtocol::kImap:
      return generate_imap_preamble(rng);
  }
  return {};
}

}  // namespace iustitia::appproto
