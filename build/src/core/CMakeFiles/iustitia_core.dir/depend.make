# Empty dependencies file for iustitia_core.
# This may be replaced when dependencies are built.
