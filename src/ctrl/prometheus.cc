#include "ctrl/prometheus.h"

#include <cstddef>
#include <sstream>
#include <string>

namespace iustitia::ctrl {

namespace {

constexpr const char* kNatureNames[3] = {"text", "binary", "encrypted"};

void header(std::ostringstream& out, const char* name, const char* help,
            const char* type) {
  out << "# HELP " << name << ' ' << help << "\n# TYPE " << name << ' '
      << type << '\n';
}

}  // namespace

std::string prometheus_label_escape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string render_prometheus(const runtime::MetricsSnapshot& snap) {
  std::ostringstream out;
  out.precision(12);

  header(out, "iustitia_uptime_seconds",
         "Seconds since the runtime's metrics registry was created.",
         "gauge");
  out << "iustitia_uptime_seconds " << snap.uptime_seconds << '\n';

  header(out, "iustitia_model_info",
         "Constant 1; the version label names the installed model.",
         "gauge");
  out << "iustitia_model_info{version=\""
      << prometheus_label_escape(snap.model_version) << "\"} 1\n";

  header(out, "iustitia_model_swaps_total",
         "Model hot-swaps published since start.", "counter");
  out << "iustitia_model_swaps_total " << snap.model_swaps << '\n';

  header(out, "iustitia_packets_in_total",
         "Packets read from the packet source.", "counter");
  out << "iustitia_packets_in_total " << snap.packets_in << '\n';

  header(out, "iustitia_ring_pushed_total",
         "Packets pushed into each shard's SPSC ring.", "counter");
  for (std::size_t s = 0; s < snap.rings.size(); ++s) {
    out << "iustitia_ring_pushed_total{shard=\"" << s << "\"} "
        << snap.rings[s].pushed << '\n';
  }
  header(out, "iustitia_ring_popped_total",
         "Packets drained from each shard's SPSC ring.", "counter");
  for (std::size_t s = 0; s < snap.rings.size(); ++s) {
    out << "iustitia_ring_popped_total{shard=\"" << s << "\"} "
        << snap.rings[s].popped << '\n';
  }
  header(out, "iustitia_ring_dropped_total",
         "Packets dropped by backpressure per shard.", "counter");
  for (std::size_t s = 0; s < snap.rings.size(); ++s) {
    out << "iustitia_ring_dropped_total{shard=\"" << s << "\"} "
        << snap.rings[s].dropped << '\n';
  }
  header(out, "iustitia_ring_high_water",
         "Deepest ring occupancy observed per shard.", "gauge");
  for (std::size_t s = 0; s < snap.rings.size(); ++s) {
    out << "iustitia_ring_high_water{shard=\"" << s << "\"} "
        << snap.rings[s].high_water << '\n';
  }

  header(out, "iustitia_flows_classified_total",
         "Flows classified, by nature.", "counter");
  for (std::size_t c = 0; c < snap.flows_by_nature.size(); ++c) {
    out << "iustitia_flows_classified_total{nature=\"" << kNatureNames[c]
        << "\"} " << snap.flows_by_nature[c] << '\n';
  }

  header(out, "iustitia_engine_latency_packets_total",
         "Per-packet engine latency samples recorded.", "counter");
  out << "iustitia_engine_latency_packets_total " << snap.engine_latency.total
      << '\n';
  header(out, "iustitia_engine_latency_mean_microseconds",
         "Mean sampled per-packet engine latency.", "gauge");
  out << "iustitia_engine_latency_mean_microseconds "
      << snap.engine_latency.mean_micros() << '\n';
  header(out, "iustitia_engine_latency_p99_upper_microseconds",
         "Upper bucket edge containing the 99th percentile.", "gauge");
  out << "iustitia_engine_latency_p99_upper_microseconds "
      << snap.engine_latency.quantile_upper_micros(0.99) << '\n';

  header(out, "iustitia_health_info",
         "Constant 1; the state label is ok/degraded(...)/unhealthy(...).",
         "gauge");
  out << "iustitia_health_info{state=\""
      << prometheus_label_escape(snap.health) << "\"} 1\n";

  header(out, "iustitia_overload_stage",
         "Current shed-ladder stage (0 normal .. 3 drop).", "gauge");
  out << "iustitia_overload_stage " << snap.overload_stage << '\n';

  header(out, "iustitia_overload_stage_entries_total",
         "Times each shed stage was entered.", "counter");
  for (std::size_t s = 0; s < snap.stage_entries.size(); ++s) {
    out << "iustitia_overload_stage_entries_total{stage=\"" << s << "\"} "
        << snap.stage_entries[s] << '\n';
  }
  header(out, "iustitia_overload_stage_exits_total",
         "Times each shed stage was exited.", "counter");
  for (std::size_t s = 0; s < snap.stage_exits.size(); ++s) {
    out << "iustitia_overload_stage_exits_total{stage=\"" << s << "\"} "
        << snap.stage_exits[s] << '\n';
  }

  header(out, "iustitia_packets_shed_total",
         "Packets refused by admission sampling under overload.", "counter");
  out << "iustitia_packets_shed_total " << snap.packets_shed << '\n';

  header(out, "iustitia_source_transient_errors_total",
         "Transient packet-source failures retried with backoff.",
         "counter");
  out << "iustitia_source_transient_errors_total "
      << snap.source_transient_errors << '\n';
  header(out, "iustitia_source_retries_exhausted_total",
         "Source retry ladders that ran out of attempts.", "counter");
  out << "iustitia_source_retries_exhausted_total "
      << snap.source_retries_exhausted << '\n';

  header(out, "iustitia_watchdog_stalls_total",
         "Stalls detected by the progress watchdog.", "counter");
  out << "iustitia_watchdog_stalls_total " << snap.watchdog_stalls << '\n';

  header(out, "iustitia_cdb_records",
         "Classification-database records currently held.", "gauge");
  out << "iustitia_cdb_records " << snap.cdb_records << '\n';
  header(out, "iustitia_cdb_record_ceiling",
         "Configured hard record ceiling (0 = unbounded).", "gauge");
  out << "iustitia_cdb_record_ceiling " << snap.cdb_ceiling << '\n';
  header(out, "iustitia_cdb_forced_evictions_total",
         "Oldest-first evictions forced by the record ceiling.", "counter");
  out << "iustitia_cdb_forced_evictions_total " << snap.cdb_forced_evictions
      << '\n';
  header(out, "iustitia_cdb_insert_failures_total",
         "CDB inserts refused (injected allocation failures).", "counter");
  out << "iustitia_cdb_insert_failures_total " << snap.cdb_insert_failures
      << '\n';

  if (snap.has_queue_stats) {
    header(out, "iustitia_output_enqueued_total",
           "Packets forwarded to each per-nature output queue.", "counter");
    for (std::size_t c = 0; c < snap.queue_stats.enqueued.size(); ++c) {
      out << "iustitia_output_enqueued_total{nature=\"" << kNatureNames[c]
          << "\"} " << snap.queue_stats.enqueued[c] << '\n';
    }
    header(out, "iustitia_output_dropped_total",
           "Packets refused by full per-nature output queues.", "counter");
    for (std::size_t c = 0; c < snap.queue_stats.dropped.size(); ++c) {
      out << "iustitia_output_dropped_total{nature=\"" << kNatureNames[c]
          << "\"} " << snap.queue_stats.dropped[c] << '\n';
    }
    header(out, "iustitia_output_depth",
           "Current per-nature output queue depth.", "gauge");
    for (std::size_t c = 0; c < snap.queue_stats.depth.size(); ++c) {
      out << "iustitia_output_depth{nature=\"" << kNatureNames[c] << "\"} "
          << snap.queue_stats.depth[c] << '\n';
    }
  }
  return out.str();
}

}  // namespace iustitia::ctrl
