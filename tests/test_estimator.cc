// Tests for the (delta, epsilon)-approximation of Section 4.4: the counter
// sizing formulas (3)/(4) and the statistical accuracy of the estimate.
#include "entropy/estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <span>
#include <vector>

#include "entropy/gram_counter.h"

namespace iustitia::entropy {
namespace {

TEST(EstimatorMath, GroupCountFormula) {
  // g = ceil(2 * log2(1/delta)).
  EXPECT_EQ(estimator_group_count(0.5), 2);
  EXPECT_EQ(estimator_group_count(0.25), 4);
  EXPECT_EQ(estimator_group_count(0.1), 7);   // 2*3.32 = 6.64 -> 7
  EXPECT_EQ(estimator_group_count(0.75), 1);  // 2*0.415 = 0.83 -> 1
  EXPECT_EQ(estimator_group_count(1.0), 1);   // clamped
  EXPECT_GE(estimator_group_count(0.999), 1);
}

TEST(EstimatorMath, SamplesPerGroupFormula) {
  // z = ceil(32 * log_{2^(8k)}(b) / eps^2).
  // k=2, b=1024: log_65536(1024) = 10/16 = 0.625; eps=0.25 -> 32*0.625/0.0625
  // = 320.
  EXPECT_EQ(estimator_samples_per_group(2, 1024, 0.25), 320);
  // k=5, b=1024: 10/40 = 0.25 -> 32*0.25/0.0625 = 128.
  EXPECT_EQ(estimator_samples_per_group(5, 1024, 0.25), 128);
  // Larger eps shrinks z.
  EXPECT_LT(estimator_samples_per_group(2, 1024, 0.5),
            estimator_samples_per_group(2, 1024, 0.25));
  // Tiny buffers degenerate to 1.
  EXPECT_EQ(estimator_samples_per_group(2, 1, 0.25), 1);
}

TEST(EstimatorMath, FeatureSetCoefficientMatchesPaper) {
  // K_phi = 8 * sum_{k != 1} 1/k.  Paper: K_phi_SVM = 8.26 for {1,2,3,5}
  // (8*(1/2+1/3+1/5) = 8*1.0333 = 8.27) and K_phi_CART = 6.26 for {1,3,4,5}
  // (8*(1/3+1/4+1/5) = 8*0.7833 = 6.27).
  EXPECT_NEAR(feature_set_coefficient(svm_preferred_widths()), 8.27, 0.05);
  EXPECT_NEAR(feature_set_coefficient(cart_preferred_widths()), 6.27, 0.05);
  const int only_h1[] = {1};
  EXPECT_DOUBLE_EQ(feature_set_coefficient(only_h1), 0.0);
}

TEST(EstimatorMath, EpsilonLowerBoundMatchesPaperExample) {
  // Paper: with b = 1024 and alpha ~= 1911, formula (4) reduces to
  // eps > 0.18 * sqrt(log2(1/delta)) for K_phi ~ 6.26.
  const double k_phi = 6.26;
  const double bound = epsilon_lower_bound(k_phi, 1024, 1911.0, 0.5);
  EXPECT_NEAR(bound, 0.18 * std::sqrt(std::log2(2.0)), 0.01);
  // Monotone: smaller delta (more confidence) needs larger epsilon for the
  // same counter budget.
  EXPECT_GT(epsilon_lower_bound(k_phi, 1024, 1911.0, 0.1),
            epsilon_lower_bound(k_phi, 1024, 1911.0, 0.5));
}

TEST(EstimatorMath, SpaceBytesBelowExactForLargeBuffers) {
  // The whole point of estimation (Table 3): fewer counters than exact
  // counting at b = 1024.
  const auto widths = svm_preferred_widths();
  const EstimatorParams params{.epsilon = 0.25, .delta = 0.75};
  const std::size_t est = estimator_space_bytes(widths, 1024, params);

  util::Rng rng(8);
  std::vector<std::uint8_t> data(1024);
  rng.fill_bytes(data);
  const std::size_t exact =
      compute_entropy_vector(data, widths).space_bytes;
  EXPECT_LT(est, exact);
}

TEST(ChooseEstimatorParams, FitsTheCounterBudget) {
  const auto widths = svm_preferred_widths();
  for (const std::size_t budget : {200u, 500u, 1000u, 2000u}) {
    const auto params = choose_estimator_params(widths, 1024, budget);
    ASSERT_TRUE(params.has_value()) << "budget " << budget;
    // Realized sketch space must fit 4 bytes/counter * budget (the width-1
    // table is exact and excluded from the budget).
    const std::size_t space = estimator_space_bytes(widths, 1024, *params);
    EXPECT_LE(space - 256 * sizeof(std::uint32_t),
              budget * sizeof(std::uint32_t))
        << "budget " << budget;
  }
}

TEST(ChooseEstimatorParams, TinyBudgetIsRejected) {
  const auto widths = svm_preferred_widths();
  // A handful of counters cannot satisfy Formula (4) with epsilon <= 1.
  EXPECT_EQ(choose_estimator_params(widths, 1024, 5), std::nullopt);
}

TEST(ChooseEstimatorParams, LargerBudgetBuysMoreConfidenceOrPrecision) {
  const auto widths = svm_preferred_widths();
  const auto tight = choose_estimator_params(widths, 1024, 300);
  const auto roomy = choose_estimator_params(widths, 1024, 5000);
  ASSERT_TRUE(tight.has_value());
  ASSERT_TRUE(roomy.has_value());
  // More budget must not make both knobs worse.
  EXPECT_TRUE(roomy->epsilon <= tight->epsilon ||
              roomy->delta <= tight->delta);
}

TEST(ChooseEstimatorParams, Width1OnlyNeedsNoSketch) {
  const int widths[] = {1};
  const auto params = choose_estimator_params(widths, 1024, 0);
  ASSERT_TRUE(params.has_value());
  EXPECT_EQ(estimator_space_bytes(widths, 1024, *params),
            256 * sizeof(std::uint32_t));
}

TEST(EstimateSum, ExactWhenBufferIsConstant) {
  // All-same buffer: the only element occurs m times at every position;
  // every sample sees the full remaining run, and the median-of-means is a
  // biased-sample curiosity — just require a positive finite value.
  std::vector<std::uint8_t> data(256, 'a');
  util::Rng rng(9);
  const double estimate = estimate_sum_count_log_count(data, 2, 32, 3, rng);
  EXPECT_GT(estimate, 0.0);
  EXPECT_TRUE(std::isfinite(estimate));
}

TEST(EstimateSum, ApproximatesExactSumOnStructuredData) {
  // Statistical check: averaged over seeds, the estimate of
  // S_2 = sum m_i ln m_i should land within ~25% of the exact value on
  // low-diversity data (where S is large and estimable).
  std::vector<std::uint8_t> data(1024);
  util::Rng fill(10);
  for (auto& b : data) b = static_cast<std::uint8_t>(fill.next_below(4));

  GramCounter counter(2);
  counter.add(data);
  const double exact = counter.sum_count_log_count();
  ASSERT_GT(exact, 0.0);

  double total_rel_err = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    util::Rng rng(100 + static_cast<std::uint64_t>(t));
    const double estimate =
        estimate_sum_count_log_count(data, 2, 200, 5, rng);
    total_rel_err += std::fabs(estimate - exact) / exact;
  }
  EXPECT_LT(total_rel_err / trials, 0.25);
}

TEST(EstimateEntropyVector, Width1IsAlwaysExact) {
  // |f_1| = 256 violates the estimator's |f| >> b precondition, so the
  // paper computes h_1 exactly; verify our h_1 matches the exact path bit
  // for bit.
  util::Rng fill(11);
  std::vector<std::uint8_t> data(512);
  fill.fill_bytes(data);

  util::Rng rng(12);
  const int widths[] = {1, 2};
  const EstimatorParams params{.epsilon = 0.3, .delta = 0.5};
  const auto estimated = estimate_entropy_vector(data, widths, params, rng);
  const auto exact = compute_entropy_vector(data, std::span<const int>(widths, 1));
  ASSERT_EQ(estimated.h.size(), 2u);
  EXPECT_DOUBLE_EQ(estimated.h[0], exact.h[0]);
}

TEST(EstimateEntropyVector, EstimatesStayInUnitInterval) {
  util::Rng fill(13);
  std::vector<std::uint8_t> data(1024);
  fill.fill_bytes(data);
  util::Rng rng(14);
  const auto widths = svm_preferred_widths();
  for (const double eps : {0.1, 0.25, 0.5, 1.0}) {
    for (const double delta : {0.1, 0.5, 0.9}) {
      const EstimatorParams params{.epsilon = eps, .delta = delta};
      const auto result = estimate_entropy_vector(data, widths, params, rng);
      for (const double h : result.h) {
        ASSERT_GE(h, 0.0);
        ASSERT_LE(h, 1.0);
      }
    }
  }
}

TEST(EstimateEntropyVector, TracksExactEntropyAcrossRegimes) {
  // Sweep data diversity from constant to uniform and require the
  // estimated h_3 to follow exact h_3 within a loose band (the estimator's
  // variance shrinks as entropy rises because counts concentrate at 1).
  for (const int alphabet : {2, 16, 256}) {
    util::Rng fill(20 + static_cast<std::uint64_t>(alphabet));
    std::vector<std::uint8_t> data(1024);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(fill.next_below(
          static_cast<std::uint64_t>(alphabet)));
    }
    const int widths[] = {3};
    const double exact = entropy_vector(data, widths)[0];
    util::Rng rng(30);
    const EstimatorParams params{.epsilon = 0.2, .delta = 0.25};
    const double estimated =
        estimate_entropy_vector(data, widths, params, rng).h[0];
    EXPECT_NEAR(estimated, exact, 0.15) << "alphabet " << alphabet;
  }
}

}  // namespace
}  // namespace iustitia::entropy
