file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_purge.dir/bench_ablation_purge.cc.o"
  "CMakeFiles/bench_ablation_purge.dir/bench_ablation_purge.cc.o.d"
  "bench_ablation_purge"
  "bench_ablation_purge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_purge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
