# Empty dependencies file for test_corpus_io.
# This may be replaced when dependencies are built.
