file(REMOVE_RECURSE
  "CMakeFiles/test_cdb.dir/test_cdb.cc.o"
  "CMakeFiles/test_cdb.dir/test_cdb.cc.o.d"
  "test_cdb"
  "test_cdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
