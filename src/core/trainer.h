// Offline training process (right half of Fig. 1).
//
// Builds entropy-vector datasets from a labeled file corpus under the
// paper's three training methods (Section 4.3):
//   - kWholeFile   (H_F):  entropy vector of the entire file,
//   - kFirstBytes  (H_b):  entropy vector of the first b bytes,
//   - kRandomOffset(H_b'): entropy vector of b consecutive bytes starting
//     at a random offset in [0, T] — robust to unknown application headers.
// and trains either backend on them.
#ifndef IUSTITIA_CORE_TRAINER_H_
#define IUSTITIA_CORE_TRAINER_H_

#include <span>
#include <vector>

#include "core/flow_model.h"
#include "datagen/corpus.h"
#include "ml/dataset.h"

namespace iustitia::core {

enum class TrainingMethod { kWholeFile, kFirstBytes, kRandomOffset };

const char* training_method_name(TrainingMethod m) noexcept;

struct TrainerOptions {
  Backend backend = Backend::kSvm;
  std::vector<int> widths = entropy::svm_preferred_widths();
  TrainingMethod method = TrainingMethod::kFirstBytes;
  std::size_t buffer_size = 32;       // b (ignored for kWholeFile)
  std::size_t header_threshold = 0;   // T (kRandomOffset only)
  // Extraction mode used to BUILD the dataset; a model trained on
  // estimated vectors should also classify with estimated vectors.
  bool use_estimation = false;
  entropy::EstimatorParams estimator;
  // Backend hyper-parameters.
  ml::CartParams cart;
  ml::SvmParams svm{.gamma = 50.0, .c = 1000.0};
  std::uint64_t seed = 7;
};

// Extracts one training sample's feature vector per `options` from `bytes`.
std::vector<double> training_features(std::span<const std::uint8_t> bytes,
                                      const TrainerOptions& options,
                                      util::Rng& rng);

// Builds the labeled entropy-vector dataset for a corpus.
ml::Dataset build_entropy_dataset(
    std::span<const datagen::FileSample> corpus, const TrainerOptions& options);

// Convenience: dataset construction + training in one step.
FlowNatureModel train_model(std::span<const datagen::FileSample> corpus,
                            const TrainerOptions& options);

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_TRAINER_H_
