// The online Iustitia engine: the full left-hand pipeline of Fig. 1.
//
// Per packet: hash the header to a 160-bit flow ID, consult the CDB, and
// either forward the packet to the output queue of its known class, or
// buffer its payload until b bytes are available, then extract the entropy
// vector, classify, record the label in the CDB, and forward.  Implements
// FIN/RST removal, inactivity purging, application-layer header skipping
// (threshold T with optional signature-based stripping), buffer timeouts,
// and the three-component delay accounting of Section 4.5
// (tau_hash + tau_CDBsearch + tau_b).
#ifndef IUSTITIA_CORE_ENGINE_H_
#define IUSTITIA_CORE_ENGINE_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/cdb.h"
#include "core/config.h"
#include "core/feature_extractor.h"
#include "core/flow_model.h"
#include "net/packet.h"

namespace iustitia::core {

// What the engine did with one packet.
enum class PacketAction {
  kForwarded,        // flow already classified; sent to its output queue
  kBuffered,         // flow pending; payload added to its buffer
  kClassifiedNow,    // this packet completed the buffer; flow classified
  kIgnored,          // no payload and flow unknown (e.g. bare SYN/ACK)
  kShed,             // unknown flow refused by admission sampling
                     // (overload stage 2; see runtime/overload.h)
};

// Per-classified-flow delay record (Fig. 10).
struct FlowDelayRecord {
  net::FlowKey key;
  datagen::FileClass label = datagen::FileClass::kText;
  double classified_at = 0.0;     // trace time of classification
  double tau_b = 0.0;             // buffer-fill time in trace seconds
  std::size_t packets_to_fill = 0;  // c: data packets needed to fill b
  double hash_micros = 0.0;       // measured SHA-1 time
  double cdb_micros = 0.0;        // measured CDB search time
  double extract_micros = 0.0;    // entropy extraction + inference time
  std::size_t buffered_bytes = 0; // bytes actually classified on
};

// Engine-lifetime counters.
struct EngineStats {
  std::uint64_t packets = 0;
  std::uint64_t data_packets = 0;
  std::uint64_t flows_classified = 0;
  std::uint64_t flows_timed_out = 0;   // classified on partial buffer
  std::uint64_t packets_shed = 0;      // refused by admission sampling
  std::array<std::uint64_t, 3> queue_packets{};  // per-class forwarded
};

class Iustitia {
 public:
  // The model must match the engine's buffer_size in training regime for
  // best accuracy (see core/trainer.h), but any model works mechanically.
  Iustitia(FlowNatureModel model, const EngineOptions& options);

  // Shared-model form: several shards (and the control plane's registry)
  // hold the same immutable model; the engine keeps its own extractor
  // copy so extraction state never crosses threads.
  Iustitia(std::shared_ptr<const FlowNatureModel> model,
           const EngineOptions& options);

  // Hot-swaps the model (RCU cold path; see core/model_registry.h).  The
  // CDB and pending flows are untouched: already-labelled flows keep
  // their labels, in-flight buffers classify under the new model.
  void install_model(std::shared_ptr<const FlowNatureModel> model);

  const FlowNatureModel& model() const noexcept { return *model_; }

  // Processes one packet (packets must arrive in timestamp order).
  PacketAction on_packet(const net::Packet& packet);

  // As above, and additionally reports the nature the packet was routed
  // under when the returned action is kForwarded or kClassifiedNow
  // (*label_out is left untouched otherwise).  This is the flow-splitter
  // hook: the serving runtime fans the packet out to its per-nature
  // output queue without paying a second CDB probe.
  PacketAction on_packet(const net::Packet& packet,
                         datagen::FileClass* label_out);

  // Classifies every pending flow that has been idle for the configured
  // timeout (called automatically every 1024 packets; call manually for
  // deterministic experiments).  Returns flows flushed.
  std::size_t flush_idle(double now);

  // Classifies all pending flows regardless of idleness (end of trace).
  std::size_t flush_all();

  // Label recorded for a flow, if any.
  std::optional<datagen::FileClass> label_of(const net::FlowKey& key);

  const EngineStats& stats() const noexcept { return stats_; }
  const ClassificationDatabase& cdb() const noexcept { return cdb_; }
  ClassificationDatabase& cdb() noexcept { return cdb_; }
  const std::vector<FlowDelayRecord>& delays() const noexcept {
    return delays_;
  }
  std::size_t pending_flows() const noexcept { return pending_.size(); }
  const EngineOptions& options() const noexcept { return options_; }

  // Bytes of buffering state currently held for pending flows (the
  // per-new-flow space cost discussed with Table 3).
  std::size_t pending_buffer_bytes() const noexcept;

  // Degraded-mode controls, driven by the runtime's overload ladder
  // (runtime/overload.h).  Owner-thread only, like on_packet: per-shard
  // engines are single-owner, so plain stores suffice.
  //
  // Caps the per-flow byte budget below the configured buffer_size
  // (0 restores the configured budget).  Flows classified while capped
  // use at most this many bytes — the paper's Fig. 4 cost curve keeps
  // accuracy serviceable down to b=32.
  void set_buffer_cap(std::size_t bytes) noexcept { buffer_cap_ = bytes; }
  std::size_t buffer_cap() const noexcept { return buffer_cap_; }

  // New-flow admission probability in permille (1000 = admit all).
  // Existing pending/classified flows are unaffected; refused packets
  // return PacketAction::kShed.  Deterministic per flow id, so one flow
  // is either fully admitted or fully shed while the setting holds.
  void set_admission_permille(std::uint32_t permille) noexcept {
    admission_permille_ = permille > 1000 ? 1000 : permille;
  }
  std::uint32_t admission_permille() const noexcept {
    return admission_permille_;
  }

 private:
  struct PendingFlow {
    std::vector<std::uint8_t> raw;   // bytes as received (pre-skip)
    std::size_t skip = 0;            // resolved header-skip offset
    std::size_t random_skip = 0;     // extra per-flow skip (Section 4.6)
    bool skip_resolved = false;
    double first_data_at = 0.0;
    double last_packet_at = 0.0;
    std::size_t data_packets = 0;
    double hash_micros = 0.0;        // accumulated measurement samples
    double cdb_micros = 0.0;
    std::size_t measures = 0;
  };

  // Tries to resolve the header-skip offset; returns true when resolved.
  bool resolve_skip(PendingFlow& flow);

  // Buffer target met? (raw bytes beyond the skip >= the effective
  // byte budget)
  bool buffer_full(const PendingFlow& flow) const noexcept;

  // Configured buffer_size, clamped by the degraded-mode cap.
  std::size_t effective_buffer_size() const noexcept {
    return buffer_cap_ == 0 ? options_.buffer_size
                            : std::min(buffer_cap_, options_.buffer_size);
  }

  datagen::FileClass classify_flow(const net::FlowKey& key, PendingFlow& flow,
                                   double now, bool timed_out);

  std::shared_ptr<const FlowNatureModel> model_;
  FeatureExtractor extractor_;  // per-engine copy; owns mutable Rng state
  EngineOptions options_;
  ClassificationDatabase cdb_;
  std::unordered_map<net::FlowKey, PendingFlow, net::FlowKeyHash> pending_;
  std::vector<FlowDelayRecord> delays_;
  EngineStats stats_;
  std::uint64_t packets_since_flush_ = 0;
  util::Rng rng_;  // per-flow random skip (Section 4.6 defense)
  // Degraded-mode state (owner-thread writes via the setters above).
  std::size_t buffer_cap_ = 0;              // 0 = configured budget
  std::uint32_t admission_permille_ = 1000;  // 1000 = admit every flow
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_ENGINE_H_
