// Online serving runtime: the full Fig. 1 deployment of the engine.
//
// Topology (DESIGN.md §10):
//
//   PacketSource ──▶ dispatcher thread ──▶ SPSC ring per shard
//                    (shard_of steering)        │
//                                               ▼ one pinned worker/shard
//                                        Iustitia shard (unlocked drive)
//                                               │
//                                               ▼
//                                  per-nature OutputQueues + metrics
//
// One dispatcher thread pulls packets from the source and steers each to
// its flow's shard (ShardedIustitia::shard_of — same 5-tuple, same shard,
// so per-flow packet order is preserved).  Each shard has a bounded SPSC
// ring and exactly one worker thread that owns the shard for the whole
// run and drives it through the unlocked shard() accessor: the classic
// RSS deployment, no lock on the per-packet path.  The per-packet path
// is batched (RuntimeOptions::burst): the dispatcher reads a burst from
// the source, accumulates per-shard staging buffers, and flushes each
// as one ring burst; workers drain bursts into a local array — one
// head/tail acquire/release pair per burst instead of per packet.  When a ring fills, the
// configured backpressure policy either blocks the dispatcher (lossless;
// the source feels the stall, exactly like a NIC asserting flow control)
// or counts the packet as dropped and moves on (lossy, line-rate).
//
// Lifecycle: construct → start(source) → wait() (source exhausted, rings
// drained, pending flows flushed) or stop() (early shutdown: dispatcher
// quits, workers drain what was already enqueued, then flush).  A
// Runtime is single-shot: start() may be called once; wait()/stop() are
// idempotent and safe from any thread and in any order after that.
#ifndef IUSTITIA_RUNTIME_RUNTIME_H_
#define IUSTITIA_RUNTIME_RUNTIME_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_registry.h"
#include "core/sharded_engine.h"
#include "runtime/metrics.h"
#include "runtime/overload.h"
#include "runtime/packet_source.h"
#include "runtime/spsc_ring.h"
#include "runtime/watchdog.h"
#include "util/thread_annotations.h"

namespace iustitia::runtime {

// What the dispatcher does when a shard's ring is full.
enum class BackpressurePolicy {
  kBlock,  // wait for the worker; nothing is lost, the source stalls
  kDrop,   // count the packet as dropped and keep up with the source
};

struct RuntimeOptions {
  std::size_t shards = 1;
  // Per-shard ring capacity in packets (rounded up to a power of two).
  std::size_t ring_capacity = 2048;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  // Packets moved per ring operation: the dispatcher stages up to this
  // many packets per shard and flushes them with one try_push_burst;
  // each worker drains up to this many with one try_pop_burst.  1
  // disables batching entirely (the exact single-item path, one
  // head/tail round-trip per packet) — use it when per-packet latency
  // matters more than throughput (e.g. paced low-rate replays, where a
  // staged packet can wait up to a full burst before flushing).  Values
  // are clamped to [1, ring_capacity].
  std::size_t burst = 32;
  // Per-nature output queue bound (packets; 0 = unbounded).
  std::size_t output_queue_capacity = 4096;
  // Record every Nth per-packet engine latency sample (1 = all packets).
  std::size_t latency_sample_every = 1;
  // Pin worker i to CPU (i mod hardware_concurrency).  Linux only; a
  // no-op elsewhere.  Off by default: pinning helps steady-state serving
  // but hurts on shared/oversubscribed hosts.
  bool pin_workers = false;
  // Overload shed ladder driven by ring-occupancy EWMA (see overload.h).
  OverloadOptions overload;
  // How many *consecutive* transient source failures (see
  // PacketSource::transient_error) the dispatcher retries — with the
  // ring-stall backoff ladder between attempts — before giving up and
  // treating the stream as drained.  Any successful read resets the run.
  std::size_t source_retry_limit = 64;
  // A worker (or the dispatcher) that makes no observable progress for
  // this long while work may still arrive is declared stalled: the
  // health check degrades to unhealthy(watchdog) until it moves again.
  // 0 disables the watchdog thread entirely.
  std::uint64_t watchdog_deadline_ms = 1000;
  // Debug escalation: CHECK-fail (abort) on the first detected stall
  // instead of just failing the health check.
  bool watchdog_fatal = false;
  core::EngineOptions engine;
};

// Liveness vs readiness: a running process is always *live*; it is
// *ready* only when it is keeping up.  kDegraded means the shed ladder
// is active (stage in RuntimeHealth::stage); kUnhealthy means the
// watchdog currently sees at least one stalled thread.
enum class HealthState {
  kOk,
  kDegraded,
  kUnhealthy,
};

struct RuntimeHealth {
  HealthState state = HealthState::kOk;
  ShedStage stage = ShedStage::kNormal;
  // Threads the watchdog considers stalled right now (0 when healthy or
  // when the watchdog is disabled).
  std::size_t stalled_threads = 0;
};

class Runtime {
 public:
  // Builds the sharded engine (one model per shard via the factory), the
  // rings, and the metrics registry.  No threads run until start().
  Runtime(const std::function<core::FlowNatureModel()>& model_factory,
          const RuntimeOptions& options);

  // Hot-swap form: every shard bootstraps from the registry's current
  // model and re-reads it at ring-burst boundaries (one relaxed epoch
  // load while unchanged — see core/model_registry.h).  The registry's
  // shard_count() must equal options.shards.  The control plane publishes
  // replacements into the same registry while packets flow.
  Runtime(std::shared_ptr<core::ModelRegistry> registry,
          const RuntimeOptions& options);
  ~Runtime();  // stops and joins if still running

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Spawns the shard workers and the dispatcher over `source`.  The
  // source must stay alive until wait()/stop() returns.  CHECK-fails on a
  // second call: a Runtime is single-shot.
  void start(PacketSource& source);

  // Blocks until the source is exhausted, every ring has drained, the
  // workers have exited, and pending flows are flushed.  Idempotent.
  void wait();

  // Early shutdown: the dispatcher stops reading the source (a packet it
  // is blocked on is counted as dropped), workers drain what was already
  // in their rings, then everything joins and pending flows are flushed.
  // Idempotent and safe from any thread, including while another thread
  // is inside wait().  Called before start(), it makes the eventual run
  // shut down as soon as it launches.
  void stop();

  // True between start() and the completion of wait()/stop().  The
  // threads may have finished their work already; "running" means "not
  // yet joined".
  bool running() const;

  core::ShardedIustitia& engine() noexcept { return engine_; }
  const core::ShardedIustitia& engine() const noexcept { return engine_; }

  // The registry this runtime reads models from; null when constructed
  // with the per-shard model factory (no hot-swap).
  core::ModelRegistry* model_registry() const noexcept {
    return registry_.get();
  }
  core::OutputQueues& output_queues() noexcept { return queues_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  // Convenience: metrics snapshot with the output-queue counters, the
  // registry's model identity (version + swap count), the overload /
  // health state, and the CDB occupancy totals folded in.  Safe from any
  // thread at any time.
  MetricsSnapshot snapshot() const;

  // Current readiness of the runtime: ok, degraded(<shed stage>), or
  // unhealthy(watchdog).  Safe from any thread at any time; after the
  // run ends (threads joined) it reports ok.
  RuntimeHealth health() const;
  // The /readyz wire format: "ok", "degraded(cap-buffer)",
  // "unhealthy(watchdog)", ...
  std::string health_string() const;

  const OverloadPolicy& overload() const noexcept { return overload_; }

  const RuntimeOptions& options() const noexcept { return options_; }

 private:
  // Clamps burst into [1, ring capacity] so staging buffers and ring
  // bursts always fit.
  static RuntimeOptions sanitize(RuntimeOptions options);

  // Delegation target of the registry ctor: `published` is ONE coherent
  // (model, epoch) snapshot, so the engines' bootstrap model and
  // bootstrap_epoch_ can never disagree even if a publish races
  // construction.
  Runtime(std::shared_ptr<core::ModelRegistry> registry,
          core::ModelRegistry::Published published,
          const RuntimeOptions& options);

  void build_rings();
  void dispatch_loop(PacketSource* source);
  // Flavors behind dispatch_loop: burst == 1 runs the exact single-item
  // path, burst > 1 stages per shard and flushes ring bursts.
  void dispatch_single(PacketSource* source);
  void dispatch_burst(PacketSource* source);
  void worker_loop(std::size_t shard);
  // Requires threads joined: classifies every still-pending flow and
  // folds the remaining per-nature classification counts into metrics.
  void finish_flush();
  void join_threads_locked() IUSTITIA_REQUIRES(lifecycle_mu_);

  const RuntimeOptions options_;
  // Hot-swap source (null without one).  Const pointer; the registry
  // object is internally synchronized (see core/model_registry.h).
  const std::shared_ptr<core::ModelRegistry> registry_;
  // Epoch of the model the engines were built with; each worker starts
  // its local epoch here.
  const std::uint64_t bootstrap_epoch_;
  core::ShardedIustitia engine_;
  core::OutputQueues queues_;
  MetricsRegistry metrics_;
  // Shed ladder, fed by the dispatcher (single writer) with per-flush
  // ring occupancy; workers and the control plane read the stage.
  OverloadPolicy overload_;
  // Stall detector over shards + dispatcher (heartbeat index `shards` is
  // the dispatcher).  Constructed with the runtime so health() can read
  // it from any thread; its watcher thread runs only between start() and
  // the joins in wait().
  std::unique_ptr<Watchdog> watchdog_;
  std::vector<std::unique_ptr<SpscRing<net::Packet>>> rings_;

  // Per-shard count of delay records already folded into
  // metrics (flows_by_nature).  Written only by the owning worker while
  // it runs, read by finish_flush() after join — ordered by thread join.
  std::vector<std::size_t> folded_delays_;  // analyze: escape(single-writer, read after join)

  // Only gates loop continuation; the data handoff rides on ring close()
  // and thread join, never on this flag.
  std::atomic<bool> stop_requested_{false};  // analyze: atomic(relaxed-flag)
  mutable util::Mutex lifecycle_mu_{"Runtime::lifecycle_mu_"};
  std::vector<std::thread> workers_ IUSTITIA_GUARDED_BY(lifecycle_mu_);
  std::thread dispatcher_ IUSTITIA_GUARDED_BY(lifecycle_mu_);
  bool started_ IUSTITIA_GUARDED_BY(lifecycle_mu_) = false;
  bool joined_ IUSTITIA_GUARDED_BY(lifecycle_mu_) = false;
};

}  // namespace iustitia::runtime

#endif  // IUSTITIA_RUNTIME_RUNTIME_H_
