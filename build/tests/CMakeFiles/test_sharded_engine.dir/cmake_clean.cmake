file(REMOVE_RECURSE
  "CMakeFiles/test_sharded_engine.dir/test_sharded_engine.cc.o"
  "CMakeFiles/test_sharded_engine.dir/test_sharded_engine.cc.o.d"
  "test_sharded_engine"
  "test_sharded_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sharded_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
