// CART decision tree (Breiman et al. 1984), one of the paper's two
// classification backends.
//
// Standard binary tree grown by exhaustive Gini-impurity split search with
// depth / leaf-size stopping rules, plus weakest-link (cost-complexity)
// pruning.  Pruning doubles as the paper's CART feature-selection mechanism
// (Section 4.1): trees are pruned until accuracy drops by a threshold, and
// the features surviving in the pruned trees are voted on.
#ifndef IUSTITIA_ML_CART_H_
#define IUSTITIA_ML_CART_H_

#include <cstddef>
#include <span>
#include <vector>

#include "ml/classifier.h"
#include "ml/dataset.h"

namespace iustitia::ml {

// Split-quality criterion: Gini impurity (Breiman's default) or Shannon
// entropy (information gain).
enum class SplitCriterion { kGini, kEntropy };

// Growth-control parameters.
struct CartParams {
  SplitCriterion criterion = SplitCriterion::kGini;
  std::size_t max_depth = 16;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  double min_gini_gain = 1e-9;
};

// A trained CART model.
class DecisionTree final : public Classifier {
 public:
  // Tree node; `feature < 0` marks a leaf.  Nodes are stored in a flat
  // vector and referenced by index (root at 0).
  struct Node {
    int feature = -1;         // split feature, or -1 for leaf
    double threshold = 0.0;   // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int label = 0;            // majority class at this node
    std::size_t samples = 0;  // training samples that reached this node
    std::size_t errors = 0;   // training samples not of the majority class
    double impurity = 0.0;    // Gini impurity at this node
  };

  DecisionTree() = default;

  // Fits the tree to `data`.  Throws std::invalid_argument on an empty
  // dataset.
  void train(const Dataset& data, const CartParams& params = {});

  int predict(std::span<const double> features) const override;
  int num_classes() const override { return num_classes_; }

  bool trained() const noexcept { return !nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t leaf_count() const noexcept;
  std::size_t depth() const noexcept;
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  // Collapses the internal node with the smallest cost-complexity alpha
  // into a leaf.  Returns false when the tree is a single leaf.
  bool prune_weakest_link();

  // Repeatedly prunes weakest links while accuracy on `validation` stays
  // within `max_drop` of the unpruned tree's accuracy (the paper prunes to
  // a 2% decrease).  Returns the number of pruning steps applied.
  std::size_t prune_to_accuracy(const Dataset& validation, double max_drop);

  // Distinct feature indices used by internal nodes.
  std::vector<std::size_t> features_used() const;

  // Total Gini-gain importance per feature, normalized to sum to 1.
  std::vector<double> feature_importance() const;

  // Serialization hooks (see ml/serialize.h).
  void restore(std::vector<Node> nodes, int num_classes,
               std::size_t feature_count);
  std::size_t feature_count() const noexcept { return feature_count_; }

 private:
  int build_node(const Dataset& data, std::vector<std::size_t>& rows,
                 std::size_t depth, const CartParams& params);

  // Drops unreachable nodes after a collapse, preserving preorder layout.
  void compact();

  std::vector<Node> nodes_;
  int num_classes_ = 0;
  std::size_t feature_count_ = 0;
};

// Gini impurity of a class-count vector.
double gini_impurity(std::span<const std::size_t> class_counts) noexcept;

// Shannon entropy (bits) of a class-count vector.
double entropy_impurity(std::span<const std::size_t> class_counts) noexcept;

// Impurity under the chosen criterion.
double impurity(std::span<const std::size_t> class_counts,
                SplitCriterion criterion) noexcept;

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_CART_H_
