// Golden-equivalence tests for the fused single-pass entropy kernel
// against the legacy per-width GramCounter path, plus the allocation-free
// steady-state contract the streaming engine depends on.
#include "entropy/fused_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "datagen/corpus.h"
#include "entropy/entropy_vector.h"
#include "entropy/flat_counts.h"
#include "entropy/log_lut.h"
#include "tests/alloc_hook.h"
#include "util/random.h"

namespace iustitia::entropy {
namespace {

using testhooks::alloc_calls;

std::vector<int> all_widths() { return {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}; }

std::vector<std::uint8_t> corpus_sample(datagen::FileClass cls,
                                        std::size_t size,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  return datagen::generate_file(cls, size, rng).bytes;
}

// Feeds `data` to both the fused kernel and one GramCounter per width and
// asserts full agreement: features, sums, gram totals, distinct counts,
// and every individual gram count.
void expect_golden_equal(std::span<const std::uint8_t> data,
                         const std::vector<int>& widths) {
  FusedEntropyKernel kernel(widths);
  kernel.add(data);
  std::vector<double> fused(widths.size());
  kernel.features(fused);

  for (std::size_t i = 0; i < widths.size(); ++i) {
    GramCounter counter(widths[i]);
    counter.add(data);
    ASSERT_NEAR(fused[i], normalized_entropy(counter), 1e-9)
        << "width " << widths[i];
    ASSERT_NEAR(kernel.sum_count_log_count(i), counter.sum_count_log_count(),
                1e-9)
        << "width " << widths[i];
    ASSERT_EQ(kernel.total_grams(i), counter.total_grams());
    ASSERT_EQ(kernel.distinct(i), counter.distinct());
    counter.for_each([&](GramKey key, std::uint64_t count) {
      ASSERT_EQ(kernel.count(i, key), count) << "width " << widths[i];
    });
  }
}

TEST(LogLut, MatchesDirectComputation) {
  EXPECT_EQ(n_ln_n(0), 0.0);
  for (const std::uint64_t n :
       {std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
        std::uint64_t{100}, kNLogNTableSize - 1, kNLogNTableSize,
        kNLogNTableSize + 17, std::uint64_t{1} << 32}) {
    const double v = static_cast<double>(n);
    // Bit-identical, not just close: the table stores the same expression.
    // NOLINTNEXTLINE(log2-domain): every n in the list above is >= 1.
    EXPECT_EQ(n_ln_n(n), v * std::log(v)) << "n=" << n;
  }
}

TEST(FlatCounts, IncrementReturnsPreviousCount) {
  FlatCounts table;
  const GramKey key = 0xAB;
  EXPECT_EQ(table.count(key), 0u);
  EXPECT_EQ(table.increment(key), 0u);
  EXPECT_EQ(table.increment(key), 1u);
  EXPECT_EQ(table.increment(key), 2u);
  EXPECT_EQ(table.count(key), 3u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatCounts, KeyZeroIsAValidKey) {
  FlatCounts table;
  EXPECT_EQ(table.count(0), 0u);
  EXPECT_EQ(table.increment(0), 0u);
  EXPECT_EQ(table.count(0), 1u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatCounts, GrowsPastInitialCapacityWithoutLosingCounts) {
  FlatCounts table;
  constexpr std::uint64_t kKeys = 10000;
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t k = 0; k < kKeys; ++k) {
      table.increment((static_cast<GramKey>(k) << 64) | (k * 0x9E3779B9));
    }
  }
  EXPECT_EQ(table.size(), kKeys);
  EXPECT_GE(table.capacity(), kKeys);
  std::uint64_t total = 0;
  table.for_each([&](GramKey, std::uint32_t count) {
    EXPECT_EQ(count, 3u);
    total += count;
  });
  EXPECT_EQ(total, 3 * kKeys);
}

TEST(FlatCounts, EpochResetInvalidatesAllEntriesAndKeepsCapacity) {
  FlatCounts table;
  for (std::uint64_t k = 0; k < 5000; ++k) table.increment(k);
  const std::size_t grown = table.capacity();
  table.reset();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.capacity(), grown);
  for (std::uint64_t k = 0; k < 5000; ++k) EXPECT_EQ(table.count(k), 0u);
  EXPECT_EQ(table.increment(42), 0u);  // counts restart from scratch
  EXPECT_EQ(table.count(42), 1u);
}

TEST(FusedKernel, RejectsInvalidWidths) {
  const std::vector<int> zero = {1, 0};
  const std::vector<int> wide = {17};
  EXPECT_THROW(FusedEntropyKernel{std::span<const int>(zero)},
               std::invalid_argument);
  EXPECT_THROW(FusedEntropyKernel{std::span<const int>(wide)},
               std::invalid_argument);
}

TEST(FusedKernel, EmptyAndTinyInputs) {
  FusedEntropyKernel kernel(all_widths());
  std::array<double, 10> out{};
  kernel.features(out);
  for (const double h : out) EXPECT_EQ(h, 0.0);
  // Three bytes: widths 1..3 have grams, the rest stay empty.
  const std::array<std::uint8_t, 3> tiny = {'a', 'b', 'c'};
  kernel.add(tiny);
  EXPECT_EQ(kernel.total_grams(0), 3u);
  EXPECT_EQ(kernel.total_grams(2), 1u);
  EXPECT_EQ(kernel.total_grams(3), 0u);
  EXPECT_EQ(kernel.total_grams(9), 0u);
}

TEST(FusedKernel, GoldenEquivalenceAcrossCorpora) {
  for (const datagen::FileClass cls :
       {datagen::FileClass::kText, datagen::FileClass::kBinary,
        datagen::FileClass::kEncrypted}) {
    const auto data = corpus_sample(cls, 4096, 0xC0FFEE);
    SCOPED_TRACE(datagen::class_name(cls));
    expect_golden_equal(data, all_widths());
  }
}

TEST(FusedKernel, GoldenEquivalenceOnSelectedFeatureSets) {
  const auto data = corpus_sample(datagen::FileClass::kBinary, 2048, 99);
  expect_golden_equal(data, svm_preferred_widths());
  expect_golden_equal(data, cart_preferred_widths());
  expect_golden_equal(data, {10, 1, 5});  // order preserved, non-monotone
  expect_golden_equal(data, {16});        // max rolling-key width
}

// Adversarial packetizations: the kernel must count grams across add()
// boundaries exactly like a GramCounter fed the same chunks.
TEST(FusedKernel, AdversarialPacketizationsMatchOneShot) {
  const auto widths = all_widths();
  const auto data = corpus_sample(datagen::FileClass::kText, 1531, 5);

  FusedEntropyKernel whole(widths);
  whole.add(data);
  std::vector<double> expected(widths.size());
  whole.features(expected);

  // Chunk sizes: single bytes, width-1-sized feeds for every width, a
  // prime stride, and everything at once.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{2},
                                  std::size_t{4}, std::size_t{9},
                                  std::size_t{7}, data.size()}) {
    FusedEntropyKernel chunked(widths);
    chunked.add({});  // leading empty span must be a no-op
    std::size_t at = 0;
    while (at < data.size()) {
      const std::size_t take = std::min(chunk, data.size() - at);
      chunked.add(std::span<const std::uint8_t>(data.data() + at, take));
      chunked.add({});  // interleaved empty spans must be no-ops
      at += take;
    }
    std::vector<double> got(widths.size());
    chunked.features(got);
    for (std::size_t i = 0; i < widths.size(); ++i) {
      ASSERT_NEAR(got[i], expected[i], 1e-9)
          << "chunk " << chunk << " width " << widths[i];
      ASSERT_EQ(chunked.total_grams(i), whole.total_grams(i));
      ASSERT_EQ(chunked.distinct(i), whole.distinct(i));
    }
    ASSERT_EQ(chunked.total_bytes(), whole.total_bytes());
  }
}

// The block-wise inner loop (add_block, kBlockBytes at a time with probe
// prefetch) must be bit-identical to the legacy per-byte path at every
// boundary shape: below one block (pure tail loop), exactly one block
// (pure block loop), one past (block + 1-byte tail), and multi-block
// with and without a tail.  Empty input stays a no-op.
TEST(FusedKernel, GoldenEquivalenceAtBlockBoundaries) {
  constexpr std::size_t kB = FusedEntropyKernel::kBlockBytes;
  for (const std::size_t size :
       {std::size_t{0}, kB - 1, kB, kB + 1, 2 * kB, 2 * kB + 7,
        5 * kB - 1}) {
    const auto data =
        corpus_sample(datagen::FileClass::kBinary, size, 0xB10C + size);
    ASSERT_EQ(data.size(), size);
    SCOPED_TRACE(size);
    expect_golden_equal(data, all_widths());
  }
}

// Feeding in block-sized chunks must agree with one-shot: the rolling
// key must survive a block boundary that is also an add() boundary.
TEST(FusedKernel, BlockSizedChunksMatchOneShot) {
  constexpr std::size_t kB = FusedEntropyKernel::kBlockBytes;
  const auto widths = all_widths();
  const auto data = corpus_sample(datagen::FileClass::kText, 6 * kB, 77);

  FusedEntropyKernel whole(widths);
  whole.add(data);
  FusedEntropyKernel chunked(widths);
  for (std::size_t at = 0; at < data.size(); at += kB) {
    chunked.add(std::span<const std::uint8_t>(data.data() + at, kB));
  }

  std::vector<double> expected(widths.size());
  std::vector<double> got(widths.size());
  whole.features(expected);
  chunked.features(got);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ASSERT_EQ(got[i], expected[i]) << "width " << widths[i];
    ASSERT_EQ(chunked.total_grams(i), whole.total_grams(i));
    ASSERT_EQ(chunked.distinct(i), whole.distinct(i));
  }
}

// Strict bit-identity of the block path against the per-byte path: a
// kernel fed one byte per add() can never enter add_block (a full block
// never accumulates inside a single call), so it runs the legacy
// per-byte loop exclusively.  The sums must be EXACTLY equal — the block
// loop keeps every probe and every +/- in stream order per width, so no
// float reassociation is allowed to creep in.
TEST(FusedKernel, BlockPathBitIdenticalToPerBytePath) {
  const auto widths = all_widths();
  const auto data = corpus_sample(datagen::FileClass::kEncrypted, 2048, 42);

  FusedEntropyKernel block_path(widths);
  block_path.add(data);
  FusedEntropyKernel byte_path(widths);
  for (const std::uint8_t b : data) {
    byte_path.add(std::span<const std::uint8_t>(&b, 1));
  }

  std::vector<double> blockwise(widths.size());
  std::vector<double> bytewise(widths.size());
  block_path.features(blockwise);
  byte_path.features(bytewise);
  for (std::size_t i = 0; i < widths.size(); ++i) {
    ASSERT_EQ(blockwise[i], bytewise[i]) << "width " << widths[i];
    ASSERT_EQ(block_path.sum_count_log_count(i),
              byte_path.sum_count_log_count(i))
        << "width " << widths[i];
    ASSERT_EQ(block_path.total_grams(i), byte_path.total_grams(i));
    ASSERT_EQ(block_path.distinct(i), byte_path.distinct(i));
  }
}

TEST(FusedKernel, ResetReusesTablesAcrossFlows) {
  const auto widths = all_widths();
  const auto first = corpus_sample(datagen::FileClass::kText, 4096, 1);
  const auto second = corpus_sample(datagen::FileClass::kEncrypted, 4096, 2);

  FusedEntropyKernel fresh(widths);
  fresh.add(second);
  std::vector<double> expected(widths.size());
  fresh.features(expected);

  FusedEntropyKernel reused(widths);
  for (int cycle = 0; cycle < 3; ++cycle) {
    reused.add(first);
    reused.reset();
    EXPECT_EQ(reused.total_bytes(), 0u);
    reused.add(second);
    std::vector<double> got(widths.size());
    reused.features(got);
    for (std::size_t i = 0; i < widths.size(); ++i) {
      ASSERT_NEAR(got[i], expected[i], 1e-9) << "cycle " << cycle;
      ASSERT_EQ(reused.distinct(i), fresh.distinct(i));
    }
    reused.reset();
  }
}

TEST(FusedKernel, ComputeEntropyVectorMatchesLegacyPath) {
  for (const std::size_t size : {std::size_t{64}, std::size_t{1024},
                                 std::size_t{8192}}) {
    const auto data =
        corpus_sample(datagen::FileClass::kBinary, size, size);
    const auto widths = full_feature_widths();
    const auto fused = compute_entropy_vector(data, widths);
    const auto legacy = compute_entropy_vector_legacy(data, widths);
    ASSERT_EQ(fused.h.size(), legacy.h.size());
    for (std::size_t i = 0; i < fused.h.size(); ++i) {
      ASSERT_NEAR(fused.h[i], legacy.h[i], 1e-9)
          << "size " << size << " width " << widths[i];
    }
    ASSERT_EQ(fused.space_bytes, legacy.space_bytes);
  }
}

TEST(FusedKernel, SpaceAccountingMatchesGramCounters) {
  const auto data = corpus_sample(datagen::FileClass::kText, 2048, 11);
  const auto widths = all_widths();
  FusedEntropyKernel kernel(widths);
  kernel.add(data);
  std::size_t legacy_space = 0;
  for (const int w : widths) {
    GramCounter counter(w);
    counter.add(data);
    legacy_space += counter.space_bytes();
  }
  EXPECT_EQ(kernel.space_bytes(), legacy_space);
  // The flat tables really exist: resident accounting covers them.
  EXPECT_GE(kernel.resident_bytes(), kernel.space_bytes() / 2);
}

// The contract the streaming engine relies on: after warm-up, extraction
// cycles (add + features + reset) perform zero heap allocations.
TEST(FusedKernelAllocation, SteadyStateExtractionIsAllocationFree) {
  const auto widths = full_feature_widths();
  FusedEntropyKernel kernel(widths);
  util::Rng rng(7);
  std::vector<std::uint8_t> high(16384), low(16384);
  rng.fill_bytes(high);
  for (std::size_t i = 0; i < low.size(); ++i) {
    low[i] = static_cast<std::uint8_t>(i % 7);
  }
  std::array<double, 10> out{};

  // Warm-up: grow every width's table to its working-set capacity on both
  // payload shapes.
  kernel.add(high);
  kernel.features(out);
  kernel.reset();
  kernel.add(low);
  kernel.features(out);
  kernel.reset();

  const std::size_t before = alloc_calls();
  for (int round = 0; round < 5; ++round) {
    kernel.add(high);
    kernel.features(out);
    kernel.reset();
    kernel.add(low);
    kernel.features(out);
    kernel.reset();
  }
  const std::size_t after = alloc_calls();
  EXPECT_EQ(after, before)
      << "steady-state extraction cycles must not allocate";
}

// Same contract one layer up: a pooled StreamingEntropyVector fed
// packet-sized chunks, snapshotted via the span-based features().
TEST(FusedKernelAllocation, StreamingFacadeSteadyStateIsAllocationFree) {
  const auto widths = svm_preferred_widths();
  StreamingEntropyVector streaming(widths);
  util::Rng rng(13);
  std::vector<std::uint8_t> payload(4096);
  rng.fill_bytes(payload);
  std::array<double, 4> out{};

  streaming.add(payload);
  streaming.features(out);
  streaming.reset();

  const std::size_t before = alloc_calls();
  for (int round = 0; round < 5; ++round) {
    for (std::size_t at = 0; at < payload.size(); at += 512) {
      streaming.add(
          std::span<const std::uint8_t>(payload.data() + at, 512));
    }
    streaming.features(out);
    streaming.reset();
  }
  EXPECT_EQ(alloc_calls(), before);
}

}  // namespace
}  // namespace iustitia::entropy
