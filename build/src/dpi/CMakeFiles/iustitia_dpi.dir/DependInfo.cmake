
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpi/aho_corasick.cc" "src/dpi/CMakeFiles/iustitia_dpi.dir/aho_corasick.cc.o" "gcc" "src/dpi/CMakeFiles/iustitia_dpi.dir/aho_corasick.cc.o.d"
  "/root/repo/src/dpi/signature_set.cc" "src/dpi/CMakeFiles/iustitia_dpi.dir/signature_set.cc.o" "gcc" "src/dpi/CMakeFiles/iustitia_dpi.dir/signature_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/iustitia_util.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/iustitia_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
