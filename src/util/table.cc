#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace iustitia::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::render(std::ostream& os) const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());

  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell;
      if (c + 1 < columns) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };

  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < columns; ++c) {
    total += widths[c] + (c + 1 < columns ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::render_csv(std::ostream& os) const {
  auto emit_cell = [&](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      os << cell;
      return;
    }
    os << '"';
    for (const char ch : cell) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      emit_cell(row[c]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt(fraction * 100.0, decimals) + "%";
}

std::string fmt_bytes(double bytes) {
  if (bytes < 1024.0) return fmt(bytes, 0) + " B";
  if (bytes < 1024.0 * 1024.0) return fmt(bytes / 1024.0, 2) + " KB";
  return fmt(bytes / (1024.0 * 1024.0), 2) + " MB";
}

std::string fmt_seconds(double seconds) {
  if (seconds < 1e-3) return fmt(seconds * 1e6, 1) + " us";
  if (seconds < 1.0) return fmt(seconds * 1e3, 2) + " ms";
  return fmt(seconds, 3) + " s";
}

std::string bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto filled =
      static_cast<std::size_t>(std::lround(fraction * static_cast<double>(width)));
  return std::string(filled, '#') + std::string(width - filled, '.');
}

}  // namespace iustitia::util
