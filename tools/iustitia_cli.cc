// iustitia — command-line front end for the library.
//
// Subcommands:
//   gen-corpus <dir> [--files N] [--seed S] [--min-size B] [--max-size B]
//       Synthesize a labeled corpus as real files under <dir>/{text,
//       binary,encrypted}/.
//   train <corpus-dir> <model-file> [--backend cart|svm] [--buffer B]
//         [--method hf|hb|hbp] [--threshold T] [--gamma G] [--c C]
//       Train a flow-nature model on a labeled directory tree and save it.
//   classify <model-file> <file>...
//       Classify files (their first-buffer window) with a saved model.
//   gen-trace <out.pcap> [--packets N] [--seed S] [--duration SEC]
//       Synthesize a calibrated gateway trace as a standard pcap.
//   analyze <model-file> <trace.pcap> [--buffer B]
//       Replay a pcap through the online engine and summarize flows.
//   replay <model-file> <trace.pcap> [--shards N] [--burst N] [--pps R]
//          [--backpressure block|drop] [--ring N] [--buffer B] [--json]
//       Serve a pcap through the online runtime (dispatcher + pinned shard
//       workers + per-nature output queues) and print live-metrics report.
//   serve <model-file> <trace.pcap> [replay flags] [--port P]
//         [--bind ADDR] [--port-file PATH] [--once 1]
//       replay plus the control plane: an admin HTTP server (/healthz,
//       /readyz, /metrics, /stats.json, GET+POST /failpoints, POST /model
//       hot-swap, POST /quitquitquit) over a live runtime.  Lingers after
//       the trace ends until quit or SIGINT/SIGTERM so probes and swaps
//       never race replay end.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "appproto/trace_headers.h"
#include "core/engine.h"
#include "core/model_bundle.h"
#include "core/model_registry.h"
#include "core/trainer.h"
#include "ctrl/admin.h"
#include "ctrl/signal.h"
#include "datagen/corpus_io.h"
#include "net/pcap.h"
#include "net/trace_gen.h"
#include "runtime/runtime.h"
#include "util/failpoint.h"
#include "util/table.h"
#include "util/timer.h"

using namespace iustitia;

namespace {

// Minimal flag parser: positional args plus --key value pairs.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  std::string flag(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
  long long flag_int(const std::string& key, long long fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atoll(it->second.c_str());
  }
  double flag_double(const std::string& key, double fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : std::atof(it->second.c_str());
  }
};

Args parse_args(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0 && i + 1 < argc) {
      args.flags[token.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

int usage() {
  std::cerr <<
      "usage: iustitia <command> ...\n"
      "  gen-corpus <dir> [--files N] [--seed S] [--min-size B] "
      "[--max-size B]\n"
      "  train <corpus-dir> <model-file> [--backend cart|svm] [--buffer B]\n"
      "        [--method hf|hb|hbp] [--threshold T] [--gamma G] [--c C]\n"
      "        [--meta 'VERSION free-form provenance'] [--format bundle|raw]\n"
      "  classify <model-file> <file>...\n"
      "  gen-trace <out.pcap> [--packets N] [--seed S] [--duration SEC]\n"
      "  analyze <model-file> <trace.pcap> [--buffer B]\n"
      "  replay <model-file> <trace.pcap> [--shards N] [--burst N] "
      "[--pps R]\n"
      "         [--backpressure block|drop] [--ring N] [--buffer B] "
      "[--json]\n"
      "         [--cdb-max N] [--overload 0|1] [--watchdog-ms MS]\n"
      "         [--watchdog-fatal 0|1] [--failpoints SPEC]\n"
      "  serve <model-file> <trace.pcap> [replay flags] [--port P]\n"
      "        [--bind ADDR] [--port-file PATH] [--once 1]\n";
  return 2;
}

int cmd_gen_corpus(const Args& args) {
  if (args.positional.empty()) return usage();
  datagen::CorpusOptions options;
  options.files_per_class =
      static_cast<std::size_t>(args.flag_int("files", 100));
  options.seed = static_cast<std::uint64_t>(args.flag_int("seed", 1));
  options.min_size = static_cast<std::size_t>(args.flag_int("min-size", 2048));
  options.max_size =
      static_cast<std::size_t>(args.flag_int("max-size", 16384));
  const auto corpus = datagen::build_corpus(options);
  datagen::save_corpus(corpus, args.positional[0]);
  std::cout << "wrote " << corpus.size() << " files under "
            << args.positional[0] << "/{text,binary,encrypted}/\n";
  return 0;
}

int cmd_train(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto corpus = datagen::load_corpus(args.positional[0]);
  std::cout << "loaded " << corpus.size() << " labeled files\n";

  core::TrainerOptions options;
  const std::string backend = args.flag("backend", "svm");
  options.backend =
      backend == "cart" ? core::Backend::kCart : core::Backend::kSvm;
  options.widths = options.backend == core::Backend::kCart
                       ? entropy::cart_preferred_widths()
                       : entropy::svm_preferred_widths();
  const std::string method = args.flag("method", "hb");
  options.method = method == "hf"    ? core::TrainingMethod::kWholeFile
                   : method == "hbp" ? core::TrainingMethod::kRandomOffset
                                     : core::TrainingMethod::kFirstBytes;
  options.buffer_size = static_cast<std::size_t>(args.flag_int("buffer", 32));
  options.header_threshold =
      static_cast<std::size_t>(args.flag_int("threshold", 0));
  options.svm.gamma = args.flag_double("gamma", 50.0);
  options.svm.c = args.flag_double("c", 1000.0);

  const core::FlowNatureModel model = core::train_model(corpus, options);
  std::ofstream out(args.positional[1], std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << args.positional[1] << '\n';
    return 1;
  }
  const std::string format = args.flag("format", "bundle");
  if (format == "raw") {
    // Pre-bundle artifact format; every loader still auto-detects it.
    model.save(out);
  } else if (format == "bundle") {
    // Default metadata: "v1 <backend> b=<buffer>" — first token is the
    // operator-facing version reported by /metrics after a hot-swap.
    const std::string meta = args.flag(
        "meta", std::string("v1 ") + core::backend_name(model.backend()) +
                    " b=" + std::to_string(options.buffer_size));
    core::save_model_bundle(model, meta, out);
  } else {
    std::cerr << "unknown --format '" << format
              << "' (expected bundle or raw)\n";
    return 2;
  }
  std::cout << "trained " << core::backend_name(model.backend())
            << " (method " << core::training_method_name(options.method)
            << ", b=" << options.buffer_size << ") -> " << args.positional[1]
            << " (" << model.model_space_bytes() << " model bytes, "
            << format << " format)\n";
  return 0;
}

int cmd_classify(const Args& args) {
  if (args.positional.size() < 2) return usage();
  std::ifstream in(args.positional[0], std::ios::binary);
  if (!in) {
    std::cerr << "cannot read model " << args.positional[0] << '\n';
    return 1;
  }
  core::FlowNatureModel model = core::load_model_any(in);

  util::Table table({"file", "size", "nature", "h-vector"});
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    const auto bytes = datagen::read_file(args.positional[i], 65536);
    // Classify the same window size the model was trained on.
    const std::size_t window =
        model.training_buffer_size() == 0
            ? bytes.size()
            : std::min(model.training_buffer_size(), bytes.size());
    const core::Classification result = model.classify(
        std::span<const std::uint8_t>(bytes.data(), window));
    std::string h;
    for (const double v : result.features) {
      if (!h.empty()) h += ' ';
      h += util::fmt(v, 3);
    }
    table.add_row({args.positional[i],
                   util::fmt_bytes(static_cast<double>(bytes.size())),
                   datagen::class_name(result.label), h});
  }
  table.render(std::cout);
  return 0;
}

int cmd_gen_trace(const Args& args) {
  if (args.positional.empty()) return usage();
  net::TraceOptions options;
  options.header_source = appproto::standard_header_source();
  options.target_packets =
      static_cast<std::size_t>(args.flag_int("packets", 100000));
  options.seed = static_cast<std::uint64_t>(args.flag_int("seed", 1));
  options.duration_seconds = args.flag_double("duration", 10.0);
  const net::Trace trace = net::generate_trace(options);
  std::ofstream out(args.positional[0], std::ios::binary);
  if (!out) {
    std::cerr << "cannot write " << args.positional[0] << '\n';
    return 1;
  }
  net::PcapWriter writer(out);
  for (const net::Packet& packet : trace.packets) writer.write(packet);
  std::cout << "wrote " << writer.packets_written() << " packets ("
            << trace.truth.size() << " flows, "
            << util::fmt(trace.duration_seconds, 1) << "s) to "
            << args.positional[0] << '\n';
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.size() < 2) return usage();
  std::ifstream model_in(args.positional[0], std::ios::binary);
  if (!model_in) {
    std::cerr << "cannot read model " << args.positional[0] << '\n';
    return 1;
  }
  core::FlowNatureModel model = core::load_model_any(model_in);

  std::ifstream pcap_in(args.positional[1], std::ios::binary);
  if (!pcap_in) {
    std::cerr << "cannot read pcap " << args.positional[1] << '\n';
    return 1;
  }
  core::EngineOptions engine_options;
  engine_options.buffer_size =
      static_cast<std::size_t>(args.flag_int("buffer", 32));
  core::Iustitia engine(std::move(model), engine_options);
  net::PcapReader reader(pcap_in);
  while (auto packet = reader.next()) engine.on_packet(*packet);
  engine.flush_all();

  std::size_t per_class[3] = {};
  for (const core::FlowDelayRecord& record : engine.delays()) {
    ++per_class[static_cast<int>(record.label)];
  }
  std::cout << "packets: " << reader.packets_read()
            << "  flows classified: " << engine.stats().flows_classified
            << '\n';
  util::Table table({"nature", "flows"});
  static constexpr const char* kNames[3] = {"text", "binary", "encrypted"};
  for (int c = 0; c < 3; ++c) {
    table.add_row({kNames[c], std::to_string(per_class[c])});
  }
  table.render(std::cout);
  return 0;
}

// Flags shared by replay and serve.  Returns 0 on success, a usage exit
// code otherwise.
int parse_runtime_flags(const Args& args, runtime::RuntimeOptions& options,
                        std::string& policy) {
  options.shards = static_cast<std::size_t>(args.flag_int("shards", 1));
  options.ring_capacity = static_cast<std::size_t>(args.flag_int("ring", 2048));
  options.burst = static_cast<std::size_t>(args.flag_int("burst", 1));
  if (options.burst == 0) {
    std::cerr << "--burst must be at least 1\n";
    return 2;
  }
  policy = args.flag("backpressure", "block");
  if (policy != "block" && policy != "drop") {
    std::cerr << "unknown --backpressure '" << policy
              << "' (expected block or drop)\n";
    return 2;
  }
  options.backpressure = policy == "drop"
                             ? runtime::BackpressurePolicy::kDrop
                             : runtime::BackpressurePolicy::kBlock;
  options.pin_workers = args.flag_int("pin", 0) != 0;
  options.engine.buffer_size =
      static_cast<std::size_t>(args.flag_int("buffer", 32));
  // Robustness knobs (DESIGN.md §12).
  options.engine.cdb.max_records =
      static_cast<std::size_t>(args.flag_int("cdb-max", 0));
  options.overload.enabled = args.flag_int("overload", 0) != 0;
  options.watchdog_deadline_ms =
      static_cast<std::uint64_t>(args.flag_int("watchdog-ms", 1000));
  options.watchdog_fatal = args.flag_int("watchdog-fatal", 0) != 0;
  // --failpoints arms the same registry the IUSTITIA_FAILPOINTS env var
  // and POST /failpoints feed; a bad spec is a usage error.
  const std::string failpoints = args.flag("failpoints", "");
  if (!failpoints.empty()) {
    const std::string error = util::failpoints_configure(failpoints);
    if (!error.empty()) {
      std::cerr << "bad --failpoints spec: " << error << '\n';
      return 2;
    }
  }
  return 0;
}

// Accept both `--json 1` (flag parser eats a value) and bare trailing
// `--json` (lands in positional).
bool json_requested(const Args& args) {
  return (args.flags.count("json") != 0 && args.flag("json", "1") != "0") ||
         std::count(args.positional.begin(), args.positional.end(),
                    "--json") > 0;
}

void print_run_report(const runtime::MetricsSnapshot& snap, double seconds,
                      const runtime::RuntimeOptions& options,
                      const std::string& policy, bool json) {
  if (json) {
    std::cout << snap.json();
    return;
  }
  std::cout << snap.text_report();
  const double pps =
      seconds > 0.0 ? static_cast<double>(snap.packets_in) / seconds : 0.0;
  std::cout << "  replayed " << snap.packets_in << " packets in "
            << util::fmt(seconds, 3) << "s (" << util::fmt(pps / 1e3, 1)
            << " kpps, " << options.shards << " shard"
            << (options.shards == 1 ? "" : "s") << ", burst "
            << options.burst << ", " << policy << " backpressure)\n";
}

int cmd_replay(const Args& args) {
  if (args.positional.size() < 2) return usage();
  std::ifstream model_in(args.positional[0], std::ios::binary);
  if (!model_in) {
    std::cerr << "cannot read model " << args.positional[0] << '\n';
    return 1;
  }
  const core::FlowNatureModel model = core::load_model_any(model_in);

  std::ifstream pcap_in(args.positional[1], std::ios::binary);
  if (!pcap_in) {
    std::cerr << "cannot read pcap " << args.positional[1] << '\n';
    return 1;
  }

  runtime::RuntimeOptions options;
  std::string policy;
  if (const int rc = parse_runtime_flags(args, options, policy); rc != 0) {
    return rc;
  }

  runtime::Runtime rt([&model] { return model; }, options);
  runtime::PcapReplaySource source(pcap_in, args.flag_double("pps", 0.0));

  // Ctrl-C / SIGTERM: stop reading the source, drain what is enqueued,
  // and still print the final metrics report below.
  ctrl::SignalDrain drain([&rt] { rt.stop(); });

  const util::Stopwatch watch;
  rt.start(source);
  rt.wait();
  const double seconds = watch.elapsed_seconds();

  const runtime::MetricsSnapshot snap = rt.snapshot();
  print_run_report(snap, seconds, options, policy, json_requested(args));
  if (drain.triggered()) {
    std::cerr << "note: interrupted; metrics cover the drained prefix\n";
  }
  if (source.truncated()) {
    std::cerr << "note: capture ended on a truncated record; replayed the "
                 "complete prefix\n";
  }
  rt.output_queues().drain_all();
  return 0;
}

int cmd_serve(const Args& args) {
  if (args.positional.size() < 2) return usage();
  std::ifstream model_in(args.positional[0], std::ios::binary);
  if (!model_in) {
    std::cerr << "cannot read model " << args.positional[0] << '\n';
    return 1;
  }
  std::string metadata;
  core::FlowNatureModel model = core::load_model_any(model_in, &metadata);

  std::ifstream pcap_in(args.positional[1], std::ios::binary);
  if (!pcap_in) {
    std::cerr << "cannot read pcap " << args.positional[1] << '\n';
    return 1;
  }

  runtime::RuntimeOptions options;
  std::string policy;
  if (const int rc = parse_runtime_flags(args, options, policy); rc != 0) {
    return rc;
  }

  const auto registry = std::make_shared<core::ModelRegistry>(
      options.shards,
      std::make_shared<const core::FlowNatureModel>(std::move(model)),
      core::model_version_of(metadata));
  runtime::Runtime rt(registry, options);
  runtime::PcapReplaySource source(pcap_in, args.flag_double("pps", 0.0));

  ctrl::HttpServer::Options http;
  http.bind_address = args.flag("bind", "127.0.0.1");
  http.port = static_cast<std::uint16_t>(args.flag_int("port", 0));
  ctrl::AdminServer admin(&rt, registry, http);
  admin.start();
  std::cerr << "admin: http://" << http.bind_address << ":" << admin.port()
            << " (/healthz /readyz /metrics /stats.json /failpoints /model "
               "/quitquitquit)\n";
  const std::string port_file = args.flag("port-file", "");
  if (!port_file.empty()) {
    std::ofstream pf(port_file);
    pf << admin.port() << '\n';
  }

  // A signal and POST /quitquitquit land on the same latch; either way
  // the drain below runs exactly once on this thread.
  ctrl::SignalDrain drain([&admin] { admin.notify_quit(); });

  const util::Stopwatch watch;
  rt.start(source);
  if (args.flag_int("once", 0) != 0) {
    // CI/one-shot mode: exit as soon as the trace has drained (a signal
    // or /quitquitquit still cuts the replay short via the latch...).
    std::thread waiter([&rt, &admin] {
      rt.wait();
      admin.notify_quit();
    });
    admin.wait_for_quit();
    rt.stop();
    waiter.join();
  } else {
    // Serving mode: the runtime may finish the trace long before the
    // operator is done probing /metrics; linger until told to quit.
    admin.wait_for_quit();
    rt.stop();
  }
  const double seconds = watch.elapsed_seconds();

  const runtime::MetricsSnapshot snap = rt.snapshot();
  print_run_report(snap, seconds, options, policy, json_requested(args));
  rt.output_queues().drain_all();
  admin.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv, 2);
  try {
    if (command == "gen-corpus") return cmd_gen_corpus(args);
    if (command == "train") return cmd_train(args);
    if (command == "classify") return cmd_classify(args);
    if (command == "gen-trace") return cmd_gen_trace(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "replay") return cmd_replay(args);
    if (command == "serve") return cmd_serve(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return usage();
}
