#include "ml/serialize.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/crc32.h"

namespace iustitia::ml {

namespace {

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  if (!(is >> token) || token != expected) {
    throw std::runtime_error("model parse error: expected '" + expected +
                             "', got '" + token + "'");
  }
}

}  // namespace

void save_tree(const DecisionTree& tree, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "cart-v1 " << tree.num_classes() << ' ' << tree.feature_count() << ' '
     << tree.node_count() << '\n';
  for (const auto& node : tree.nodes()) {
    os << node.feature << ' ' << node.threshold << ' ' << node.left << ' '
       << node.right << ' ' << node.label << ' ' << node.samples << ' '
       << node.errors << ' ' << node.impurity << '\n';
  }
}

DecisionTree load_tree(std::istream& is) {
  expect_token(is, "cart-v1");
  int num_classes = 0;
  std::size_t feature_count = 0, node_count = 0;
  if (!(is >> num_classes >> feature_count >> node_count)) {
    throw std::runtime_error("model parse error: cart header");
  }
  std::vector<DecisionTree::Node> nodes(node_count);
  for (auto& node : nodes) {
    if (!(is >> node.feature >> node.threshold >> node.left >> node.right >>
          node.label >> node.samples >> node.errors >> node.impurity)) {
      throw std::runtime_error("model parse error: cart node");
    }
  }
  DecisionTree tree;
  tree.restore(std::move(nodes), num_classes, feature_count);
  return tree;
}

namespace {

const char* kernel_name(KernelType kernel) {
  switch (kernel) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "poly";
  }
  return "?";
}

void save_binary_svm(const BinarySvm& svm, std::ostream& os) {
  const SvmParams& p = svm.params();
  os << "svm " << kernel_name(p.kernel) << ' ' << p.gamma << ' ' << p.coef0
     << ' ' << p.degree << ' ' << p.c << ' ' << svm.bias() << ' '
     << svm.support_vector_count() << '\n';
  const auto& svs = svm.support_vectors();
  const auto& coefs = svm.coefficients();
  for (std::size_t i = 0; i < svs.size(); ++i) {
    os << coefs[i];
    for (const double v : svs[i]) os << ' ' << v;
    os << '\n';
  }
}

BinarySvm load_binary_svm(std::istream& is, std::size_t feature_count) {
  expect_token(is, "svm");
  std::string kernel_token;
  SvmParams params;
  double bias = 0.0;
  std::size_t sv_count = 0;
  if (!(is >> kernel_token >> params.gamma >> params.coef0 >> params.degree >>
        params.c >> bias >> sv_count)) {
    throw std::runtime_error("model parse error: svm header");
  }
  params.kernel = kernel_token == "rbf"    ? KernelType::kRbf
                  : kernel_token == "poly" ? KernelType::kPolynomial
                                           : KernelType::kLinear;
  std::vector<std::vector<double>> svs(sv_count);
  std::vector<double> coefs(sv_count);
  for (std::size_t i = 0; i < sv_count; ++i) {
    if (!(is >> coefs[i])) {
      throw std::runtime_error("model parse error: svm coefficient");
    }
    svs[i].resize(feature_count);
    for (double& v : svs[i]) {
      if (!(is >> v)) {
        throw std::runtime_error("model parse error: support vector");
      }
    }
  }
  BinarySvm svm;
  svm.restore(std::move(svs), std::move(coefs), bias, params);
  return svm;
}

}  // namespace

void save_dag_svm(const DagSvm& model, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  std::size_t feature_count = 0;
  for (const auto& m : model.machines()) {
    if (!m.support_vectors().empty()) {
      feature_count = m.support_vectors().front().size();
      break;
    }
  }
  os << "dagsvm-v1 " << model.num_classes() << ' ' << feature_count << '\n';
  for (const auto& m : model.machines()) save_binary_svm(m, os);
}

DagSvm load_dag_svm(std::istream& is) {
  expect_token(is, "dagsvm-v1");
  int num_classes = 0;
  std::size_t feature_count = 0;
  if (!(is >> num_classes >> feature_count)) {
    throw std::runtime_error("model parse error: dagsvm header");
  }
  const std::size_t machine_count = static_cast<std::size_t>(num_classes) *
                                    static_cast<std::size_t>(num_classes - 1) /
                                    2;
  std::vector<BinarySvm> machines;
  machines.reserve(machine_count);
  for (std::size_t i = 0; i < machine_count; ++i) {
    machines.push_back(load_binary_svm(is, feature_count));
  }
  DagSvm model;
  model.restore(num_classes, std::move(machines));
  return model;
}

void save_scaler(const MinMaxScaler& scaler, std::ostream& os) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "scaler-v1 " << scaler.mins().size() << '\n';
  for (const double v : scaler.mins()) os << v << ' ';
  os << '\n';
  for (const double v : scaler.maxs()) os << v << ' ';
  os << '\n';
}

MinMaxScaler load_scaler(std::istream& is) {
  expect_token(is, "scaler-v1");
  std::size_t dims = 0;
  if (!(is >> dims)) throw std::runtime_error("model parse error: scaler");
  std::vector<double> mins(dims), maxs(dims);
  for (double& v : mins) {
    if (!(is >> v)) throw std::runtime_error("model parse error: scaler mins");
  }
  for (double& v : maxs) {
    if (!(is >> v)) throw std::runtime_error("model parse error: scaler maxs");
  }
  MinMaxScaler scaler;
  scaler.restore(std::move(mins), std::move(maxs));
  return scaler;
}

namespace {

// The CRC seals the metadata line (with its terminating newline) and the
// raw payload — everything between the header and the trailer.
std::uint32_t bundle_crc(const Bundle& bundle) noexcept {
  std::uint32_t state = util::kCrc32Init;
  state = util::crc32_update(state, bundle.metadata.data(),
                             bundle.metadata.size());
  state = util::crc32_update(state, "\n", 1);
  state = util::crc32_update(state, bundle.payload.data(),
                             bundle.payload.size());
  return util::crc32_final(state);
}

std::string crc_hex(std::uint32_t crc) {
  std::ostringstream out;
  out << std::hex << std::setw(8) << std::setfill('0') << crc;
  return out.str();
}

}  // namespace

void save_bundle(const Bundle& bundle, std::ostream& os) {
  if (bundle.metadata.find('\n') != std::string::npos) {
    throw std::invalid_argument(
        "bundle metadata must be a single line (embedded newline)");
  }
  os << kBundleMagic << ' ' << bundle.format_version << ' '
     << bundle.payload.size() << '\n'
     << bundle.metadata << '\n';
  os.write(bundle.payload.data(),
           static_cast<std::streamsize>(bundle.payload.size()));
  os << "crc32 " << crc_hex(bundle_crc(bundle)) << '\n';
}

Bundle load_bundle(std::istream& is) {
  std::string magic;
  if (!(is >> magic)) {
    throw std::runtime_error("model bundle parse error: empty stream");
  }
  if (magic != kBundleMagic) {
    throw std::runtime_error("model bundle parse error: bad magic '" + magic +
                             "' (expected '" + kBundleMagic +
                             "'); is this a bundle artifact?");
  }
  Bundle bundle;
  std::size_t payload_bytes = 0;
  if (!(is >> bundle.format_version >> payload_bytes)) {
    throw std::runtime_error("model bundle parse error: header fields");
  }
  if (bundle.format_version > kBundleFormatVersion) {
    throw std::runtime_error(
        "model bundle format version " +
        std::to_string(bundle.format_version) +
        " is newer than this binary supports (" +
        std::to_string(kBundleFormatVersion) +
        "); rebuild or retrain with a matching trainer");
  }
  // Consume the newline ending the header, then the metadata line.
  is.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  if (!std::getline(is, bundle.metadata)) {
    throw std::runtime_error("model bundle parse error: missing metadata "
                             "line");
  }
  bundle.payload.resize(payload_bytes);
  is.read(bundle.payload.data(),
          static_cast<std::streamsize>(payload_bytes));
  if (static_cast<std::size_t>(is.gcount()) != payload_bytes) {
    throw std::runtime_error(
        "model bundle truncated: header promises " +
        std::to_string(payload_bytes) + " payload bytes, stream ended after " +
        std::to_string(static_cast<std::size_t>(is.gcount())));
  }
  std::string trailer_tag;
  std::string stored_hex;
  if (!(is >> trailer_tag >> stored_hex) || trailer_tag != "crc32" ||
      stored_hex.size() != 8) {
    throw std::runtime_error(
        "model bundle parse error: missing crc32 trailer (artifact "
        "truncated after the payload?)");
  }
  std::uint32_t stored = 0;
  try {
    stored = static_cast<std::uint32_t>(std::stoul(stored_hex, nullptr, 16));
  } catch (const std::exception&) {
    throw std::runtime_error("model bundle parse error: malformed crc32 '" +
                             stored_hex + "'");
  }
  const std::uint32_t computed = bundle_crc(bundle);
  if (stored != computed) {
    throw std::runtime_error("model bundle CRC mismatch (stored " +
                             crc_hex(stored) + ", computed " +
                             crc_hex(computed) +
                             "): artifact corrupt, refusing to load");
  }
  return bundle;
}

}  // namespace iustitia::ml
