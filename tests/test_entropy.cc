// Tests for entropy/entropy_vector.h: Formula (1) correctness, bounds, and
// the streaming == batch property.
#include "entropy/entropy_vector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::entropy {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

double h1_of(const std::vector<std::uint8_t>& data) {
  const int widths[] = {1};
  return entropy_vector(data, widths)[0];
}

TEST(NormalizedEntropy, AllSameBytesIsZero) {
  // Incremental S accumulation leaves ~1e-16 of float residue.
  EXPECT_NEAR(h1_of(std::vector<std::uint8_t>(100, 'a')), 0.0, 1e-12);
}

TEST(NormalizedEntropy, AllDistinctBytesIsMaximal) {
  // 256 distinct bytes once each: H = log2(256) bits = 8 bits over an
  // 8-bit alphabet -> normalized 1.0.
  std::vector<std::uint8_t> data(256);
  for (int i = 0; i < 256; ++i) data[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  EXPECT_NEAR(h1_of(data), 1.0, 1e-12);
}

TEST(NormalizedEntropy, TwoEqualSymbolsGiveOneBit) {
  // "abab...": h1 = 1 bit / 8 bits = 0.125.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) {
    data.push_back('a');
    data.push_back('b');
  }
  EXPECT_NEAR(h1_of(data), 0.125, 1e-12);
}

TEST(NormalizedEntropy, MatchesDirectShannonFormula) {
  // Counts: a=5, b=3, c=2 (m=10).
  const auto data = bytes_of("aaaaabbbcc");
  double h_bits = 0.0;
  // NOLINTNEXTLINE(log2-domain): p ranges over positive literals only.
  for (const double p : {0.5, 0.3, 0.2}) h_bits -= p * std::log2(p);
  EXPECT_NEAR(h1_of(data), h_bits / 8.0, 1e-12);
}

TEST(NormalizedEntropy, FromSumHandlesDegenerateInputs) {
  EXPECT_DOUBLE_EQ(normalized_entropy_from_sum(0.0, 0, 1), 0.0);
  EXPECT_DOUBLE_EQ(normalized_entropy_from_sum(0.0, 1, 1), 0.0);
  // Negative drift clamps to 0; estimation overshoot clamps to 1.
  EXPECT_DOUBLE_EQ(normalized_entropy_from_sum(1e9, 100, 1), 0.0);
  EXPECT_DOUBLE_EQ(normalized_entropy_from_sum(-1e9, 100, 1), 1.0);
}

TEST(NormalizedEntropy, Width2OfAlternatingPairIsNearZero) {
  // "ababab...": pairs are ab,ba,ab,ba,... -> entropy 1 bit over a 16-bit
  // alphabet = 1/16.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 512; ++i) data.push_back(i % 2 ? 'b' : 'a');
  const int widths[] = {2};
  EXPECT_NEAR(entropy_vector(data, widths)[0], 1.0 / 16.0, 1e-3);
}

TEST(EntropyVector, ShortBufferCapsAchievableEntropy) {
  // With m = 32 random bytes, h1 <= log2(32)/8 = 0.625 even for uniform
  // data: the classifier learns this regime (paper Fig. 4).
  util::Rng rng(3);
  std::vector<std::uint8_t> data(32);
  rng.fill_bytes(data);
  EXPECT_LE(h1_of(data), 0.625 + 1e-12);
  EXPECT_GT(h1_of(data), 0.5);
}

TEST(EntropyVector, AlwaysWithinUnitInterval) {
  util::Rng rng(4);
  const auto widths = full_feature_widths();
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(rng.uniform_int(1, 2000)));
    rng.fill_bytes(data);
    for (const double h : entropy_vector(data, widths)) {
      ASSERT_GE(h, 0.0);
      ASSERT_LE(h, 1.0);
    }
  }
}

TEST(EntropyVector, PaperFeatureSets) {
  EXPECT_EQ(full_feature_widths(), (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8,
                                                     9, 10}));
  EXPECT_EQ(cart_selected_widths(), (std::vector<int>{1, 3, 4, 10}));
  EXPECT_EQ(cart_preferred_widths(), (std::vector<int>{1, 3, 4, 5}));
  EXPECT_EQ(svm_selected_widths(), (std::vector<int>{1, 2, 3, 9}));
  EXPECT_EQ(svm_preferred_widths(), (std::vector<int>{1, 2, 3, 5}));
}

TEST(EntropyVector, SpaceAccountingAccumulatesAcrossWidths) {
  util::Rng rng(5);
  std::vector<std::uint8_t> data(1024);
  rng.fill_bytes(data);
  const auto widths = svm_preferred_widths();
  const EntropyVectorResult result = compute_entropy_vector(data, widths);
  EXPECT_EQ(result.h.size(), widths.size());
  // At least the exact h1 table plus one hash entry per distinct gram.
  EXPECT_GT(result.space_bytes, 256 * sizeof(std::uint32_t));
}

// Property: StreamingEntropyVector fed packet-sized chunks must match the
// one-shot computation for every feature width set.
class StreamingProperty
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(StreamingProperty, StreamingEqualsBatch) {
  const std::vector<int> widths = GetParam();
  util::Rng rng(99);
  std::vector<std::uint8_t> data(1500);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(32));

  StreamingEntropyVector streaming(widths);
  std::size_t at = 0;
  while (at < data.size()) {
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(rng.uniform_int(1, 200)),
                              data.size() - at);
    streaming.add(std::span<const std::uint8_t>(data.data() + at, take));
    at += take;
  }
  const std::vector<double> batch = entropy_vector(data, widths);
  const std::vector<double> stream = streaming.vector();
  ASSERT_EQ(batch.size(), stream.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_NEAR(stream[i], batch[i], 1e-12);
  }
  EXPECT_EQ(streaming.total_bytes(), data.size());
  EXPECT_GT(streaming.space_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FeatureSets, StreamingProperty,
    ::testing::Values(std::vector<int>{1}, std::vector<int>{1, 2, 3, 5},
                      std::vector<int>{1, 3, 4, 5},
                      std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));

TEST(StreamingEntropyVector, ResetRestartsAccumulation) {
  const std::vector<int> widths{1, 2};
  StreamingEntropyVector streaming(widths);
  std::vector<std::uint8_t> data(100, 'x');
  streaming.add(data);
  streaming.reset();
  EXPECT_EQ(streaming.total_bytes(), 0u);
  streaming.add(data);
  EXPECT_NEAR(streaming.vector()[0], 0.0, 1e-12);
}

}  // namespace
}  // namespace iustitia::entropy
