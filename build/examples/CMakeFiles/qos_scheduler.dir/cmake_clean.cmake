file(REMOVE_RECURSE
  "CMakeFiles/qos_scheduler.dir/qos_scheduler.cc.o"
  "CMakeFiles/qos_scheduler.dir/qos_scheduler.cc.o.d"
  "qos_scheduler"
  "qos_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
