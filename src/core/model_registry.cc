#include "core/model_registry.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace iustitia::core {

ModelRegistry::ModelRegistry(std::size_t shards,
                             std::shared_ptr<const FlowNatureModel> initial,
                             std::string version)
    : shards_(shards), epoch_(1) {
  if (shards == 0) {
    throw std::invalid_argument("ModelRegistry needs at least one shard");
  }
  if (initial == nullptr) {
    throw std::invalid_argument("ModelRegistry initial model is null");
  }
  util::MutexLock lock(mu_);
  current_ = std::move(initial);
  version_ = std::move(version);
  crossed_.assign(shards_, 0);
}

std::uint64_t ModelRegistry::publish(
    std::shared_ptr<const FlowNatureModel> model, std::string version) {
  if (model == nullptr) {
    throw std::invalid_argument("ModelRegistry::publish: model is null");
  }
  util::MutexLock lock(mu_);
  const std::uint64_t old_epoch = epoch_.load(std::memory_order_relaxed);
  retired_.push_back(Retired{old_epoch, std::move(current_)});
  current_ = std::move(model);
  version_ = std::move(version);
  ++swaps_;
  // A shard fleet that already crossed every prior epoch (idle fleet, or
  // back-to-back publishes) may make older entries reclaimable now.
  reap_locked();
  // The release store is the publication point: a reader whose relaxed
  // epoch_hint() sees the new value will take mu_ in current(), which
  // orders current_/version_ after this critical section.
  epoch_.store(old_epoch + 1, std::memory_order_release);
  return old_epoch + 1;
}

ModelRegistry::Published ModelRegistry::current() const {
  util::MutexLock lock(mu_);
  Published out;
  out.model = current_;
  out.epoch = epoch_.load(std::memory_order_relaxed);
  out.version = version_;
  return out;
}

void ModelRegistry::report_crossed(std::size_t shard, std::uint64_t epoch) {
  util::MutexLock lock(mu_);
  if (shard >= shards_) return;  // defensive: an unknown reader slot
  crossed_[shard] = std::max(crossed_[shard], epoch);
  reap_locked();
}

std::uint64_t ModelRegistry::min_crossed() const {
  util::MutexLock lock(mu_);
  return min_crossed_locked();
}

std::uint64_t ModelRegistry::min_crossed_locked() const {
  return *std::min_element(crossed_.begin(), crossed_.end());
}

void ModelRegistry::reap_locked() {
  // A model retired at epoch e is safe to free once every shard reports
  // an epoch strictly greater: each shard installed a replacement (and
  // released its reference) before reporting.
  const std::uint64_t floor = min_crossed_locked();
  std::erase_if(retired_,
                [floor](const Retired& r) { return r.epoch < floor; });
}

std::size_t ModelRegistry::retired_count() const {
  util::MutexLock lock(mu_);
  return retired_.size();
}

std::uint64_t ModelRegistry::swap_count() const {
  util::MutexLock lock(mu_);
  return swaps_;
}

std::string ModelRegistry::current_version() const {
  util::MutexLock lock(mu_);
  return version_;
}

}  // namespace iustitia::core
