#include "core/cdb.h"

#include <iterator>

#include "util/check.h"
#include "util/failpoint.h"
#include "util/rt_guard.h"

namespace iustitia::core {

ClassificationDatabase::ClassificationDatabase(const CdbOptions& options)
    : options_(options) {
  CHECK_GT(options_.inactivity_coefficient, 0.0)
      << "CDB inactivity rule needs a positive n";
  CHECK_GT(options_.default_lambda, 0.0)
      << "single-packet flows need a positive default lambda'";
  CHECK_GE(options_.reclassify_after_seconds, 0.0);
}

std::optional<datagen::FileClass> ClassificationDatabase::lookup(
    const net::FlowId& id, double now) {
  // The engine's per-packet fast path lands here: the per-shard lock is
  // uncontended by construction (one worker drives one shard) and the
  // probe itself never allocates.
  util::rt::AllowScope allow(util::rt::kBlock);  // analyze: hotpath-allow(may-block, unresolved-call)
  util::MutexLock lock(mu_);
  ++stats_.lookups;
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  ++stats_.hits;
  Record& record = it->second;
  record.lambda = now - record.last_arrival;
  record.has_lambda = true;
  record.last_arrival = now;
  // Refresh recency: splice relinks the node in place, no allocation.
  order_.splice(order_.end(), order_, record.order_it);
  return record.label;
}

std::optional<datagen::FileClass> ClassificationDatabase::peek(
    const net::FlowId& id) const {
  util::MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  return it->second.label;
}

bool ClassificationDatabase::insert(const net::FlowId& id,
                                    datagen::FileClass label, double now) {
  // Fault injection: an armed cdb.insert point (error/alloc-fail)
  // simulates the record allocation failing — the flow is just not
  // cached, which is the designed degradation.  Evaluated before the
  // lock so the injected path never holds mu_.
  const util::FailpointAction injected = FAILPOINT("cdb.insert");
  util::MutexLock lock(mu_);
  if (injected == util::FailpointAction::kError ||
      injected == util::FailpointAction::kAllocFail) {
    ++stats_.insert_failures;
    return false;
  }
  ++stats_.inserts;
  ++inserts_since_purge_;
  const auto it = records_.find(id);
  if (it != records_.end()) {
    // Overwrite: refresh the payload and recency, keep the node.
    Record& record = it->second;
    record.label = label;
    record.last_arrival = now;
    record.created_at = now;
    record.lambda = options_.default_lambda;
    record.has_lambda = false;
    order_.splice(order_.end(), order_, record.order_it);
    return true;
  }
  while (options_.max_records > 0 &&
         records_.size() >= options_.max_records) {
    evict_oldest_locked();
  }
  order_.push_back(id);
  Record record;
  record.label = label;
  record.last_arrival = now;
  record.created_at = now;
  record.lambda = options_.default_lambda;
  record.has_lambda = false;
  record.order_it = std::prev(order_.end());
  records_.emplace(id, record);
  return true;
}

void ClassificationDatabase::evict_oldest_locked() {
  DCHECK(!order_.empty());
  const auto it = records_.find(order_.front());
  DCHECK(it != records_.end()) << "order_ out of sync with records_";
  order_.pop_front();
  records_.erase(it);
  ++stats_.forced_evictions;
}

void ClassificationDatabase::remove_on_close(const net::FlowId& id) {
  if (!options_.fin_rst_removal_enabled) return;
  // FIN/RST teardown on the fast path: same uncontended per-shard lock
  // as lookup(), plus the freed hash node on erase.
  util::rt::AllowScope allow(util::rt::kAlloc | util::rt::kBlock);  // analyze: hotpath-allow(may-allocate, may-block, unresolved-call)
  util::MutexLock lock(mu_);
  const auto it = records_.find(id);
  if (it == records_.end()) return;
  order_.erase(it->second.order_it);
  records_.erase(it);
  ++stats_.fin_rst_removals;
}

void ClassificationDatabase::maybe_purge(double now) {
  if (!options_.inactivity_purge_enabled) return;
  util::MutexLock lock(mu_);
  if (inserts_since_purge_ < options_.purge_trigger_flows) return;
  purge_locked(now);
  inserts_since_purge_ = 0;
}

std::size_t ClassificationDatabase::purge(double now) {
  util::MutexLock lock(mu_);
  return purge_locked(now);
}

std::size_t ClassificationDatabase::purge_locked(double now) {
  if (!options_.inactivity_purge_enabled) return 0;
  ++stats_.purge_runs;
  const std::size_t size_before = records_.size();
  std::size_t inactive = 0;
  std::size_t stale = 0;
  for (auto it = records_.begin(); it != records_.end();) {
    const Record& record = it->second;
    const double lambda =
        record.has_lambda ? record.lambda : options_.default_lambda;
    if (now - record.last_arrival >
        options_.inactivity_coefficient * lambda) {
      order_.erase(record.order_it);
      it = records_.erase(it);
      ++inactive;
    } else if (options_.reclassify_after_seconds > 0.0 &&
               now - record.created_at > options_.reclassify_after_seconds) {
      // Section 4.6: force periodic reclassification of long-lived flows.
      order_.erase(record.order_it);
      it = records_.erase(it);
      ++stale;
    } else {
      ++it;
    }
  }
  stats_.inactivity_removals += inactive;
  stats_.reclassification_removals += stale;
  DCHECK_EQ(size_before, records_.size() + inactive + stale)
      << "purge must account for every removed record";
  DCHECK_EQ(order_.size(), records_.size())
      << "recency list out of sync with the record table";
  return inactive + stale;
}

std::size_t ClassificationDatabase::size() const {
  util::MutexLock lock(mu_);
  return records_.size();
}

CdbStats ClassificationDatabase::stats() const {
  util::MutexLock lock(mu_);
  return stats_;
}

}  // namespace iustitia::core
