#include "ctrl/admin.h"

#include <exception>
#include <sstream>
#include <string>
#include <utility>

#include "core/model_bundle.h"
#include "ctrl/prometheus.h"
#include "util/check.h"
#include "util/logging.h"

namespace iustitia::ctrl {

AdminServer::AdminServer(runtime::Runtime* runtime,
                         std::shared_ptr<core::ModelRegistry> registry,
                         HttpServer::Options options)
    : runtime_(runtime),
      registry_(std::move(registry)),
      server_(std::move(options),
              [this](const HttpRequest& request) { return handle(request); }) {
  CHECK(runtime_ != nullptr) << "AdminServer needs a runtime";
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::start() { server_.start(); }

void AdminServer::stop() {
  // Release any wait_for_quit() caller first so shutdown never hangs on
  // the latch, then tear the HTTP threads down.
  notify_quit();
  server_.stop();
}

bool AdminServer::quit_requested() const {
  util::MutexLock lock(quit_mu_);
  return quit_;
}

void AdminServer::wait_for_quit() {
  util::MutexLock lock(quit_mu_);
  while (!quit_) quit_cv_.wait(quit_mu_);
}

void AdminServer::notify_quit() {
  {
    util::MutexLock lock(quit_mu_);
    quit_ = true;
  }
  quit_cv_.notify_all();
}

HttpResponse AdminServer::handle(const HttpRequest& request) {
  if (request.target == "/healthz") {
    if (request.method != "GET") return text_response(405, "GET only\n");
    return text_response(200, "ok\n");
  }
  if (request.target == "/metrics") {
    if (request.method != "GET") return text_response(405, "GET only\n");
    HttpResponse resp =
        text_response(200, render_prometheus(runtime_->snapshot()));
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return resp;
  }
  if (request.target == "/stats.json") {
    if (request.method != "GET") return text_response(405, "GET only\n");
    return json_response(200, runtime_->snapshot().json());
  }
  if (request.target == "/model") {
    if (request.method != "POST") return text_response(405, "POST only\n");
    return handle_model_post(request);
  }
  if (request.target == "/quitquitquit") {
    if (request.method != "POST") return text_response(405, "POST only\n");
    // Latch only; the serve loop drains after this response is written.
    notify_quit();
    return text_response(200, "draining\n");
  }
  return text_response(404,
                       "unknown endpoint; have /healthz /metrics "
                       "/stats.json /model /quitquitquit\n");
}

HttpResponse AdminServer::handle_model_post(const HttpRequest& request) {
  if (registry_ == nullptr) {
    return text_response(
        503, "runtime was started without a model registry; hot-swap "
             "is unavailable\n");
  }
  if (request.body.empty()) {
    return text_response(400, "empty body; POST a model bundle (see "
                              "`iustitia train`)\n");
  }
  core::LoadedModelBundle bundle;
  try {
    // Full validation happens HERE, on the handler thread: frame magic,
    // format version, CRC, then the model parse.  Only a fully parsed
    // model is ever published to the workers.
    std::istringstream body(request.body);
    bundle = core::load_model_bundle(body);
  } catch (const std::exception& e) {
    return text_response(400, std::string("model bundle rejected: ") +
                                  e.what() + "\n");
  }
  const std::string version = core::model_version_of(bundle.metadata);
  const std::uint64_t epoch = registry_->publish(
      std::make_shared<const core::FlowNatureModel>(std::move(bundle.model)),
      version);
  IUSTITIA_LOG_INFO << "ctrl: published model version '" << version
                    << "' at epoch " << epoch;
  std::ostringstream body;
  body << "{\"status\": \"swapped\", \"version\": \"" << version
       << "\", \"epoch\": " << epoch << "}\n";
  return json_response(200, body.str());
}

}  // namespace iustitia::ctrl
