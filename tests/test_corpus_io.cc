// Tests for corpus <-> filesystem round trips (the CLI's data path).
#include "datagen/corpus_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

namespace iustitia::datagen {
namespace {

namespace fs = std::filesystem;

class CorpusIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("iustitia_corpus_io_" + std::to_string(::getpid()));
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(CorpusIoTest, WriteReadSingleFile) {
  const fs::path path = root_ / "sub" / "data.bin";
  const std::vector<std::uint8_t> bytes{0x00, 0xFF, 0x41, 0x0A};
  write_file(path, bytes);
  EXPECT_EQ(read_file(path), bytes);
}

TEST_F(CorpusIoTest, ReadFileTruncation) {
  const fs::path path = root_ / "big.bin";
  write_file(path, std::vector<std::uint8_t>(1000, 0x7A));
  EXPECT_EQ(read_file(path, 100).size(), 100u);
  EXPECT_EQ(read_file(path, 0).size(), 1000u);  // 0 = unlimited
}

TEST_F(CorpusIoTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_file(root_ / "nope.bin"), std::runtime_error);
}

TEST_F(CorpusIoTest, CorpusRoundTripPreservesBytesAndLabels) {
  CorpusOptions options;
  options.files_per_class = 10;
  options.min_size = 512;
  options.max_size = 1024;
  options.seed = 5;
  const auto corpus = build_corpus(options);
  save_corpus(corpus, root_);

  const auto loaded = load_corpus(root_);
  ASSERT_EQ(loaded.size(), corpus.size());
  // Per-class byte multisets match (directory order is unspecified).
  std::size_t class_bytes_saved[3] = {}, class_bytes_loaded[3] = {};
  std::size_t class_counts[3] = {};
  for (const auto& s : corpus) {
    class_bytes_saved[static_cast<int>(s.label)] += s.bytes.size();
  }
  for (const auto& s : loaded) {
    class_bytes_loaded[static_cast<int>(s.label)] += s.bytes.size();
    ++class_counts[static_cast<int>(s.label)];
  }
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(class_bytes_loaded[c], class_bytes_saved[c]);
    EXPECT_EQ(class_counts[c], 10u);
  }
}

TEST_F(CorpusIoTest, LoadCorpusTruncatesPerFile) {
  CorpusOptions options;
  options.files_per_class = 3;
  options.min_size = 2048;
  options.max_size = 2049;
  options.seed = 6;
  save_corpus(build_corpus(options), root_);
  const auto loaded = load_corpus(root_, 256);
  for (const auto& s : loaded) EXPECT_EQ(s.bytes.size(), 256u);
}

TEST_F(CorpusIoTest, LoadEmptyTreeThrows) {
  fs::create_directories(root_);
  EXPECT_THROW(load_corpus(root_), std::runtime_error);
}

TEST_F(CorpusIoTest, LoadToleratesMissingClassDirectories) {
  // Only text/ present: loads what exists.
  write_file(root_ / "text" / "a.bin", std::vector<std::uint8_t>(64, 'x'));
  const auto loaded = load_corpus(root_);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].label, FileClass::kText);
}

}  // namespace
}  // namespace iustitia::datagen
