"""Lock-discipline pass: a TSA-lite checker that works on every compiler.

Clang's -Wthread-safety proves the GUARDED_BY contracts statically, but
GCC compiles the annotations to no-ops, so a GCC-only CI run would let a
lock-discipline regression through.  This pass re-checks the core of the
contract from the annotations themselves:

  For every field declared IUSTITIA_GUARDED_BY(mu) in a class, every
  out-of-line method of that class that mentions the field must either
  (a) construct a util::MutexLock (or std::lock_guard/scoped_lock/
  unique_lock) on that mutex somewhere in its body, (b) be declared
  IUSTITIA_REQUIRES(mu) in the class, or (c) carry
  IUSTITIA_NO_THREAD_SAFETY_ANALYSIS (the audited escape hatch).

Known, deliberate approximations (Clang remains the precise checker):
  - granularity is the whole method body: a lock taken in any block
    satisfies accesses in the whole method;
  - constructors and destructors are exempt (single-owner by language
    rules, and locking there is usually a bug in itself);
  - header-inline method bodies are not checked, matching this repo's
    convention that any method touching guarded state lives in the .cc.
"""

from __future__ import annotations

from cppmodel import LOCK_TYPES
from findings import Finding
from tokenizer import IDENT, nolint_lines

RULE = "lock-unguarded-access"


def _normalize_mutex(expr: str) -> str:
    """GUARDED_BY(mu_) and MutexLock lock(mu_) both reduce to 'mu_'."""
    return expr.replace("&", "").replace("this->", "").strip()


def _locks_taken(body) -> set[str]:
    """Mutex member names locked via RAII guards anywhere in the body."""
    taken: set[str] = set()
    for i, t in enumerate(body):
        if t.kind != IDENT or t.text not in LOCK_TYPES:
            continue
        # MutexLock <var> ( <mutex-expr> )  /  lock_guard<...> var(mu)
        j = i + 1
        if j < len(body) and body[j].text == "<":
            depth = 0
            while j < len(body):
                if body[j].text == "<":
                    depth += 1
                elif body[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                j += 1
        if j < len(body) and body[j].kind == IDENT:
            j += 1
        if j >= len(body) or body[j].text not in ("(", "{"):
            continue
        close = ")" if body[j].text == "(" else "}"
        expr: list[str] = []
        k = j + 1
        while k < len(body) and body[k].text != close:
            expr.append(body[k].text)
            k += 1
        if expr:
            taken.add(_normalize_mutex("".join(expr)))
    return taken


def run(ctx) -> list[Finding]:
    findings: list[Finding] = []

    # class name -> ClassDef with guarded fields (headers + sources).
    guarded_classes = {}
    for model in ctx.models.values():
        for cls in model.classes:
            if cls.guarded_fields:
                guarded_classes.setdefault(cls.name, []).append(cls)

    if not guarded_classes:
        return findings

    for path, model in sorted(ctx.models.items()):
        if ctx.universe.module_of(path) is None:
            continue
        suppressed = nolint_lines(model.tokens, RULE)
        for method in model.methods:
            defs = guarded_classes.get(method.cls)
            if not defs or method.no_analysis or method.is_special:
                continue
            cls = defs[0]
            if method.name in cls.no_analysis_methods:
                continue
            required = cls.requires_methods.get(method.name)
            taken = _locks_taken(method.body)
            for tok in method.body:
                if tok.kind != IDENT or tok.text not in cls.guarded_fields:
                    continue
                mutex = _normalize_mutex(cls.guarded_fields[tok.text])
                if cls.mutexes and mutex not in cls.mutexes:
                    findings.append(Finding(
                        "lock-unknown-mutex", path, tok.line,
                        f"{method.cls}::{method.name} touches "
                        f"'{tok.text}' guarded by '{mutex}', which is not "
                        f"a mutex member of {method.cls}",
                        anchor=f"{method.cls}.{tok.text}"))
                    break
                if required is not None and \
                        _normalize_mutex(required) == mutex:
                    continue
                if mutex in taken:
                    continue
                if tok.line in suppressed:
                    continue
                findings.append(Finding(
                    RULE, path, tok.line,
                    f"{method.cls}::{method.name} accesses '{tok.text}' "
                    f"(guarded by {mutex}) without MutexLock({mutex}) or "
                    f"an IUSTITIA_REQUIRES({mutex}) annotation",
                    anchor=f"{method.cls}::{method.name}.{tok.text}"))
                break  # one finding per method per field set
    return findings
