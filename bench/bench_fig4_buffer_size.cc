// Reproduces Figure 4: classification accuracy as a function of the flow
// buffer size b, under the two training regimes:
//   (a) train on the entire file (H_F), classify on the first b bytes;
//   (b) train on the first b bytes (H_b), classify on the first b bytes.
//
// Paper shape: regime (a) needs ~1 KB buffers to reach 86% with SVM, while
// regime (b) reaches ~86% already at b = 32 for both backends — training
// in the same small-prefix regime as inference is the paper's key trick
// for tiny buffers.
#include "bench/bench_common.h"

#include <algorithm>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "entropy/entropy_vector.h"

namespace iustitia::bench {
namespace {

// Splits a corpus into train/test halves by index parity.
void split_corpus(const std::vector<datagen::FileSample>& corpus,
                  std::vector<datagen::FileSample>& train,
                  std::vector<datagen::FileSample>& test) {
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    (i % 2 == 0 ? train : test).push_back(corpus[i]);
  }
}

double evaluate(const std::vector<datagen::FileSample>& train,
                const std::vector<datagen::FileSample>& test,
                core::Backend backend, core::TrainingMethod train_method,
                std::size_t b) {
  core::TrainerOptions options;
  options.backend = backend;
  options.widths = backend == core::Backend::kCart
                       ? entropy::cart_preferred_widths()
                       : entropy::svm_preferred_widths();
  options.method = train_method;
  options.buffer_size = b;
  options.svm.gamma = 50.0;
  options.svm.c = 1000.0;
  core::FlowNatureModel model = core::train_model(train, options);

  std::size_t correct = 0;
  for (const auto& file : test) {
    const std::span<const std::uint8_t> prefix(
        file.bytes.data(), std::min(b, file.bytes.size()));
    correct += (model.classify(prefix).label == file.label);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

int run() {
  banner("Fig. 4: accuracy vs buffer size b, two training regimes",
         "H_b-trained models reach ~86% at b=32; H_F-trained need ~1KB");

  const std::size_t files = env_size("IUSTITIA_FILES_PER_CLASS", 100);
  const auto corpus = standard_corpus(files);
  std::vector<datagen::FileSample> train, test;
  split_corpus(corpus, train, test);

  const std::size_t buffer_sizes[] = {8,   16,   32,   64,   128, 256,
                                      512, 1024, 2048, 4096, 8192};

  std::cout << "-- Fig. 4(a): train on entire file (H_F) --\n";
  util::Table table_a({"b (bytes)", "CART accuracy", "SVM accuracy"});
  for (const std::size_t b : buffer_sizes) {
    table_a.add_row(
        {std::to_string(b),
         util::fmt_percent(evaluate(train, test, core::Backend::kCart,
                                    core::TrainingMethod::kWholeFile, b)),
         util::fmt_percent(evaluate(train, test, core::Backend::kSvm,
                                    core::TrainingMethod::kWholeFile, b))});
  }
  table_a.render(std::cout);
  std::cout << '\n';

  std::cout << "-- Fig. 4(b): train on first b bytes (H_b) --\n";
  util::Table table_b({"b (bytes)", "CART accuracy", "SVM accuracy"});
  double svm_at_32 = 0.0, svm_whole_at_32 = 0.0;
  for (const std::size_t b : buffer_sizes) {
    const double cart = evaluate(train, test, core::Backend::kCart,
                                 core::TrainingMethod::kFirstBytes, b);
    const double svm = evaluate(train, test, core::Backend::kSvm,
                                core::TrainingMethod::kFirstBytes, b);
    if (b == 32) {
      svm_at_32 = svm;
      svm_whole_at_32 = evaluate(train, test, core::Backend::kSvm,
                                 core::TrainingMethod::kWholeFile, b);
    }
    table_b.add_row({std::to_string(b), util::fmt_percent(cart),
                     util::fmt_percent(svm)});
  }
  table_b.render(std::cout);

  std::cout << "\npaper:    at b=32, H_b-trained SVM ~86% while H_F-trained "
               "is far lower\n";
  std::cout << "measured: at b=32, H_b-trained SVM "
            << util::fmt_percent(svm_at_32) << " vs H_F-trained "
            << util::fmt_percent(svm_whole_at_32) << "\n";
  std::cout << "shape check: H_b >> H_F at small b: "
            << (svm_at_32 > svm_whole_at_32 + 0.1 ? "YES" : "NO") << '\n';
  return 0;
}

}  // namespace
}  // namespace iustitia::bench

int main() { return iustitia::bench::run(); }
