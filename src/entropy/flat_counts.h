// Open-addressing frequency table for 128-bit gram keys.
//
// The exact per-width gram tables are the hottest data structure of the
// extraction path: one probe per byte per width.  std::unordered_map pays
// a heap node per distinct gram and a pointer chase per probe; FlatCounts
// stores (key, count) inline in one power-of-2 slot array with linear
// probing, so a probe is one hash, one indexed load, and (almost always)
// zero extra cache lines.
//
// Slots are 24 bytes (128-bit key split into two 64-bit halves + 32-bit
// count + 32-bit epoch tag), there is no erase and therefore no tombstone
// machinery, and reset() is O(1): it bumps the epoch, which invalidates
// every slot at once while keeping the allocation — the property the
// streaming engine relies on to make per-flow extraction allocation-free
// after warm-up.
//
// Counts are 32-bit: a table counts at most one gram per input byte, so
// this bounds supported input at 2^32-1 grams per width — far beyond the
// paper's b <= 16 KB flow prefixes this table exists for.
#ifndef IUSTITIA_ENTROPY_FLAT_COUNTS_H_
#define IUSTITIA_ENTROPY_FLAT_COUNTS_H_

#include <cstdint>
#include <vector>

#include "util/hash.h"

namespace iustitia::entropy {

class FlatCounts {
 public:
  // Starts with capacity for at least `min_capacity` entries (subject to
  // the power-of-2 and load-factor rules); the table grows on demand.
  explicit FlatCounts(std::size_t min_capacity = 0);

  // Adds one occurrence of `key`; returns the count *before* the bump
  // (0 for a first sighting), which is exactly what the incremental
  // entropy update needs.  One probe per byte per width makes this the
  // hottest function of the extraction path; after warm-up it must not
  // touch the heap (grow() is the documented exception).
  // analyze: hotpath
  std::uint32_t increment(unsigned __int128 key) {
    if (size_ >= grow_at_) grow();
    const auto lo = static_cast<std::uint64_t>(key);
    const auto hi = static_cast<std::uint64_t>(key >> 64);
    std::size_t idx = slot_hash(lo, hi) & mask_;
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.epoch != epoch_) {  // empty (or dead since last reset)
        slot.lo = lo;
        slot.hi = hi;
        slot.count = 1;
        slot.epoch = epoch_;
        ++size_;
        return 0;
      }
      if (slot.lo == lo && slot.hi == hi) return slot.count++;
      idx = (idx + 1) & mask_;
    }
  }

  // Current count of `key` (0 when absent).
  std::uint32_t count(unsigned __int128 key) const noexcept {
    const auto lo = static_cast<std::uint64_t>(key);
    const auto hi = static_cast<std::uint64_t>(key >> 64);
    std::size_t idx = slot_hash(lo, hi) & mask_;
    for (;;) {
      const Slot& slot = slots_[idx];
      if (slot.epoch != epoch_) return 0;
      if (slot.lo == lo && slot.hi == hi) return slot.count;
      idx = (idx + 1) & mask_;
    }
  }

  // Hints `key`'s home slot into cache ahead of a coming increment(key).
  // The block-wise kernel issues these a few probes early so independent
  // table misses overlap instead of serializing (DESIGN.md §9).  Purely
  // advisory: linear probing may land past the home slot, and a grow()
  // between hint and probe makes the hint stale — both only cost the
  // prefetch, never correctness.
  // analyze: hotpath
  void prefetch(unsigned __int128 key) const noexcept {
    const auto lo = static_cast<std::uint64_t>(key);
    const auto hi = static_cast<std::uint64_t>(key >> 64);
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[slot_hash(lo, hi) & mask_], 1 /*write*/);
#else
    (void)lo;
    (void)hi;
#endif
  }

  // Distinct keys since the last reset().
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return slots_.size(); }

  // Invalidates every entry in O(1) by bumping the epoch; keeps the slot
  // array (and therefore the capacity reached so far) allocated.
  void reset() noexcept;

  // Grows the slot array until it can hold `min_capacity` entries without
  // rehashing mid-stream.
  void reserve(std::size_t min_capacity);

  // Visits every live (key, count) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.epoch != epoch_) continue;
      const auto key = (static_cast<unsigned __int128>(slot.hi) << 64) |
                       static_cast<unsigned __int128>(slot.lo);
      fn(key, slot.count);
    }
  }

  // Actual resident size of the slot array in bytes.
  std::size_t resident_bytes() const noexcept;

 private:
  struct Slot {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    std::uint32_t count = 0;
    std::uint32_t epoch = 0;  // live iff equal to the table epoch
  };

  static std::size_t slot_hash(std::uint64_t lo, std::uint64_t hi) noexcept {
    return static_cast<std::size_t>(util::hash_combine(util::mix64(lo), hi));
  }

  void grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;     // live entries
  std::size_t mask_ = 0;     // capacity - 1
  std::size_t grow_at_ = 0;  // grow() threshold (max load factor)
  std::uint32_t epoch_ = 1;  // 0 is reserved for never-used slots
};

}  // namespace iustitia::entropy

#endif  // IUSTITIA_ENTROPY_FLAT_COUNTS_H_
