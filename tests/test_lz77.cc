// Round-trip and behavioural tests for the LZ77/LZSS coder.
#include "datagen/lz77.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/markov_text.h"
#include "util/random.h"

namespace iustitia::datagen {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Lz77, EmptyInput) {
  EXPECT_TRUE(lz77_compress({}).empty());
  EXPECT_TRUE(lz77_decompress({}).empty());
}

TEST(Lz77, RoundTripShortLiterals) {
  const auto data = bytes_of("abc");
  EXPECT_EQ(lz77_decompress(lz77_compress(data)), data);
}

TEST(Lz77, RoundTripRepetitiveText) {
  const auto data = bytes_of(std::string(500, 'a') + "bcd" +
                             std::string(500, 'a'));
  const auto packed = lz77_compress(data);
  EXPECT_EQ(lz77_decompress(packed), data);
  // Runs compress extremely well.
  EXPECT_LT(packed.size(), data.size() / 10);
}

TEST(Lz77, RoundTripEnglishTextAndCompresses) {
  util::Rng rng(1);
  const std::string text = MarkovText::english(3).generate(20000, rng);
  const auto data = bytes_of(text);
  const auto packed = lz77_compress(data);
  EXPECT_EQ(lz77_decompress(packed), data);
  // Natural-language text must compress meaningfully — this is what puts
  // archive members in the paper's middle entropy band.
  EXPECT_LT(packed.size(), data.size() * 0.8);
}

TEST(Lz77, RoundTripIncompressibleData) {
  util::Rng rng(2);
  std::vector<std::uint8_t> data(10000);
  rng.fill_bytes(data);
  const auto packed = lz77_compress(data);
  EXPECT_EQ(lz77_decompress(packed), data);
  // Random data expands by at most the flag-byte overhead (1/8) + O(1).
  EXPECT_LE(packed.size(), data.size() + data.size() / 8 + 16);
}

TEST(Lz77, RoundTripOverlappingMatches) {
  // "abcabcabc...": matches overlap their own output.
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<std::uint8_t>(
      "abc"[i % 3]));
  EXPECT_EQ(lz77_decompress(lz77_compress(data)), data);
}

TEST(Lz77, RoundTripAllByteValues) {
  std::vector<std::uint8_t> data;
  for (int rep = 0; rep < 5; ++rep) {
    for (int b = 0; b < 256; ++b) data.push_back(static_cast<std::uint8_t>(b));
  }
  EXPECT_EQ(lz77_decompress(lz77_compress(data)), data);
}

TEST(Lz77, RoundTripManyRandomSizes) {
  util::Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(rng.uniform_int(0, 3000)));
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.next_below(8));  // compressible
    }
    ASSERT_EQ(lz77_decompress(lz77_compress(data)), data)
        << "trial " << trial << " size " << data.size();
  }
}

TEST(Lz77, CorruptMatchOffsetThrows) {
  // Flag byte with match bit set, then an offset pointing before start.
  const std::vector<std::uint8_t> bogus{0x01, 0x10, 0x00, 0x00};
  EXPECT_THROW(lz77_decompress(bogus), std::runtime_error);
}

TEST(Lz77, TruncatedMatchTokenThrows) {
  const std::vector<std::uint8_t> bogus{0x01, 0x01};
  EXPECT_THROW(lz77_decompress(bogus), std::runtime_error);
}

}  // namespace
}  // namespace iustitia::datagen
