// Minimal HTTP/1.1 server for the control plane (DESIGN.md §11).
//
// Scope is deliberately tiny: the admin surface serves a handful of
// short-lived, localhost-by-default requests (health probes, metrics
// scrapes, a model upload), so this is a blocking accept thread feeding
// a small pool of handler threads over POSIX sockets — no external
// dependency, no keep-alive, no TLS, no chunked encoding.  Every
// response carries Connection: close and the socket is torn down after
// one exchange.  Anything outside that envelope (absurd header sizes,
// bodies over the configured cap, malformed framing) is rejected with a
// 4xx rather than parsed heroically.
//
// The parser is exposed as free functions so it can be unit-tested
// without sockets.
#ifndef IUSTITIA_CTRL_HTTP_H_
#define IUSTITIA_CTRL_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace iustitia::ctrl {

// One parsed request.  Header names are matched case-insensitively via
// header(); the body is raw bytes (Content-Length framing only).
struct HttpRequest {
  std::string method;   // e.g. "GET", "POST" (uppercased by convention)
  std::string target;   // request target as sent, e.g. "/metrics"
  std::string version;  // e.g. "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // First header with the given name (case-insensitive), or "".
  std::string_view header(std::string_view name) const noexcept;

  // Parsed Content-Length header; 0 when absent, SIZE_MAX when present
  // but unparsable (callers treat that as a framing error).
  std::size_t content_length() const noexcept;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  // Full wire form: status line, headers (Content-Length, Content-Type,
  // Connection: close), blank line, body.
  std::string serialize() const;
};

// Canonical reason phrase for the handful of statuses the admin surface
// uses ("Unknown" otherwise).
const char* status_reason(int status) noexcept;

// Convenience constructors used by endpoint handlers.
HttpResponse text_response(int status, std::string body);
HttpResponse json_response(int status, std::string body);

// Parses the head of a request (everything before the blank line,
// CRLF- or bare-LF-separated).  Returns false and fills `error` on
// malformed input; the body is NOT read here — callers append it after
// consulting content_length().
bool parse_request_head(std::string_view head, HttpRequest& out,
                        std::string& error);

class HttpServer {
 public:
  // Handler runs on a pool thread; it must be safe to call concurrently
  // with itself.  Throwing turns into a 500 response.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::string bind_address = "127.0.0.1";  // admin surface: local only
    std::uint16_t port = 0;                  // 0 = ephemeral (see port())
    std::size_t handler_threads = 2;
    // Hard cap on one request (head + body).  Model bundles are a few
    // hundred KB; 64 MiB leaves room without letting a client balloon us.
    std::size_t max_request_bytes = 64u << 20;
    // Slowloris guard: a connection that delivers NO bytes for this long
    // is answered 408 and closed, well before the total connection
    // deadline.  A trickling client is bounded by the total deadline
    // instead; a stalled one cannot pin a handler-pool thread for more
    // than this.  0 disables the idle check (total deadline only).
    std::size_t idle_timeout_millis = 2000;
  };

  HttpServer(Options options, Handler handler);
  ~HttpServer();  // stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds + listens, then spawns the accept thread and the handler pool.
  // Throws std::runtime_error when the socket cannot be set up.
  void start();

  // Stops accepting, wakes the pool, joins every thread, and closes any
  // connection still queued (unserved sockets are simply closed).
  // Idempotent; safe from any thread.
  void stop();

  // The actually bound port (resolves port 0); valid after start().
  std::uint16_t port() const noexcept {
    return static_cast<std::uint16_t>(port_.load(std::memory_order_relaxed));
  }

 private:
  void accept_loop();
  void handler_loop();
  // Reads, parses, dispatches, and answers one connection, then closes it.
  void serve_connection(int fd);

  const Options options_;
  const Handler handler_;

  // Loop-termination flag only; data handoff rides on the queue mutex
  // and thread joins.
  std::atomic<bool> stop_{false};  // analyze: atomic(relaxed-flag)
  // Listening socket; written by start() before any thread launches,
  // closed by stop() after every thread joined.
  std::atomic<int> listen_fd_{-1};  // analyze: atomic(relaxed-flag)
  std::atomic<int> port_{0};  // analyze: atomic(relaxed-counter)

  // Accepted-but-unserved connection sockets.
  util::Mutex queue_mu_{"HttpServer::queue_mu_"};
  std::condition_variable_any queue_cv_;
  std::deque<int> pending_ IUSTITIA_GUARDED_BY(queue_mu_);

  util::Mutex lifecycle_mu_{"HttpServer::lifecycle_mu_"};
  std::thread acceptor_ IUSTITIA_GUARDED_BY(lifecycle_mu_);
  std::vector<std::thread> handlers_ IUSTITIA_GUARDED_BY(lifecycle_mu_);
  bool started_ IUSTITIA_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ IUSTITIA_GUARDED_BY(lifecycle_mu_) = false;
};

}  // namespace iustitia::ctrl

#endif  // IUSTITIA_CTRL_HTTP_H_
