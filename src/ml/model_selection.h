// Grid-search model selection for the SVM (gamma, C), as performed in the
// paper ("after model selection, we achieved best ... by gamma=50 and
// C=1000", Section 3.2; re-selection yields gamma=10 for estimated vectors,
// Section 4.4.2).
#ifndef IUSTITIA_ML_MODEL_SELECTION_H_
#define IUSTITIA_ML_MODEL_SELECTION_H_

#include <span>
#include <vector>

#include "ml/dataset.h"
#include "ml/svm.h"
#include "util/random.h"

namespace iustitia::ml {

// One grid-search evaluation.
struct GridPoint {
  double gamma = 0.0;
  double c = 0.0;
  double accuracy = 0.0;
};

// Full grid-search trace plus the winning configuration.
struct GridSearchResult {
  std::vector<GridPoint> evaluated;
  GridPoint best;
};

// Evaluates every (gamma, C) pair by stratified `folds`-fold CV and returns
// the accuracy-maximizing pair.
GridSearchResult svm_grid_search(const Dataset& data,
                                 std::span<const double> gammas,
                                 std::span<const double> cs,
                                 std::size_t folds, const SvmParams& base,
                                 util::Rng& rng);

}  // namespace iustitia::ml

#endif  // IUSTITIA_ML_MODEL_SELECTION_H_
