#include "ml/svm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace iustitia::ml {

double kernel_value(const SvmParams& params, std::span<const double> a,
                    std::span<const double> b) noexcept {
  double acc = 0.0;
  switch (params.kernel) {
    case KernelType::kLinear:
      for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
      return acc;
    case KernelType::kRbf:
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
      }
      return std::exp(-params.gamma * acc);
    case KernelType::kPolynomial:
      for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
      return std::pow(params.gamma * acc + params.coef0, params.degree);
  }
  return 0.0;
}

double kernel_value(KernelType kernel, double gamma, std::span<const double> a,
                    std::span<const double> b) noexcept {
  SvmParams params;
  params.kernel = kernel;
  params.gamma = gamma;
  return kernel_value(params, a, b);
}

namespace {

// SMO working state (Platt 1998 with an error cache).  The full kernel
// matrix is precomputed: training sets in this system are at most a few
// thousand rows, so the cache is the fastest and simplest correct choice.
class SmoSolver {
 public:
  SmoSolver(const std::vector<std::vector<double>>& x,
            const std::vector<int>& y, const SvmParams& params)
      : x_(x),
        y_(y),
        params_(params),
        n_(x.size()),
        alpha_(x.size(), 0.0),
        error_(x.size(), 0.0),
        rng_(params.seed) {
    kernel_.resize(n_ * n_);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i; j < n_; ++j) {
        const double k = kernel_value(params_, x_[i], x_[j]);
        kernel_[i * n_ + j] = k;
        kernel_[j * n_ + i] = k;
      }
    }
    // f(x_i) = 0 initially, so E_i = -y_i.
    for (std::size_t i = 0; i < n_; ++i) error_[i] = -static_cast<double>(y_[i]);
  }

  void solve() {
    std::size_t iterations = 0;
    bool examine_all = true;
    std::size_t num_changed = 0;
    while ((num_changed > 0 || examine_all) &&
           iterations < params_.max_iterations) {
      num_changed = 0;
      if (examine_all) {
        for (std::size_t i = 0; i < n_ && iterations < params_.max_iterations;
             ++i) {
          num_changed += examine(i);
          ++iterations;
        }
      } else {
        for (std::size_t i = 0; i < n_ && iterations < params_.max_iterations;
             ++i) {
          if (alpha_[i] > 0.0 && alpha_[i] < params_.c) {
            num_changed += examine(i);
            ++iterations;
          }
        }
      }
      if (examine_all) {
        examine_all = false;
      } else if (num_changed == 0) {
        examine_all = true;
      }
    }
  }

  std::span<const double> alphas() const noexcept { return alpha_; }
  double bias() const noexcept { return bias_; }

 private:
  double k(std::size_t i, std::size_t j) const noexcept {
    return kernel_[i * n_ + j];
  }

  std::size_t examine(std::size_t i2) {
    const double y2 = static_cast<double>(y_[i2]);
    const double a2 = alpha_[i2];
    const double e2 = error_[i2];
    const double r2 = e2 * y2;
    const bool violates = (r2 < -params_.tolerance && a2 < params_.c) ||
                          (r2 > params_.tolerance && a2 > 0.0);
    if (!violates) return 0;

    // Heuristic 1: maximize |E1 - E2| among non-bound alphas.
    std::size_t best = n_;
    double best_gap = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (alpha_[i] > 0.0 && alpha_[i] < params_.c) {
        const double gap = std::fabs(error_[i] - e2);
        if (gap > best_gap) {
          best_gap = gap;
          best = i;
        }
      }
    }
    if (best < n_ && take_step(best, i2)) return 1;

    // Heuristic 2: all non-bound alphas, random start.
    const std::size_t start =
        static_cast<std::size_t>(rng_.next_below(std::max<std::uint64_t>(n_, 1)));
    for (std::size_t offset = 0; offset < n_; ++offset) {
      const std::size_t i = (start + offset) % n_;
      if (alpha_[i] > 0.0 && alpha_[i] < params_.c) {
        if (take_step(i, i2)) return 1;
      }
    }
    // Heuristic 3: the whole training set, random start.
    for (std::size_t offset = 0; offset < n_; ++offset) {
      const std::size_t i = (start + offset) % n_;
      if (take_step(i, i2)) return 1;
    }
    return 0;
  }

  bool take_step(std::size_t i1, std::size_t i2) {
    if (i1 == i2) return false;
    const double a1_old = alpha_[i1];
    const double a2_old = alpha_[i2];
    const double y1 = static_cast<double>(y_[i1]);
    const double y2 = static_cast<double>(y_[i2]);
    const double e1 = error_[i1];
    const double e2 = error_[i2];
    const double s = y1 * y2;

    double lo, hi;
    if (y1 != y2) {
      lo = std::max(0.0, a2_old - a1_old);
      hi = std::min(params_.c, params_.c + a2_old - a1_old);
    } else {
      lo = std::max(0.0, a1_old + a2_old - params_.c);
      hi = std::min(params_.c, a1_old + a2_old);
    }
    if (lo >= hi) return false;

    const double k11 = k(i1, i1);
    const double k12 = k(i1, i2);
    const double k22 = k(i2, i2);
    const double eta = k11 + k22 - 2.0 * k12;

    double a2_new;
    if (eta > 0.0) {
      a2_new = a2_old + y2 * (e1 - e2) / eta;
      a2_new = std::clamp(a2_new, lo, hi);
    } else {
      // Degenerate kernel direction: evaluate the objective at both clip
      // ends (Platt's procedure).
      const double f1 = y1 * e1 - a1_old * k11 - s * a2_old * k12;
      const double f2 = y2 * e2 - s * a1_old * k12 - a2_old * k22;
      const double l1 = a1_old + s * (a2_old - lo);
      const double h1 = a1_old + s * (a2_old - hi);
      const double obj_lo = l1 * f1 + lo * f2 + 0.5 * l1 * l1 * k11 +
                            0.5 * lo * lo * k22 + s * lo * l1 * k12;
      const double obj_hi = h1 * f1 + hi * f2 + 0.5 * h1 * h1 * k11 +
                            0.5 * hi * hi * k22 + s * hi * h1 * k12;
      if (obj_lo < obj_hi - params_.eps) {
        a2_new = lo;
      } else if (obj_lo > obj_hi + params_.eps) {
        a2_new = hi;
      } else {
        return false;
      }
    }

    if (std::fabs(a2_new - a2_old) <
        params_.eps * (a2_new + a2_old + params_.eps)) {
      return false;
    }
    const double a1_new = a1_old + s * (a2_old - a2_new);

    // Bias update (Platt's b1/b2 rule).
    const double b_old = bias_;
    const double b1 = e1 + y1 * (a1_new - a1_old) * k11 +
                      y2 * (a2_new - a2_old) * k12 + b_old;
    const double b2 = e2 + y1 * (a1_new - a1_old) * k12 +
                      y2 * (a2_new - a2_old) * k22 + b_old;
    if (a1_new > 0.0 && a1_new < params_.c) {
      bias_ = b1;
    } else if (a2_new > 0.0 && a2_new < params_.c) {
      bias_ = b2;
    } else {
      bias_ = 0.5 * (b1 + b2);
    }

    alpha_[i1] = a1_new;
    alpha_[i2] = a2_new;

    // Error cache refresh: E_i += y1 dA1 K(1,i) + y2 dA2 K(2,i) - db.
    const double d1 = y1 * (a1_new - a1_old);
    const double d2 = y2 * (a2_new - a2_old);
    const double db = bias_ - b_old;
    for (std::size_t i = 0; i < n_; ++i) {
      error_[i] += d1 * k(i1, i) + d2 * k(i2, i) - db;
    }
    error_[i1] = decision_raw(i1) - y1;
    error_[i2] = decision_raw(i2) - y2;
    return true;
  }

  double decision_raw(std::size_t row) const noexcept {
    double acc = -bias_;
    for (std::size_t i = 0; i < n_; ++i) {
      if (alpha_[i] > 0.0) {
        acc += alpha_[i] * static_cast<double>(y_[i]) * k(i, row);
      }
    }
    return acc;
  }

  const std::vector<std::vector<double>>& x_;
  const std::vector<int>& y_;
  SvmParams params_;
  std::size_t n_;
  std::vector<double> kernel_;
  std::vector<double> alpha_;
  std::vector<double> error_;
  double bias_ = 0.0;  // decision uses f(x) = sum - bias_ (Platt convention)
  util::Rng rng_;
};

}  // namespace

void BinarySvm::train(const std::vector<std::vector<double>>& x,
                      const std::vector<int>& y, const SvmParams& params) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument("BinarySvm::train: bad input sizes");
  }
  for (const int label : y) {
    if (label != 1 && label != -1) {
      throw std::invalid_argument("BinarySvm::train: labels must be +1/-1");
    }
  }
  params_ = params;

  SmoSolver solver(x, y, params);
  solver.solve();

  support_vectors_.clear();
  coefficients_.clear();
  const auto alphas = solver.alphas();
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (alphas[i] > 0.0) {
      support_vectors_.push_back(x[i]);
      coefficients_.push_back(alphas[i] * static_cast<double>(y[i]));
    }
  }
  bias_ = -solver.bias();  // store so decision() is sum + bias_
}

double BinarySvm::decision(std::span<const double> features) const {
  // kernel_value walks the support-vector length, so a narrower feature
  // vector would read out of bounds.
  if (!support_vectors_.empty()) {
    CHECK_GE(features.size(), support_vectors_.front().size())
        << "feature vector narrower than the trained arity";
  }
  double acc = bias_;
  for (std::size_t i = 0; i < support_vectors_.size(); ++i) {
    acc += coefficients_[i] *
           kernel_value(params_, support_vectors_[i], features);
  }
  return acc;
}

int BinarySvm::predict(std::span<const double> features) const {
  return decision(features) >= 0.0 ? 1 : -1;
}

void BinarySvm::restore(std::vector<std::vector<double>> support_vectors,
                        std::vector<double> coefficients, double bias,
                        SvmParams params) {
  if (support_vectors.size() != coefficients.size()) {
    throw std::invalid_argument("BinarySvm::restore: size mismatch");
  }
  support_vectors_ = std::move(support_vectors);
  coefficients_ = std::move(coefficients);
  bias_ = bias;
  params_ = params;
}

std::size_t BinarySvm::space_bytes() const noexcept {
  std::size_t doubles = coefficients_.size() + 1;
  for (const auto& sv : support_vectors_) doubles += sv.size();
  return doubles * sizeof(double);
}

void DagSvm::train(const Dataset& data, const SvmParams& params) {
  num_classes_ = data.num_classes();
  if (num_classes_ < 2) {
    throw std::invalid_argument("DagSvm::train: need at least 2 classes");
  }
  machines_.clear();
  machines_.resize(static_cast<std::size_t>(num_classes_) *
                   static_cast<std::size_t>(num_classes_ - 1) / 2);
  for (int i = 0; i < num_classes_; ++i) {
    for (int j = i + 1; j < num_classes_; ++j) {
      std::vector<std::vector<double>> x;
      std::vector<int> y;
      for (const auto& s : data.samples()) {
        if (s.label == i) {
          x.push_back(s.features);
          y.push_back(+1);
        } else if (s.label == j) {
          x.push_back(s.features);
          y.push_back(-1);
        }
      }
      if (x.empty()) {
        throw std::invalid_argument(
            "DagSvm::train: a class pair has no samples");
      }
      machines_[machine_index(i, j)].train(x, y, params);
    }
  }
}

std::size_t DagSvm::machine_index(int i, int j) const {
  DCHECK_GE(i, 0);
  DCHECK_LT(i, j) << "pairwise machines are indexed with i < j";
  DCHECK_LT(j, num_classes_);
  // Row-major upper triangle: index(i,j) for i<j.
  const auto n = static_cast<std::size_t>(num_classes_);
  const auto ii = static_cast<std::size_t>(i);
  const auto jj = static_cast<std::size_t>(j);
  return ii * n - ii * (ii + 1) / 2 + (jj - ii - 1);
}

const BinarySvm& DagSvm::machine(int i, int j) const {
  if (i >= j) throw std::invalid_argument("DagSvm::machine: need i < j");
  return machines_[machine_index(i, j)];
}

int DagSvm::predict(std::span<const double> features) const {
  if (machines_.empty()) {
    throw std::logic_error("DagSvm::predict: untrained model");
  }
  // Decision DAG: eliminate one class per pairwise evaluation.
  int lo = 0;
  int hi = num_classes_ - 1;
  while (lo < hi) {
    const BinarySvm& m = machines_[machine_index(lo, hi)];
    if (m.decision(features) >= 0.0) {
      --hi;  // class `lo` won; eliminate `hi`
    } else {
      ++lo;  // class `hi` won; eliminate `lo`
    }
  }
  return lo;
}

std::size_t DagSvm::support_vector_count() const noexcept {
  std::size_t total = 0;
  for (const auto& m : machines_) total += m.support_vector_count();
  return total;
}

std::size_t DagSvm::space_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& m : machines_) total += m.space_bytes();
  return total;
}

void MaxWinsSvm::train(const Dataset& data, const SvmParams& params) {
  DagSvm dag;
  dag.train(data, params);
  *this = from_dag(dag);
}

MaxWinsSvm MaxWinsSvm::from_dag(const DagSvm& dag) {
  MaxWinsSvm out;
  out.num_classes_ = dag.num_classes();
  out.machines_ = dag.machines();
  return out;
}

std::size_t MaxWinsSvm::machine_index(int i, int j) const {
  DCHECK_GE(i, 0);
  DCHECK_LT(i, j) << "pairwise machines are indexed with i < j";
  DCHECK_LT(j, num_classes_);
  const auto n = static_cast<std::size_t>(num_classes_);
  const auto ii = static_cast<std::size_t>(i);
  const auto jj = static_cast<std::size_t>(j);
  return ii * n - ii * (ii + 1) / 2 + (jj - ii - 1);
}

int MaxWinsSvm::predict(std::span<const double> features) const {
  if (machines_.empty()) {
    throw std::logic_error("MaxWinsSvm::predict: untrained model");
  }
  std::vector<int> votes(static_cast<std::size_t>(num_classes_), 0);
  for (int i = 0; i < num_classes_; ++i) {
    for (int j = i + 1; j < num_classes_; ++j) {
      const double d = machines_[machine_index(i, j)].decision(features);
      ++votes[static_cast<std::size_t>(d >= 0.0 ? i : j)];
    }
  }
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (votes[static_cast<std::size_t>(c)] >
        votes[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

void DagSvm::restore(int num_classes, std::vector<BinarySvm> machines) {
  const std::size_t expected = static_cast<std::size_t>(num_classes) *
                               static_cast<std::size_t>(num_classes - 1) / 2;
  if (machines.size() != expected) {
    throw std::invalid_argument("DagSvm::restore: machine count mismatch");
  }
  num_classes_ = num_classes;
  machines_ = std::move(machines);
}

}  // namespace iustitia::ml
