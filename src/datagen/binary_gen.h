// Binary-class file generators (paper binary pool: executables, JPG, GIF,
// AVI, MPG, PDF, ZIP).
//
// Each generator builds the same structural skeleton as its real-world
// counterpart — magic numbers, section headers, tables, then payload — so
// the byte statistics land in the paper's middle entropy band for honest
// reasons: genuinely compressed payloads (via the LZ77 coder), code-like
// opcode mixes, and structured tables, not bytes sampled to a target
// entropy.
#ifndef IUSTITIA_DATAGEN_BINARY_GEN_H_
#define IUSTITIA_DATAGEN_BINARY_GEN_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace iustitia::datagen {

// Executable image: header, machine-code-like section, data section with
// zero runs and small constants, string table.
std::vector<std::uint8_t> generate_executable(std::size_t size,
                                              util::Rng& rng);

// JPEG-like image: marker segments and quantization tables followed by a
// near-uniform entropy-coded scan with byte stuffing.
std::vector<std::uint8_t> generate_image(std::size_t size, util::Rng& rng);

// MPEG/AVI-like media: periodic frame headers with counters, each followed
// by a compressed payload.
std::vector<std::uint8_t> generate_media(std::size_t size, util::Rng& rng);

// ZIP-like archive: small member headers + genuinely LZ77-compressed text.
std::vector<std::uint8_t> generate_archive(std::size_t size, util::Rng& rng);

// PDF-like document: readable object skeleton with compressed stream
// objects in between.
std::vector<std::uint8_t> generate_pdf(std::size_t size, util::Rng& rng);

}  // namespace iustitia::datagen

#endif  // IUSTITIA_DATAGEN_BINARY_GEN_H_
