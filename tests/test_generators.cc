// Tests for the text and binary file generators: exact sizing, structural
// signatures, and the entropy ordering that realizes Hypothesis 1.
#include "datagen/binary_gen.h"
#include "datagen/text_gen.h"

#include <gtest/gtest.h>

#include <cctype>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "entropy/entropy_vector.h"
#include "util/random.h"

namespace iustitia::datagen {
namespace {

using Generator =
    std::function<std::vector<std::uint8_t>(std::size_t, util::Rng&)>;

double h1_of(std::span<const std::uint8_t> data) {
  const int widths[] = {1};
  return entropy::entropy_vector(data, widths)[0];
}

bool mostly_printable(std::span<const std::uint8_t> data) {
  std::size_t printable = 0;
  for (const std::uint8_t b : data) {
    printable += (b == '\n' || b == '\r' || b == '\t' ||
                  (b >= 0x20 && b < 0x7F));
  }
  return printable >= data.size() * 95 / 100;
}

class TextGenerators : public ::testing::TestWithParam<
                           std::pair<const char*, Generator>> {};

TEST_P(TextGenerators, ExactSizeAndPrintable) {
  auto [name, gen] = GetParam();
  util::Rng rng(11);
  for (const std::size_t size : {64u, 1000u, 8192u}) {
    const auto data = gen(size, rng);
    ASSERT_EQ(data.size(), size) << name;
    EXPECT_TRUE(mostly_printable(data)) << name;
  }
}

TEST_P(TextGenerators, EntropyBelowBinaryBand) {
  auto [name, gen] = GetParam();
  util::Rng rng(12);
  const auto data = gen(8192, rng);
  EXPECT_LT(h1_of(data), 0.70) << name;
  EXPECT_GT(h1_of(data), 0.2) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllText, TextGenerators,
    ::testing::Values(std::make_pair("prose", Generator(generate_prose)),
                      std::make_pair("html", Generator(generate_html)),
                      std::make_pair("log", Generator(generate_log)),
                      std::make_pair("csv", Generator(generate_csv)),
                      std::make_pair("source", Generator(generate_source_code)),
                      std::make_pair("email", Generator(generate_email))));

class BinaryGenerators : public ::testing::TestWithParam<
                             std::pair<const char*, Generator>> {};

TEST_P(BinaryGenerators, ExactSize) {
  auto [name, gen] = GetParam();
  util::Rng rng(13);
  for (const std::size_t size : {256u, 2048u, 16384u}) {
    ASSERT_EQ(gen(size, rng).size(), size) << name;
  }
}

TEST_P(BinaryGenerators, EntropyAboveTextBand) {
  auto [name, gen] = GetParam();
  util::Rng rng(14);
  const auto data = gen(16384, rng);
  EXPECT_GT(h1_of(data), 0.55) << name;
}

INSTANTIATE_TEST_SUITE_P(
    AllBinary, BinaryGenerators,
    ::testing::Values(std::make_pair("exe", Generator(generate_executable)),
                      std::make_pair("jpeg", Generator(generate_image)),
                      std::make_pair("avi", Generator(generate_media)),
                      std::make_pair("zip", Generator(generate_archive)),
                      std::make_pair("pdf", Generator(generate_pdf))));

TEST(GenerateExecutable, CarriesElfLikeMagic) {
  util::Rng rng(15);
  const auto data = generate_executable(4096, rng);
  ASSERT_GE(data.size(), 4u);
  EXPECT_EQ(data[0], 0x7F);
  EXPECT_EQ(data[1], 'E');
  EXPECT_EQ(data[2], 'L');
  EXPECT_EQ(data[3], 'F');
}

TEST(GenerateImage, CarriesJpegMarkers) {
  util::Rng rng(16);
  const auto data = generate_image(8192, rng);
  EXPECT_EQ(data[0], 0xFF);
  EXPECT_EQ(data[1], 0xD8);  // SOI
  EXPECT_EQ(data[2], 0xFF);
  EXPECT_EQ(data[3], 0xE0);  // APP0
}

TEST(GenerateArchive, CarriesPkSignature) {
  util::Rng rng(17);
  const auto data = generate_archive(8192, rng);
  EXPECT_EQ(data[0], 0x50);
  EXPECT_EQ(data[1], 0x4B);
}

TEST(GeneratePdf, StartsWithPdfHeader) {
  util::Rng rng(18);
  const auto data = generate_pdf(4096, rng);
  const std::string head(data.begin(), data.begin() + 5);
  EXPECT_EQ(head, "%PDF-");
}

TEST(GenerateMedia, StartsWithRiffHeader) {
  util::Rng rng(19);
  const auto data = generate_media(4096, rng);
  const std::string head(data.begin(), data.begin() + 4);
  EXPECT_EQ(head, "RIFF");
}

TEST(EntropyOrdering, TextBelowBinary) {
  // Hypothesis 1, pairwise half: averaged over families, text entropy sits
  // strictly below binary entropy.
  util::Rng rng(20);
  double text_sum = 0.0, binary_sum = 0.0;
  for (int i = 0; i < 6; ++i) {
    text_sum += h1_of(generate_prose(8192, rng));
    text_sum += h1_of(generate_log(8192, rng));
    binary_sum += h1_of(generate_executable(8192, rng));
    binary_sum += h1_of(generate_archive(8192, rng));
  }
  EXPECT_LT(text_sum, binary_sum);
}

}  // namespace
}  // namespace iustitia::datagen
