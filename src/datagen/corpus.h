// Synthetic file corpus: the substitute for the paper's pool of 52k binary,
// 25k text, and 14k encrypted files (see DESIGN.md Section 2).
#ifndef IUSTITIA_DATAGEN_CORPUS_H_
#define IUSTITIA_DATAGEN_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::datagen {

// Flow/file nature classes, in the paper's order.
enum class FileClass : int { kText = 0, kBinary = 1, kEncrypted = 2 };

inline constexpr int kNumClasses = 3;

// Human-readable class name ("text" / "binary" / "encrypted").
const char* class_name(FileClass c) noexcept;

// One synthesized file.
struct FileSample {
  std::vector<std::uint8_t> bytes;
  FileClass label = FileClass::kText;
  std::string kind;  // generator family, e.g. "html", "zip", "chacha20"
};

// Corpus shape knobs.
struct CorpusOptions {
  std::size_t files_per_class = 200;
  std::size_t min_size = 2048;   // bytes
  std::size_t max_size = 16384;  // bytes
  std::uint64_t seed = 0xC0FFEE;
};

// Generates one file of the given class with the requested size.
FileSample generate_file(FileClass label, std::size_t size, util::Rng& rng);

// Builds a class-balanced corpus.  File sizes are log-uniform in
// [min_size, max_size], mirroring the long-tailed sizes of real pools.
std::vector<FileSample> build_corpus(const CorpusOptions& options);

}  // namespace iustitia::datagen

#endif  // IUSTITIA_DATAGEN_CORPUS_H_
