// Round-trip tests for model serialization: a reloaded model must make
// byte-identical predictions.
#include "ml/serialize.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/random.h"

namespace iustitia::ml {
namespace {

Dataset blobs(util::Rng& rng, int classes = 3) {
  Dataset data(classes);
  for (int c = 0; c < classes; ++c) {
    for (int i = 0; i < 40; ++i) {
      data.add({rng.normal(3.0 * c, 0.4), rng.normal(-2.0 * c, 0.4)}, c);
    }
  }
  return data;
}

TEST(SerializeTree, RoundTripPredictionsIdentical) {
  util::Rng rng(1);
  const Dataset data = blobs(rng);
  DecisionTree tree;
  tree.train(data);

  std::stringstream ss;
  save_tree(tree, ss);
  const DecisionTree loaded = load_tree(ss);

  EXPECT_EQ(loaded.num_classes(), tree.num_classes());
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  util::Rng probe(2);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x{probe.uniform(-2.0, 8.0),
                                probe.uniform(-6.0, 2.0)};
    ASSERT_EQ(loaded.predict(x), tree.predict(x));
  }
}

TEST(SerializeTree, MalformedHeaderThrows) {
  std::stringstream ss("not-a-model 3 2 1");
  EXPECT_THROW(load_tree(ss), std::runtime_error);
}

TEST(SerializeTree, TruncatedBodyThrows) {
  util::Rng rng(3);
  DecisionTree tree;
  tree.train(blobs(rng));
  std::stringstream ss;
  save_tree(tree, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_tree(truncated), std::runtime_error);
}

TEST(SerializeDagSvm, RoundTripDecisionsIdentical) {
  util::Rng rng(4);
  const Dataset data = blobs(rng);
  DagSvm model;
  model.train(data, SvmParams{.gamma = 1.0, .c = 50.0});

  std::stringstream ss;
  save_dag_svm(model, ss);
  const DagSvm loaded = load_dag_svm(ss);

  EXPECT_EQ(loaded.num_classes(), model.num_classes());
  EXPECT_EQ(loaded.support_vector_count(), model.support_vector_count());
  util::Rng probe(5);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> x{probe.uniform(-2.0, 8.0),
                                probe.uniform(-6.0, 2.0)};
    ASSERT_EQ(loaded.predict(x), model.predict(x));
    ASSERT_NEAR(loaded.machine(0, 2).decision(x),
                model.machine(0, 2).decision(x), 1e-12);
  }
}

TEST(SerializeDagSvm, MalformedInputThrows) {
  std::stringstream ss("dagsvm-v1 oops");
  EXPECT_THROW(load_dag_svm(ss), std::runtime_error);
}

TEST(SerializeScaler, RoundTrip) {
  Dataset data(1);
  data.add({1.0, -5.0}, 0);
  data.add({3.0, 5.0}, 0);
  MinMaxScaler scaler;
  scaler.fit(data);

  std::stringstream ss;
  save_scaler(scaler, ss);
  const MinMaxScaler loaded = load_scaler(ss);
  EXPECT_EQ(loaded.transform(std::vector<double>{2.0, 0.0}),
            scaler.transform(std::vector<double>{2.0, 0.0}));
}

TEST(SerializeScaler, MalformedInputThrows) {
  std::stringstream ss("scaler-v1 junk");
  EXPECT_THROW(load_scaler(ss), std::runtime_error);
}

}  // namespace
}  // namespace iustitia::ml
