// Deterministic fault-injection points (DESIGN.md §12).
//
// A failpoint is a named site in production code where a fault can be
// injected on demand:
//
//   if (FAILPOINT("cdb.insert") == util::FailpointAction::kAllocFail) {
//     ... behave as if the allocation failed ...
//   }
//
// Disarmed (the default, and the only state production traffic ever
// sees) a failpoint costs one relaxed atomic load — no lock, no heap,
// no branch history beyond a never-taken jump — so the macro is legal
// inside analyzer-audited hot loops and under util::rt::GuardRegion.
// Arming happens out of band: the IUSTITIA_FAILPOINTS environment
// variable at process start, failpoints_configure() from tests, or the
// admin server's POST /failpoints at runtime.  Spec grammar:
//
//   IUSTITIA_FAILPOINTS='cdb.insert=error(0.01);ring.push=delay(50us)'
//
//   spec    := entry (';' entry)*
//   entry   := name '=' action | name '=' 'off' | 'off'
//   action  := 'error' [ '(' prob ')' ]
//            | 'alloc-fail' [ '(' prob ')' ]
//            | 'delay' '(' duration [ ',' prob ] ')'
//            | 'stall' '(' duration [ ',' prob ] ')'
//   duration:= integer ('us' | 'ms' | 's')
//
// Triggering is deterministic: each point owns a counter-mode PRNG
// seeded from mix64(global seed ^ hash(name)), so a given seed and
// evaluation sequence reproduces the same trigger pattern across runs
// (including under TSan/ASan).  The global seed defaults to a fixed
// constant and can be overridden with IUSTITIA_FAILPOINT_SEED.
//
// Every name must appear in kFailpointInventory
// (src/util/failpoint_inventory.h); tools/lint.py rule
// `failpoint-inventory` fails the build on a FAILPOINT("...") literal
// missing from the inventory, and register_point() CHECKs the same at
// first evaluation.
#ifndef IUSTITIA_UTIL_FAILPOINT_H_
#define IUSTITIA_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iustitia::util {

enum class FailpointAction {
  kNone = 0,   // disarmed, or armed but this evaluation did not trigger
  kError,      // site should behave as if the operation failed
  kAllocFail,  // site should behave as if an allocation failed
  kDelay,      // fire_armed already slept for the configured duration
  kStall,      // as kDelay but long: meant to trip the watchdog
};

namespace failpoint_detail {

// NOLINTNEXTLINE(dead-symbol): named only inside the FAILPOINT macro expansion.
struct PointState;

// Interns `name` in the process-wide registry (creating the state on
// first use) and returns its state.  Allocates and locks — called once
// per FAILPOINT site from the function-local static constructor, which
// wraps it in a util::rt::AllowScope so first evaluation inside a
// guard region is legal.  CHECK-fails on a name missing from
// kFailpointInventory.
// NOLINTNEXTLINE(dead-symbol): referenced via the FAILPOINT macro expansion.
PointState* register_point(std::string_view name);

// Armed slow path: samples the point's deterministic PRNG against the
// configured probability, performs delay/stall sleeps itself, and
// returns the action the site should simulate.  Locks and may sleep —
// by design; only armed runs pay for it.
// NOLINTNEXTLINE(dead-symbol): referenced via the FAILPOINT macro expansion.
FailpointAction fire_armed(PointState* state) noexcept;

// The one field hot code reads; defined here so fire() can inline to a
// single relaxed load without pulling the full registry types into
// every includer.
// NOLINTNEXTLINE(dead-symbol): referenced via the FAILPOINT macro expansion.
std::atomic<bool>& armed_flag(PointState* state) noexcept;

}  // namespace failpoint_detail

// Handle to one named failpoint.  Construct once (function-local
// static via the FAILPOINT macro) and call fire() per evaluation.
class Failpoint {
 public:
  explicit Failpoint(std::string_view name)
      : state_(failpoint_detail::register_point(name)),
        armed_(failpoint_detail::armed_flag(state_)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  // Disarmed: one relaxed load.  Armed: deterministic trigger sampling
  // (and the sleep for delay/stall actions) in fire_armed.
  FailpointAction fire() noexcept {
    if (!armed_.load(std::memory_order_relaxed)) {
      return FailpointAction::kNone;
    }
    return failpoint_detail::fire_armed(state_);
  }

 private:
  failpoint_detail::PointState* const state_;
  std::atomic<bool>& armed_;  // analyze: atomic(relaxed-flag)
};

// Evaluates the named failpoint.  The function-local static makes the
// registry lookup a one-time cost per site; its constructor runs under
// an AllowScope so first-fire inside a GuardRegion stays clean.
#define FAILPOINT(point_name)                                    \
  ([]() noexcept -> ::iustitia::util::FailpointAction {          \
    static ::iustitia::util::Failpoint iustitia_fp((point_name)); \
    return iustitia_fp.fire();                                   \
  }())

// Introspection row for one registered point (GET /failpoints).
struct FailpointInfo {
  std::string name;
  std::string spec;  // configured action, "" when disarmed
  bool armed = false;
  std::uint64_t evaluations = 0;  // fire() calls while armed
  std::uint64_t triggers = 0;     // evaluations that returned != kNone
};

// Applies a spec string (grammar above) on top of the current
// configuration.  Returns "" on success or a one-line error
// description (unknown name, bad action, bad duration); on error no
// point is modified.  Thread-safe; callable while traffic is live.
std::string failpoints_configure(std::string_view spec);

// Disarms every registered point (equivalent to spec "off").
// NOLINTNEXTLINE(dead-symbol): test teardown API (tests/test_failpoint.cc).
void failpoints_disarm_all();

// Snapshot of every point that has been registered or configured.
std::vector<FailpointInfo> failpoints_snapshot();

// Overrides the deterministic global seed (also: IUSTITIA_FAILPOINT_SEED).
// Existing points re-derive their stream on their next configure.
// NOLINTNEXTLINE(dead-symbol): determinism knob for tests (tests/test_failpoint.cc).
void failpoints_set_seed(std::uint64_t seed);

}  // namespace iustitia::util

#endif  // IUSTITIA_UTIL_FAILPOINT_H_
