file(REMOVE_RECURSE
  "CMakeFiles/test_tunnel.dir/test_tunnel.cc.o"
  "CMakeFiles/test_tunnel.dir/test_tunnel.cc.o.d"
  "test_tunnel"
  "test_tunnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
