// Tests for the paper's two feature-selection schemes (Section 4.1): both
// must recover planted informative features among noise.
#include "ml/feature_selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace iustitia::ml {
namespace {

// Features 1 and 3 jointly carry the label (diagonal boundary, so neither
// alone separates the classes); 0, 2, 4 are noise.
Dataset planted_dataset(std::size_t n, util::Rng& rng) {
  Dataset data(2);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> f(5);
    f[0] = rng.uniform();
    f[1] = rng.uniform();
    f[2] = rng.uniform();
    f[3] = rng.uniform();
    f[4] = rng.uniform();
    const int label = (f[1] + f[3] > 1.0) ? 1 : 0;
    data.add(std::move(f), label);
  }
  return data;
}

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

TEST(CartVoteSelection, RecoversInformativeFeatures) {
  util::Rng rng(1);
  const Dataset data = planted_dataset(400, rng);
  const FeatureSelectionResult result =
      cart_vote_selection(data, 5, 0.02, 2, CartParams{}, rng);
  ASSERT_EQ(result.selected.size(), 2u);
  EXPECT_TRUE(contains(result.selected, 1));
  EXPECT_TRUE(contains(result.selected, 3));
}

TEST(CartVoteSelection, VotesFavorInformativeFeatures) {
  util::Rng rng(2);
  const Dataset data = planted_dataset(400, rng);
  const FeatureSelectionResult result =
      cart_vote_selection(data, 5, 0.02, 5, CartParams{}, rng);
  EXPECT_GT(result.votes[1], result.votes[0]);
  EXPECT_GT(result.votes[3], result.votes[2]);
}

TEST(CartVoteSelection, SelectedIndicesAscending) {
  util::Rng rng(3);
  const Dataset data = planted_dataset(200, rng);
  const FeatureSelectionResult result =
      cart_vote_selection(data, 3, 0.05, 3, CartParams{}, rng);
  EXPECT_TRUE(std::is_sorted(result.selected.begin(), result.selected.end()));
}

TEST(SequentialForwardSelection, RecoversInformativeFeatures) {
  util::Rng rng(4);
  const Dataset data = planted_dataset(160, rng);
  const SvmParams params{.gamma = 2.0, .c = 10.0};
  const FeatureSelectionResult result =
      sequential_forward_selection(data, 2, 2, params, 0.7, rng);
  ASSERT_EQ(result.selected.size(), 2u);
  EXPECT_TRUE(contains(result.selected, 1));
  EXPECT_TRUE(contains(result.selected, 3));
}

TEST(SequentialForwardSelection, TargetLargerThanFeatureCountIsCapped) {
  util::Rng rng(5);
  Dataset data(2);
  for (int i = 0; i < 60; ++i) {
    data.add({i % 2 == 0 ? 0.2 : 0.8, 0.5}, i % 2);
  }
  const SvmParams params{.gamma = 1.0, .c = 10.0};
  const FeatureSelectionResult result =
      sequential_forward_selection(data, 1, 10, params, 0.7, rng);
  EXPECT_LE(result.selected.size(), 2u);
}

}  // namespace
}  // namespace iustitia::ml
