// Flow identification: SHA-1 over the canonical packet header, as in the
// paper's architecture (Fig. 1: "Header Hash Calculator (fid)"; Section 4.5
// uses a 160-bit SHA-1 result per flow).
#ifndef IUSTITIA_NET_FLOW_H_
#define IUSTITIA_NET_FLOW_H_

#include <array>
#include <cstddef>

#include "net/packet.h"
#include "util/sha1.h"

namespace iustitia::net {

// 160-bit flow identifier.
using FlowId = util::Sha1Digest;

// Serializes the 5-tuple into the canonical 13-byte header representation
// (src ip, dst ip, src port, dst port, protocol — all big-endian).
std::array<std::uint8_t, 13> canonical_header_bytes(const FlowKey& key) noexcept;

// SHA-1 of the canonical header bytes; direction-sensitive, like the paper.
FlowId flow_id(const FlowKey& key) noexcept;

// Hash functor so FlowKey can key unordered containers directly.
struct FlowKeyHash {
  std::size_t operator()(const FlowKey& key) const noexcept;
};

}  // namespace iustitia::net

#endif  // IUSTITIA_NET_FLOW_H_
