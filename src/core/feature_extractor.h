// Entropy-feature extraction with cost accounting: the "Entropy Vector
// Calculator/Estimator" block of Fig. 1.
//
// Wraps the exact (entropy/entropy_vector.h) and estimated
// (entropy/estimator.h) paths behind one interface and reports the wall
// time and counter space each extraction used — the quantities of Fig. 5
// and Table 3.
#ifndef IUSTITIA_CORE_FEATURE_EXTRACTOR_H_
#define IUSTITIA_CORE_FEATURE_EXTRACTOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "entropy/estimator.h"

namespace iustitia::core {

// One extraction with its measured costs.
struct ExtractionResult {
  std::vector<double> features;
  double micros = 0.0;        // wall-clock extraction time
  std::size_t space_bytes = 0;  // counter space used
};

class FeatureExtractor {
 public:
  // Exact extraction over the given gram widths.
  explicit FeatureExtractor(std::vector<int> widths);

  // Estimated extraction ((delta,epsilon)-approximation) for widths >= 2.
  FeatureExtractor(std::vector<int> widths,
                   const entropy::EstimatorParams& params, std::uint64_t seed);

  ExtractionResult extract(std::span<const std::uint8_t> data);

  bool uses_estimation() const noexcept { return use_estimation_; }
  std::span<const int> widths() const noexcept { return widths_; }

 private:
  std::vector<int> widths_;
  bool use_estimation_ = false;
  entropy::EstimatorParams params_;
  util::Rng rng_;
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_FEATURE_EXTRACTOR_H_
