// Classification Database (CDB), paper Fig. 1 and Section 4.5.
//
// Maps 160-bit flow IDs to nature labels.  Each record stores the label,
// the last packet arrival time, and lambda' (the inter-arrival gap of the
// flow's last two packets); the paper charges 194 bits per record (160-bit
// SHA-1 + 32-bit lambda' + 2-bit label).  Records leave the table three
// ways: explicit FIN/RST removal, the inactivity rule
// t_now - t_last > n * lambda', and never (when purging is disabled, the
// Fig. 8 baseline).
#ifndef IUSTITIA_CORE_CDB_H_
#define IUSTITIA_CORE_CDB_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/config.h"
#include "datagen/corpus.h"
#include "net/flow.h"

namespace iustitia::core {

// Lifetime counters for the CDB experiments.
struct CdbStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t fin_rst_removals = 0;
  std::uint64_t inactivity_removals = 0;
  std::uint64_t reclassification_removals = 0;
  std::uint64_t purge_runs = 0;
};

class ClassificationDatabase {
 public:
  explicit ClassificationDatabase(const CdbOptions& options = {});

  // Looks up a flow; on a hit refreshes t_last and lambda'.
  std::optional<datagen::FileClass> lookup(const net::FlowId& id, double now);

  // Read-only lookup that does not touch timing state (for inspection).
  std::optional<datagen::FileClass> peek(const net::FlowId& id) const;

  // Inserts (or overwrites) a freshly classified flow.
  void insert(const net::FlowId& id, datagen::FileClass label, double now);

  // FIN/RST handler: removes the flow if present (no-op when disabled).
  void remove_on_close(const net::FlowId& id);

  // Called once per new flow insertion by the engine; runs the inactivity
  // purge when the insert counter crosses the configured trigger.
  void maybe_purge(double now);

  // Unconditional inactivity purge; returns records removed.
  std::size_t purge(double now);

  std::size_t size() const noexcept { return records_.size(); }

  // Memory footprint using the paper's 194-bit record accounting.
  std::uint64_t memory_bits() const noexcept { return size() * 194; }

  const CdbStats& stats() const noexcept { return stats_; }
  const CdbOptions& options() const noexcept { return options_; }

 private:
  struct Record {
    datagen::FileClass label = datagen::FileClass::kText;
    double last_arrival = 0.0;
    double created_at = 0.0;  // classification time (reclassification rule)
    double lambda = 0.0;      // inter-arrival of the last two packets
    bool has_lambda = false;
  };

  CdbOptions options_;
  std::unordered_map<net::FlowId, Record> records_;
  std::size_t inserts_since_purge_ = 0;
  CdbStats stats_;
};

}  // namespace iustitia::core

#endif  // IUSTITIA_CORE_CDB_H_
