// Network tunneling substrate (paper Section 4.6).
//
// "A tunnel may contain multiple flows with different natures.  If the
// tunnel is encrypted, we classify the tunnel as an encrypted flow.  If
// the tunnel is not encrypted, we should distinguish every flow inside the
// tunnel and classify them separately."
//
// This module implements a minimal framed tunneling protocol so that both
// cases can be exercised end to end:
//   frame := magic "T!" | inner-flow id (4B BE) | length (2B BE) | payload
// TunnelMux encapsulates inner segments into an outer byte stream (per
// inner packet), optionally encrypting the entire outer stream with
// ChaCha20; TunnelDemux reassembles the inner streams from the outer
// payload, handling frames split across outer packets.
#ifndef IUSTITIA_NET_TUNNEL_H_
#define IUSTITIA_NET_TUNNEL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "datagen/chacha20.h"

namespace iustitia::net {

inline constexpr std::size_t kTunnelFrameHeader = 8;

// Encapsulates inner-flow segments into an outer tunnel byte stream.
class TunnelMux {
 public:
  // Cleartext tunnel.
  TunnelMux() = default;

  // Encrypted tunnel: the outer stream is ChaCha20-encrypted end to end.
  TunnelMux(const datagen::ChaCha20::Key& key,
            const datagen::ChaCha20::Nonce& nonce);

  // Appends one framed segment for `inner_id` and returns the outer bytes
  // to transmit (encrypted when the tunnel is encrypted).  Segments longer
  // than kTunnelMaxFramePayload are split into multiple frames.
  std::vector<std::uint8_t> encapsulate(std::uint32_t inner_id,
                                        std::span<const std::uint8_t> payload);

  bool encrypted() const noexcept { return cipher_.has_value(); }

 private:
  std::optional<datagen::ChaCha20> cipher_;
};

// Reassembles inner flows from an in-order outer payload stream.
class TunnelDemux {
 public:
  // `per_flow_limit` caps retained bytes per inner flow (classification
  // only needs a prefix).
  explicit TunnelDemux(std::size_t per_flow_limit = 4096);

  // Feeds the next chunk of outer payload (must be in stream order).
  void feed(std::span<const std::uint8_t> outer_payload);

  // True once a malformed frame (bad magic) was seen — the telltale that
  // the tunnel is encrypted or not this protocol; callers should then
  // classify the outer stream as one flow.
  bool corrupted() const noexcept { return corrupted_; }

  // Reassembled prefix per inner flow id.
  const std::unordered_map<std::uint32_t, std::vector<std::uint8_t>>&
  inner_streams() const noexcept {
    return streams_;
  }

  std::uint64_t frames_decoded() const noexcept { return frames_decoded_; }

 private:
  std::size_t per_flow_limit_;
  std::vector<std::uint8_t> pending_;  // partial frame across feeds
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> streams_;
  bool corrupted_ = false;
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace iustitia::net

#endif  // IUSTITIA_NET_TUNNEL_H_
