// Bridges appproto's concrete protocol generators into the neutral
// AppHeaderSource slot of net::TraceOptions.
//
// net sits below appproto in the layering (net must not name concrete
// protocols), so the trace generator takes headers through a callback;
// this adapter is where the two meet, on appproto's side of the line.
#ifndef IUSTITIA_APPPROTO_TRACE_HEADERS_H_
#define IUSTITIA_APPPROTO_TRACE_HEADERS_H_

#include "net/trace_gen.h"

namespace iustitia::appproto {

// Header source with the protocol mix calibrated to the paper's gateway
// trace: 70% HTTP, 15% SMTP, 8% POP3, 7% IMAP.  The protocol_id values
// it reports in AppHeader / FlowTruth cast back to AppProtocol.
net::AppHeaderSource standard_header_source();

}  // namespace iustitia::appproto

#endif  // IUSTITIA_APPPROTO_TRACE_HEADERS_H_
